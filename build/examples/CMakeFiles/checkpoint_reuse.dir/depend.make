# Empty dependencies file for checkpoint_reuse.
# This may be replaced when dependencies are built.
