file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_reuse.dir/checkpoint_reuse.cpp.o"
  "CMakeFiles/checkpoint_reuse.dir/checkpoint_reuse.cpp.o.d"
  "checkpoint_reuse"
  "checkpoint_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
