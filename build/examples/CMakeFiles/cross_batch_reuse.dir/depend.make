# Empty dependencies file for cross_batch_reuse.
# This may be replaced when dependencies are built.
