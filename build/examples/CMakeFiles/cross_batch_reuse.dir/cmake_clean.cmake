file(REMOVE_RECURSE
  "CMakeFiles/cross_batch_reuse.dir/cross_batch_reuse.cpp.o"
  "CMakeFiles/cross_batch_reuse.dir/cross_batch_reuse.cpp.o.d"
  "cross_batch_reuse"
  "cross_batch_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_batch_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
