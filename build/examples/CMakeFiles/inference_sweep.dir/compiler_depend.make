# Empty compiler generated dependencies file for inference_sweep.
# This may be replaced when dependencies are built.
