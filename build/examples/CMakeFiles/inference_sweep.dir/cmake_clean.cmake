file(REMOVE_RECURSE
  "CMakeFiles/inference_sweep.dir/inference_sweep.cpp.o"
  "CMakeFiles/inference_sweep.dir/inference_sweep.cpp.o.d"
  "inference_sweep"
  "inference_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inference_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
