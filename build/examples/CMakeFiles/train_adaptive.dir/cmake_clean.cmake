file(REMOVE_RECURSE
  "CMakeFiles/train_adaptive.dir/train_adaptive.cpp.o"
  "CMakeFiles/train_adaptive.dir/train_adaptive.cpp.o.d"
  "train_adaptive"
  "train_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
