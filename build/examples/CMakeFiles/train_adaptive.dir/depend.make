# Empty dependencies file for train_adaptive.
# This may be replaced when dependencies are built.
