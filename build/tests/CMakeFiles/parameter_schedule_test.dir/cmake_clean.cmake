file(REMOVE_RECURSE
  "CMakeFiles/parameter_schedule_test.dir/parameter_schedule_test.cc.o"
  "CMakeFiles/parameter_schedule_test.dir/parameter_schedule_test.cc.o.d"
  "parameter_schedule_test"
  "parameter_schedule_test.pdb"
  "parameter_schedule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parameter_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
