# Empty compiler generated dependencies file for parameter_schedule_test.
# This may be replaced when dependencies are built.
