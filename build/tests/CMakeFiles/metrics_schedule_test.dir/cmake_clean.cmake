file(REMOVE_RECURSE
  "CMakeFiles/metrics_schedule_test.dir/metrics_schedule_test.cc.o"
  "CMakeFiles/metrics_schedule_test.dir/metrics_schedule_test.cc.o.d"
  "metrics_schedule_test"
  "metrics_schedule_test.pdb"
  "metrics_schedule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
