file(REMOVE_RECURSE
  "CMakeFiles/serialize_checkpoint_test.dir/serialize_checkpoint_test.cc.o"
  "CMakeFiles/serialize_checkpoint_test.dir/serialize_checkpoint_test.cc.o.d"
  "serialize_checkpoint_test"
  "serialize_checkpoint_test.pdb"
  "serialize_checkpoint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serialize_checkpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
