# Empty compiler generated dependencies file for augment_cache_decay_test.
# This may be replaced when dependencies are built.
