file(REMOVE_RECURSE
  "CMakeFiles/augment_cache_decay_test.dir/augment_cache_decay_test.cc.o"
  "CMakeFiles/augment_cache_decay_test.dir/augment_cache_decay_test.cc.o.d"
  "augment_cache_decay_test"
  "augment_cache_decay_test.pdb"
  "augment_cache_decay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/augment_cache_decay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
