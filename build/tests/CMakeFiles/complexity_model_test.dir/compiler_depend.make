# Empty compiler generated dependencies file for complexity_model_test.
# This may be replaced when dependencies are built.
