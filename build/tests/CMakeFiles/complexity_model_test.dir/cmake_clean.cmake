file(REMOVE_RECURSE
  "CMakeFiles/complexity_model_test.dir/complexity_model_test.cc.o"
  "CMakeFiles/complexity_model_test.dir/complexity_model_test.cc.o.d"
  "complexity_model_test"
  "complexity_model_test.pdb"
  "complexity_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complexity_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
