file(REMOVE_RECURSE
  "CMakeFiles/subvector_clustering_test.dir/subvector_clustering_test.cc.o"
  "CMakeFiles/subvector_clustering_test.dir/subvector_clustering_test.cc.o.d"
  "subvector_clustering_test"
  "subvector_clustering_test.pdb"
  "subvector_clustering_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subvector_clustering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
