# Empty compiler generated dependencies file for subvector_clustering_test.
# This may be replaced when dependencies are built.
