# Empty compiler generated dependencies file for reuse_backward_test.
# This may be replaced when dependencies are built.
