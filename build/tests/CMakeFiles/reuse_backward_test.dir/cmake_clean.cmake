file(REMOVE_RECURSE
  "CMakeFiles/reuse_backward_test.dir/reuse_backward_test.cc.o"
  "CMakeFiles/reuse_backward_test.dir/reuse_backward_test.cc.o.d"
  "reuse_backward_test"
  "reuse_backward_test.pdb"
  "reuse_backward_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reuse_backward_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
