# Empty dependencies file for dedup_report_test.
# This may be replaced when dependencies are built.
