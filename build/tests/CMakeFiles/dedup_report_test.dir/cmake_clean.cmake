file(REMOVE_RECURSE
  "CMakeFiles/dedup_report_test.dir/dedup_report_test.cc.o"
  "CMakeFiles/dedup_report_test.dir/dedup_report_test.cc.o.d"
  "dedup_report_test"
  "dedup_report_test.pdb"
  "dedup_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedup_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
