# Empty compiler generated dependencies file for clustered_matmul_test.
# This may be replaced when dependencies are built.
