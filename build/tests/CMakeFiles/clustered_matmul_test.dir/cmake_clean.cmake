file(REMOVE_RECURSE
  "CMakeFiles/clustered_matmul_test.dir/clustered_matmul_test.cc.o"
  "CMakeFiles/clustered_matmul_test.dir/clustered_matmul_test.cc.o.d"
  "clustered_matmul_test"
  "clustered_matmul_test.pdb"
  "clustered_matmul_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clustered_matmul_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
