file(REMOVE_RECURSE
  "CMakeFiles/similarity_study_test.dir/similarity_study_test.cc.o"
  "CMakeFiles/similarity_study_test.dir/similarity_study_test.cc.o.d"
  "similarity_study_test"
  "similarity_study_test.pdb"
  "similarity_study_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/similarity_study_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
