# Empty dependencies file for similarity_study_test.
# This may be replaced when dependencies are built.
