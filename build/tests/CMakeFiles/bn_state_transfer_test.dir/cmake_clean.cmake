file(REMOVE_RECURSE
  "CMakeFiles/bn_state_transfer_test.dir/bn_state_transfer_test.cc.o"
  "CMakeFiles/bn_state_transfer_test.dir/bn_state_transfer_test.cc.o.d"
  "bn_state_transfer_test"
  "bn_state_transfer_test.pdb"
  "bn_state_transfer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bn_state_transfer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
