# Empty compiler generated dependencies file for bn_state_transfer_test.
# This may be replaced when dependencies are built.
