file(REMOVE_RECURSE
  "CMakeFiles/layer_param_sweep_test.dir/layer_param_sweep_test.cc.o"
  "CMakeFiles/layer_param_sweep_test.dir/layer_param_sweep_test.cc.o.d"
  "layer_param_sweep_test"
  "layer_param_sweep_test.pdb"
  "layer_param_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layer_param_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
