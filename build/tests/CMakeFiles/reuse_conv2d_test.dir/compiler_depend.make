# Empty compiler generated dependencies file for reuse_conv2d_test.
# This may be replaced when dependencies are built.
