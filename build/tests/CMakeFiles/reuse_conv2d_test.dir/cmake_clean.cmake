file(REMOVE_RECURSE
  "CMakeFiles/reuse_conv2d_test.dir/reuse_conv2d_test.cc.o"
  "CMakeFiles/reuse_conv2d_test.dir/reuse_conv2d_test.cc.o.d"
  "reuse_conv2d_test"
  "reuse_conv2d_test.pdb"
  "reuse_conv2d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reuse_conv2d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
