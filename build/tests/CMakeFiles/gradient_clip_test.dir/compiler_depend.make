# Empty compiler generated dependencies file for gradient_clip_test.
# This may be replaced when dependencies are built.
