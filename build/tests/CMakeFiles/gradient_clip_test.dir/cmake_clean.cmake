file(REMOVE_RECURSE
  "CMakeFiles/gradient_clip_test.dir/gradient_clip_test.cc.o"
  "CMakeFiles/gradient_clip_test.dir/gradient_clip_test.cc.o.d"
  "gradient_clip_test"
  "gradient_clip_test.pdb"
  "gradient_clip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gradient_clip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
