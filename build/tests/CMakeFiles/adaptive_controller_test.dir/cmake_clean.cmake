file(REMOVE_RECURSE
  "CMakeFiles/adaptive_controller_test.dir/adaptive_controller_test.cc.o"
  "CMakeFiles/adaptive_controller_test.dir/adaptive_controller_test.cc.o.d"
  "adaptive_controller_test"
  "adaptive_controller_test.pdb"
  "adaptive_controller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
