# Empty dependencies file for adaptive_controller_test.
# This may be replaced when dependencies are built.
