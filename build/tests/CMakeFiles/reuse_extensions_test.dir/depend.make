# Empty dependencies file for reuse_extensions_test.
# This may be replaced when dependencies are built.
