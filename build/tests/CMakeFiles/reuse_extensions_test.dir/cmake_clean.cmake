file(REMOVE_RECURSE
  "CMakeFiles/reuse_extensions_test.dir/reuse_extensions_test.cc.o"
  "CMakeFiles/reuse_extensions_test.dir/reuse_extensions_test.cc.o.d"
  "reuse_extensions_test"
  "reuse_extensions_test.pdb"
  "reuse_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reuse_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
