
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/reuse_extensions_test.cc" "tests/CMakeFiles/reuse_extensions_test.dir/reuse_extensions_test.cc.o" "gcc" "tests/CMakeFiles/reuse_extensions_test.dir/reuse_extensions_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/adr_strategies.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/adr_models.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/adr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/adr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/adr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/clustering/CMakeFiles/adr_clustering.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/adr_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
