# Empty compiler generated dependencies file for micro_reuse.
# This may be replaced when dependencies are built.
