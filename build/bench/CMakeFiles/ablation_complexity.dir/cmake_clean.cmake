file(REMOVE_RECURSE
  "CMakeFiles/ablation_complexity.dir/ablation_complexity.cc.o"
  "CMakeFiles/ablation_complexity.dir/ablation_complexity.cc.o.d"
  "ablation_complexity"
  "ablation_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
