# Empty compiler generated dependencies file for ablation_scope.
# This may be replaced when dependencies are built.
