file(REMOVE_RECURSE
  "CMakeFiles/table4_training_savings.dir/table4_training_savings.cc.o"
  "CMakeFiles/table4_training_savings.dir/table4_training_savings.cc.o.d"
  "table4_training_savings"
  "table4_training_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_training_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
