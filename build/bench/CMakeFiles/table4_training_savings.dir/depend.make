# Empty dependencies file for table4_training_savings.
# This may be replaced when dependencies are built.
