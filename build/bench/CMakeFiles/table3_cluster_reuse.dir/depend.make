# Empty dependencies file for table3_cluster_reuse.
# This may be replaced when dependencies are built.
