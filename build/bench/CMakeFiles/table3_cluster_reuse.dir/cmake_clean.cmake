file(REMOVE_RECURSE
  "CMakeFiles/table3_cluster_reuse.dir/table3_cluster_reuse.cc.o"
  "CMakeFiles/table3_cluster_reuse.dir/table3_cluster_reuse.cc.o.d"
  "table3_cluster_reuse"
  "table3_cluster_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_cluster_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
