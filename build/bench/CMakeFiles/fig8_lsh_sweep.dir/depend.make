# Empty dependencies file for fig8_lsh_sweep.
# This may be replaced when dependencies are built.
