file(REMOVE_RECURSE
  "CMakeFiles/fig8_lsh_sweep.dir/fig8_lsh_sweep.cc.o"
  "CMakeFiles/fig8_lsh_sweep.dir/fig8_lsh_sweep.cc.o.d"
  "fig8_lsh_sweep"
  "fig8_lsh_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_lsh_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
