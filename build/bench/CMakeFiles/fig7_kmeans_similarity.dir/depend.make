# Empty dependencies file for fig7_kmeans_similarity.
# This may be replaced when dependencies are built.
