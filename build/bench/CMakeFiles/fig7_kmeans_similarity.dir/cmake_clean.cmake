file(REMOVE_RECURSE
  "CMakeFiles/fig7_kmeans_similarity.dir/fig7_kmeans_similarity.cc.o"
  "CMakeFiles/fig7_kmeans_similarity.dir/fig7_kmeans_similarity.cc.o.d"
  "fig7_kmeans_similarity"
  "fig7_kmeans_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_kmeans_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
