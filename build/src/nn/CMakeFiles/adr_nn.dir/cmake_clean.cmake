file(REMOVE_RECURSE
  "CMakeFiles/adr_nn.dir/activations.cc.o"
  "CMakeFiles/adr_nn.dir/activations.cc.o.d"
  "CMakeFiles/adr_nn.dir/checkpoint.cc.o"
  "CMakeFiles/adr_nn.dir/checkpoint.cc.o.d"
  "CMakeFiles/adr_nn.dir/conv2d.cc.o"
  "CMakeFiles/adr_nn.dir/conv2d.cc.o.d"
  "CMakeFiles/adr_nn.dir/dense.cc.o"
  "CMakeFiles/adr_nn.dir/dense.cc.o.d"
  "CMakeFiles/adr_nn.dir/dropout.cc.o"
  "CMakeFiles/adr_nn.dir/dropout.cc.o.d"
  "CMakeFiles/adr_nn.dir/gradient_clip.cc.o"
  "CMakeFiles/adr_nn.dir/gradient_clip.cc.o.d"
  "CMakeFiles/adr_nn.dir/loss.cc.o"
  "CMakeFiles/adr_nn.dir/loss.cc.o.d"
  "CMakeFiles/adr_nn.dir/lr_schedule.cc.o"
  "CMakeFiles/adr_nn.dir/lr_schedule.cc.o.d"
  "CMakeFiles/adr_nn.dir/metrics.cc.o"
  "CMakeFiles/adr_nn.dir/metrics.cc.o.d"
  "CMakeFiles/adr_nn.dir/network.cc.o"
  "CMakeFiles/adr_nn.dir/network.cc.o.d"
  "CMakeFiles/adr_nn.dir/normalization.cc.o"
  "CMakeFiles/adr_nn.dir/normalization.cc.o.d"
  "CMakeFiles/adr_nn.dir/optimizer.cc.o"
  "CMakeFiles/adr_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/adr_nn.dir/pooling.cc.o"
  "CMakeFiles/adr_nn.dir/pooling.cc.o.d"
  "CMakeFiles/adr_nn.dir/trainer.cc.o"
  "CMakeFiles/adr_nn.dir/trainer.cc.o.d"
  "libadr_nn.a"
  "libadr_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adr_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
