# Empty compiler generated dependencies file for adr_nn.
# This may be replaced when dependencies are built.
