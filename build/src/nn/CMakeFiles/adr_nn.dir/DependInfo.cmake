
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cc" "src/nn/CMakeFiles/adr_nn.dir/activations.cc.o" "gcc" "src/nn/CMakeFiles/adr_nn.dir/activations.cc.o.d"
  "/root/repo/src/nn/checkpoint.cc" "src/nn/CMakeFiles/adr_nn.dir/checkpoint.cc.o" "gcc" "src/nn/CMakeFiles/adr_nn.dir/checkpoint.cc.o.d"
  "/root/repo/src/nn/conv2d.cc" "src/nn/CMakeFiles/adr_nn.dir/conv2d.cc.o" "gcc" "src/nn/CMakeFiles/adr_nn.dir/conv2d.cc.o.d"
  "/root/repo/src/nn/dense.cc" "src/nn/CMakeFiles/adr_nn.dir/dense.cc.o" "gcc" "src/nn/CMakeFiles/adr_nn.dir/dense.cc.o.d"
  "/root/repo/src/nn/dropout.cc" "src/nn/CMakeFiles/adr_nn.dir/dropout.cc.o" "gcc" "src/nn/CMakeFiles/adr_nn.dir/dropout.cc.o.d"
  "/root/repo/src/nn/gradient_clip.cc" "src/nn/CMakeFiles/adr_nn.dir/gradient_clip.cc.o" "gcc" "src/nn/CMakeFiles/adr_nn.dir/gradient_clip.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/nn/CMakeFiles/adr_nn.dir/loss.cc.o" "gcc" "src/nn/CMakeFiles/adr_nn.dir/loss.cc.o.d"
  "/root/repo/src/nn/lr_schedule.cc" "src/nn/CMakeFiles/adr_nn.dir/lr_schedule.cc.o" "gcc" "src/nn/CMakeFiles/adr_nn.dir/lr_schedule.cc.o.d"
  "/root/repo/src/nn/metrics.cc" "src/nn/CMakeFiles/adr_nn.dir/metrics.cc.o" "gcc" "src/nn/CMakeFiles/adr_nn.dir/metrics.cc.o.d"
  "/root/repo/src/nn/network.cc" "src/nn/CMakeFiles/adr_nn.dir/network.cc.o" "gcc" "src/nn/CMakeFiles/adr_nn.dir/network.cc.o.d"
  "/root/repo/src/nn/normalization.cc" "src/nn/CMakeFiles/adr_nn.dir/normalization.cc.o" "gcc" "src/nn/CMakeFiles/adr_nn.dir/normalization.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/adr_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/adr_nn.dir/optimizer.cc.o.d"
  "/root/repo/src/nn/pooling.cc" "src/nn/CMakeFiles/adr_nn.dir/pooling.cc.o" "gcc" "src/nn/CMakeFiles/adr_nn.dir/pooling.cc.o.d"
  "/root/repo/src/nn/trainer.cc" "src/nn/CMakeFiles/adr_nn.dir/trainer.cc.o" "gcc" "src/nn/CMakeFiles/adr_nn.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/adr_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/adr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
