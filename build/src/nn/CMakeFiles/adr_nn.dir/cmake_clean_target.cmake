file(REMOVE_RECURSE
  "libadr_nn.a"
)
