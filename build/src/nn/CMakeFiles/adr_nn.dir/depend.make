# Empty dependencies file for adr_nn.
# This may be replaced when dependencies are built.
