# Empty compiler generated dependencies file for adr_models.
# This may be replaced when dependencies are built.
