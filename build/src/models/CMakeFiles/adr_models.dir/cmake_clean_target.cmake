file(REMOVE_RECURSE
  "libadr_models.a"
)
