file(REMOVE_RECURSE
  "CMakeFiles/adr_models.dir/models.cc.o"
  "CMakeFiles/adr_models.dir/models.cc.o.d"
  "libadr_models.a"
  "libadr_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adr_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
