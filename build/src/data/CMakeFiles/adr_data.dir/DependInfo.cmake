
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/augment.cc" "src/data/CMakeFiles/adr_data.dir/augment.cc.o" "gcc" "src/data/CMakeFiles/adr_data.dir/augment.cc.o.d"
  "/root/repo/src/data/dataloader.cc" "src/data/CMakeFiles/adr_data.dir/dataloader.cc.o" "gcc" "src/data/CMakeFiles/adr_data.dir/dataloader.cc.o.d"
  "/root/repo/src/data/synthetic_images.cc" "src/data/CMakeFiles/adr_data.dir/synthetic_images.cc.o" "gcc" "src/data/CMakeFiles/adr_data.dir/synthetic_images.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/adr_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
