file(REMOVE_RECURSE
  "CMakeFiles/adr_data.dir/augment.cc.o"
  "CMakeFiles/adr_data.dir/augment.cc.o.d"
  "CMakeFiles/adr_data.dir/dataloader.cc.o"
  "CMakeFiles/adr_data.dir/dataloader.cc.o.d"
  "CMakeFiles/adr_data.dir/synthetic_images.cc.o"
  "CMakeFiles/adr_data.dir/synthetic_images.cc.o.d"
  "libadr_data.a"
  "libadr_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adr_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
