file(REMOVE_RECURSE
  "libadr_data.a"
)
