# Empty dependencies file for adr_data.
# This may be replaced when dependencies are built.
