file(REMOVE_RECURSE
  "CMakeFiles/adr_util.dir/csv_writer.cc.o"
  "CMakeFiles/adr_util.dir/csv_writer.cc.o.d"
  "CMakeFiles/adr_util.dir/flags.cc.o"
  "CMakeFiles/adr_util.dir/flags.cc.o.d"
  "CMakeFiles/adr_util.dir/logging.cc.o"
  "CMakeFiles/adr_util.dir/logging.cc.o.d"
  "CMakeFiles/adr_util.dir/rng.cc.o"
  "CMakeFiles/adr_util.dir/rng.cc.o.d"
  "CMakeFiles/adr_util.dir/serialize.cc.o"
  "CMakeFiles/adr_util.dir/serialize.cc.o.d"
  "CMakeFiles/adr_util.dir/status.cc.o"
  "CMakeFiles/adr_util.dir/status.cc.o.d"
  "CMakeFiles/adr_util.dir/string_util.cc.o"
  "CMakeFiles/adr_util.dir/string_util.cc.o.d"
  "libadr_util.a"
  "libadr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
