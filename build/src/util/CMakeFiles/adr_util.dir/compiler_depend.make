# Empty compiler generated dependencies file for adr_util.
# This may be replaced when dependencies are built.
