file(REMOVE_RECURSE
  "libadr_tensor.a"
)
