# Empty compiler generated dependencies file for adr_tensor.
# This may be replaced when dependencies are built.
