file(REMOVE_RECURSE
  "CMakeFiles/adr_tensor.dir/gemm.cc.o"
  "CMakeFiles/adr_tensor.dir/gemm.cc.o.d"
  "CMakeFiles/adr_tensor.dir/im2col.cc.o"
  "CMakeFiles/adr_tensor.dir/im2col.cc.o.d"
  "CMakeFiles/adr_tensor.dir/shape.cc.o"
  "CMakeFiles/adr_tensor.dir/shape.cc.o.d"
  "CMakeFiles/adr_tensor.dir/tensor.cc.o"
  "CMakeFiles/adr_tensor.dir/tensor.cc.o.d"
  "CMakeFiles/adr_tensor.dir/tensor_ops.cc.o"
  "CMakeFiles/adr_tensor.dir/tensor_ops.cc.o.d"
  "libadr_tensor.a"
  "libadr_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adr_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
