file(REMOVE_RECURSE
  "CMakeFiles/adr_strategies.dir/similarity_study.cc.o"
  "CMakeFiles/adr_strategies.dir/similarity_study.cc.o.d"
  "CMakeFiles/adr_strategies.dir/strategies.cc.o"
  "CMakeFiles/adr_strategies.dir/strategies.cc.o.d"
  "libadr_strategies.a"
  "libadr_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adr_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
