file(REMOVE_RECURSE
  "libadr_strategies.a"
)
