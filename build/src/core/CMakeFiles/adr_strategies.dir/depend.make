# Empty dependencies file for adr_strategies.
# This may be replaced when dependencies are built.
