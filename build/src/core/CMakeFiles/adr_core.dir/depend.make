# Empty dependencies file for adr_core.
# This may be replaced when dependencies are built.
