file(REMOVE_RECURSE
  "CMakeFiles/adr_core.dir/adaptive_controller.cc.o"
  "CMakeFiles/adr_core.dir/adaptive_controller.cc.o.d"
  "CMakeFiles/adr_core.dir/clustered_matmul.cc.o"
  "CMakeFiles/adr_core.dir/clustered_matmul.cc.o.d"
  "CMakeFiles/adr_core.dir/complexity_model.cc.o"
  "CMakeFiles/adr_core.dir/complexity_model.cc.o.d"
  "CMakeFiles/adr_core.dir/parameter_schedule.cc.o"
  "CMakeFiles/adr_core.dir/parameter_schedule.cc.o.d"
  "CMakeFiles/adr_core.dir/reuse_backward.cc.o"
  "CMakeFiles/adr_core.dir/reuse_backward.cc.o.d"
  "CMakeFiles/adr_core.dir/reuse_config.cc.o"
  "CMakeFiles/adr_core.dir/reuse_config.cc.o.d"
  "CMakeFiles/adr_core.dir/reuse_conv2d.cc.o"
  "CMakeFiles/adr_core.dir/reuse_conv2d.cc.o.d"
  "CMakeFiles/adr_core.dir/reuse_report.cc.o"
  "CMakeFiles/adr_core.dir/reuse_report.cc.o.d"
  "CMakeFiles/adr_core.dir/subvector_clustering.cc.o"
  "CMakeFiles/adr_core.dir/subvector_clustering.cc.o.d"
  "libadr_core.a"
  "libadr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
