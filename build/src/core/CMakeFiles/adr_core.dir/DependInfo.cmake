
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_controller.cc" "src/core/CMakeFiles/adr_core.dir/adaptive_controller.cc.o" "gcc" "src/core/CMakeFiles/adr_core.dir/adaptive_controller.cc.o.d"
  "/root/repo/src/core/clustered_matmul.cc" "src/core/CMakeFiles/adr_core.dir/clustered_matmul.cc.o" "gcc" "src/core/CMakeFiles/adr_core.dir/clustered_matmul.cc.o.d"
  "/root/repo/src/core/complexity_model.cc" "src/core/CMakeFiles/adr_core.dir/complexity_model.cc.o" "gcc" "src/core/CMakeFiles/adr_core.dir/complexity_model.cc.o.d"
  "/root/repo/src/core/parameter_schedule.cc" "src/core/CMakeFiles/adr_core.dir/parameter_schedule.cc.o" "gcc" "src/core/CMakeFiles/adr_core.dir/parameter_schedule.cc.o.d"
  "/root/repo/src/core/reuse_backward.cc" "src/core/CMakeFiles/adr_core.dir/reuse_backward.cc.o" "gcc" "src/core/CMakeFiles/adr_core.dir/reuse_backward.cc.o.d"
  "/root/repo/src/core/reuse_config.cc" "src/core/CMakeFiles/adr_core.dir/reuse_config.cc.o" "gcc" "src/core/CMakeFiles/adr_core.dir/reuse_config.cc.o.d"
  "/root/repo/src/core/reuse_conv2d.cc" "src/core/CMakeFiles/adr_core.dir/reuse_conv2d.cc.o" "gcc" "src/core/CMakeFiles/adr_core.dir/reuse_conv2d.cc.o.d"
  "/root/repo/src/core/reuse_report.cc" "src/core/CMakeFiles/adr_core.dir/reuse_report.cc.o" "gcc" "src/core/CMakeFiles/adr_core.dir/reuse_report.cc.o.d"
  "/root/repo/src/core/subvector_clustering.cc" "src/core/CMakeFiles/adr_core.dir/subvector_clustering.cc.o" "gcc" "src/core/CMakeFiles/adr_core.dir/subvector_clustering.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/clustering/CMakeFiles/adr_clustering.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/adr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/adr_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/adr_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
