file(REMOVE_RECURSE
  "libadr_core.a"
)
