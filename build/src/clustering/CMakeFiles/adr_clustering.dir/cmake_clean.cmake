file(REMOVE_RECURSE
  "CMakeFiles/adr_clustering.dir/cluster_stats.cc.o"
  "CMakeFiles/adr_clustering.dir/cluster_stats.cc.o.d"
  "CMakeFiles/adr_clustering.dir/clustering.cc.o"
  "CMakeFiles/adr_clustering.dir/clustering.cc.o.d"
  "CMakeFiles/adr_clustering.dir/exact_dedup.cc.o"
  "CMakeFiles/adr_clustering.dir/exact_dedup.cc.o.d"
  "CMakeFiles/adr_clustering.dir/kmeans.cc.o"
  "CMakeFiles/adr_clustering.dir/kmeans.cc.o.d"
  "CMakeFiles/adr_clustering.dir/lsh.cc.o"
  "CMakeFiles/adr_clustering.dir/lsh.cc.o.d"
  "CMakeFiles/adr_clustering.dir/normalize.cc.o"
  "CMakeFiles/adr_clustering.dir/normalize.cc.o.d"
  "libadr_clustering.a"
  "libadr_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adr_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
