
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clustering/cluster_stats.cc" "src/clustering/CMakeFiles/adr_clustering.dir/cluster_stats.cc.o" "gcc" "src/clustering/CMakeFiles/adr_clustering.dir/cluster_stats.cc.o.d"
  "/root/repo/src/clustering/clustering.cc" "src/clustering/CMakeFiles/adr_clustering.dir/clustering.cc.o" "gcc" "src/clustering/CMakeFiles/adr_clustering.dir/clustering.cc.o.d"
  "/root/repo/src/clustering/exact_dedup.cc" "src/clustering/CMakeFiles/adr_clustering.dir/exact_dedup.cc.o" "gcc" "src/clustering/CMakeFiles/adr_clustering.dir/exact_dedup.cc.o.d"
  "/root/repo/src/clustering/kmeans.cc" "src/clustering/CMakeFiles/adr_clustering.dir/kmeans.cc.o" "gcc" "src/clustering/CMakeFiles/adr_clustering.dir/kmeans.cc.o.d"
  "/root/repo/src/clustering/lsh.cc" "src/clustering/CMakeFiles/adr_clustering.dir/lsh.cc.o" "gcc" "src/clustering/CMakeFiles/adr_clustering.dir/lsh.cc.o.d"
  "/root/repo/src/clustering/normalize.cc" "src/clustering/CMakeFiles/adr_clustering.dir/normalize.cc.o" "gcc" "src/clustering/CMakeFiles/adr_clustering.dir/normalize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/adr_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/adr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
