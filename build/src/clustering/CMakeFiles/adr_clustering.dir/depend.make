# Empty dependencies file for adr_clustering.
# This may be replaced when dependencies are built.
