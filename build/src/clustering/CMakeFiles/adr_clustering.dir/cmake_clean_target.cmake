file(REMOVE_RECURSE
  "libadr_clustering.a"
)
