#!/usr/bin/env bash
# Tier-1 verification: build, run the test suite at each thread count in
# $ADR_TIER1_THREADS (default "1 4"), then exercise the concurrency-heavy
# tests under ThreadSanitizer.
#
# The TSan test list lives in scripts/tsan_tests.txt — the same file the
# tsan_suite CMake target and CI read, so the three can never drift.
#
# Usage: scripts/tier1.sh [--no-tsan | --tsan-only]

set -euo pipefail
cd "$(dirname "$0")/.."

RUN_BUILD=1
RUN_TSAN=1
case "${1:-}" in
  --no-tsan) RUN_TSAN=0 ;;
  --tsan-only) RUN_BUILD=0 ;;
  "") ;;
  *)
    echo "usage: scripts/tier1.sh [--no-tsan | --tsan-only]" >&2
    exit 2
    ;;
esac

# Strip comments/blanks from the shared TSan test list.
mapfile -t TSAN_TESTS < <(sed -e 's/#.*//' -e 's/[[:space:]]*$//' \
                              -e '/^$/d' scripts/tsan_tests.txt)

if [[ "$RUN_BUILD" == "1" ]]; then
  echo "== configure + build =="
  cmake -B build -S . >/dev/null
  cmake --build build -j

  for threads in ${ADR_TIER1_THREADS:-1 4}; do
    echo "== ctest, ADR_THREADS=$threads =="
    ADR_THREADS="$threads" ctest --test-dir build --output-on-failure -j
  done
fi

if [[ "$RUN_TSAN" == "1" ]]; then
  echo "== ThreadSanitizer: ${TSAN_TESTS[*]} =="
  # Configure is cheap and reuses the CMake cache; the build tree's object
  # files survive across runs, so only changed sources recompile.
  cmake -B build-tsan -S . -DADR_TSAN=ON >/dev/null
  cmake --build build-tsan -j --target "${TSAN_TESTS[@]}"
  for t in "${TSAN_TESTS[@]}"; do
    echo "-- tsan: $t"
    ADR_THREADS=4 "./build-tsan/tests/$t" >/dev/null
  done
fi

echo "tier1: OK"
