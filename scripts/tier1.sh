#!/usr/bin/env bash
# Tier-1 verification: build, run the test suite at 1 and 4 worker
# threads, then exercise the concurrency-heavy tests under
# ThreadSanitizer.
#
# Usage: scripts/tier1.sh [--no-tsan]

set -euo pipefail
cd "$(dirname "$0")/.."

RUN_TSAN=1
if [[ "${1:-}" == "--no-tsan" ]]; then
  RUN_TSAN=0
fi

echo "== configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j

echo "== ctest, ADR_THREADS=1 =="
ADR_THREADS=1 ctest --test-dir build --output-on-failure -j

echo "== ctest, ADR_THREADS=4 =="
ADR_THREADS=4 ctest --test-dir build --output-on-failure -j

if [[ "$RUN_TSAN" == "1" ]]; then
  echo "== ThreadSanitizer: clustering + matmul + gemm + parallel =="
  cmake -B build-tsan -S . -DADR_TSAN=ON >/dev/null
  cmake --build build-tsan -j --target \
    parallel_test parallel_determinism_test gemm_test clustering_test \
    clustered_matmul_test
  for t in parallel_test parallel_determinism_test gemm_test \
           clustering_test clustered_matmul_test; do
    echo "-- tsan: $t"
    ADR_THREADS=4 "./build-tsan/tests/$t" >/dev/null
  done
fi

echo "tier1: OK"
