#!/usr/bin/env bash
# Bench smoke run: execute both micro bench suites briefly and emit their
# schema-versioned JSON files (BENCH_micro_kernels.json,
# BENCH_micro_reuse.json) into $ADR_BENCH_JSON_DIR (default: repo root).
#
# This is the single entry point for producing bench JSON — the checked-in
# baselines at the repo root and CI's fresh run both come from here, so
# benchmark selection and flags cannot drift between the two.
#
# Usage: scripts/bench_smoke.sh [BUILD_DIR]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
# Keep the run short: the point is the JSON plumbing and a coarse
# trajectory, not publication-grade numbers.
MIN_TIME="${ADR_BENCH_MIN_TIME:-0.01}"
FILTER="${ADR_BENCH_FILTER:-threads:1}"

for suite in micro_kernels micro_reuse; do
  bin="$BUILD_DIR/bench/$suite"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built (cmake --build $BUILD_DIR --target $suite)" >&2
    exit 2
  fi
  echo "== $suite (filter=$FILTER, min_time=$MIN_TIME) =="
  "$bin" --benchmark_filter="$FILTER" --benchmark_min_time="$MIN_TIME"
done
