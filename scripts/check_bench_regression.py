#!/usr/bin/env python3
"""Compare two BENCH_*.json files and flag per-benchmark regressions.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json \
        [--threshold 0.15] [--metric cpu_time_ns]

Both files must be schema_version 1 documents written by BenchJsonEmitter:

    {"schema_version": 1, "suite": "...", "records": [
        {"name": "...", "iterations": N, "real_time_ns": ...,
         "cpu_time_ns": ..., "items_per_second": ...}, ...]}

Records are matched by name. A record regresses when its metric grew by
more than `threshold` relative to the baseline (times: bigger is worse).
New and vanished benchmarks are reported but are not failures — renames
happen; the threshold guards the ones that still match.

Exit status: 0 when no matched record regresses, 1 otherwise, 2 on bad
input. CI runs this report-only (continue-on-error) because shared
runners are noisy; locally it is a quick sanity diff between two runs.
"""

from __future__ import annotations

import argparse
import json
import sys

SCHEMA_VERSION = 1
TIME_METRICS = ("cpu_time_ns", "real_time_ns")
RATE_METRICS = ("items_per_second",)


class BenchFileError(Exception):
    """Raised when an input file is not a valid bench document."""


def load_records(path):
    """Returns {name: record} from a BenchJsonEmitter document."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise BenchFileError(f"{path}: {e}") from e
    if not isinstance(doc, dict):
        raise BenchFileError(f"{path}: top level is not an object")
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        raise BenchFileError(
            f"{path}: schema_version {version!r}, expected {SCHEMA_VERSION}"
        )
    records = doc.get("records")
    if not isinstance(records, list):
        raise BenchFileError(f"{path}: 'records' is not a list")
    by_name = {}
    for record in records:
        name = record.get("name")
        if not isinstance(name, str) or not name:
            raise BenchFileError(f"{path}: record without a name: {record!r}")
        by_name[name] = record
    return by_name


def relative_change(baseline, current, metric):
    """Signed relative change where positive always means 'got worse'."""
    if baseline <= 0:
        return 0.0
    change = (current - baseline) / baseline
    if metric in RATE_METRICS:
        change = -change  # lower throughput is worse
    return change


def compare(baseline, current, metric, threshold):
    """Returns (regressions, improvements, added, removed) name lists.

    `regressions` entries are (name, baseline_value, current_value,
    change) tuples; `improvements` likewise for changes beyond the
    threshold in the good direction.
    """
    regressions = []
    improvements = []
    for name in sorted(set(baseline) & set(current)):
        base_value = float(baseline[name].get(metric, 0.0))
        cur_value = float(current[name].get(metric, 0.0))
        change = relative_change(base_value, cur_value, metric)
        if change > threshold:
            regressions.append((name, base_value, cur_value, change))
        elif change < -threshold:
            improvements.append((name, base_value, cur_value, change))
    added = sorted(set(current) - set(baseline))
    removed = sorted(set(baseline) - set(current))
    return regressions, improvements, added, removed


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json files with a noise threshold."
    )
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("current", help="freshly generated BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="relative change tolerated before flagging (default 0.15)",
    )
    parser.add_argument(
        "--metric",
        default="cpu_time_ns",
        choices=TIME_METRICS + RATE_METRICS,
        help="record field to compare (default cpu_time_ns)",
    )
    args = parser.parse_args(argv)
    if args.threshold < 0:
        parser.error("--threshold must be non-negative")

    try:
        baseline = load_records(args.baseline)
        current = load_records(args.current)
    except BenchFileError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    regressions, improvements, added, removed = compare(
        baseline, current, args.metric, args.threshold
    )

    matched = len(set(baseline) & set(current))
    print(
        f"compared {matched} benchmark(s) on {args.metric} "
        f"(threshold {args.threshold:+.0%})"
    )
    for name, base_value, cur_value, change in regressions:
        print(
            f"  REGRESSION {name}: {base_value:.1f} -> {cur_value:.1f} "
            f"({change:+.1%})"
        )
    for name, base_value, cur_value, change in improvements:
        print(
            f"  improvement {name}: {base_value:.1f} -> {cur_value:.1f} "
            f"({change:+.1%})"
        )
    for name in added:
        print(f"  new benchmark (not compared): {name}")
    for name in removed:
        print(f"  missing from current run: {name}")

    if regressions:
        print(f"{len(regressions)} regression(s) found")
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
