#!/usr/bin/env python3
"""Unit tests for check_bench_regression.py (threshold and schema logic).

Run directly or via ctest (registered as check_bench_regression_test).
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import check_bench_regression as cbr


def make_doc(records, schema_version=1, suite="micro_kernels"):
    return {
        "schema_version": schema_version,
        "suite": suite,
        "records": records,
    }


def make_record(name, cpu_ns, items_per_second=0.0):
    return {
        "name": name,
        "iterations": 100,
        "real_time_ns": cpu_ns * 1.05,
        "cpu_time_ns": cpu_ns,
        "items_per_second": items_per_second,
    }


class TempBenchFile:
    """Writes a doc to a temp file and cleans it up."""

    def __init__(self, doc):
        self.doc = doc
        self.path = None

    def __enter__(self):
        fd, self.path = tempfile.mkstemp(suffix=".json")
        with os.fdopen(fd, "w") as f:
            json.dump(self.doc, f)
        return self.path

    def __exit__(self, *exc):
        os.unlink(self.path)


class RelativeChangeTest(unittest.TestCase):
    def test_time_metric_growth_is_positive(self):
        self.assertAlmostEqual(
            cbr.relative_change(100.0, 120.0, "cpu_time_ns"), 0.2
        )

    def test_time_metric_shrink_is_negative(self):
        self.assertAlmostEqual(
            cbr.relative_change(100.0, 80.0, "cpu_time_ns"), -0.2
        )

    def test_rate_metric_is_inverted(self):
        # Throughput dropping by 20% is a +0.2 (worse) change.
        self.assertAlmostEqual(
            cbr.relative_change(100.0, 80.0, "items_per_second"), 0.2
        )

    def test_zero_baseline_never_flags(self):
        self.assertEqual(cbr.relative_change(0.0, 50.0, "cpu_time_ns"), 0.0)


class CompareTest(unittest.TestCase):
    def run_compare(self, base_ns, cur_ns, threshold):
        baseline = {"BM_X": make_record("BM_X", base_ns)}
        current = {"BM_X": make_record("BM_X", cur_ns)}
        return cbr.compare(baseline, current, "cpu_time_ns", threshold)

    def test_change_within_threshold_passes(self):
        regressions, improvements, _, _ = self.run_compare(100.0, 114.0, 0.15)
        self.assertEqual(regressions, [])
        self.assertEqual(improvements, [])

    def test_change_beyond_threshold_regresses(self):
        regressions, _, _, _ = self.run_compare(100.0, 116.0, 0.15)
        self.assertEqual(len(regressions), 1)
        name, base_value, cur_value, change = regressions[0]
        self.assertEqual(name, "BM_X")
        self.assertAlmostEqual(change, 0.16)

    def test_exactly_threshold_passes(self):
        # Strictly-greater comparison: the boundary itself is tolerated.
        regressions, _, _, _ = self.run_compare(100.0, 115.0, 0.15)
        self.assertEqual(regressions, [])

    def test_large_improvement_is_reported_not_failed(self):
        regressions, improvements, _, _ = self.run_compare(100.0, 50.0, 0.15)
        self.assertEqual(regressions, [])
        self.assertEqual(len(improvements), 1)

    def test_added_and_removed_are_tracked(self):
        baseline = {"BM_Old": make_record("BM_Old", 10.0)}
        current = {"BM_New": make_record("BM_New", 10.0)}
        regressions, _, added, removed = cbr.compare(
            baseline, current, "cpu_time_ns", 0.15
        )
        self.assertEqual(regressions, [])
        self.assertEqual(added, ["BM_New"])
        self.assertEqual(removed, ["BM_Old"])


class LoadRecordsTest(unittest.TestCase):
    def test_valid_file_loads(self):
        with TempBenchFile(make_doc([make_record("BM_A", 1.0)])) as path:
            records = cbr.load_records(path)
        self.assertIn("BM_A", records)

    def test_schema_mismatch_rejected(self):
        with TempBenchFile(make_doc([], schema_version=99)) as path:
            with self.assertRaises(cbr.BenchFileError):
                cbr.load_records(path)

    def test_nameless_record_rejected(self):
        with TempBenchFile(make_doc([{"iterations": 1}])) as path:
            with self.assertRaises(cbr.BenchFileError):
                cbr.load_records(path)

    def test_garbage_json_rejected(self):
        fd, path = tempfile.mkstemp(suffix=".json")
        with os.fdopen(fd, "w") as f:
            f.write("not json{")
        try:
            with self.assertRaises(cbr.BenchFileError):
                cbr.load_records(path)
        finally:
            os.unlink(path)


class MainExitCodeTest(unittest.TestCase):
    def test_no_regression_exits_zero(self):
        doc = make_doc([make_record("BM_A", 100.0)])
        with TempBenchFile(doc) as base, TempBenchFile(doc) as cur:
            self.assertEqual(cbr.main([base, cur]), 0)

    def test_regression_exits_one(self):
        base_doc = make_doc([make_record("BM_A", 100.0)])
        cur_doc = make_doc([make_record("BM_A", 200.0)])
        with TempBenchFile(base_doc) as base, TempBenchFile(cur_doc) as cur:
            self.assertEqual(cbr.main([base, cur]), 1)

    def test_loose_threshold_tolerates_regression(self):
        base_doc = make_doc([make_record("BM_A", 100.0)])
        cur_doc = make_doc([make_record("BM_A", 200.0)])
        with TempBenchFile(base_doc) as base, TempBenchFile(cur_doc) as cur:
            self.assertEqual(cbr.main([base, cur, "--threshold", "1.5"]), 0)

    def test_bad_file_exits_two(self):
        doc = make_doc([])
        with TempBenchFile(doc) as base:
            self.assertEqual(cbr.main([base, "/nonexistent.json"]), 2)

    def test_rate_metric_regression(self):
        base_doc = make_doc([make_record("BM_A", 100.0, items_per_second=1e6)])
        cur_doc = make_doc([make_record("BM_A", 100.0, items_per_second=5e5)])
        with TempBenchFile(base_doc) as base, TempBenchFile(cur_doc) as cur:
            self.assertEqual(
                cbr.main([base, cur, "--metric", "items_per_second"]), 1
            )


if __name__ == "__main__":
    unittest.main()
