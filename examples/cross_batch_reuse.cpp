// Cross-batch cluster reuse (Algorithm 1) in action: the same layer run
// over a stream of batches with CR on. Watch the per-batch reuse rate R
// climb as the signature cache warms and computation drains away.
//
// Usage: ./build/examples/cross_batch_reuse [--metrics-out m.json]
//                                           [--trace-out t.json]
//                                           [--cache-max-entries N]
//                                           [--cache-max-bytes B]
//
// The cache budgets bound the signature cache (0 = unbounded, the
// paper's Algorithm 1); entries beyond the budget are reclaimed by
// second-chance eviction, visible in the evictions column.

#include <cstdio>
#include <string>

#include "core/reuse_conv2d.h"
#include "data/dataloader.h"
#include "data/synthetic_images.h"
#include "util/flags.h"
#include "util/metrics_registry.h"
#include "util/rng.h"
#include "util/trace.h"

int main(int argc, char** argv) {
  using namespace adr;

  std::string metrics_out;
  std::string trace_out;
  int64_t cache_max_entries = 0;
  int64_t cache_max_bytes = 0;
  FlagSet flags;
  flags.AddString("metrics-out", &metrics_out,
                  "write a MetricsRegistry JSON dump to this path");
  flags.AddString("trace-out", &trace_out,
                  "write a Chrome/Perfetto trace JSON to this path");
  flags.AddInt64("cache-max-entries", &cache_max_entries,
                 "cluster-reuse cache entry budget (0 = unbounded)");
  flags.AddInt64("cache-max-bytes", &cache_max_bytes,
                 "cluster-reuse cache byte budget (0 = unbounded)");
  if (const Status status = flags.Parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 1;
  }
  if (!trace_out.empty()) {
    Tracer::Global().SetCurrentThreadName("main");
    Tracer::Global().SetEnabled(true);
  }

  SyntheticImageConfig data_config =
      SyntheticImageConfig::CifarLike(512, 77);
  data_config.num_classes = 4;
  data_config.height = data_config.width = 16;
  auto dataset = SyntheticImageDataset::Create(data_config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  // A single conv layer with cluster reuse: signature cache keyed by the
  // LSH bit-vector, shared across all batches (paper Algorithm 1).
  Conv2dConfig conv;
  conv.in_channels = 3;
  conv.out_channels = 16;
  conv.kernel = 5;
  conv.stride = 1;
  conv.pad = 2;
  conv.in_height = 16;
  conv.in_width = 16;
  auto reuse = ReuseConfigBuilder()
                   .SubVectorLength(15)
                   .NumHashes(12)
                   .Scope(ClusterScope::kAcrossBatch)  // implies CR = 1
                   .Build();
  if (!reuse.ok()) {
    std::fprintf(stderr, "%s\n", reuse.status().ToString().c_str());
    return 1;
  }
  Rng rng(1);
  ReuseConv2d layer("conv1", conv, *reuse, &rng);
  layer.SetCacheBudgets(cache_max_entries, cache_max_bytes);

  DataLoader loader(&*dataset, 8, /*shuffle=*/true, 9);
  Batch batch;
  std::printf("%-7s %-12s %-14s %-12s %-14s %-14s\n", "batch", "R (batch)",
              "cache entries", "evictions", "resident KiB",
              "MACs saved so far");
  for (int b = 1; b <= 24; ++b) {
    loader.Next(&batch);
    layer.Forward(batch.images, /*training=*/false);
    std::printf("%-7d %-12.3f %-14lld %-12lld %-14.1f %.1f%%\n", b,
                layer.stats().last_batch_reuse_rate,
                static_cast<long long>(layer.cache()->TotalEntries()),
                static_cast<long long>(layer.cache()->evictions()),
                static_cast<double>(layer.cache()->ResidentBytes()) / 1024.0,
                layer.stats().MacsSavedFraction() * 100.0);
  }
  std::printf(
      "\nCumulative cluster reuse rate: %.3f (paper reports R -> ~0.98 "
      "after ~20 batches on CifarNet)\n",
      layer.cache()->ReuseRate());

  if (!metrics_out.empty()) {
    if (const Status status =
            MetricsRegistry::Global().WriteJsonFile(metrics_out);
        !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    Tracer::Global().SetEnabled(false);
    if (const Status status = Tracer::Global().WriteJsonFile(trace_out);
        !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("trace written to %s\n", trace_out.c_str());
  }
  return 0;
}
