// Cross-batch cluster reuse (Algorithm 1) in action: the same layer run
// over a stream of batches with CR on. Watch the per-batch reuse rate R
// climb as the signature cache warms and computation drains away.
//
// Usage: ./build/examples/cross_batch_reuse

#include <cstdio>

#include "core/reuse_conv2d.h"
#include "data/dataloader.h"
#include "data/synthetic_images.h"
#include "util/rng.h"

int main() {
  using namespace adr;

  SyntheticImageConfig data_config =
      SyntheticImageConfig::CifarLike(512, 77);
  data_config.num_classes = 4;
  data_config.height = data_config.width = 16;
  auto dataset = SyntheticImageDataset::Create(data_config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  // A single conv layer with cluster reuse: signature cache keyed by the
  // LSH bit-vector, shared across all batches (paper Algorithm 1).
  Conv2dConfig conv;
  conv.in_channels = 3;
  conv.out_channels = 16;
  conv.kernel = 5;
  conv.stride = 1;
  conv.pad = 2;
  conv.in_height = 16;
  conv.in_width = 16;
  auto reuse = ReuseConfigBuilder()
                   .SubVectorLength(15)
                   .NumHashes(12)
                   .Scope(ClusterScope::kAcrossBatch)  // implies CR = 1
                   .Build();
  if (!reuse.ok()) {
    std::fprintf(stderr, "%s\n", reuse.status().ToString().c_str());
    return 1;
  }
  Rng rng(1);
  ReuseConv2d layer("conv1", conv, *reuse, &rng);

  DataLoader loader(&*dataset, 8, /*shuffle=*/true, 9);
  Batch batch;
  std::printf("%-7s %-12s %-14s %-14s\n", "batch", "R (batch)",
              "cache entries", "MACs saved so far");
  for (int b = 1; b <= 24; ++b) {
    loader.Next(&batch);
    layer.Forward(batch.images, /*training=*/false);
    std::printf("%-7d %-12.3f %-14lld %.1f%%\n", b,
                layer.stats().last_batch_reuse_rate,
                static_cast<long long>(layer.cache()->TotalEntries()),
                layer.stats().MacsSavedFraction() * 100.0);
  }
  std::printf(
      "\nCumulative cluster reuse rate: %.3f (paper reports R -> ~0.98 "
      "after ~20 batches on CifarNet)\n",
      layer.cache()->ReuseRate());
  return 0;
}
