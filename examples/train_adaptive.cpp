// Strategy 2 end to end: train CifarNet under the adaptive {L, H}
// schedule and compare against the dense baseline — the paper's headline
// use case (Section V-A / Table IV).
//
// Usage: ./build/examples/train_adaptive [--model cifarnet|alexnet|vgg19]
//                                        [--threads T]
//                                        [--metrics-out m.json]
//                                        [--trace-out t.json]

#include <cstdio>
#include <cstring>

#include "core/strategies.h"
#include "data/synthetic_images.h"
#include "util/flags.h"
#include "util/metrics_registry.h"
#include "util/parallel.h"
#include "util/trace.h"

int main(int argc, char** argv) {
  using namespace adr;

  std::string model_name = "cifarnet";
  int64_t threads = 0;
  std::string metrics_out;
  std::string trace_out;
  FlagSet flags;
  flags.AddString("model", &model_name, "cifarnet, alexnet, or vgg19");
  flags.AddInt64("threads", &threads,
                 "worker threads (0 = ADR_THREADS or hardware concurrency)");
  flags.AddString("metrics-out", &metrics_out,
                  "write a MetricsRegistry JSON dump to this path");
  flags.AddString("trace-out", &trace_out,
                  "write a Chrome/Perfetto trace JSON to this path");
  if (const Status status = flags.Parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 1;
  }
  if (threads > 0) ThreadPool::SetGlobalThreads(static_cast<int>(threads));
  std::printf("using %d thread(s)\n", ThreadPool::GlobalThreads());
  if (!trace_out.empty()) {
    Tracer::Global().SetCurrentThreadName("main");
    Tracer::Global().SetEnabled(true);
  }

  SyntheticImageConfig data_config = SyntheticImageConfig::CifarLike(
      /*num_samples=*/512, /*seed=*/11);
  data_config.num_classes = 4;
  ModelOptions model_options;
  model_options.num_classes = 4;
  model_options.fc_width = 0.1;

  if (model_name == "cifarnet") {
    data_config.height = data_config.width = 16;
    model_options.input_size = 16;
    model_options.width = 0.25;
  } else if (model_name == "alexnet") {
    data_config.height = data_config.width = 67;
    data_config.max_translation = 6;
    data_config.num_samples = 256;
    model_options.input_size = 67;
    model_options.width = 0.125;
    model_options.fc_width = 0.02;
  } else if (model_name == "vgg19") {
    data_config.height = data_config.width = 32;
    data_config.num_samples = 256;
    model_options.input_size = 32;
    model_options.width = 0.125;
    model_options.fc_width = 0.01;
  } else {
    std::fprintf(stderr, "unknown model %s\n", model_name.c_str());
    return 1;
  }

  auto dataset = SyntheticImageDataset::Create(data_config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  TrainingRunOptions run;
  run.batch_size = 16;
  run.learning_rate = 0.002f;
  run.target_accuracy = 0.9;
  run.max_steps = 400;
  run.eval_every = 20;
  run.eval_samples = 128;
  if (model_name != "cifarnet") {
    run.batch_size = 8;
    run.target_accuracy = 0.85;
    run.max_steps = 250;
    run.eval_samples = 64;
  }

  std::printf("=== %s: dense baseline ===\n", model_name.c_str());
  auto baseline = RunTrainingStrategy(StrategyKind::kBaseline, model_name,
                                      model_options, *dataset, run);
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
    return 1;
  }
  std::printf("steps %lld  time %.2fs  accuracy %.3f\n\n",
              static_cast<long long>(baseline->steps_run),
              baseline->wall_seconds, baseline->final_accuracy);

  std::printf("=== %s: Strategy 2 (adaptive deep reuse) ===\n",
              model_name.c_str());
  auto adaptive = RunTrainingStrategy(StrategyKind::kAdaptive, model_name,
                                      model_options, *dataset, run);
  if (!adaptive.ok()) {
    std::fprintf(stderr, "%s\n", adaptive.status().ToString().c_str());
    return 1;
  }
  std::printf("steps %lld  time %.2fs  accuracy %.3f  stages %d\n",
              static_cast<long long>(adaptive->steps_run),
              adaptive->wall_seconds, adaptive->final_accuracy,
              adaptive->stages_used);
  std::printf("conv MACs saved: %.1f%%\n",
              adaptive->MacsSavedFraction() * 100.0);
  if (baseline->wall_seconds > 0.0) {
    std::printf("training time saved: %.1f%%\n",
                (1.0 - adaptive->wall_seconds / baseline->wall_seconds) *
                    100.0);
  }

  std::printf("\naccuracy trace (step, accuracy):\n");
  for (const auto& [step, accuracy] : adaptive->eval_history) {
    std::printf("  %4lld  %.3f\n", static_cast<long long>(step), accuracy);
  }

  if (!metrics_out.empty()) {
    if (const Status status =
            MetricsRegistry::Global().WriteJsonFile(metrics_out);
        !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    Tracer::Global().SetEnabled(false);
    if (const Status status = Tracer::Global().WriteJsonFile(trace_out);
        !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("trace written to %s\n", trace_out.c_str());
  }
  return 0;
}
