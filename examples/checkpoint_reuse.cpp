// Train dense, checkpoint, restore into a reuse-enabled twin, and compare
// inference cost — the deployment story: models trained anywhere can be
// served (or fine-tuned) with deep reuse by loading their checkpoint.
//
// Usage: ./build/examples/checkpoint_reuse [--steps N] [--l L] [--h H]
//                                          [--threads T]

#include <cstdio>

#include "core/reuse_config.h"
#include "data/dataloader.h"
#include "data/synthetic_images.h"
#include "models/models.h"
#include "nn/checkpoint.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"
#include "util/flags.h"
#include "util/parallel.h"

int main(int argc, char** argv) {
  using namespace adr;

  int64_t steps = 200;
  int64_t l = 25;
  int64_t h = 8;
  int64_t threads = 0;
  FlagSet flags;
  flags.AddInt64("steps", &steps, "training steps for the dense model");
  flags.AddInt64("l", &l, "sub-vector length L for the reuse twin");
  flags.AddInt64("h", &h, "hash count H for the reuse twin");
  flags.AddInt64("threads", &threads,
                 "worker threads (0 = ADR_THREADS or hardware concurrency)");
  if (const Status status = flags.Parse(argc, argv); !status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 1;
  }
  if (threads > 0) ThreadPool::SetGlobalThreads(static_cast<int>(threads));
  std::printf("using %d thread(s)\n", ThreadPool::GlobalThreads());

  SyntheticImageConfig data_config =
      SyntheticImageConfig::CifarLike(512, 3);
  data_config.num_classes = 4;
  data_config.height = data_config.width = 16;
  auto dataset = SyntheticImageDataset::Create(data_config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  ModelOptions options;
  options.num_classes = 4;
  options.input_size = 16;
  options.width = 0.25;
  options.fc_width = 0.1;
  auto dense = BuildCifarNet(options);
  if (!dense.ok()) {
    std::fprintf(stderr, "%s\n", dense.status().ToString().c_str());
    return 1;
  }

  // 1. Train the dense model.
  DataLoader loader(&*dataset, 16, true, 5);
  Adam optimizer(0.002f);
  Batch batch;
  for (int64_t step = 0; step < steps; ++step) {
    loader.Next(&batch);
    TrainStep(&dense->network, &optimizer, batch);
  }
  const double dense_accuracy =
      EvaluateAccuracy(&dense->network, *dataset, 16, 256);
  std::printf("dense model trained: accuracy %.3f\n", dense_accuracy);

  // 2. Checkpoint it.
  const std::string path = "/tmp/adr_checkpoint_example.ckpt";
  if (const Status status = SaveCheckpoint(dense->network, path);
      !status.ok()) {
    std::fprintf(stderr, "save: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("checkpoint written to %s\n", path.c_str());

  // 3. Restore into a reuse twin and compare.
  ModelOptions reuse_options = options;
  reuse_options.use_reuse = true;
  auto reuse_config = ReuseConfigBuilder()
                          .SubVectorLength(l)
                          .NumHashes(static_cast<int>(h))
                          .Build();
  if (!reuse_config.ok()) {
    std::fprintf(stderr, "reuse config: %s\n",
                 reuse_config.status().ToString().c_str());
    return 1;
  }
  reuse_options.reuse = *reuse_config;
  reuse_options.seed = 777;  // different init, fully overwritten by load
  auto reuse = BuildCifarNet(reuse_options);
  if (!reuse.ok()) {
    std::fprintf(stderr, "%s\n", reuse.status().ToString().c_str());
    return 1;
  }
  if (const Status status = LoadCheckpoint(path, &reuse->network);
      !status.ok()) {
    std::fprintf(stderr, "load: %s\n", status.ToString().c_str());
    return 1;
  }

  const double reuse_accuracy =
      EvaluateAccuracy(&reuse->network, *dataset, 16, 256);
  std::printf("\nreuse twin (L=%lld, H=%lld): accuracy %.3f "
              "(reuse-caused loss %.3f)\n",
              static_cast<long long>(l), static_cast<long long>(h),
              reuse_accuracy, dense_accuracy - reuse_accuracy);
  for (const auto& [name, stats] : reuse->network.CollectReuseStats()) {
    std::printf("  %-8s r_c %.3f, conv MACs saved %.1f%%\n", name.c_str(),
                stats.avg_remaining_ratio,
                stats.MacsSavedFraction() * 100.0);
  }
  return 0;
}
