// Inference-time reuse sweep: train a dense model once, then explore how
// the clustering knobs {L, H} trade accuracy against remaining computation
// on a single layer — the interactive version of the paper's Fig. 8.
//
// Usage: ./build/examples/inference_sweep [layer_index]

#include <cstdio>
#include <cstdlib>

#include "core/parameter_schedule.h"
#include "core/reuse_conv2d.h"
#include "data/dataloader.h"
#include "data/synthetic_images.h"
#include "models/models.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"

namespace {

using namespace adr;

Model TrainDense(const SyntheticImageDataset& dataset,
                 const ModelOptions& options) {
  auto model = BuildCifarNet(options);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    std::exit(1);
  }
  DataLoader loader(&dataset, 16, true, 3);
  Adam optimizer(0.002f);
  Batch batch;
  for (int step = 0; step < 250; ++step) {
    // Short warmup keeps the small net from collapsing.
    optimizer.set_learning_rate(step < 25 ? 0.0005f : 0.002f);
    loader.Next(&batch);
    TrainStep(&model->network, &optimizer, batch);
  }
  return std::move(*model);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adr;
  const size_t layer_index =
      argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 1;

  SyntheticImageConfig data_config =
      SyntheticImageConfig::CifarLike(512, 5);
  data_config.num_classes = 4;
  data_config.height = data_config.width = 16;
  auto dataset = SyntheticImageDataset::Create(data_config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }

  ModelOptions options;
  options.num_classes = 4;
  options.input_size = 16;
  options.width = 0.25;
  options.fc_width = 0.1;
  Model dense = TrainDense(*dataset, options);
  const double dense_accuracy =
      EvaluateAccuracy(&dense.network, *dataset, 16, 256);
  std::printf("dense accuracy: %.3f\n\n", dense_accuracy);

  // Reuse twin with every layer exact except the one under study.
  ModelOptions reuse_options = options;
  reuse_options.use_reuse = true;
  reuse_options.reuse.enabled = false;
  auto twin = BuildCifarNet(reuse_options);
  if (!twin.ok() || !CopyWeights(dense, &*twin).ok()) {
    std::fprintf(stderr, "failed to build reuse twin\n");
    return 1;
  }
  if (layer_index >= twin->reuse_layers.size()) {
    std::fprintf(stderr, "layer_index out of range (have %zu)\n",
                 twin->reuse_layers.size());
    return 1;
  }
  ReuseConv2d* layer = twin->reuse_layers[layer_index];
  const int64_t k = layer->unfolded_cols();
  std::printf("sweeping %s (K = %lld)\n", layer->name().c_str(),
              static_cast<long long>(k));
  std::printf("%-8s %-6s %-10s %-10s %-12s\n", "L", "H", "r_c", "accuracy",
              "MACs saved");

  for (int64_t l : CandidateLValues(k, layer->config().kernel, k)) {
    for (int h : {4, 8, 16}) {
      auto config =
          ReuseConfigBuilder().SubVectorLength(l).NumHashes(h).Build(k);
      if (!config.ok()) continue;
      if (!layer->SetReuseConfig(*config).ok()) continue;
      layer->ResetStats();
      const double accuracy =
          EvaluateAccuracy(&twin->network, *dataset, 16, 128);
      std::printf("%-8lld %-6d %-10.4f %-10.3f %-11.1f%%\n",
                  static_cast<long long>(l), h,
                  layer->stats().avg_remaining_ratio, accuracy,
                  layer->stats().MacsSavedFraction() * 100.0);
    }
  }
  std::printf(
      "\nReading the table: accuracy recovers as H grows; smaller L "
      "recovers accuracy at smaller r_c (the paper's Fig. 8 shape).\n");
  return 0;
}
