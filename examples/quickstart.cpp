// Quickstart: train a small CNN with adaptive deep reuse and print what
// the reuse machinery saved.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/reuse_config.h"
#include "core/reuse_report.h"
#include "data/dataloader.h"
#include "data/synthetic_images.h"
#include "models/models.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"

int main() {
  using namespace adr;

  // 1. A dataset. SyntheticImageDataset generates smooth, structured
  //    images (a stand-in for CIFAR-10; see DESIGN.md).
  SyntheticImageConfig data_config = SyntheticImageConfig::CifarLike(
      /*num_samples=*/512, /*seed=*/42);
  data_config.num_classes = 4;
  data_config.height = 16;
  data_config.width = 16;
  auto dataset = SyntheticImageDataset::Create(data_config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }

  // 2. A model with reuse-enabled convolutions. ReuseConfigBuilder sets
  //    the paper's three knobs — sub-vector length L, hash count H, and
  //    the cluster-reuse flag CR — and validates them in one place.
  ModelOptions options;
  options.num_classes = 4;
  options.input_size = 16;
  options.width = 0.25;   // scaled-down CifarNet
  options.fc_width = 0.1;
  options.use_reuse = true;
  auto reuse = ReuseConfigBuilder()
                   .SubVectorLength(25)  // L
                   .NumHashes(12)        // H
                   .ClusterReuse(false)  // CR
                   .Build();
  if (!reuse.ok()) {
    std::fprintf(stderr, "reuse config: %s\n",
                 reuse.status().ToString().c_str());
    return 1;
  }
  options.reuse = *reuse;
  auto model = BuildCifarNet(options);
  if (!model.ok()) {
    std::fprintf(stderr, "model: %s\n", model.status().ToString().c_str());
    return 1;
  }

  // 3. A plain training loop; the reuse layers cluster neuron vectors on
  //    the fly and reuse centroid results in both directions.
  DataLoader loader(&*dataset, /*batch_size=*/16, /*shuffle=*/true, 7);
  Adam optimizer(0.002f);
  Batch batch;
  for (int step = 1; step <= 150; ++step) {
    loader.Next(&batch);
    const StepResult result = TrainStep(&model->network, &optimizer, batch);
    if (step % 30 == 0) {
      std::printf("step %3d  loss %.4f  batch accuracy %.3f\n", step,
                  result.loss, result.accuracy);
    }
  }

  // 4. What did reuse buy us?
  const double accuracy =
      EvaluateAccuracy(&model->network, *dataset, 16, 256);
  std::printf("\nfinal accuracy: %.3f\n\n", accuracy);
  const ReuseReport report = CollectReuseReport(model->reuse_layers);
  std::printf("%s", FormatReuseReport(report).c_str());
  return 0;
}
