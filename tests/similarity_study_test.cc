// Tests for the similarity-study library API.

#include <gtest/gtest.h>

#include "core/similarity_study.h"
#include "data/synthetic_images.h"

namespace adr {
namespace {

struct Fixture {
  SyntheticImageDataset dataset;
  Model dense;
  ModelOptions options;
};

Fixture MakeFixture() {
  SyntheticImageConfig data_config;
  data_config.num_classes = 4;
  data_config.num_samples = 96;
  data_config.height = 8;
  data_config.width = 8;
  data_config.seed = 77;
  ModelOptions options;
  options.num_classes = 4;
  options.input_size = 8;
  options.width = 0.125;
  options.fc_width = 0.05;
  return Fixture{*SyntheticImageDataset::Create(data_config),
                 BuildCifarNet(options).ValueOrDie(), options};
}

TEST(SimilarityStudyTest, LshStudyCoversGrid) {
  Fixture fixture = MakeFixture();
  SimilarityStudyOptions options;
  options.layer_index = 1;
  options.batch_size = 8;
  options.eval_samples = 32;
  auto points = LshSimilarityStudy(fixture.dense, fixture.options,
                                   fixture.dataset, options, {0, 25},
                                   {4, 16});
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points->size(), 4u);
  for (const SimilarityPoint& point : *points) {
    EXPECT_GT(point.remaining_ratio, 0.0);
    EXPECT_LE(point.remaining_ratio, 1.0);
    EXPECT_GE(point.accuracy, 0.0);
    EXPECT_LE(point.accuracy, 1.0);
  }
  // More hashes => more clusters (within each L).
  EXPECT_GE((*points)[1].remaining_ratio, (*points)[0].remaining_ratio);
  EXPECT_GE((*points)[3].remaining_ratio, (*points)[2].remaining_ratio);
}

TEST(SimilarityStudyTest, LshStudyValidatesInputs) {
  Fixture fixture = MakeFixture();
  SimilarityStudyOptions options;
  EXPECT_FALSE(LshSimilarityStudy(fixture.dense, fixture.options,
                                  fixture.dataset, options, {}, {4})
                   .ok());
  options.layer_index = 99;
  EXPECT_FALSE(LshSimilarityStudy(fixture.dense, fixture.options,
                                  fixture.dataset, options, {0}, {4})
                   .ok());
}

TEST(SimilarityStudyTest, KMeansStudyRemainingRatioTracksClusters) {
  Fixture fixture = MakeFixture();
  SimilarityStudyOptions options;
  options.layer_index = 0;
  options.batch_size = 8;
  options.eval_samples = 32;
  auto points = KMeansSimilarityStudy(fixture.dense, fixture.options,
                                      fixture.dataset, options,
                                      ClusterScope::kSingleBatch, {2, 32});
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points->size(), 2u);
  // conv1 at 8x8: N = 8*64 = 512 rows per batch.
  EXPECT_NEAR((*points)[0].remaining_ratio, 2.0 / 512.0, 1e-9);
  EXPECT_NEAR((*points)[1].remaining_ratio, 32.0 / 512.0, 1e-9);
  EXPECT_GT((*points)[0].macs_saved, 0.5);
}

TEST(SimilarityStudyTest, KMeansScopeChangesPoolSize) {
  Fixture fixture = MakeFixture();
  SimilarityStudyOptions options;
  options.layer_index = 0;
  options.batch_size = 8;
  options.eval_samples = 32;
  auto input_scope = KMeansSimilarityStudy(
      fixture.dense, fixture.options, fixture.dataset, options,
      ClusterScope::kSingleInput, {4});
  auto batch_scope = KMeansSimilarityStudy(
      fixture.dense, fixture.options, fixture.dataset, options,
      ClusterScope::kSingleBatch, {4});
  ASSERT_TRUE(input_scope.ok());
  ASSERT_TRUE(batch_scope.ok());
  // Per-image clustering yields 4 clusters per image (8 images) vs 4 per
  // batch: the single-input r_c is 8x larger.
  EXPECT_NEAR((*input_scope)[0].remaining_ratio,
              8.0 * (*batch_scope)[0].remaining_ratio, 1e-9);
}

}  // namespace
}  // namespace adr
