// Tiny recursive-descent JSON syntax checker used by the observability
// tests to assert that emitted documents (metrics dumps, Chrome traces,
// bench files) are well-formed without pulling in a JSON library.

#ifndef ADR_TESTS_JSON_SYNTAX_H_
#define ADR_TESTS_JSON_SYNTAX_H_

#include <cctype>
#include <cstdlib>
#include <string_view>

namespace adr::testing {

class JsonSyntaxChecker {
 public:
  explicit JsonSyntaxChecker(std::string_view text) : text_(text) {}

  /// True iff the whole input is exactly one valid JSON value.
  bool Valid() {
    pos_ = 0;
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\\') {
        pos_ += 2;
        continue;
      }
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const char* start = text_.data() + pos_;
    char* end = nullptr;
    std::strtod(start, &end);
    if (end == start) return false;
    pos_ += static_cast<size_t>(end - start);
    return true;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

inline bool IsValidJson(std::string_view text) {
  return JsonSyntaxChecker(text).Valid();
}

}  // namespace adr::testing

#endif  // ADR_TESTS_JSON_SYNTAX_H_
