// Tests for the ReuseConv2d layer: agreement with Conv2d in the exact
// limits, reconfiguration, cluster-reuse cache lifecycle and telemetry.

#include <gtest/gtest.h>

#include "core/reuse_conv2d.h"
#include "nn/conv2d.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace adr {
namespace {

Conv2dConfig SmallConv() {
  Conv2dConfig config;
  config.in_channels = 2;
  config.out_channels = 4;
  config.kernel = 3;
  config.stride = 1;
  config.pad = 1;
  config.in_height = 6;
  config.in_width = 6;
  return config;
}

ReuseConfig PreciseReuse() {
  ReuseConfig reuse;
  reuse.sub_vector_length = 0;
  reuse.num_hashes = 96;  // near-singleton clustering
  return reuse;
}

TEST(ReuseConv2dTest, MatchesConv2dWithPreciseClustering) {
  Rng rng1(1), rng2(1);
  Conv2d baseline("conv", SmallConv(), &rng1);
  ReuseConv2d reuse("conv_r", SmallConv(), PreciseReuse(), &rng2);
  // Same rng seed => same He init, but copy anyway for robustness.
  reuse.CopyWeightsFrom(baseline);

  Rng data_rng(2);
  Tensor in = Tensor::RandomGaussian(Shape({2, 2, 6, 6}), &data_rng);
  Tensor expected = baseline.Forward(in, false);
  Tensor actual = reuse.Forward(in, false);
  EXPECT_EQ(actual.shape(), expected.shape());
  EXPECT_LT(MaxAbsDiff(actual, expected), 1e-3f);
}

TEST(ReuseConv2dTest, BackwardMatchesConv2dInSingletonLimit) {
  Rng rng1(3), rng2(3);
  Conv2d baseline("conv", SmallConv(), &rng1);
  ReuseConv2d reuse("conv_r", SmallConv(), PreciseReuse(), &rng2);
  reuse.CopyWeightsFrom(baseline);

  Rng data_rng(4);
  Tensor in = Tensor::RandomGaussian(Shape({1, 2, 6, 6}), &data_rng);
  Tensor grad_out = Tensor::RandomGaussian(Shape({1, 4, 6, 6}), &data_rng);

  baseline.Forward(in, true);
  Tensor exact_gin = baseline.Backward(grad_out);
  reuse.Forward(in, true);
  Tensor reuse_gin = reuse.Backward(grad_out);

  // In the singleton limit the reuse backward is the exact backward.
  EXPECT_LT(MaxAbsDiff(reuse_gin, exact_gin), 5e-3f);
  EXPECT_LT(MaxAbsDiff(*reuse.Gradients()[0], *baseline.Gradients()[0]),
            5e-3f);
  EXPECT_LT(MaxAbsDiff(*reuse.Gradients()[1], *baseline.Gradients()[1]),
            1e-4f);
}

TEST(ReuseConv2dTest, SingletonClusteringIsExactDifferential) {
  // H = 128 hashes (the maximum) drives every cluster to a single member
  // (r_c = 1): the clustered forward and backward then compute exactly
  // what Conv2d computes, up to SIMD accumulation-order rounding. This
  // pins the whole reuse pipeline (hash, gather, centroid GEMM, scatter,
  // cluster reductions) against the dense reference.
  ReuseConfig singleton;
  singleton.sub_vector_length = 0;  // L = K: one block
  singleton.num_hashes = 128;
  Rng rng1(23), rng2(23);
  Conv2d baseline("conv", SmallConv(), &rng1);
  ReuseConv2d reuse("conv_r", SmallConv(), singleton, &rng2);
  reuse.CopyWeightsFrom(baseline);

  Rng data_rng(24);
  Tensor in = Tensor::RandomGaussian(Shape({2, 2, 6, 6}), &data_rng);
  Tensor grad_out = Tensor::RandomGaussian(Shape({2, 4, 6, 6}), &data_rng);

  baseline.Forward(in, true);
  Tensor exact_gin = baseline.Backward(grad_out);
  Tensor actual = reuse.Forward(in, true);
  Tensor reuse_gin = reuse.Backward(grad_out);

  // Gaussian rows essentially never collide under 128 hyperplanes.
  EXPECT_GT(reuse.stats().avg_remaining_ratio, 0.999);
  EXPECT_LT(MaxAbsDiff(actual, baseline.Forward(in, false)), 1e-4f);
  EXPECT_LT(MaxAbsDiff(reuse_gin, exact_gin), 1e-4f);
  EXPECT_LT(MaxAbsDiff(*reuse.Gradients()[0], *baseline.Gradients()[0]),
            1e-4f);
  EXPECT_LT(MaxAbsDiff(*reuse.Gradients()[1], *baseline.Gradients()[1]),
            1e-4f);
}

TEST(ReuseConv2dTest, ExactBackwardFlagMatchesConv2dAlways) {
  // Even with coarse clustering, exact_backward must reproduce Conv2d's
  // gradients (the forward output still differs — only backward is exact).
  ReuseConfig coarse;
  coarse.sub_vector_length = 6;
  coarse.num_hashes = 3;
  Rng rng1(5), rng2(5);
  Conv2d baseline("conv", SmallConv(), &rng1);
  ReuseConv2d reuse("conv_r", SmallConv(), coarse, &rng2);
  reuse.CopyWeightsFrom(baseline);
  reuse.set_exact_backward(true);
  EXPECT_TRUE(reuse.exact_backward());

  Rng data_rng(6);
  Tensor in = Tensor::RandomGaussian(Shape({2, 2, 6, 6}), &data_rng);
  Tensor grad_out = Tensor::RandomGaussian(Shape({2, 4, 6, 6}), &data_rng);
  baseline.Forward(in, true);
  Tensor exact_gin = baseline.Backward(grad_out);
  reuse.Forward(in, true);
  Tensor reuse_gin = reuse.Backward(grad_out);
  EXPECT_LT(MaxAbsDiff(reuse_gin, exact_gin), 1e-4f);
  EXPECT_LT(MaxAbsDiff(*reuse.Gradients()[0], *baseline.Gradients()[0]),
            1e-4f);
}

TEST(ReuseConv2dTest, SetReuseConfigValidates) {
  Rng rng(7);
  ReuseConv2d layer("conv", SmallConv(), PreciseReuse(), &rng);
  ReuseConfig bad;
  bad.sub_vector_length = 1000;  // > K = 18
  EXPECT_FALSE(layer.SetReuseConfig(bad).ok());
  bad = PreciseReuse();
  bad.num_hashes = 0;
  EXPECT_FALSE(layer.SetReuseConfig(bad).ok());
  ReuseConfig good;
  good.sub_vector_length = 9;
  good.num_hashes = 10;
  EXPECT_TRUE(layer.SetReuseConfig(good).ok());
  EXPECT_EQ(layer.reuse_config().sub_vector_length, 9);
}

TEST(ReuseConv2dTest, ReuseConfigBuilderValidates) {
  // Build() catches geometry-independent errors.
  EXPECT_FALSE(ReuseConfigBuilder().NumHashes(0).Build().ok());
  EXPECT_FALSE(ReuseConfigBuilder()
                   .KMeans(/*clusters=*/0, /*iterations=*/5)
                   .Build()
                   .ok());
  EXPECT_FALSE(ReuseConfigBuilder()
                   .KMeans(/*clusters=*/16, /*iterations=*/5)
                   .ClusterReuse(true)
                   .Build()
                   .ok());
  // Build(k) additionally checks L against K.
  EXPECT_TRUE(ReuseConfigBuilder().SubVectorLength(100).Build().ok());
  EXPECT_FALSE(ReuseConfigBuilder().SubVectorLength(100).Build(18).ok());

  auto config = ReuseConfigBuilder()
                    .SubVectorLength(9)
                    .NumHashes(10)
                    .Scope(ClusterScope::kAcrossBatch)
                    .Build(18);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->sub_vector_length, 9);
  EXPECT_EQ(config->num_hashes, 10);
  EXPECT_TRUE(config->ClusterReuseEnabled());

  // Builder seeded from an existing config only changes what it is told.
  const ReuseConfig flipped =
      ReuseConfigBuilder(PreciseReuse()).ClusterReuse(true).BuildUnchecked();
  ReuseConfig expected = PreciseReuse();
  expected.cluster_reuse = true;
  EXPECT_EQ(flipped, expected);
}

TEST(ReuseConv2dTest, ConfigChangeTakesEffect) {
  Rng rng(8);
  ReuseConv2d layer("conv", SmallConv(), PreciseReuse(), &rng);
  Rng data_rng(9);
  Tensor in = Tensor::RandomGaussian(Shape({1, 2, 6, 6}), &data_rng);
  layer.Forward(in, true);
  const double precise_rc = layer.stats().avg_remaining_ratio;

  ReuseConfig coarse;
  coarse.sub_vector_length = 0;
  coarse.num_hashes = 2;
  ASSERT_TRUE(layer.SetReuseConfig(coarse).ok());
  layer.ResetStats();
  layer.Forward(in, true);
  EXPECT_LT(layer.stats().avg_remaining_ratio, precise_rc);
}

TEST(ReuseConv2dTest, ClusterReuseCacheAcrossBatches) {
  ReuseConfig cr;
  cr.sub_vector_length = 6;
  cr.num_hashes = 8;
  cr.cluster_reuse = true;
  Rng rng(10);
  ReuseConv2d layer("conv", SmallConv(), cr, &rng);
  ASSERT_NE(layer.cache(), nullptr);

  Rng data_rng(11);
  Tensor in = Tensor::RandomGaussian(Shape({1, 2, 6, 6}), &data_rng);
  layer.Forward(in, true);
  EXPECT_DOUBLE_EQ(layer.stats().last_batch_reuse_rate, 0.0);
  layer.Forward(in, true);  // identical batch: full reuse
  EXPECT_DOUBLE_EQ(layer.stats().last_batch_reuse_rate, 1.0);
  layer.ClearCache();
  layer.Forward(in, true);
  EXPECT_DOUBLE_EQ(layer.stats().last_batch_reuse_rate, 0.0);
}

TEST(ReuseConv2dTest, DisablingClusterReuseDropsCache) {
  ReuseConfig cr;
  cr.num_hashes = 8;
  cr.cluster_reuse = true;
  Rng rng(12);
  ReuseConv2d layer("conv", SmallConv(), cr, &rng);
  EXPECT_NE(layer.cache(), nullptr);
  ReuseConfig off = cr;
  off.cluster_reuse = false;
  ASSERT_TRUE(layer.SetReuseConfig(off).ok());
  EXPECT_EQ(layer.cache(), nullptr);
}

TEST(ReuseConv2dTest, SingleInputScopeRuns) {
  ReuseConfig scope;
  scope.num_hashes = 8;
  scope.scope = ClusterScope::kSingleInput;
  Rng rng(13);
  ReuseConv2d layer("conv", SmallConv(), scope, &rng);
  Rng data_rng(14);
  Tensor in = Tensor::RandomGaussian(Shape({3, 2, 6, 6}), &data_rng);
  Tensor out = layer.Forward(in, true);
  EXPECT_EQ(out.shape(), Shape({3, 4, 6, 6}));
}

TEST(ReuseConv2dTest, StatsAccumulateAndReset) {
  Rng rng(15);
  ReuseConv2d layer("conv", SmallConv(), PreciseReuse(), &rng);
  Rng data_rng(16);
  Tensor in = Tensor::RandomGaussian(Shape({1, 2, 6, 6}), &data_rng);
  layer.Forward(in, true);
  layer.Forward(in, true);
  EXPECT_EQ(layer.stats().forward_calls, 2);
  EXPECT_GT(layer.stats().macs_baseline, 0.0);
  EXPECT_GT(layer.stats().macs_executed, 0.0);
  layer.ResetStats();
  EXPECT_EQ(layer.stats().forward_calls, 0);
  EXPECT_EQ(layer.stats().macs_baseline, 0.0);
}

TEST(ReuseConv2dTest, CoarseClusteringSavesMacs) {
  ReuseConfig coarse;
  coarse.sub_vector_length = 6;
  coarse.num_hashes = 4;
  Rng rng(17);
  ReuseConv2d layer("conv", SmallConv(), coarse, &rng);
  Rng data_rng(18);
  // Smooth input => heavy clustering.
  Tensor in(Shape({2, 2, 6, 6}));
  for (int64_t i = 0; i < in.num_elements(); ++i) {
    in.at(i) = static_cast<float>(i % 7) * 0.1f;
  }
  layer.Forward(in, true);
  Tensor grad = Tensor::Ones(Shape({2, 4, 6, 6}));
  layer.Backward(grad);
  EXPECT_GT(layer.stats().MacsSavedFraction(), 0.0);
}

TEST(ReuseConv2dTest, ForwardMacsMatchesConv2d) {
  Rng rng1(19), rng2(19);
  Conv2d baseline("conv", SmallConv(), &rng1);
  ReuseConv2d reuse("conv_r", SmallConv(), PreciseReuse(), &rng2);
  EXPECT_DOUBLE_EQ(reuse.ForwardMacs(4), baseline.ForwardMacs(4));
}

}  // namespace
}  // namespace adr
