// Tests for the slab-backed cluster-reuse cache: differential
// bit-exactness against the original map-based implementation (preserved
// in core/cluster_cache_reference.h), batched-lookup consistency,
// second-chance eviction under entry and byte budgets, the
// zero-allocation steady state, and concurrent read thread safety (run
// under TSan via scripts/tsan_tests.txt).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "core/cluster_cache.h"
#include "core/cluster_cache_reference.h"
#include "core/clustered_matmul.h"
#include "core/reuse_conv2d.h"
#include "core/subvector_clustering.h"
#include "kernel_harness.h"
#include "tensor/gemm.h"
#include "tensor/simd.h"
#include "tensor/tensor_ops.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace adr {
namespace {

class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(ThreadPool::GlobalThreads()) {}
  ~ThreadCountGuard() { ThreadPool::SetGlobalThreads(saved_); }

 private:
  int saved_;
};

LshSignature MakeSignature(uint64_t a, uint64_t b = 0) {
  LshSignature sig;
  sig.words[0] = a;
  sig.words[1] = b;
  return sig;
}

// ---------------------------------------------------------------------------
// Differential forward: the original FinishForwardFromClustering logic,
// verbatim over the ReferenceClusterCache (sequential Find per cluster,
// memcpy on hit, compact gather-GEMM over the misses, per-miss Insert in
// ascending cluster order). The production path through the slab cache
// must reproduce its outputs, hit/miss decisions, and counters
// bit-exactly at unbounded capacity.

struct ReferenceForwardResult {
  Tensor y;
  /// reused_from_cache per block, indexed [block][cluster].
  std::vector<std::vector<bool>> reused;
  int64_t clusters_total = 0;
  int64_t clusters_reused = 0;
};

ReferenceForwardResult ReferenceForward(const BlockLshFamilies& families,
                                        const float* x, int64_t num_rows,
                                        const Tensor& weight,
                                        const Tensor* bias,
                                        int64_t rows_per_group,
                                        ReferenceClusterCache* cache) {
  ReuseClustering clustering =
      ClusterSubVectors(families, x, num_rows, rows_per_group);
  const int64_t m = weight.shape()[1];
  ReferenceForwardResult result;
  result.y = Tensor(Shape({num_rows, m}));
  float* y = result.y.data();
  std::fill_n(y, static_cast<size_t>(num_rows * m), 0.0f);
  const simd::Kernels& kernels = simd::Active();

  for (size_t bi = 0; bi < clustering.blocks.size(); ++bi) {
    SubMatrixClustering& block = clustering.blocks[bi];
    const int64_t num_clusters = block.clustering.num_clusters();
    const int64_t length = block.length;
    const float* w_block = weight.data() + block.col_offset * m;
    result.clusters_total += num_clusters;
    result.reused.emplace_back(static_cast<size_t>(num_clusters), false);

    std::vector<float> yc(static_cast<size_t>(num_clusters * m));
    std::vector<int32_t> miss_clusters;
    for (int64_t c = 0; c < num_clusters; ++c) {
      const ReferenceClusterCache::Entry* entry =
          cache->Find(static_cast<int64_t>(bi), block.signatures[c]);
      if (entry != nullptr) {
        std::memcpy(yc.data() + c * m, entry->output.data(),
                    sizeof(float) * static_cast<size_t>(m));
        std::memcpy(block.centroids.data() + c * length,
                    entry->representative.data(),
                    sizeof(float) * static_cast<size_t>(length));
        result.reused.back()[static_cast<size_t>(c)] = true;
        ++result.clusters_reused;
      } else {
        miss_clusters.push_back(static_cast<int32_t>(c));
      }
    }

    const int64_t num_miss = static_cast<int64_t>(miss_clusters.size());
    if (num_miss > 0) {
      if (num_miss == num_clusters) {
        Gemm(block.centroids.data(), w_block, yc.data(), num_clusters,
             length, m);
      } else {
        std::vector<float> compact(static_cast<size_t>(num_miss * length));
        std::vector<float> compact_y(static_cast<size_t>(num_miss * m));
        for (int64_t i = 0; i < num_miss; ++i) {
          std::memcpy(compact.data() + i * length,
                      block.centroids.data() + miss_clusters[i] * length,
                      sizeof(float) * static_cast<size_t>(length));
        }
        Gemm(compact.data(), w_block, compact_y.data(), num_miss, length, m);
        for (int64_t i = 0; i < num_miss; ++i) {
          std::memcpy(yc.data() + miss_clusters[i] * m,
                      compact_y.data() + i * m,
                      sizeof(float) * static_cast<size_t>(m));
        }
      }
      for (int64_t i = 0; i < num_miss; ++i) {
        const int64_t c = miss_clusters[i];
        ReferenceClusterCache::Entry entry;
        entry.representative.assign(block.centroids.data() + c * length,
                                    block.centroids.data() + (c + 1) * length);
        entry.output.assign(yc.data() + c * m, yc.data() + (c + 1) * m);
        cache->Insert(static_cast<int64_t>(bi), block.signatures[c],
                      std::move(entry));
      }
    }

    for (int64_t i = 0; i < num_rows; ++i) {
      kernels.add(yc.data() +
                      block.clustering.assignment[static_cast<size_t>(i)] * m,
                  y + i * m, m);
    }
  }
  if (bias != nullptr) {
    AddRowBias(bias->data(), y, num_rows, m);
  }
  return result;
}

// Batches of noisy prototype rows: overlapping prototypes across batches
// produce a realistic mix of cache hits and misses every batch.
Tensor PrototypeBatch(int64_t n, int64_t k, int batch_index, Rng* rng) {
  Rng proto_rng(1234);  // prototypes shared by every batch
  Tensor protos = Tensor::RandomGaussian(Shape({8, k}), &proto_rng);
  Tensor x(Shape({n, k}));
  for (int64_t i = 0; i < n; ++i) {
    // Rotate through a batch-dependent window of 4 prototypes, so
    // consecutive batches share half their prototypes.
    const int64_t p = (i + batch_index) % 4 + (batch_index % 2) * 2;
    for (int64_t j = 0; j < k; ++j) {
      x.at(i, j) = protos.at(p, j) + rng->NextGaussian() * 0.002f;
    }
  }
  return x;
}

TEST(ClusterCacheDifferentialTest, MatchesReferenceMapBitExactly) {
  constexpr int64_t kN = 48, kK = 20, kM = 7;
  constexpr int kBatches = 5;
  Rng rng(11);
  Tensor w = Tensor::RandomGaussian(Shape({kK, kM}), &rng);
  Tensor bias = Tensor::RandomGaussian(Shape({kM}), &rng);
  auto families = BlockLshFamilies::Create(kK, 10, 12, 3);
  ASSERT_TRUE(families.ok());

  ThreadCountGuard guard;
  for (const simd::Kernels* kernels : testutil::Backends()) {
    simd::ScopedKernelsOverride override_kernels(*kernels);
    for (int threads : {1, 4}) {
      ThreadPool::SetGlobalThreads(threads);
      ClusterReuseCache cache;
      ReferenceClusterCache reference;
      Rng data_rng(77);  // same batch stream for every configuration
      for (int batch = 0; batch < kBatches; ++batch) {
        const Tensor x = PrototypeBatch(kN, kK, batch, &data_rng);
        const ForwardReuseResult ours = ClusteredMatmulForward(
            *families, x.data(), kN, w, &bias, kN, &cache);
        const ReferenceForwardResult expected = ReferenceForward(
            *families, x.data(), kN, w, &bias, kN, &reference);

        // Forward outputs: bitwise equal, not merely close.
        ASSERT_EQ(MaxAbsDiff(ours.y_rows, expected.y),
                  0.0f)
            << "backend=" << kernels->name << " threads=" << threads
            << " batch=" << batch;
        // Identical hit/miss decisions, cluster by cluster.
        ASSERT_EQ(ours.clustering.blocks.size(), expected.reused.size());
        for (size_t bi = 0; bi < expected.reused.size(); ++bi) {
          const auto& ours_reused =
              ours.clustering.blocks[bi].reused_from_cache;
          ASSERT_EQ(ours_reused.size(), expected.reused[bi].size());
          for (size_t c = 0; c < ours_reused.size(); ++c) {
            ASSERT_EQ(ours_reused[c], expected.reused[bi][c])
                << "block " << bi << " cluster " << c << " batch " << batch;
          }
        }
        ASSERT_EQ(ours.stats.clusters_reused, expected.clusters_reused);
        ASSERT_EQ(ours.stats.clusters_total, expected.clusters_total);
      }
      // Cumulative counters, R, occupancy, and exact memory accounting
      // agree with the reference's full walks.
      EXPECT_GT(cache.hits(), 0);
      EXPECT_EQ(cache.lookups(), reference.lookups());
      EXPECT_EQ(cache.hits(), reference.hits());
      EXPECT_DOUBLE_EQ(cache.ReuseRate(), reference.ReuseRate());
      EXPECT_EQ(cache.TotalEntries(), reference.TotalEntries());
      EXPECT_EQ(cache.ResidentBytes(), reference.ApproximateMemoryBytes());
      EXPECT_EQ(cache.evictions(), 0);
    }
  }
}

// ---------------------------------------------------------------------------
// Batched lookup semantics.

TEST(ClusterCacheTest, FindBatchMatchesSequentialFind) {
  ClusterReuseCache cache;
  ClusterReuseCache probe;  // independent instance probed sequentially
  constexpr int64_t kLen = 6, kM = 3;
  std::vector<float> rep(kLen), out(kM);
  for (int i = 0; i < 200; ++i) {
    const LshSignature sig = MakeSignature(static_cast<uint64_t>(i) * 7 + 1,
                                           static_cast<uint64_t>(i));
    for (auto& v : rep) v = static_cast<float>(i);
    for (auto& v : out) v = static_cast<float>(-i);
    cache.Insert(0, sig, rep.data(), kLen, out.data(), kM);
    probe.Insert(0, sig, rep.data(), kLen, out.data(), kM);
  }

  // Every third signature misses.
  std::vector<LshSignature> queries;
  for (int i = 0; i < 300; ++i) {
    queries.push_back(i % 3 == 2
                          ? MakeSignature(0xdead0000 + static_cast<uint64_t>(i))
                          : MakeSignature(static_cast<uint64_t>(i % 200) * 7 + 1,
                                          static_cast<uint64_t>(i % 200)));
  }
  std::vector<int32_t> entries(queries.size(), -2);
  const int64_t hits =
      cache.FindBatch(0, queries.data(),
                      static_cast<int64_t>(queries.size()), entries.data());

  int64_t expected_hits = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    ClusterReuseCache::View view;
    const bool hit = probe.Find(0, queries[i], &view);
    ASSERT_EQ(entries[i] >= 0, hit) << "query " << i;
    if (hit) ++expected_hits;
  }
  EXPECT_EQ(hits, expected_hits);
  EXPECT_EQ(cache.hits(), expected_hits);
  EXPECT_EQ(cache.lookups(), static_cast<int64_t>(queries.size()));

  // GatherHits copies exactly the hit payloads, leaving miss rows alone.
  std::vector<float> outputs(queries.size() * kM, 99.0f);
  std::vector<float> reps(queries.size() * kLen, 99.0f);
  cache.GatherHits(0, entries.data(), static_cast<int64_t>(queries.size()),
                   outputs.data(), kM, reps.data(), kLen);
  for (size_t i = 0; i < queries.size(); ++i) {
    if (entries[i] < 0) {
      EXPECT_EQ(outputs[i * kM], 99.0f);
      continue;
    }
    const float id = static_cast<float>(i % 200);
    EXPECT_EQ(reps[i * kLen], id) << "query " << i;
    EXPECT_EQ(outputs[i * kM], -id) << "query " << i;
  }
}

TEST(ClusterCacheTest, FindBatchOnEmptyCacheCountsLookups) {
  ClusterReuseCache cache;
  std::vector<LshSignature> queries(10, MakeSignature(42));
  std::vector<int32_t> entries(10, 0);
  EXPECT_EQ(cache.FindBatch(3, queries.data(), 10, entries.data()), 0);
  for (int32_t e : entries) EXPECT_EQ(e, -1);
  EXPECT_EQ(cache.lookups(), 10);
  EXPECT_EQ(cache.hits(), 0);
}

TEST(ClusterCacheTest, FindBatchDecisionsAreThreadCountIndependent) {
  ThreadCountGuard guard;
  ClusterReuseCache cache;
  const float rep[] = {1.0f};
  const float out[] = {2.0f};
  for (int i = 0; i < 500; ++i) {
    cache.Insert(0, MakeSignature(static_cast<uint64_t>(i) * 11 + 3), rep, 1,
                 out, 1);
  }
  std::vector<LshSignature> queries;
  for (int i = 0; i < 2000; ++i) {
    queries.push_back(MakeSignature(static_cast<uint64_t>(i) * 11 + 3));
  }
  std::vector<std::vector<int32_t>> results;
  for (int threads : {1, 4}) {
    ThreadPool::SetGlobalThreads(threads);
    results.emplace_back(queries.size(), -2);
    cache.FindBatch(0, queries.data(), static_cast<int64_t>(queries.size()),
                    results.back().data());
  }
  EXPECT_EQ(results[0], results[1]);
}

// ---------------------------------------------------------------------------
// Eviction.

TEST(ClusterCacheEvictionTest, ByteBudgetBoundsResidentBytes) {
  ClusterReuseCache cache;
  // One entry: (4 + 2) floats + one signature = 24 + 16 = 40 bytes.
  const float rep[] = {1, 2, 3, 4};
  const float out[] = {5, 6};
  const int64_t entry_bytes =
      6 * static_cast<int64_t>(sizeof(float)) +
      static_cast<int64_t>(sizeof(LshSignature));
  cache.set_max_bytes(2 * entry_bytes + entry_bytes / 2);  // fits 2, not 3
  for (int i = 1; i <= 5; ++i) {
    cache.Insert(0, MakeSignature(static_cast<uint64_t>(i)), rep, 4, out, 2);
  }
  EXPECT_EQ(cache.TotalEntries(), 2);
  EXPECT_EQ(cache.ResidentBytes(), 2 * entry_bytes);
  EXPECT_EQ(cache.evictions(), 3);
  EXPECT_LE(cache.ResidentBytes(), cache.max_bytes());
}

TEST(ClusterCacheEvictionTest, SecondChanceKeepsRecentlyHitEntry) {
  ClusterReuseCache cache;
  cache.set_max_entries(3);
  const float rep[] = {1.0f};
  const float out[] = {2.0f};
  const LshSignature a = MakeSignature(1), b = MakeSignature(2),
                     c = MakeSignature(3), d = MakeSignature(4),
                     e = MakeSignature(5);
  cache.Insert(0, a, rep, 1, out, 1);
  cache.Insert(0, b, rep, 1, out, 1);
  cache.Insert(0, c, rep, 1, out, 1);
  // Over budget: every entry spends its second chance, then the clock
  // wraps and evicts the oldest untouched entry (a).
  cache.Insert(0, d, rep, 1, out, 1);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_FALSE(cache.Find(0, a));

  // Touch b: the next eviction scan must spare it and take c instead.
  EXPECT_TRUE(cache.Find(0, b));
  cache.Insert(0, e, rep, 1, out, 1);
  EXPECT_EQ(cache.evictions(), 2);
  EXPECT_TRUE(cache.Find(0, b)) << "recently-hit entry was evicted";
  EXPECT_FALSE(cache.Find(0, c)) << "untouched entry should have been evicted";
  EXPECT_TRUE(cache.Find(0, d));
  EXPECT_TRUE(cache.Find(0, e));
  EXPECT_EQ(cache.TotalEntries(), 3);
}

TEST(ClusterCacheEvictionTest, EntryBudgetHoldsAcrossBlocks) {
  ClusterReuseCache cache;
  cache.set_max_entries(16);
  const float rep[] = {1.0f};
  const float out[] = {2.0f};
  for (int i = 0; i < 200; ++i) {
    cache.Insert(i % 3, MakeSignature(static_cast<uint64_t>(i) + 1), rep, 1,
                 out, 1);
    EXPECT_LE(cache.TotalEntries(), 16);
  }
  EXPECT_EQ(cache.TotalEntries(), 16);
  EXPECT_EQ(cache.evictions(), 200 - 16);
}

TEST(ClusterCacheEvictionTest, ClearResetsCountersAndKeepsBudgets) {
  ClusterReuseCache cache;
  cache.set_max_entries(2);
  const float rep[] = {1.0f};
  const float out[] = {2.0f};
  for (int i = 0; i < 8; ++i) {
    cache.Insert(0, MakeSignature(static_cast<uint64_t>(i) + 1), rep, 1, out,
                 1);
  }
  cache.Find(0, MakeSignature(1));
  EXPECT_GT(cache.evictions(), 0);

  cache.Clear();
  const ClusterReuseCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 0);
  EXPECT_EQ(stats.resident_bytes, 0);
  EXPECT_EQ(stats.lookups, 0);
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.evictions, 0);
  EXPECT_EQ(stats.inserts, 0);
  for (int64_t bucket : stats.probe_counts) EXPECT_EQ(bucket, 0);
  // Budgets survive and keep biting.
  EXPECT_EQ(cache.max_entries(), 2);
  for (int i = 0; i < 8; ++i) {
    cache.Insert(0, MakeSignature(static_cast<uint64_t>(i) + 1), rep, 1, out,
                 1);
  }
  EXPECT_EQ(cache.TotalEntries(), 2);
}

TEST(ClusterCacheTest, StatsCountProbesAndSlots) {
  ClusterReuseCache cache;
  const float rep[] = {1.0f};
  const float out[] = {2.0f};
  for (int i = 0; i < 40; ++i) {
    cache.Insert(0, MakeSignature(static_cast<uint64_t>(i) + 1), rep, 1, out,
                 1);
  }
  for (int i = 0; i < 40; ++i) {
    cache.Find(0, MakeSignature(static_cast<uint64_t>(i) + 1));
  }
  const ClusterReuseCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 40);
  EXPECT_EQ(stats.inserts, 40);
  EXPECT_EQ(stats.hits, 40);
  EXPECT_EQ(stats.lookups, 40);
  // Power-of-two capacity with load <= 70%.
  EXPECT_GE(stats.slots, 64);
  EXPECT_EQ(stats.slots & (stats.slots - 1), 0);
  int64_t probes = 0;
  for (int64_t bucket : stats.probe_counts) probes += bucket;
  EXPECT_EQ(probes, stats.lookups);
  // Short chains: at this load factor most probes must terminate fast.
  EXPECT_GT(stats.probe_counts[0], 0);
}

// ---------------------------------------------------------------------------
// Zero heap allocations at steady state.

TEST(ClusterCacheTest, WarmCacheStopsAllocating) {
  ClusterReuseCache cache;
  cache.set_max_entries(256);
  std::vector<float> rep(32, 1.0f), out(16, 2.0f);
  // Warm: fill well past the budget so slab, table, and free list have
  // all reached their steady capacity.
  for (int i = 0; i < 2000; ++i) {
    cache.Insert(0, MakeSignature(static_cast<uint64_t>(i) + 1, 9), rep.data(),
                 32, out.data(), 16);
  }
  const int64_t warm_allocs = cache.alloc_events();
  EXPECT_GT(warm_allocs, 0);

  // Steady state: every insert recycles an evicted entry, every lookup is
  // read-only — zero cache-side allocations.
  std::vector<int32_t> entries(64);
  std::vector<LshSignature> queries(64);
  for (int step = 0; step < 50; ++step) {
    for (int i = 0; i < 64; ++i) {
      queries[static_cast<size_t>(i)] =
          MakeSignature(static_cast<uint64_t>(2000 + step * 64 + i), 9);
    }
    cache.FindBatch(0, queries.data(), 64, entries.data());
    for (const LshSignature& sig : queries) {
      cache.Insert(0, sig, rep.data(), 32, out.data(), 16);
    }
    ASSERT_EQ(cache.alloc_events(), warm_allocs) << "allocation at step "
                                                 << step;
  }
}

TEST(ClusterCacheTest, SteadyStateTrainingPerformsNoCacheAllocations) {
  // Mirrors workspace_arena_test: a CR-enabled layer fed identical
  // batches must stop touching the heap from the cache after the first
  // step populates it.
  Conv2dConfig config;
  config.in_channels = 3;
  config.out_channels = 8;
  config.kernel = 3;
  config.stride = 1;
  config.pad = 1;
  config.in_height = 8;
  config.in_width = 8;
  ReuseConfig reuse;
  reuse.sub_vector_length = 9;
  reuse.num_hashes = 10;
  reuse.scope = ClusterScope::kAcrossBatch;

  Rng rng(41);
  ReuseConv2d layer("cache_steady", config, reuse, &rng);
  Rng data_rng(42);
  const Tensor input = Tensor::RandomGaussian(Shape({2, 3, 8, 8}), &data_rng);
  const Tensor grad_out =
      Tensor::RandomGaussian(Shape({2, 8, 8, 8}), &data_rng);

  layer.Forward(input, /*training=*/true);
  layer.Backward(grad_out);
  ASSERT_NE(layer.cache(), nullptr);
  const int64_t warm_allocs = layer.cache()->alloc_events();
  EXPECT_GT(warm_allocs, 0);

  for (int step = 0; step < 4; ++step) {
    layer.Forward(input, /*training=*/true);
    layer.Backward(grad_out);
    EXPECT_EQ(layer.cache()->alloc_events(), warm_allocs)
        << "cache-side allocation at step " << step;
  }
  EXPECT_GT(layer.cache()->hits(), 0);
  EXPECT_EQ(layer.stats().cache_hits, layer.cache()->hits());
  EXPECT_EQ(layer.stats().cache_entries, layer.cache()->TotalEntries());
}

// ---------------------------------------------------------------------------
// Concurrency: FindBatch/Find are const and safe from many threads. The
// global pool is pinned to one thread so each raw thread's ParallelFor
// runs inline (ThreadPool::Run does not support concurrent external
// callers); TSan then checks the cache itself, not the pool.

TEST(ClusterCacheTest, ConcurrentFindBatchIsThreadSafe) {
  ThreadCountGuard guard;
  ThreadPool::SetGlobalThreads(1);

  ClusterReuseCache cache;
  // A budget (never exceeded here) keeps recency stamping active so the
  // concurrent readers exercise the atomic stamp stores under TSan.
  cache.set_max_entries(4096);
  std::vector<float> rep(8, 1.0f), out(4, 2.0f);
  constexpr int kResident = 512;
  for (int i = 0; i < kResident; ++i) {
    cache.Insert(0, MakeSignature(static_cast<uint64_t>(i) + 1), rep.data(),
                 8, out.data(), 4);
  }

  constexpr int kThreads = 4;
  constexpr int kRounds = 50;
  constexpr int kQueries = 256;  // half hit, half miss
  std::vector<std::thread> workers;
  std::vector<int64_t> per_thread_hits(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<LshSignature> queries(kQueries);
      std::vector<int32_t> entries(kQueries);
      std::vector<float> outputs(kQueries * 4);
      std::vector<float> reps(kQueries * 8);
      for (int round = 0; round < kRounds; ++round) {
        for (int i = 0; i < kQueries; ++i) {
          const uint64_t key = static_cast<uint64_t>((i * kThreads + t + round) %
                                                     (2 * kResident));
          queries[static_cast<size_t>(i)] = MakeSignature(key + 1);
        }
        per_thread_hits[static_cast<size_t>(t)] +=
            cache.FindBatch(0, queries.data(), kQueries, entries.data());
        cache.GatherHits(0, entries.data(), kQueries, outputs.data(), 4,
                         reps.data(), 8);
        ClusterReuseCache::View view;
        cache.Find(0, queries[0], &view);
      }
    });
  }
  for (auto& worker : workers) worker.join();

  // Signatures 1..kResident hit, the rest miss; totals must balance.
  int64_t expected_hits = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected_hits += per_thread_hits[static_cast<size_t>(t)];
  }
  EXPECT_GT(expected_hits, 0);
  EXPECT_GE(cache.hits(), expected_hits);  // + the per-round Find hits
  EXPECT_EQ(cache.lookups(),
            static_cast<int64_t>(kThreads) * kRounds * (kQueries + 1));
  EXPECT_EQ(cache.TotalEntries(), kResident);  // structurally untouched
}

}  // namespace
}  // namespace adr
