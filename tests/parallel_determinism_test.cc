// Bitwise determinism of the parallel kernels: the same inputs must give
// bit-identical results with 1, 2, and 8 worker threads. This is the
// contract that makes the thread count a pure performance knob — training
// runs are reproducible on any machine.

#include <gtest/gtest.h>

#include <vector>

#include "core/reuse_conv2d.h"
#include "tensor/gemm.h"
#include "tensor/tensor.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace adr {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(ThreadPool::GlobalThreads()) {}
  ~ThreadCountGuard() { ThreadPool::SetGlobalThreads(saved_); }

 private:
  int saved_;
};

void ExpectBitIdentical(const Tensor& a, const Tensor& b, const char* what,
                        int threads) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.num_elements(); ++i) {
    ASSERT_EQ(pa[i], pb[i])
        << what << " differs at " << i << " with " << threads << " threads";
  }
}

TEST(ParallelDeterminismTest, GemmBitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  const int64_t n = 300, k = 123, m = 77;
  Rng rng(31);
  Tensor a = Tensor::RandomGaussian(Shape({n, k}), &rng);
  Tensor b = Tensor::RandomGaussian(Shape({k, m}), &rng);

  ThreadPool::SetGlobalThreads(1);
  Tensor reference(Shape({n, m}));
  Gemm(a.data(), b.data(), reference.data(), n, k, m);

  for (const int threads : kThreadCounts) {
    ThreadPool::SetGlobalThreads(threads);
    Tensor c(Shape({n, m}));
    Gemm(a.data(), b.data(), c.data(), n, k, m);
    ExpectBitIdentical(c, reference, "Gemm", threads);

    Tensor ta(Shape({k, k}));
    GemmTransA(a.data(), a.data(), ta.data(), k, n, k);
    ThreadPool::SetGlobalThreads(1);
    Tensor ta_ref(Shape({k, k}));
    GemmTransA(a.data(), a.data(), ta_ref.data(), k, n, k);
    ExpectBitIdentical(ta, ta_ref, "GemmTransA", threads);
  }
}

// Runs one forward + backward on a fresh, identically seeded layer and
// returns (output, grad_input, grad_weight, grad_bias).
std::vector<Tensor> RunReuseLayer(const Tensor& input,
                                  const Tensor& grad_out) {
  Conv2dConfig conv;
  conv.in_channels = 3;
  conv.out_channels = 8;
  conv.kernel = 3;
  conv.stride = 1;
  conv.pad = 1;
  conv.in_height = 8;
  conv.in_width = 8;
  ReuseConfig reuse = ReuseConfigBuilder()
                          .SubVectorLength(9)
                          .NumHashes(10)
                          .ClusterReuse(true)
                          .BuildUnchecked();
  Rng rng(91);
  ReuseConv2d layer("conv", conv, reuse, &rng);

  std::vector<Tensor> result;
  result.push_back(layer.Forward(input, /*training=*/true));
  result.push_back(layer.Backward(grad_out));
  result.push_back(*layer.Gradients()[0]);
  result.push_back(*layer.Gradients()[1]);
  return result;
}

TEST(ParallelDeterminismTest, ReuseConv2dBitIdenticalAcrossThreadCounts) {
  ThreadCountGuard guard;
  Rng rng(47);
  Tensor input = Tensor::RandomGaussian(Shape({4, 3, 8, 8}), &rng);
  Tensor grad_out = Tensor::RandomGaussian(Shape({4, 8, 8, 8}), &rng);

  ThreadPool::SetGlobalThreads(1);
  const std::vector<Tensor> reference = RunReuseLayer(input, grad_out);
  const char* names[] = {"output", "grad_input", "grad_weight", "grad_bias"};

  for (const int threads : kThreadCounts) {
    ThreadPool::SetGlobalThreads(threads);
    const std::vector<Tensor> run = RunReuseLayer(input, grad_out);
    ASSERT_EQ(run.size(), reference.size());
    for (size_t i = 0; i < run.size(); ++i) {
      ExpectBitIdentical(run[i], reference[i], names[i], threads);
    }
  }
}

}  // namespace
}  // namespace adr
