// Tests for the synthetic dataset and DataLoader.

#include <set>

#include <gtest/gtest.h>

#include "data/dataloader.h"
#include "data/synthetic_images.h"
#include "tensor/tensor_ops.h"

namespace adr {
namespace {

SyntheticImageConfig SmallConfig() {
  SyntheticImageConfig config = SyntheticImageConfig::CifarLike(200, 42);
  config.height = 16;
  config.width = 16;
  config.num_classes = 4;
  return config;
}

TEST(SyntheticImagesTest, ValidatesConfig) {
  SyntheticImageConfig config = SmallConfig();
  config.num_classes = 1;
  EXPECT_FALSE(SyntheticImageDataset::Create(config).ok());
  config = SmallConfig();
  config.num_samples = 0;
  EXPECT_FALSE(SyntheticImageDataset::Create(config).ok());
  config = SmallConfig();
  config.max_translation = 100;
  EXPECT_FALSE(SyntheticImageDataset::Create(config).ok());
  config = SmallConfig();
  config.blob_radius_fraction = 0.0f;
  EXPECT_FALSE(SyntheticImageDataset::Create(config).ok());
  EXPECT_TRUE(SyntheticImageDataset::Create(SmallConfig()).ok());
}

TEST(SyntheticImagesTest, ShapeAndLabels) {
  auto dataset = SyntheticImageDataset::Create(SmallConfig());
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->size(), 200);
  EXPECT_EQ(dataset->num_classes(), 4);
  EXPECT_EQ(dataset->image_shape(), Shape({3, 16, 16}));
  std::vector<float> image(3 * 16 * 16);
  int label = -1;
  dataset->Get(0, image.data(), &label);
  EXPECT_EQ(label, 0);
  dataset->Get(5, image.data(), &label);
  EXPECT_EQ(label, 1);  // labels cycle modulo num_classes
}

TEST(SyntheticImagesTest, DeterministicPerIndex) {
  auto dataset = SyntheticImageDataset::Create(SmallConfig());
  ASSERT_TRUE(dataset.ok());
  std::vector<float> a(3 * 16 * 16), b(3 * 16 * 16);
  int la = 0, lb = 0;
  dataset->Get(17, a.data(), &la);
  dataset->Get(17, b.data(), &lb);
  EXPECT_EQ(a, b);
  EXPECT_EQ(la, lb);
}

TEST(SyntheticImagesTest, DifferentIndicesDiffer) {
  auto dataset = SyntheticImageDataset::Create(SmallConfig());
  ASSERT_TRUE(dataset.ok());
  std::vector<float> a(3 * 16 * 16), b(3 * 16 * 16);
  int label = 0;
  dataset->Get(0, a.data(), &label);
  dataset->Get(4, b.data(), &label);  // same class, different sample
  EXPECT_NE(a, b);
}

TEST(SyntheticImagesTest, SameClassMoreSimilarThanCrossClass) {
  SyntheticImageConfig config = SmallConfig();
  config.structured_noise = 0.1f;
  config.white_noise = 0.01f;
  auto dataset = SyntheticImageDataset::Create(config);
  ASSERT_TRUE(dataset.ok());
  const int64_t elems = 3 * 16 * 16;
  std::vector<float> a(elems), b(elems), c(elems);
  int label = 0;
  dataset->Get(0, a.data(), &label);   // class 0
  dataset->Get(4, b.data(), &label);   // class 0
  dataset->Get(1, c.data(), &label);   // class 1
  double same = 0.0, cross = 0.0;
  for (int64_t i = 0; i < elems; ++i) {
    same += (a[i] - b[i]) * (a[i] - b[i]);
    cross += (a[i] - c[i]) * (a[i] - c[i]);
  }
  EXPECT_LT(same, cross);
}

TEST(SyntheticImagesTest, ImageNetLikePresetIsLazy) {
  // 224x224 images with many samples must construct instantly (templates
  // only) and produce valid samples on demand.
  auto dataset = SyntheticImageDataset::Create(
      SyntheticImageConfig::ImageNetLike(100000, 10, 7));
  ASSERT_TRUE(dataset.ok());
  std::vector<float> image(3 * 224 * 224);
  int label = -1;
  dataset->Get(99999, image.data(), &label);
  EXPECT_EQ(label, 99999 % 10);
}

TEST(DataLoaderTest, BatchShapeAndLabels) {
  auto dataset = SyntheticImageDataset::Create(SmallConfig());
  ASSERT_TRUE(dataset.ok());
  DataLoader loader(&*dataset, 16, /*shuffle=*/true, 1);
  Batch batch;
  loader.Next(&batch);
  EXPECT_EQ(batch.images.shape(), Shape({16, 3, 16, 16}));
  EXPECT_EQ(batch.size(), 16);
  for (int label : batch.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 4);
  }
}

TEST(DataLoaderTest, EpochCountsAdvance) {
  auto dataset = SyntheticImageDataset::Create(SmallConfig());
  ASSERT_TRUE(dataset.ok());
  DataLoader loader(&*dataset, 64, true, 2);
  EXPECT_EQ(loader.batches_per_epoch(), 3);  // 200 / 64
  Batch batch;
  for (int i = 0; i < 3; ++i) loader.Next(&batch);
  EXPECT_EQ(loader.epoch(), 0);
  loader.Next(&batch);  // wraps: the partial tail batch is dropped
  EXPECT_EQ(loader.epoch(), 1);
  loader.Reset();
  EXPECT_EQ(loader.epoch(), 0);
}

TEST(DataLoaderTest, ShuffleChangesOrderButNotMultiset) {
  auto dataset = SyntheticImageDataset::Create(SmallConfig());
  ASSERT_TRUE(dataset.ok());
  DataLoader shuffled(&*dataset, 200, true, 3);
  DataLoader ordered(&*dataset, 200, false, 3);
  Batch a, b;
  shuffled.Next(&a);
  ordered.Next(&b);
  EXPECT_NE(a.labels, b.labels);
  std::multiset<int> ma(a.labels.begin(), a.labels.end());
  std::multiset<int> mb(b.labels.begin(), b.labels.end());
  EXPECT_EQ(ma, mb);
}

TEST(DataLoaderTest, UnshuffledIsSequential) {
  auto dataset = SyntheticImageDataset::Create(SmallConfig());
  ASSERT_TRUE(dataset.ok());
  DataLoader loader(&*dataset, 8, false, 4);
  Batch batch;
  loader.Next(&batch);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(batch.labels[static_cast<size_t>(i)], i % 4);
  }
}

TEST(MakeBatchTest, SlicesRange) {
  auto dataset = SyntheticImageDataset::Create(SmallConfig());
  ASSERT_TRUE(dataset.ok());
  const Batch batch = MakeBatch(*dataset, 10, 6);
  EXPECT_EQ(batch.size(), 6);
  EXPECT_EQ(batch.labels[0], 10 % 4);
  EXPECT_EQ(batch.labels[5], 15 % 4);
}

}  // namespace
}  // namespace adr
