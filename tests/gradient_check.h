// Finite-difference gradient checking shared by the layer tests.
//
// Uses the standard trick: for a random projection vector g, define the
// scalar loss L(x) = <Forward(x), g>. Then dL/dx must equal Backward(g)
// and dL/dtheta must equal the layer's parameter gradients.

#ifndef ADR_TESTS_GRADIENT_CHECK_H_
#define ADR_TESTS_GRADIENT_CHECK_H_

#include <cmath>

#include <gtest/gtest.h>

#include "nn/layer.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace adr::testutil {

inline double Dot(const Tensor& a, const Tensor& b) {
  EXPECT_TRUE(a.SameShape(b));
  double sum = 0.0;
  for (int64_t i = 0; i < a.num_elements(); ++i) {
    sum += static_cast<double>(a.at(i)) * b.at(i);
  }
  return sum;
}

/// Checks the input gradient and all parameter gradients of `layer` at
/// `input` against central finite differences. Layers that cache forward
/// state for Backward only in training mode (the conv layers) must be
/// checked with `training` = true; stateless layers keep the default so
/// the check also covers their inference path.
inline void CheckGradients(Layer* layer, const Tensor& input,
                           double tolerance = 5e-2, float epsilon = 1e-3f,
                           uint64_t seed = 7, bool training = false) {
  Rng rng(seed);
  Tensor base_out = layer->Forward(input, training);
  Tensor projection =
      Tensor::RandomGaussian(base_out.shape(), &rng, 0.0f, 1.0f);
  Tensor grad_input = layer->Backward(projection);
  ASSERT_TRUE(grad_input.SameShape(input));

  // Input gradient. Check a subsample of coordinates for speed.
  Tensor x = input;
  const int64_t n = x.num_elements();
  const int64_t step = std::max<int64_t>(1, n / 64);
  for (int64_t i = 0; i < n; i += step) {
    const float saved = x.at(i);
    x.at(i) = saved + epsilon;
    const double up = Dot(layer->Forward(x, false), projection);
    x.at(i) = saved - epsilon;
    const double down = Dot(layer->Forward(x, false), projection);
    x.at(i) = saved;
    const double numeric = (up - down) / (2.0 * epsilon);
    EXPECT_NEAR(grad_input.at(i), numeric,
                tolerance * (std::abs(numeric) + 1.0))
        << "input coordinate " << i;
  }

  // Parameter gradients (recompute analytic grads at the original input).
  layer->Forward(input, training);
  layer->Backward(projection);
  const std::vector<Tensor*> params = layer->Parameters();
  const std::vector<Tensor*> grads = layer->Gradients();
  ASSERT_EQ(params.size(), grads.size());
  for (size_t p = 0; p < params.size(); ++p) {
    Tensor analytic = *grads[p];  // copy: perturbing params overwrites them
    Tensor* param = params[p];
    const int64_t count = param->num_elements();
    const int64_t pstep = std::max<int64_t>(1, count / 48);
    for (int64_t i = 0; i < count; i += pstep) {
      const float saved = param->at(i);
      param->at(i) = saved + epsilon;
      const double up = Dot(layer->Forward(input, false), projection);
      param->at(i) = saved - epsilon;
      const double down = Dot(layer->Forward(input, false), projection);
      param->at(i) = saved;
      const double numeric = (up - down) / (2.0 * epsilon);
      EXPECT_NEAR(analytic.at(i), numeric,
                  tolerance * (std::abs(numeric) + 1.0))
          << "param " << p << " coordinate " << i;
    }
  }
}

}  // namespace adr::testutil

#endif  // ADR_TESTS_GRADIENT_CHECK_H_
