// Differential golden-kernel tests for the SIMD layer (tensor/simd.h).
//
// Every backend available on this build + machine (scalar always; avx2 or
// neon when present) is swept over remainder-lane shapes and compared
// against double-precision references or the scalar backend, with the
// per-kernel tolerances documented in tests/kernel_harness.h and DESIGN.md
// section 6.3. The suite closes with a finite-difference gradient check of
// ReuseConv2d running end-to-end on the active (SIMD) backend.

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/clustered_matmul.h"
#include "core/reuse_backward.h"
#include "core/reuse_conv2d.h"
#include "core/subvector_clustering.h"
#include "clustering/lsh.h"
#include "clustering/normalize.h"
#include "tensor/gemm.h"
#include "tensor/simd.h"
#include "tensor/tensor_ops.h"
#include "tests/gradient_check.h"
#include "tests/kernel_harness.h"
#include "util/rng.h"

namespace adr {
namespace {

using testutil::AbsDot;
using testutil::Backends;
using testutil::RandomVector;
using testutil::ReductionTolerance;
using testutil::RefDot;
using testutil::RefGemm;
using testutil::RefSquaredNorm;
using testutil::RemainderSizes;

TEST(GoldenKernels, AtLeastScalarIsAvailable) {
  ASSERT_FALSE(Backends().empty());
  EXPECT_EQ(Backends().front(), &simd::Scalar());
  EXPECT_EQ(simd::Scalar().isa, simd::Isa::kScalar);
  // Every backend reports a sane lane width and a name.
  for (const simd::Kernels* backend : Backends()) {
    EXPECT_GE(backend->width, 1) << backend->name;
    EXPECT_NE(backend->name, nullptr);
  }
}

TEST(GoldenKernels, DotMatchesDoubleReference) {
  for (const simd::Kernels* backend : Backends()) {
    for (const int64_t n : RemainderSizes()) {
      const std::vector<float> a = RandomVector(n, 100 + n);
      const std::vector<float> b = RandomVector(n, 200 + n);
      const double expected = RefDot(a.data(), b.data(), n);
      const double tolerance = ReductionTolerance(AbsDot(a.data(), b.data(), n), n);
      EXPECT_NEAR(backend->dot(a.data(), b.data(), n), expected, tolerance)
          << backend->name << " n=" << n;
    }
  }
}

TEST(GoldenKernels, SquaredNormMatchesDoubleReference) {
  for (const simd::Kernels* backend : Backends()) {
    for (const int64_t n : RemainderSizes()) {
      const std::vector<float> a = RandomVector(n, 300 + n);
      const double expected = RefSquaredNorm(a.data(), n);
      const double tolerance = ReductionTolerance(expected, n);
      EXPECT_NEAR(backend->squared_norm(a.data(), n), expected, tolerance)
          << backend->name << " n=" << n;
    }
  }
}

TEST(GoldenKernels, AddAndScaleMatchScalarBitwise) {
  for (const simd::Kernels* backend : Backends()) {
    for (const int64_t n : RemainderSizes()) {
      const std::vector<float> x = RandomVector(n, 400 + n);
      std::vector<float> y = RandomVector(n, 500 + n);
      std::vector<float> actual = y;
      backend->add(x.data(), actual.data(), n);
      for (int64_t i = 0; i < n; ++i) {
        EXPECT_EQ(actual[i], y[i] + x[i])
            << backend->name << " add n=" << n << " i=" << i;
      }
      actual = y;
      backend->scale(0.37f, actual.data(), n);
      for (int64_t i = 0; i < n; ++i) {
        EXPECT_EQ(actual[i], y[i] * 0.37f)
            << backend->name << " scale n=" << n << " i=" << i;
      }
    }
  }
}

TEST(GoldenKernels, CopyIsBitwiseExactAndLeavesTailUntouched) {
  // GatherHits in the cluster-reuse cache depends on copy being a pure
  // bitwise move on every backend.
  for (const simd::Kernels* backend : Backends()) {
    for (const int64_t n : RemainderSizes()) {
      const std::vector<float> x = RandomVector(n, 800 + n);
      std::vector<float> actual(static_cast<size_t>(n) + 4, 99.0f);
      backend->copy(x.data(), actual.data(), n);
      for (int64_t i = 0; i < n; ++i) {
        EXPECT_EQ(std::memcmp(&actual[static_cast<size_t>(i)],
                              &x[static_cast<size_t>(i)], sizeof(float)),
                  0)
            << backend->name << " copy n=" << n << " i=" << i;
      }
      // No write past n.
      for (size_t i = static_cast<size_t>(n); i < actual.size(); ++i) {
        EXPECT_EQ(actual[i], 99.0f) << backend->name << " copy n=" << n;
      }
    }
  }
}

TEST(GoldenKernels, AxpyMatchesScalarWithinUlps) {
  const float s = -1.73f;
  for (const simd::Kernels* backend : Backends()) {
    for (const int64_t n : RemainderSizes()) {
      const std::vector<float> x = RandomVector(n, 600 + n);
      const std::vector<float> y = RandomVector(n, 700 + n);
      std::vector<float> actual = y;
      backend->axpy(s, x.data(), actual.data(), n);
      for (int64_t i = 0; i < n; ++i) {
        // FMA fuses the multiply-add; allow a few ULPs around the
        // double-precision result.
        const double expected =
            static_cast<double>(s) * x[i] + static_cast<double>(y[i]);
        EXPECT_NEAR(actual[i], expected, 1e-6 * (std::abs(expected) + 1.0))
            << backend->name << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(GoldenKernels, GemmBlockSweepWithLeadingDims) {
  // Leading dimensions strictly larger than the logical widths catch
  // stride bugs; m sweeps every row-tile remainder (R = 4 tiles).
  const std::vector<int64_t> ms = {1, 2, 3, 4, 5, 6, 7, 8, 13};
  const std::vector<int64_t> ks = {1, 3, 17, 64};
  const std::vector<int64_t> ns = {1, 3, 7, 8, 15, 16, 17, 33};
  for (const simd::Kernels* backend : Backends()) {
    for (const int64_t m : ms) {
      for (const int64_t k : ks) {
        for (const int64_t n : ns) {
          const int64_t lda = k + 3, ldb = n + 5, ldc = n + 2;
          const std::vector<float> a =
              RandomVector(m * lda, 1000 + m * 31 + k * 7 + n);
          const std::vector<float> b =
              RandomVector(k * ldb, 2000 + m + k * 13 + n * 3);
          // gemm_block accumulates: start from a non-trivial C.
          const std::vector<float> c0 =
              RandomVector(m * ldc, 3000 + m + k + n);
          std::vector<float> c = c0;
          backend->gemm_block(a.data(), lda, b.data(), ldb, c.data(), ldc,
                              m, k, n);
          std::vector<double> expected, abs_bound;
          RefGemm(a.data(), lda, b.data(), ldb, m, k, n, &expected,
                  &abs_bound);
          for (int64_t i = 0; i < m; ++i) {
            for (int64_t j = 0; j < n; ++j) {
              const double want =
                  expected[static_cast<size_t>(i * n + j)] +
                  c0[static_cast<size_t>(i * ldc + j)];
              // The accumulate-into-C add rounds at the magnitude of C too.
              const double tolerance = ReductionTolerance(
                  abs_bound[static_cast<size_t>(i * n + j)] +
                      std::abs(
                          c0[static_cast<size_t>(i * ldc + j)]),
                  k + 1);
              EXPECT_NEAR(c[static_cast<size_t>(i * ldc + j)], want,
                          tolerance)
                  << backend->name << " m=" << m << " k=" << k << " n=" << n
                  << " at (" << i << "," << j << ")";
            }
          }
          // Padding between rows must be untouched.
          for (int64_t i = 0; i < m; ++i) {
            for (int64_t j = n; j < ldc; ++j) {
              EXPECT_EQ(c[static_cast<size_t>(i * ldc + j)],
                        c0[static_cast<size_t>(i * ldc + j)])
                  << backend->name << " padding at (" << i << "," << j << ")";
            }
          }
        }
      }
    }
  }
}

// Full Gemm/GemmTransA/GemmTransB under every backend vs the scalar
// triple-loop reference, at remainder and block-crossing shapes.
class GemmGoldenSweep
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t>> {
};

TEST_P(GemmGoldenSweep, AllBackendsMatchReference) {
  const auto [m, k, n] = GetParam();
  const std::vector<float> a = RandomVector(m * k, 40 + m + k);
  const std::vector<float> b = RandomVector(k * n, 50 + k + n);
  std::vector<float> expected(static_cast<size_t>(m * n));
  GemmReference(a.data(), b.data(), expected.data(), m, k, n);
  // Column max |A||B| bound: one tolerance per output (worst case row).
  double abs_bound = 0.0;
  for (int64_t i = 0; i < m * k; ++i) abs_bound += std::abs(a[i]);
  for (const simd::Kernels* backend : Backends()) {
    simd::ScopedKernelsOverride override_backend(*backend);
    std::vector<float> actual(static_cast<size_t>(m * n), 7.25f);
    Gemm(a.data(), b.data(), actual.data(), m, k, n);
    for (int64_t i = 0; i < m * n; ++i) {
      EXPECT_NEAR(actual[static_cast<size_t>(i)],
                  expected[static_cast<size_t>(i)],
                  1e-4 * (std::abs(expected[static_cast<size_t>(i)]) +
                          std::sqrt(static_cast<double>(k))))
          << backend->name << " m=" << m << " k=" << k << " n=" << n
          << " flat index " << i;
    }
    // accumulate=true adds on top of the previous result.
    Gemm(a.data(), b.data(), actual.data(), m, k, n, /*accumulate=*/true);
    for (int64_t i = 0; i < m * n; ++i) {
      EXPECT_NEAR(actual[static_cast<size_t>(i)],
                  2.0 * expected[static_cast<size_t>(i)],
                  2e-4 * (std::abs(expected[static_cast<size_t>(i)]) +
                          std::sqrt(static_cast<double>(k))))
          << backend->name << " accumulate, flat index " << i;
    }
  }
}

TEST_P(GemmGoldenSweep, TransposedVariantsMatchReference) {
  const auto [m, k, n] = GetParam();
  const std::vector<float> at = RandomVector(k * m, 60 + m + k);  // KxM
  const std::vector<float> b = RandomVector(k * n, 70 + k + n);   // KxN
  const std::vector<float> bt = RandomVector(n * k, 80 + k + n);  // NxK
  const std::vector<float> a = RandomVector(m * k, 90 + m + n);   // MxK
  // Explicit transposes for the reference.
  std::vector<float> a_mk(static_cast<size_t>(m * k));
  for (int64_t i = 0; i < k; ++i) {
    for (int64_t j = 0; j < m; ++j) a_mk[j * k + i] = at[i * m + j];
  }
  std::vector<float> b_kn(static_cast<size_t>(k * n));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < k; ++j) b_kn[j * n + i] = bt[i * k + j];
  }
  std::vector<float> expected_ta(static_cast<size_t>(m * n));
  GemmReference(a_mk.data(), b.data(), expected_ta.data(), m, k, n);
  std::vector<float> expected_tb(static_cast<size_t>(m * n));
  GemmReference(a.data(), b_kn.data(), expected_tb.data(), m, k, n);
  for (const simd::Kernels* backend : Backends()) {
    simd::ScopedKernelsOverride override_backend(*backend);
    std::vector<float> actual(static_cast<size_t>(m * n));
    GemmTransA(at.data(), b.data(), actual.data(), m, k, n);
    for (int64_t i = 0; i < m * n; ++i) {
      EXPECT_NEAR(actual[static_cast<size_t>(i)],
                  expected_ta[static_cast<size_t>(i)],
                  1e-4 * (std::abs(expected_ta[static_cast<size_t>(i)]) +
                          std::sqrt(static_cast<double>(k))))
          << backend->name << " TransA flat index " << i;
    }
    GemmTransB(a.data(), bt.data(), actual.data(), m, k, n);
    for (int64_t i = 0; i < m * n; ++i) {
      EXPECT_NEAR(actual[static_cast<size_t>(i)],
                  expected_tb[static_cast<size_t>(i)],
                  1e-4 * (std::abs(expected_tb[static_cast<size_t>(i)]) +
                          std::sqrt(static_cast<double>(k))))
          << backend->name << " TransB flat index " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmGoldenSweep,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 3, 7),
                      std::make_tuple(3, 7, 17), std::make_tuple(7, 17, 3),
                      std::make_tuple(17, 7, 1), std::make_tuple(17, 17, 17),
                      std::make_tuple(5, 129, 33),
                      std::make_tuple(65, 40, 31),
                      std::make_tuple(9, 257, 15)));

TEST(GoldenKernels, LshHashSignsMatchDoubleProjection) {
  const int64_t dim = 37;  // remainder lanes in the projection GEMM
  const int num_hashes = 24;
  LshFamily family;
  ASSERT_TRUE(LshFamily::Create(dim, num_hashes, 17, &family).ok());
  const std::vector<float>& planes_t = family.hyperplanes_t();
  for (const simd::Kernels* backend : Backends()) {
    simd::ScopedKernelsOverride override_backend(*backend);
    for (int trial = 0; trial < 32; ++trial) {
      const std::vector<float> row =
          RandomVector(dim, 4000 + static_cast<uint64_t>(trial));
      const LshSignature sig = family.Hash(row.data());
      for (int h = 0; h < num_hashes; ++h) {
        double projection = 0.0;
        for (int64_t j = 0; j < dim; ++j) {
          projection += static_cast<double>(row[static_cast<size_t>(j)]) *
                        planes_t[static_cast<size_t>(j) * num_hashes + h];
        }
        // Skip sign checks inside the rounding ambiguity band.
        if (std::abs(projection) < 1e-4) continue;
        const bool bit = (sig.words[h >> 6] >> (h & 63)) & 1;
        EXPECT_EQ(bit, projection > 0.0)
            << backend->name << " trial=" << trial << " h=" << h;
      }
    }
  }
}

TEST(GoldenKernels, LshBatchedHashMatchesPerRowOnEveryBackend) {
  const int64_t dim = 29, rows = 21;
  LshFamily family;
  ASSERT_TRUE(LshFamily::Create(dim, 48, 23, &family).ok());
  const std::vector<float> data = RandomVector(rows * dim, 4500);
  for (const simd::Kernels* backend : Backends()) {
    simd::ScopedKernelsOverride override_backend(*backend);
    std::vector<LshSignature> batched;
    family.HashRows(data.data(), rows, dim, &batched);
    for (int64_t i = 0; i < rows; ++i) {
      EXPECT_EQ(batched[static_cast<size_t>(i)],
                family.Hash(data.data() + i * dim))
          << backend->name << " row " << i;
    }
  }
}

TEST(GoldenKernels, NormalizeRowsMatchesDoubleReference) {
  for (const simd::Kernels* backend : Backends()) {
    simd::ScopedKernelsOverride override_backend(*backend);
    for (const int64_t dim : {int64_t{1}, int64_t{3}, int64_t{7}, int64_t{17},
                              int64_t{33}, int64_t{100}}) {
      const int64_t rows = 5;
      const int64_t stride = dim + 2;
      std::vector<float> data = RandomVector(rows * stride, 5000 + dim);
      // Row 2 is exactly zero: must stay untouched.
      for (int64_t j = 0; j < dim; ++j) data[static_cast<size_t>(2 * stride + j)] = 0.0f;
      std::vector<float> original = data;
      NormalizeRowsInPlace(data.data(), rows, dim, stride);
      for (int64_t i = 0; i < rows; ++i) {
        double norm = 0.0;
        for (int64_t j = 0; j < dim; ++j) {
          const double v = original[static_cast<size_t>(i * stride + j)];
          norm += v * v;
        }
        norm = std::sqrt(norm);
        for (int64_t j = 0; j < dim; ++j) {
          const float got = data[static_cast<size_t>(i * stride + j)];
          const float before = original[static_cast<size_t>(i * stride + j)];
          if (i == 2) {
            EXPECT_EQ(got, before) << backend->name << " zero row, j=" << j;
          } else {
            EXPECT_NEAR(got, before / norm, 1e-5)
                << backend->name << " dim=" << dim << " row=" << i
                << " j=" << j;
          }
        }
        // Stride padding untouched.
        for (int64_t j = dim; j < stride; ++j) {
          EXPECT_EQ(data[static_cast<size_t>(i * stride + j)],
                    original[static_cast<size_t>(i * stride + j)])
              << backend->name << " padding";
        }
      }
    }
  }
}

// The clustered forward (hash + centroid GEMM + gather/scatter) and the
// reuse backward (per-cluster sum/average reductions + scatter) compared
// across backends: clustering must be identical, tensors within tolerance.
TEST(GoldenKernels, ClusteredMatmulAndBackwardScalarVsSimd) {
  const int64_t n = 40, k = 20, m = 6, l = 7;  // blocks of length 7, 7, 6
  Rng rng(31);
  Tensor x = Tensor::RandomGaussian(Shape({n, k}), &rng);
  Tensor weight = Tensor::RandomGaussian(Shape({k, m}), &rng);
  Tensor dy = Tensor::RandomGaussian(Shape({n, m}), &rng);
  auto families = BlockLshFamilies::Create(k, l, 12, 37);
  ASSERT_TRUE(families.ok());

  simd::ScopedKernelsOverride scalar_override(simd::Scalar());
  ForwardReuseResult scalar_forward =
      ClusteredMatmulForward(*families, x.data(), n, weight, nullptr, n,
                             nullptr);
  BackwardReuseResult scalar_backward =
      ReuseBackward(scalar_forward.clustering, weight, dy);

  for (const simd::Kernels* backend : Backends()) {
    simd::ScopedKernelsOverride override_backend(*backend);
    ForwardReuseResult forward =
        ClusteredMatmulForward(*families, x.data(), n, weight, nullptr, n,
                               nullptr);
    ASSERT_EQ(forward.clustering.blocks.size(),
              scalar_forward.clustering.blocks.size());
    for (size_t bi = 0; bi < forward.clustering.blocks.size(); ++bi) {
      EXPECT_EQ(forward.clustering.blocks[bi].clustering.assignment,
                scalar_forward.clustering.blocks[bi].clustering.assignment)
          << backend->name << " block " << bi
          << ": clustering diverged between backends";
    }
    EXPECT_LT(MaxAbsDiff(forward.y_rows, scalar_forward.y_rows), 1e-3f)
        << backend->name;

    BackwardReuseResult backward =
        ReuseBackward(forward.clustering, weight, dy);
    EXPECT_LT(MaxAbsDiff(backward.grad_weight, scalar_backward.grad_weight),
              1e-3f)
        << backend->name;
    EXPECT_LT(MaxAbsDiff(backward.grad_x, scalar_backward.grad_x), 1e-3f)
        << backend->name;
    EXPECT_LT(MaxAbsDiff(backward.grad_bias, scalar_backward.grad_bias),
              1e-3f)
        << backend->name;
  }
}

// End-to-end: finite-difference gradient check of ReuseConv2d with the
// active (SIMD) backend, near-singleton clustering so the reuse backward
// is the exact gradient of the clustered forward.
TEST(GoldenKernels, ReuseConv2dGradientCheckWithSimdActive) {
  Conv2dConfig config;
  config.in_channels = 2;
  config.out_channels = 3;
  config.kernel = 3;
  config.stride = 1;
  config.pad = 1;
  config.in_height = 5;
  config.in_width = 5;
  ReuseConfig reuse;
  reuse.sub_vector_length = 0;
  reuse.num_hashes = 96;
  Rng rng(41);
  ReuseConv2d layer("conv_simd", config, reuse, &rng);
  Rng data_rng(42);
  Tensor input = Tensor::RandomGaussian(Shape({1, 2, 5, 5}), &data_rng);
  testutil::CheckGradients(&layer, input, /*tolerance=*/5e-2, /*epsilon=*/1e-3f,
                           /*seed=*/7, /*training=*/true);
}

}  // namespace
}  // namespace adr
