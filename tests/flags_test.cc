// Tests for the command-line flag parser.

#include <gtest/gtest.h>

#include "util/flags.h"

namespace adr {
namespace {

TEST(FlagsTest, ParsesAllTypesEqualsForm) {
  int64_t steps = 0;
  double rate = 0.0;
  bool verbose = false;
  std::string name;
  FlagSet flags;
  flags.AddInt64("steps", &steps, "");
  flags.AddDouble("rate", &rate, "");
  flags.AddBool("verbose", &verbose, "");
  flags.AddString("name", &name, "");
  const char* argv[] = {"prog", "--steps=42", "--rate=0.5",
                        "--verbose=true", "--name=cifarnet"};
  ASSERT_TRUE(flags.Parse(5, argv).ok());
  EXPECT_EQ(steps, 42);
  EXPECT_DOUBLE_EQ(rate, 0.5);
  EXPECT_TRUE(verbose);
  EXPECT_EQ(name, "cifarnet");
}

TEST(FlagsTest, ParsesSpaceSeparatedValues) {
  int64_t steps = 0;
  FlagSet flags;
  flags.AddInt64("steps", &steps, "");
  const char* argv[] = {"prog", "--steps", "7"};
  ASSERT_TRUE(flags.Parse(3, argv).ok());
  EXPECT_EQ(steps, 7);
}

TEST(FlagsTest, BareAndNegatedBooleans) {
  bool a = false, b = true;
  FlagSet flags;
  flags.AddBool("alpha", &a, "");
  flags.AddBool("beta", &b, "");
  const char* argv[] = {"prog", "--alpha", "--no-beta"};
  ASSERT_TRUE(flags.Parse(3, argv).ok());
  EXPECT_TRUE(a);
  EXPECT_FALSE(b);
}

TEST(FlagsTest, CollectsPositionals) {
  FlagSet flags;
  int64_t x = 0;
  flags.AddInt64("x", &x, "");
  const char* argv[] = {"prog", "first", "--x=1", "second"};
  ASSERT_TRUE(flags.Parse(4, argv).ok());
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"first", "second"}));
}

TEST(FlagsTest, RejectsUnknownFlag) {
  FlagSet flags;
  const char* argv[] = {"prog", "--mystery=1"};
  EXPECT_EQ(flags.Parse(2, argv).code(), StatusCode::kInvalidArgument);
}

TEST(FlagsTest, RejectsMalformedNumbers) {
  int64_t steps = 0;
  double rate = 0.0;
  FlagSet flags;
  flags.AddInt64("steps", &steps, "");
  flags.AddDouble("rate", &rate, "");
  const char* bad_int[] = {"prog", "--steps=abc"};
  EXPECT_FALSE(flags.Parse(2, bad_int).ok());
  const char* bad_double[] = {"prog", "--rate=1.2.3"};
  EXPECT_FALSE(flags.Parse(2, bad_double).ok());
}

TEST(FlagsTest, RejectsMissingValue) {
  int64_t steps = 0;
  FlagSet flags;
  flags.AddInt64("steps", &steps, "");
  const char* argv[] = {"prog", "--steps"};
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(FlagsTest, RejectsBadBoolValue) {
  bool flag = false;
  FlagSet flags;
  flags.AddBool("flag", &flag, "");
  const char* argv[] = {"prog", "--flag=maybe"};
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(FlagsTest, UsageListsFlags) {
  int64_t steps = 0;
  FlagSet flags;
  flags.AddInt64("steps", &steps, "number of steps");
  const std::string usage = flags.Usage("prog");
  EXPECT_NE(usage.find("--steps"), std::string::npos);
  EXPECT_NE(usage.find("number of steps"), std::string::npos);
}

}  // namespace
}  // namespace adr
