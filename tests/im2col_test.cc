// Tests for ConvGeometry, Im2Col and Col2Im, including the adjoint
// property <Im2Col(x), g> == <x, Col2Im(g)> that backpropagation relies on.

#include <tuple>

#include <gtest/gtest.h>

#include "tensor/im2col.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace adr {
namespace {

ConvGeometry MakeGeometry(int64_t batch, int64_t channels, int64_t size,
                          int64_t kernel, int64_t stride, int64_t pad) {
  ConvGeometry geo;
  geo.batch = batch;
  geo.in_channels = channels;
  geo.in_height = size;
  geo.in_width = size;
  geo.kernel_h = kernel;
  geo.kernel_w = kernel;
  geo.stride = stride;
  geo.pad = pad;
  return geo;
}

TEST(ConvGeometryTest, OutputDims) {
  const ConvGeometry geo = MakeGeometry(2, 3, 32, 5, 1, 2);
  EXPECT_EQ(geo.out_height(), 32);
  EXPECT_EQ(geo.out_width(), 32);
  EXPECT_EQ(geo.unfolded_rows(), 2 * 32 * 32);
  EXPECT_EQ(geo.unfolded_cols(), 3 * 5 * 5);
  EXPECT_EQ(geo.rows_per_image(), 32 * 32);
}

TEST(ConvGeometryTest, StridedOutputDims) {
  const ConvGeometry geo = MakeGeometry(1, 3, 227, 11, 4, 0);
  EXPECT_EQ(geo.out_height(), 55);
  EXPECT_EQ(geo.unfolded_cols(), 363);  // the paper's AlexNet conv1 K
}

TEST(ConvGeometryTest, ValidationCatchesBadInputs) {
  ConvGeometry geo = MakeGeometry(1, 1, 8, 3, 1, 0);
  EXPECT_TRUE(geo.Validate().ok());
  geo.batch = 0;
  EXPECT_EQ(geo.Validate().code(), StatusCode::kInvalidArgument);
  geo = MakeGeometry(1, 1, 8, 0, 1, 0);
  EXPECT_FALSE(geo.Validate().ok());
  geo = MakeGeometry(1, 1, 8, 3, 0, 0);
  EXPECT_FALSE(geo.Validate().ok());
  geo = MakeGeometry(1, 1, 8, 3, 1, -1);
  EXPECT_FALSE(geo.Validate().ok());
  geo = MakeGeometry(1, 1, 2, 5, 1, 0);  // kernel larger than input
  EXPECT_FALSE(geo.Validate().ok());
  geo = MakeGeometry(1, 1, 8, 3, 2, 0);  // (8-3) % 2 != 0
  EXPECT_FALSE(geo.Validate().ok());
}

TEST(Im2ColTest, OneByOneKernelIsTransposedCopy) {
  const ConvGeometry geo = MakeGeometry(1, 2, 3, 1, 1, 0);
  Rng rng(1);
  Tensor input = Tensor::RandomGaussian(
      Shape({1, 2, 3, 3}), &rng);
  Tensor cols(Shape({geo.unfolded_rows(), geo.unfolded_cols()}));
  Im2Col(geo, input, &cols);
  // Row p (output pixel p) holds [channel0[p], channel1[p]].
  for (int64_t p = 0; p < 9; ++p) {
    EXPECT_EQ(cols.at(p, 0), input.at(p));
    EXPECT_EQ(cols.at(p, 1), input.at(9 + p));
  }
}

TEST(Im2ColTest, KnownPatchLayout) {
  // 1x1x3x3 image with values 0..8, 2x2 kernel, stride 1, no pad.
  Tensor input(Shape({1, 1, 3, 3}), {0, 1, 2, 3, 4, 5, 6, 7, 8});
  const ConvGeometry geo = MakeGeometry(1, 1, 3, 2, 1, 0);
  Tensor cols(Shape({4, 4}));
  Im2Col(geo, input, &cols);
  // Patch at (0,0): 0 1 3 4
  EXPECT_EQ(cols.at(0, 0), 0.0f);
  EXPECT_EQ(cols.at(0, 1), 1.0f);
  EXPECT_EQ(cols.at(0, 2), 3.0f);
  EXPECT_EQ(cols.at(0, 3), 4.0f);
  // Patch at (1,1): 4 5 7 8
  EXPECT_EQ(cols.at(3, 0), 4.0f);
  EXPECT_EQ(cols.at(3, 3), 8.0f);
}

TEST(Im2ColTest, ZeroPaddingProducesZeros) {
  Tensor input = Tensor::Ones(Shape({1, 1, 2, 2}));
  const ConvGeometry geo = MakeGeometry(1, 1, 2, 3, 1, 1);
  Tensor cols(Shape({geo.unfolded_rows(), geo.unfolded_cols()}));
  Im2Col(geo, input, &cols);
  // Top-left patch: first row and first column of the 3x3 window are pad.
  EXPECT_EQ(cols.at(0, 0), 0.0f);  // (-1,-1)
  EXPECT_EQ(cols.at(0, 4), 1.0f);  // (0,0)
}

TEST(Im2ColTest, BatchRowsAreContiguousPerImage) {
  const ConvGeometry geo = MakeGeometry(2, 1, 4, 2, 2, 0);
  Rng rng(2);
  Tensor input = Tensor::RandomGaussian(Shape({2, 1, 4, 4}), &rng);
  Tensor cols(Shape({geo.unfolded_rows(), geo.unfolded_cols()}));
  Im2Col(geo, input, &cols);
  // Second image's first patch starts at row rows_per_image().
  const int64_t row = geo.rows_per_image();
  EXPECT_EQ(cols.at(row, 0), input.at4(1, 0, 0, 0));
}

class Im2ColAdjointSweep
    : public ::testing::TestWithParam<
          std::tuple<int64_t, int64_t, int64_t, int64_t, int64_t>> {};

TEST_P(Im2ColAdjointSweep, Col2ImIsAdjointOfIm2Col) {
  const auto [channels, size, kernel, stride, pad] = GetParam();
  const ConvGeometry geo = MakeGeometry(2, channels, size, kernel, stride,
                                        pad);
  ASSERT_TRUE(geo.Validate().ok());
  Rng rng(3);
  Tensor x = Tensor::RandomGaussian(
      Shape({2, channels, size, size}), &rng);
  Tensor g = Tensor::RandomGaussian(
      Shape({geo.unfolded_rows(), geo.unfolded_cols()}), &rng);

  Tensor cols(Shape({geo.unfolded_rows(), geo.unfolded_cols()}));
  Im2Col(geo, x, &cols);
  Tensor folded(Shape({2, channels, size, size}));
  Col2Im(geo, g, &folded);

  // <Im2Col(x), g> must equal <x, Col2Im(g)>.
  double lhs = 0.0, rhs = 0.0;
  for (int64_t i = 0; i < cols.num_elements(); ++i) {
    lhs += static_cast<double>(cols.at(i)) * g.at(i);
  }
  for (int64_t i = 0; i < x.num_elements(); ++i) {
    rhs += static_cast<double>(x.at(i)) * folded.at(i);
  }
  EXPECT_NEAR(lhs, rhs, 1e-2 * (std::abs(lhs) + 1.0));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2ColAdjointSweep,
    ::testing::Values(std::make_tuple(1, 6, 3, 1, 0),
                      std::make_tuple(3, 8, 3, 1, 1),
                      std::make_tuple(2, 9, 3, 2, 0),
                      std::make_tuple(4, 7, 1, 1, 0),
                      std::make_tuple(1, 11, 5, 2, 1),
                      std::make_tuple(3, 12, 4, 4, 0)));

TEST(Col2ImTest, OverlappingPatchesAccumulate) {
  // 3x3 input, 2x2 kernel, stride 1: center pixel (1,1) appears in all
  // four patches.
  const ConvGeometry geo = MakeGeometry(1, 1, 3, 2, 1, 0);
  Tensor g = Tensor::Ones(Shape({4, 4}));
  Tensor folded(Shape({1, 1, 3, 3}));
  Col2Im(geo, g, &folded);
  EXPECT_EQ(folded.at4(0, 0, 1, 1), 4.0f);  // in 4 patches
  EXPECT_EQ(folded.at4(0, 0, 0, 0), 1.0f);  // in 1 patch
  EXPECT_EQ(folded.at4(0, 0, 0, 1), 2.0f);  // in 2 patches
}

}  // namespace
}  // namespace adr
