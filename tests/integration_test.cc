// End-to-end integration tests crossing all modules: full training runs,
// determinism, checkpoint round trips through training, and reuse twins
// tracking dense models.

#include <gtest/gtest.h>

#include "core/reuse_conv2d.h"
#include "data/dataloader.h"
#include "data/synthetic_images.h"
#include "models/models.h"
#include "nn/checkpoint.h"
#include "nn/lr_schedule.h"
#include "nn/metrics.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"
#include "tensor/tensor_ops.h"

namespace adr {
namespace {

SyntheticImageDataset EasyDataset(uint64_t seed = 11) {
  SyntheticImageConfig config;
  config.num_classes = 4;
  config.num_samples = 256;
  config.height = 16;
  config.width = 16;
  config.structured_noise = 0.15f;
  config.white_noise = 0.02f;
  config.seed = seed;
  return *SyntheticImageDataset::Create(config);
}

ModelOptions SmallCifar() {
  ModelOptions options;
  options.num_classes = 4;
  options.input_size = 16;
  options.width = 0.25;
  options.fc_width = 0.1;
  options.seed = 3;
  return options;
}

double TrainAndEvaluate(Model* model, const SyntheticImageDataset& dataset,
                        int steps, uint64_t loader_seed = 7) {
  DataLoader loader(&dataset, 16, true, loader_seed);
  Adam optimizer(0.002f);
  Batch batch;
  for (int i = 0; i < steps; ++i) {
    loader.Next(&batch);
    TrainStep(&model->network, &optimizer, batch);
  }
  return EvaluateAccuracy(&model->network, dataset, 16, 128);
}

TEST(IntegrationTest, DenseCifarNetLearnsEasyTask) {
  const SyntheticImageDataset dataset = EasyDataset();
  auto model = BuildCifarNet(SmallCifar());
  ASSERT_TRUE(model.ok());
  EXPECT_GT(TrainAndEvaluate(&*model, dataset, 120), 0.9);
}

TEST(IntegrationTest, BatchNormCifarNetLearns) {
  const SyntheticImageDataset dataset = EasyDataset();
  ModelOptions options = SmallCifar();
  options.batch_norm = true;
  auto model = BuildCifarNet(options);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(TrainAndEvaluate(&*model, dataset, 120), 0.9);
}

TEST(IntegrationTest, ReuseCifarNetLearnsEasyTask) {
  const SyntheticImageDataset dataset = EasyDataset();
  ModelOptions options = SmallCifar();
  options.use_reuse = true;
  options.reuse.sub_vector_length = 25;
  options.reuse.num_hashes = 12;
  auto model = BuildCifarNet(options);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(TrainAndEvaluate(&*model, dataset, 150), 0.85);
  // And it actually reused computation while doing so.
  for (ReuseConv2d* layer : model->reuse_layers) {
    EXPECT_GT(layer->stats().MacsSavedFraction(), 0.1);
  }
}

TEST(IntegrationTest, TrainingIsDeterministic) {
  const SyntheticImageDataset dataset = EasyDataset();
  auto a = BuildCifarNet(SmallCifar());
  auto b = BuildCifarNet(SmallCifar());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const double acc_a = TrainAndEvaluate(&*a, dataset, 40);
  const double acc_b = TrainAndEvaluate(&*b, dataset, 40);
  EXPECT_EQ(acc_a, acc_b);
  const std::vector<Tensor*> pa = a->network.Parameters();
  const std::vector<Tensor*> pb = b->network.Parameters();
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(MaxAbsDiff(*pa[i], *pb[i]), 0.0f) << "parameter " << i;
  }
}

TEST(IntegrationTest, ReuseTrainingIsDeterministic) {
  const SyntheticImageDataset dataset = EasyDataset();
  ModelOptions options = SmallCifar();
  options.use_reuse = true;
  options.reuse.num_hashes = 10;
  auto a = BuildCifarNet(options);
  auto b = BuildCifarNet(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(TrainAndEvaluate(&*a, dataset, 30),
            TrainAndEvaluate(&*b, dataset, 30));
}

TEST(IntegrationTest, CheckpointMidTrainingResumes) {
  const SyntheticImageDataset dataset = EasyDataset();
  auto model = BuildCifarNet(SmallCifar());
  ASSERT_TRUE(model.ok());
  TrainAndEvaluate(&*model, dataset, 40);
  const std::string path = testing::TempDir() + "/resume.ckpt";
  ASSERT_TRUE(SaveCheckpoint(model->network, path).ok());

  ModelOptions fresh_options = SmallCifar();
  fresh_options.seed = 123;
  auto resumed = BuildCifarNet(fresh_options);
  ASSERT_TRUE(resumed.ok());
  ASSERT_TRUE(LoadCheckpoint(path, &resumed->network).ok());
  // Identical parameters => identical evaluation.
  EXPECT_EQ(EvaluateAccuracy(&model->network, dataset, 16, 128),
            EvaluateAccuracy(&resumed->network, dataset, 16, 128));
  std::remove(path.c_str());
}

TEST(IntegrationTest, LrScheduleDrivesTraining) {
  const SyntheticImageDataset dataset = EasyDataset();
  auto model = BuildCifarNet(SmallCifar());
  ASSERT_TRUE(model.ok());
  DataLoader loader(&dataset, 16, true, 7);
  Adam optimizer(1.0f);  // overwritten by the schedule every step
  WarmupCosineLr schedule(0.003f, 10, 120);
  TrainingHistory history;
  Batch batch;
  for (int64_t step = 0; step < 120; ++step) {
    schedule.Apply(step, &optimizer);
    loader.Next(&batch);
    const StepResult result = TrainStep(&model->network, &optimizer, batch);
    TrainingHistory::Entry entry;
    entry.step = step;
    entry.loss = result.loss;
    entry.train_accuracy = result.accuracy;
    entry.learning_rate = optimizer.learning_rate();
    history.Record(entry);
  }
  EXPECT_GT(EvaluateAccuracy(&model->network, dataset, 16, 128), 0.85);
  EXPECT_EQ(history.size(), 120u);
  EXPECT_LT(history.RecentMeanLoss(10), history.entries()[5].loss);
}

TEST(IntegrationTest, ConfusionMatrixAgreesWithAccuracy) {
  const SyntheticImageDataset dataset = EasyDataset();
  auto model = BuildCifarNet(SmallCifar());
  ASSERT_TRUE(model.ok());
  TrainAndEvaluate(&*model, dataset, 100);

  ConfusionMatrix cm(4);
  int64_t correct = 0, total = 0;
  for (int64_t start = 0; start + 16 <= 128; start += 16) {
    const Batch batch = MakeBatch(dataset, start, 16);
    const Tensor logits = model->network.Forward(batch.images, false);
    cm.AddBatch(logits, batch.labels);
    const LossResult loss = SoftmaxCrossEntropy(logits, batch.labels);
    correct += loss.num_correct;
    total += batch.size();
  }
  EXPECT_DOUBLE_EQ(cm.Accuracy(),
                   static_cast<double>(correct) / static_cast<double>(total));
  EXPECT_EQ(cm.total(), total);
}

TEST(IntegrationTest, AdaptiveReuseOnAlexNetForwardBackward) {
  // Smoke over the deepest geometry pieces: scaled AlexNet in reuse mode
  // runs a full train step without shape errors.
  ModelOptions options;
  options.num_classes = 4;
  options.input_size = 67;
  options.width = 0.125;
  options.fc_width = 0.01;
  options.use_reuse = true;
  options.reuse.num_hashes = 8;
  auto model = BuildAlexNet(options);
  ASSERT_TRUE(model.ok());
  SyntheticImageConfig config;
  config.num_classes = 4;
  config.num_samples = 8;
  config.height = 67;
  config.width = 67;
  config.max_translation = 4;
  auto dataset = SyntheticImageDataset::Create(config);
  ASSERT_TRUE(dataset.ok());
  const Batch batch = MakeBatch(*dataset, 0, 2);
  Adam optimizer(0.002f);
  const StepResult result = TrainStep(&model->network, &optimizer, batch);
  EXPECT_GT(result.loss, 0.0);
}

}  // namespace
}  // namespace adr
