// Tests for the blocked GEMM kernels against the naive reference,
// including a parameterized sweep over awkward (non-block-aligned) sizes.

#include <tuple>

#include <gtest/gtest.h>

#include "tensor/gemm.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace adr {
namespace {

Tensor RandomMatrix(int64_t rows, int64_t cols, uint64_t seed) {
  Rng rng(seed);
  return Tensor::RandomGaussian(Shape({rows, cols}), &rng);
}

TEST(GemmTest, TinyKnownProduct) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  Tensor a(Shape({2, 2}), {1, 2, 3, 4});
  Tensor b(Shape({2, 2}), {5, 6, 7, 8});
  Tensor c(Shape({2, 2}));
  Gemm(a.data(), b.data(), c.data(), 2, 2, 2);
  EXPECT_EQ(c.at(0, 0), 19.0f);
  EXPECT_EQ(c.at(0, 1), 22.0f);
  EXPECT_EQ(c.at(1, 0), 43.0f);
  EXPECT_EQ(c.at(1, 1), 50.0f);
}

TEST(GemmTest, AccumulateAddsIntoC) {
  Tensor a(Shape({1, 1}), {2.0f});
  Tensor b(Shape({1, 1}), {3.0f});
  Tensor c(Shape({1, 1}), {10.0f});
  Gemm(a.data(), b.data(), c.data(), 1, 1, 1, /*accumulate=*/true);
  EXPECT_EQ(c.at(0), 16.0f);
  Gemm(a.data(), b.data(), c.data(), 1, 1, 1, /*accumulate=*/false);
  EXPECT_EQ(c.at(0), 6.0f);
}

TEST(GemmTest, IdentityLeavesMatrixUnchanged) {
  const int64_t n = 37;
  Tensor identity(Shape({n, n}));
  for (int64_t i = 0; i < n; ++i) identity.at(i, i) = 1.0f;
  Tensor x = RandomMatrix(n, n, 5);
  Tensor y(Shape({n, n}));
  Gemm(identity.data(), x.data(), y.data(), n, n, n);
  EXPECT_TRUE(AllClose(y, x));
}

TEST(GemmTransATest, MatchesExplicitTranspose) {
  const int64_t m = 13, k = 29, n = 17;
  Tensor a = RandomMatrix(k, m, 1);  // stored KxM
  Tensor b = RandomMatrix(k, n, 2);
  // Explicit transpose then regular GEMM.
  Tensor at(Shape({m, k}));
  for (int64_t i = 0; i < k; ++i) {
    for (int64_t j = 0; j < m; ++j) at.at(j, i) = a.at(i, j);
  }
  Tensor expected(Shape({m, n}));
  GemmReference(at.data(), b.data(), expected.data(), m, k, n);
  Tensor actual(Shape({m, n}));
  GemmTransA(a.data(), b.data(), actual.data(), m, k, n);
  EXPECT_TRUE(AllClose(actual, expected, 1e-4f, 1e-5f));
}

TEST(GemmTransBTest, MatchesExplicitTranspose) {
  const int64_t m = 11, k = 23, n = 19;
  Tensor a = RandomMatrix(m, k, 3);
  Tensor b = RandomMatrix(n, k, 4);  // stored NxK
  Tensor bt(Shape({k, n}));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < k; ++j) bt.at(j, i) = b.at(i, j);
  }
  Tensor expected(Shape({m, n}));
  GemmReference(a.data(), bt.data(), expected.data(), m, k, n);
  Tensor actual(Shape({m, n}));
  GemmTransB(a.data(), b.data(), actual.data(), m, k, n);
  EXPECT_TRUE(AllClose(actual, expected, 1e-4f, 1e-5f));
}

TEST(GemmTransATest, AccumulateAddsIntoC) {
  Tensor a(Shape({1, 1}), {2.0f});
  Tensor b(Shape({1, 1}), {3.0f});
  Tensor c(Shape({1, 1}), {1.0f});
  GemmTransA(a.data(), b.data(), c.data(), 1, 1, 1, /*accumulate=*/true);
  EXPECT_EQ(c.at(0), 7.0f);
}

TEST(GemmTransBTest, AccumulateAddsIntoC) {
  Tensor a(Shape({1, 1}), {2.0f});
  Tensor b(Shape({1, 1}), {3.0f});
  Tensor c(Shape({1, 1}), {1.0f});
  GemmTransB(a.data(), b.data(), c.data(), 1, 1, 1, /*accumulate=*/true);
  EXPECT_EQ(c.at(0), 7.0f);
}

// Parameterized sweep: blocked kernels must agree with the reference on
// sizes around the block boundaries (64, 128, 256) and degenerate sizes.
class GemmSizeSweep
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t>> {
};

TEST_P(GemmSizeSweep, BlockedMatchesReference) {
  const auto [m, k, n] = GetParam();
  Tensor a = RandomMatrix(m, k, 10 + static_cast<uint64_t>(m));
  Tensor b = RandomMatrix(k, n, 20 + static_cast<uint64_t>(n));
  Tensor expected(Shape({m, n}));
  GemmReference(a.data(), b.data(), expected.data(), m, k, n);
  Tensor actual(Shape({m, n}));
  Gemm(a.data(), b.data(), actual.data(), m, k, n);
  EXPECT_TRUE(AllClose(actual, expected, 1e-4f, 1e-5f))
      << "m=" << m << " k=" << k << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GemmSizeSweep,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 64, 1),
                      std::make_tuple(7, 5, 3), std::make_tuple(64, 64, 64),
                      std::make_tuple(65, 129, 257),
                      std::make_tuple(63, 127, 255),
                      std::make_tuple(128, 1, 128),
                      std::make_tuple(3, 300, 2),
                      std::make_tuple(100, 75, 64),
                      // Remainder lanes: every combination of dimensions
                      // that straddle the 4-row tile and 8/16-lane vectors.
                      std::make_tuple(1, 3, 7), std::make_tuple(3, 7, 17),
                      std::make_tuple(7, 17, 1), std::make_tuple(17, 1, 3),
                      std::make_tuple(17, 17, 17),
                      std::make_tuple(7, 3, 17)));

// GemmReference itself is validated independently of any vector kernel:
// with A and B all-ones, every element of C is exactly k (integer sums
// below 2^24 are exact in float). All 64 {1,3,7,17}^3 shapes.
TEST(GemmReferenceTest, OnesMatrixProductEqualsK) {
  const int64_t sizes[] = {1, 3, 7, 17};
  for (const int64_t m : sizes) {
    for (const int64_t k : sizes) {
      for (const int64_t n : sizes) {
        const std::vector<float> a(static_cast<size_t>(m * k), 1.0f);
        const std::vector<float> b(static_cast<size_t>(k * n), 1.0f);
        std::vector<float> c(static_cast<size_t>(m * n), -1.0f);
        GemmReference(a.data(), b.data(), c.data(), m, k, n);
        for (int64_t i = 0; i < m * n; ++i) {
          ASSERT_EQ(c[static_cast<size_t>(i)], static_cast<float>(k))
              << "m=" << m << " k=" << k << " n=" << n << " i=" << i;
        }
      }
    }
  }
}

}  // namespace
}  // namespace adr
