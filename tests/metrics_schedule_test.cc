// Tests for ConfusionMatrix, TrainingHistory and the LR schedules.

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "nn/lr_schedule.h"
#include "nn/metrics.h"
#include "nn/optimizer.h"

namespace adr {
namespace {

TEST(ConfusionMatrixTest, CountsAndAccuracy) {
  ConfusionMatrix cm(3);
  cm.Add(0, 0);
  cm.Add(0, 1);
  cm.Add(1, 1);
  cm.Add(2, 2);
  EXPECT_EQ(cm.total(), 4);
  EXPECT_EQ(cm.count(0, 1), 1);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.75);
}

TEST(ConfusionMatrixTest, PrecisionRecall) {
  ConfusionMatrix cm(2);
  // Class 0: 3 true, 2 predicted correctly; one false positive for 0.
  cm.Add(0, 0);
  cm.Add(0, 0);
  cm.Add(0, 1);
  cm.Add(1, 0);
  cm.Add(1, 1);
  EXPECT_DOUBLE_EQ(cm.Recall(0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.Precision(0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.Recall(1), 0.5);
  EXPECT_NEAR(cm.MacroRecall(), (2.0 / 3.0 + 0.5) / 2.0, 1e-12);
}

TEST(ConfusionMatrixTest, UnseenClassesHandled) {
  ConfusionMatrix cm(4);
  cm.Add(0, 0);
  EXPECT_EQ(cm.Recall(3), 0.0);
  EXPECT_EQ(cm.Precision(3), 0.0);
  EXPECT_DOUBLE_EQ(cm.MacroRecall(), 1.0);  // only class 0 observed
}

TEST(ConfusionMatrixTest, AddBatchUsesArgmax) {
  ConfusionMatrix cm(3);
  Tensor logits(Shape({2, 3}), {5, 1, 0, 0, 1, 5});
  cm.AddBatch(logits, {0, 1});
  EXPECT_EQ(cm.count(0, 0), 1);  // row 0 predicted 0, correct
  EXPECT_EQ(cm.count(1, 2), 1);  // row 1 predicted 2, wrong
}

TEST(ConfusionMatrixTest, ResetClears) {
  ConfusionMatrix cm(2);
  cm.Add(0, 0);
  cm.Reset();
  EXPECT_EQ(cm.total(), 0);
  EXPECT_EQ(cm.Accuracy(), 0.0);
}

TEST(TrainingHistoryTest, RecordsAndAggregates) {
  TrainingHistory history;
  for (int i = 0; i < 10; ++i) {
    TrainingHistory::Entry entry;
    entry.step = i;
    entry.loss = 10.0 - i;
    entry.eval_accuracy = i == 5 ? 0.8 : -1.0;
    history.Record(entry);
  }
  EXPECT_EQ(history.size(), 10u);
  EXPECT_DOUBLE_EQ(history.RecentMeanLoss(2), (1.0 + 2.0) / 2.0);
  EXPECT_DOUBLE_EQ(history.RecentMeanLoss(100), 5.5);
  EXPECT_DOUBLE_EQ(history.BestEvalAccuracy(), 0.8);
}

TEST(TrainingHistoryTest, EmptyHistoryDefaults) {
  TrainingHistory history;
  EXPECT_EQ(history.RecentMeanLoss(5), 0.0);
  EXPECT_EQ(history.BestEvalAccuracy(), -1.0);
}

TEST(TrainingHistoryTest, CsvExport) {
  TrainingHistory history;
  TrainingHistory::Entry entry;
  entry.step = 3;
  entry.loss = 0.5;
  entry.train_accuracy = 0.75;
  history.Record(entry);
  const std::string path = testing::TempDir() + "/history.csv";
  ASSERT_TRUE(history.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_NE(header.find("loss"), std::string::npos);
  EXPECT_NE(row.find("0.5"), std::string::npos);
  std::remove(path.c_str());
}

TEST(LrScheduleTest, ConstantIsConstant) {
  ConstantLr schedule(0.1f);
  EXPECT_FLOAT_EQ(schedule.LearningRate(0), 0.1f);
  EXPECT_FLOAT_EQ(schedule.LearningRate(1000000), 0.1f);
}

TEST(LrScheduleTest, StepDecayHalvesAtIntervals) {
  StepDecayLr schedule(0.8f, 0.5f, 100);
  EXPECT_FLOAT_EQ(schedule.LearningRate(0), 0.8f);
  EXPECT_FLOAT_EQ(schedule.LearningRate(99), 0.8f);
  EXPECT_FLOAT_EQ(schedule.LearningRate(100), 0.4f);
  EXPECT_FLOAT_EQ(schedule.LearningRate(250), 0.2f);
}

TEST(LrScheduleTest, WarmupCosineShape) {
  WarmupCosineLr schedule(1.0f, 10, 110, 0.1f);
  // Warmup is linear from peak/10 upward.
  EXPECT_NEAR(schedule.LearningRate(0), 0.1f, 1e-6f);
  EXPECT_NEAR(schedule.LearningRate(9), 1.0f, 1e-6f);
  // Midpoint of the cosine phase sits halfway between peak and floor.
  EXPECT_NEAR(schedule.LearningRate(60), 0.55f, 1e-3f);
  // End and beyond clamp to the floor.
  EXPECT_NEAR(schedule.LearningRate(110), 0.1f, 1e-6f);
  EXPECT_NEAR(schedule.LearningRate(100000), 0.1f, 1e-6f);
}

TEST(LrScheduleTest, MonotoneDecreasingAfterWarmup) {
  WarmupCosineLr schedule(1.0f, 5, 100);
  float prev = schedule.LearningRate(5);
  for (int64_t step = 6; step < 100; ++step) {
    const float cur = schedule.LearningRate(step);
    EXPECT_LE(cur, prev + 1e-7f);
    prev = cur;
  }
}

TEST(LrScheduleTest, ApplySetsOptimizerRate) {
  Sgd sgd(1.0f);
  StepDecayLr schedule(0.8f, 0.5f, 10);
  schedule.Apply(25, &sgd);
  EXPECT_FLOAT_EQ(sgd.learning_rate(), 0.2f);
}

}  // namespace
}  // namespace adr
