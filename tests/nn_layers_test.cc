// Layer tests: shapes, known values, and finite-difference gradient checks.

#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/pooling.h"
#include "tensor/tensor_ops.h"
#include "tests/gradient_check.h"
#include "util/rng.h"

namespace adr {
namespace {

TEST(ReluTest, ForwardClampsNegatives) {
  Relu relu("relu");
  Tensor in(Shape({4}), {-1.0f, 0.0f, 2.0f, -3.0f});
  Tensor out = relu.Forward(in, false);
  EXPECT_EQ(out.at(0), 0.0f);
  EXPECT_EQ(out.at(1), 0.0f);
  EXPECT_EQ(out.at(2), 2.0f);
  EXPECT_EQ(out.at(3), 0.0f);
}

TEST(ReluTest, BackwardMasksGradient) {
  Relu relu("relu");
  Tensor in(Shape({3}), {-1.0f, 1.0f, 2.0f});
  relu.Forward(in, false);
  Tensor grad(Shape({3}), {5.0f, 5.0f, 5.0f});
  Tensor gin = relu.Backward(grad);
  EXPECT_EQ(gin.at(0), 0.0f);
  EXPECT_EQ(gin.at(1), 5.0f);
  EXPECT_EQ(gin.at(2), 5.0f);
}

TEST(TanhTest, GradientCheck) {
  Tanh tanh_layer("tanh");
  Rng rng(1);
  Tensor in = Tensor::RandomGaussian(Shape({2, 5}), &rng);
  testutil::CheckGradients(&tanh_layer, in);
}

TEST(Conv2dTest, OutputShape) {
  Rng rng(2);
  Conv2dConfig config;
  config.in_channels = 3;
  config.out_channels = 8;
  config.kernel = 3;
  config.stride = 1;
  config.pad = 1;
  config.in_height = 6;
  config.in_width = 6;
  Conv2d conv("conv", config, &rng);
  Tensor in = Tensor::RandomGaussian(Shape({2, 3, 6, 6}), &rng);
  Tensor out = conv.Forward(in, false);
  EXPECT_EQ(out.shape(), Shape({2, 8, 6, 6}));
}

TEST(Conv2dTest, KnownConvolution) {
  // 1-channel 3x3 input, single 2x2 all-ones filter, no pad.
  Rng rng(3);
  Conv2dConfig config;
  config.in_channels = 1;
  config.out_channels = 1;
  config.kernel = 2;
  config.in_height = 3;
  config.in_width = 3;
  Conv2d conv("conv", config, &rng);
  conv.weight().Fill(1.0f);
  conv.bias().Fill(0.5f);
  Tensor in(Shape({1, 1, 3, 3}), {0, 1, 2, 3, 4, 5, 6, 7, 8});
  Tensor out = conv.Forward(in, false);
  EXPECT_EQ(out.shape(), Shape({1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(out.at(0), 0 + 1 + 3 + 4 + 0.5f);
  EXPECT_FLOAT_EQ(out.at(3), 4 + 5 + 7 + 8 + 0.5f);
}

TEST(Conv2dTest, GradientCheck) {
  Rng rng(4);
  Conv2dConfig config;
  config.in_channels = 2;
  config.out_channels = 3;
  config.kernel = 3;
  config.stride = 1;
  config.pad = 1;
  config.in_height = 5;
  config.in_width = 5;
  Conv2d conv("conv", config, &rng);
  Tensor in = Tensor::RandomGaussian(Shape({2, 2, 5, 5}), &rng);
  testutil::CheckGradients(&conv, in, /*tolerance=*/5e-2, /*epsilon=*/1e-3f,
                           /*seed=*/7, /*training=*/true);
}

TEST(Conv2dTest, StridedGradientCheck) {
  Rng rng(5);
  Conv2dConfig config;
  config.in_channels = 1;
  config.out_channels = 2;
  config.kernel = 3;
  config.stride = 2;
  config.pad = 0;
  config.in_height = 7;
  config.in_width = 7;
  Conv2d conv("conv", config, &rng);
  Tensor in = Tensor::RandomGaussian(Shape({1, 1, 7, 7}), &rng);
  testutil::CheckGradients(&conv, in, /*tolerance=*/5e-2, /*epsilon=*/1e-3f,
                           /*seed=*/7, /*training=*/true);
}

TEST(Conv2dTest, ForwardMacs) {
  Rng rng(6);
  Conv2dConfig config;
  config.in_channels = 3;
  config.out_channels = 4;
  config.kernel = 5;
  config.pad = 2;
  config.in_height = 8;
  config.in_width = 8;
  Conv2d conv("conv", config, &rng);
  // N = 2*8*8 = 128, K = 75, M = 4.
  EXPECT_DOUBLE_EQ(conv.ForwardMacs(2), 128.0 * 75.0 * 4.0);
}

TEST(RowsToNchwTest, RoundTrip) {
  Rng rng(7);
  Tensor nchw = Tensor::RandomGaussian(Shape({2, 3, 4, 5}), &rng);
  Tensor rows = NchwToRows(nchw);
  EXPECT_EQ(rows.shape(), Shape({2 * 4 * 5, 3}));
  Tensor back = RowsToNchw(rows, 2, 3, 4, 5);
  EXPECT_EQ(MaxAbsDiff(back, nchw), 0.0f);
}

TEST(MaxPoolTest, ForwardPicksMaxima) {
  MaxPool2d pool("pool", PoolConfig{2, 2});
  Tensor in(Shape({1, 1, 2, 4}), {1, 5, 2, 0, 3, 4, 8, 1});
  Tensor out = pool.Forward(in, false);
  EXPECT_EQ(out.shape(), Shape({1, 1, 1, 2}));
  EXPECT_EQ(out.at(0), 5.0f);
  EXPECT_EQ(out.at(1), 8.0f);
}

TEST(MaxPoolTest, BackwardRoutesToArgmax) {
  MaxPool2d pool("pool", PoolConfig{2, 2});
  Tensor in(Shape({1, 1, 2, 2}), {1, 5, 3, 4});
  pool.Forward(in, false);
  Tensor grad(Shape({1, 1, 1, 1}), {7.0f});
  Tensor gin = pool.Backward(grad);
  EXPECT_EQ(gin.at(0), 0.0f);
  EXPECT_EQ(gin.at(1), 7.0f);  // the max was at index 1
  EXPECT_EQ(gin.at(2), 0.0f);
  EXPECT_EQ(gin.at(3), 0.0f);
}

TEST(MaxPoolTest, OverlappingWindows) {
  MaxPool2d pool("pool", PoolConfig{3, 2});
  Rng rng(8);
  Tensor in = Tensor::RandomGaussian(Shape({1, 2, 7, 7}), &rng);
  Tensor out = pool.Forward(in, false);
  EXPECT_EQ(out.shape(), Shape({1, 2, 3, 3}));
}

TEST(AvgPoolTest, ForwardAverages) {
  AvgPool2d pool("pool", PoolConfig{2, 2});
  Tensor in(Shape({1, 1, 2, 2}), {1, 2, 3, 4});
  Tensor out = pool.Forward(in, false);
  EXPECT_FLOAT_EQ(out.at(0), 2.5f);
}

TEST(AvgPoolTest, BackwardSpreadsUniformly) {
  AvgPool2d pool("pool", PoolConfig{2, 2});
  Tensor in(Shape({1, 1, 2, 2}), {1, 2, 3, 4});
  pool.Forward(in, false);
  Tensor grad(Shape({1, 1, 1, 1}), {8.0f});
  Tensor gin = pool.Backward(grad);
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(gin.at(i), 2.0f);
}

TEST(DenseTest, ForwardKnownValues) {
  Rng rng(9);
  Dense dense("fc", 2, 2, &rng);
  std::vector<Tensor*> params = dense.Parameters();
  *params[0] = Tensor(Shape({2, 2}), {1, 2, 3, 4});  // W
  *params[1] = Tensor(Shape({2}), {10, 20});         // b
  Tensor in(Shape({1, 2}), {1, 1});
  Tensor out = dense.Forward(in, false);
  EXPECT_FLOAT_EQ(out.at(0), 1 + 3 + 10);
  EXPECT_FLOAT_EQ(out.at(1), 2 + 4 + 20);
}

TEST(DenseTest, GradientCheck) {
  Rng rng(10);
  Dense dense("fc", 6, 4, &rng);
  Tensor in = Tensor::RandomGaussian(Shape({3, 6}), &rng);
  testutil::CheckGradients(&dense, in);
}

TEST(FlattenTest, RoundTrip) {
  Flatten flatten("flatten");
  Rng rng(11);
  Tensor in = Tensor::RandomGaussian(Shape({2, 3, 4, 4}), &rng);
  Tensor out = flatten.Forward(in, false);
  EXPECT_EQ(out.shape(), Shape({2, 48}));
  Tensor back = flatten.Backward(out);
  EXPECT_EQ(back.shape(), in.shape());
  EXPECT_EQ(MaxAbsDiff(back, in), 0.0f);
}

TEST(DropoutTest, InferenceIsIdentity) {
  Rng rng(12);
  Dropout dropout("drop", 0.5f, &rng);
  Tensor in = Tensor::RandomGaussian(Shape({100}), &rng);
  Tensor out = dropout.Forward(in, /*training=*/false);
  EXPECT_EQ(MaxAbsDiff(out, in), 0.0f);
}

TEST(DropoutTest, TrainingDropsRoughlyP) {
  Rng rng(13);
  Dropout dropout("drop", 0.3f, &rng);
  Tensor in = Tensor::Ones(Shape({10000}));
  Tensor out = dropout.Forward(in, /*training=*/true);
  int64_t zeros = 0;
  for (int64_t i = 0; i < out.num_elements(); ++i) {
    if (out.at(i) == 0.0f) ++zeros;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / 10000.0, 0.3, 0.03);
  // Survivors are scaled so the expectation is preserved.
  EXPECT_NEAR(Mean(out), 1.0, 0.05);
}

TEST(DropoutTest, BackwardUsesSameMask) {
  Rng rng(14);
  Dropout dropout("drop", 0.5f, &rng);
  Tensor in = Tensor::Ones(Shape({1000}));
  Tensor out = dropout.Forward(in, true);
  Tensor grad = Tensor::Ones(Shape({1000}));
  Tensor gin = dropout.Backward(grad);
  for (int64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(gin.at(i), out.at(i));  // both are mask * 1
  }
}

TEST(DropoutTest, ZeroProbabilityIsIdentityInTraining) {
  Rng rng(15);
  Dropout dropout("drop", 0.0f, &rng);
  Tensor in = Tensor::RandomGaussian(Shape({50}), &rng);
  Tensor out = dropout.Forward(in, true);
  EXPECT_EQ(MaxAbsDiff(out, in), 0.0f);
}

}  // namespace
}  // namespace adr
