// Unit tests of the scoped-span tracer: enable gating, balanced nested
// spans, per-thread tracks from ParallelFor workers, and the Chrome
// trace-event JSON export.

#include "util/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "tests/json_syntax.h"
#include "util/parallel.h"

namespace adr {
namespace {

// Every test drains the global tracer so earlier tests' spans (and any
// library instrumentation) do not leak into assertions.
class TracerGuard {
 public:
  TracerGuard() {
    Tracer::Global().SetEnabled(false);
    Tracer::Global().Clear();
  }
  ~TracerGuard() {
    Tracer::Global().SetEnabled(false);
    Tracer::Global().Clear();
  }
};

class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(ThreadPool::GlobalThreads()) {}
  ~ThreadCountGuard() { ThreadPool::SetGlobalThreads(saved_); }

 private:
  int saved_;
};

std::vector<TraceEvent> EventsNamed(const std::vector<TraceEvent>& events,
                                    const std::string& name) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events) {
    if (e.name != nullptr && name == e.name) out.push_back(e);
  }
  return out;
}

TEST(TracerTest, DisabledSpansRecordNothing) {
  TracerGuard guard;
  { ADR_TRACE_SPAN("invisible"); }
  EXPECT_TRUE(Tracer::Global().SnapshotEvents().empty());
}

TEST(TracerTest, EnableGateIsSampledAtConstruction) {
  TracerGuard guard;
  Tracer::Global().SetEnabled(true);
  {
    ADR_TRACE_SPAN("caught_mid_flight");
    // Disabling mid-span must not lose the already-started span.
    Tracer::Global().SetEnabled(false);
  }
  const auto events = Tracer::Global().SnapshotEvents();
  ASSERT_EQ(EventsNamed(events, "caught_mid_flight").size(), 1u);
}

TEST(TracerTest, NestedSpansAreBalancedAndOrdered) {
  TracerGuard guard;
  Tracer::Global().SetEnabled(true);
  {
    ADR_TRACE_SPAN("outer");
    {
      ADR_TRACE_SPAN("inner");
    }
  }
  Tracer::Global().SetEnabled(false);

  const auto events = Tracer::Global().SnapshotEvents();
  const auto outer = EventsNamed(events, "outer");
  const auto inner = EventsNamed(events, "inner");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(inner.size(), 1u);
  // The inner span nests inside the outer one on the same track.
  EXPECT_EQ(outer[0].tid, inner[0].tid);
  EXPECT_LE(outer[0].start_us, inner[0].start_us);
  EXPECT_GE(outer[0].start_us + outer[0].duration_us,
            inner[0].start_us + inner[0].duration_us);
  EXPECT_GE(outer[0].duration_us, 0);
  EXPECT_GE(inner[0].duration_us, 0);
}

TEST(TracerTest, PoolWorkersGetTheirOwnTracks) {
  TracerGuard tracer_guard;
  ThreadCountGuard thread_guard;
  ThreadPool::SetGlobalThreads(4);
  Tracer::Global().SetEnabled(true);
  // Force many chunks so several workers participate; each chunk is
  // wrapped in a "pool_chunk" span by the pool itself.
  ParallelFor(64, /*grain=*/1, [](int64_t, int64_t) {});
  Tracer::Global().SetEnabled(false);

  const auto chunks =
      EventsNamed(Tracer::Global().SnapshotEvents(), "pool_chunk");
  ASSERT_GE(chunks.size(), 1u);
  std::set<int> tids;
  for (const TraceEvent& e : chunks) tids.insert(e.tid);
  // All worker tids are distinct registration indices (>= 0); with 4
  // workers and 64 chunks at least one track must exist.
  EXPECT_GE(tids.size(), 1u);
  for (const int tid : tids) EXPECT_GE(tid, 0);
}

TEST(TracerTest, ToJsonIsValidChromeTraceFormat) {
  TracerGuard guard;
  Tracer::Global().SetCurrentThreadName("test-main");
  Tracer::Global().SetEnabled(true);
  {
    ADR_TRACE_SPAN("json_span");
  }
  Tracer::Global().SetEnabled(false);

  const std::string json = Tracer::Global().ToJson();
  EXPECT_TRUE(adr::testing::IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // One complete event for the span, one metadata event for the name.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("json_span"), std::string::npos);
  EXPECT_NE(json.find("test-main"), std::string::npos);
}

TEST(TracerTest, WriteJsonFileProducesLoadableDocument) {
  TracerGuard guard;
  Tracer::Global().SetEnabled(true);
  {
    ADR_TRACE_SPAN("file_span");
  }
  Tracer::Global().SetEnabled(false);

  const std::string path = ::testing::TempDir() + "/trace_dump.json";
  ASSERT_TRUE(Tracer::Global().WriteJsonFile(path).ok());

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(f);
  EXPECT_TRUE(adr::testing::IsValidJson(contents)) << contents;
  EXPECT_NE(contents.find("file_span"), std::string::npos);
}

TEST(TracerTest, ClearDropsEventsButKeepsRecording) {
  TracerGuard guard;
  Tracer::Global().SetEnabled(true);
  {
    ADR_TRACE_SPAN("before_clear");
  }
  Tracer::Global().Clear();
  EXPECT_TRUE(Tracer::Global().SnapshotEvents().empty());
  // Cached thread-local buffers must still work after Clear().
  {
    ADR_TRACE_SPAN("after_clear");
  }
  Tracer::Global().SetEnabled(false);
  const auto events = Tracer::Global().SnapshotEvents();
  EXPECT_EQ(EventsNamed(events, "before_clear").size(), 0u);
  EXPECT_EQ(EventsNamed(events, "after_clear").size(), 1u);
}

TEST(TracerTest, NowMicrosIsMonotonic) {
  Tracer& tracer = Tracer::Global();
  const int64_t a = tracer.NowMicros();
  const int64_t b = tracer.NowMicros();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace adr
