// Tests for losses, optimizers, the Network container, and training helpers.

#include <cmath>

#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/network.h"
#include "nn/optimizer.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace adr {
namespace {

TEST(SoftmaxTest, RowsSumToOne) {
  Rng rng(1);
  Tensor logits = Tensor::RandomGaussian(Shape({5, 7}), &rng, 0.0f, 3.0f);
  Tensor probs = Softmax(logits);
  for (int64_t i = 0; i < 5; ++i) {
    double row_sum = 0.0;
    for (int64_t j = 0; j < 7; ++j) row_sum += probs.at(i, j);
    EXPECT_NEAR(row_sum, 1.0, 1e-5);
  }
}

TEST(SoftmaxTest, NumericallyStableWithLargeLogits) {
  Tensor logits(Shape({1, 2}), {1000.0f, 1000.0f});
  Tensor probs = Softmax(logits);
  EXPECT_NEAR(probs.at(0), 0.5f, 1e-6f);
  EXPECT_NEAR(probs.at(1), 0.5f, 1e-6f);
}

TEST(SoftmaxCrossEntropyTest, UniformLogitsGiveLogC) {
  Tensor logits(Shape({2, 4}));
  const LossResult r = SoftmaxCrossEntropy(logits, {0, 3});
  EXPECT_NEAR(r.loss, std::log(4.0), 1e-6);
}

TEST(SoftmaxCrossEntropyTest, PerfectPredictionLowLoss) {
  Tensor logits(Shape({1, 3}), {100.0f, 0.0f, 0.0f});
  const LossResult r = SoftmaxCrossEntropy(logits, {0});
  EXPECT_LT(r.loss, 1e-6);
  EXPECT_EQ(r.num_correct, 1);
}

TEST(SoftmaxCrossEntropyTest, GradientMatchesFiniteDifference) {
  Rng rng(2);
  Tensor logits = Tensor::RandomGaussian(Shape({3, 5}), &rng);
  const std::vector<int> labels = {1, 4, 0};
  const LossResult base = SoftmaxCrossEntropy(logits, labels);
  const float eps = 1e-3f;
  for (int64_t i = 0; i < logits.num_elements(); ++i) {
    Tensor up = logits;
    up.at(i) += eps;
    Tensor down = logits;
    down.at(i) -= eps;
    const double numeric = (SoftmaxCrossEntropy(up, labels).loss -
                            SoftmaxCrossEntropy(down, labels).loss) /
                           (2.0 * eps);
    EXPECT_NEAR(base.grad_logits.at(i), numeric, 1e-3);
  }
}

TEST(SoftmaxCrossEntropyTest, CountsCorrectPredictions) {
  Tensor logits(Shape({3, 2}), {2, 1, 0, 5, 3, 1});
  const LossResult r = SoftmaxCrossEntropy(logits, {0, 1, 1});
  EXPECT_EQ(r.num_correct, 2);  // rows 0 and 1 are right, row 2 wrong
}

TEST(MeanSquaredErrorTest, ZeroAtTarget) {
  Tensor pred(Shape({2, 2}), {1, 2, 3, 4});
  const LossResult r = MeanSquaredError(pred, pred);
  EXPECT_EQ(r.loss, 0.0);
  EXPECT_EQ(MaxAbs(r.grad_logits), 0.0f);
}

TEST(MeanSquaredErrorTest, KnownValue) {
  Tensor pred(Shape({1, 2}), {1.0f, 3.0f});
  Tensor target(Shape({1, 2}), {0.0f, 0.0f});
  const LossResult r = MeanSquaredError(pred, target);
  EXPECT_DOUBLE_EQ(r.loss, 0.5 * (1.0 + 9.0));
  EXPECT_FLOAT_EQ(r.grad_logits.at(0), 1.0f);
  EXPECT_FLOAT_EQ(r.grad_logits.at(1), 3.0f);
}

TEST(SgdTest, AppliesLearningRate) {
  Tensor param(Shape({2}), {1.0f, 2.0f});
  Tensor grad(Shape({2}), {0.5f, -1.0f});
  Sgd sgd(0.1f);
  sgd.Step({&param}, {&grad});
  EXPECT_FLOAT_EQ(param.at(0), 0.95f);
  EXPECT_FLOAT_EQ(param.at(1), 2.1f);
}

TEST(MomentumTest, AcceleratesAlongConstantGradient) {
  Tensor param(Shape({1}), {0.0f});
  Tensor grad(Shape({1}), {1.0f});
  MomentumSgd opt(0.1f, 0.9f);
  opt.Step({&param}, {&grad});
  EXPECT_FLOAT_EQ(param.at(0), -0.1f);  // v1 = -0.1
  opt.Step({&param}, {&grad});
  // v2 = 0.9 * (-0.1) - 0.1 = -0.19: the step grows along a constant slope.
  EXPECT_FLOAT_EQ(param.at(0), -0.1f - 0.19f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize f(x) = (x - 3)^2 with gradient 2(x - 3).
  Tensor x(Shape({1}), {0.0f});
  Tensor grad(Shape({1}));
  Adam adam(0.1f);
  for (int i = 0; i < 500; ++i) {
    grad.at(0) = 2.0f * (x.at(0) - 3.0f);
    adam.Step({&x}, {&grad});
  }
  EXPECT_NEAR(x.at(0), 3.0f, 0.05f);
}

TEST(OptimizerTest, LearningRateMutable) {
  Sgd sgd(0.1f);
  sgd.set_learning_rate(0.01f);
  EXPECT_FLOAT_EQ(sgd.learning_rate(), 0.01f);
}

TEST(NetworkTest, ForwardComposesLayers) {
  Rng rng(3);
  Network net;
  net.Add(std::make_unique<Dense>("fc1", 4, 8, &rng));
  net.Add(std::make_unique<Relu>("relu1"));
  net.Add(std::make_unique<Dense>("fc2", 8, 2, &rng));
  Tensor in = Tensor::RandomGaussian(Shape({3, 4}), &rng);
  Tensor out = net.Forward(in, false);
  EXPECT_EQ(out.shape(), Shape({3, 2}));
}

TEST(NetworkTest, ParametersAndGradientsAligned) {
  Rng rng(4);
  Network net;
  net.Add(std::make_unique<Dense>("fc1", 4, 8, &rng));
  net.Add(std::make_unique<Relu>("relu"));
  net.Add(std::make_unique<Dense>("fc2", 8, 2, &rng));
  const auto params = net.Parameters();
  const auto grads = net.Gradients();
  ASSERT_EQ(params.size(), 4u);  // two Dense layers x (W, b)
  ASSERT_EQ(grads.size(), 4u);
  for (size_t i = 0; i < params.size(); ++i) {
    EXPECT_TRUE(params[i]->SameShape(*grads[i]));
  }
  EXPECT_EQ(net.NumParameters(), 4 * 8 + 8 + 8 * 2 + 2);
}

TEST(NetworkTest, FindLayerByName) {
  Rng rng(5);
  Network net;
  net.Add(std::make_unique<Dense>("fc1", 2, 2, &rng));
  net.Add(std::make_unique<Relu>("relu"));
  EXPECT_NE(net.FindLayer("relu"), nullptr);
  EXPECT_EQ(net.FindLayer("missing"), nullptr);
  EXPECT_EQ(net.num_layers(), 2u);
}

TEST(NetworkTest, BackwardPropagatesThroughAllLayers) {
  Rng rng(6);
  Network net;
  net.Add(std::make_unique<Dense>("fc1", 3, 5, &rng));
  net.Add(std::make_unique<Tanh>("tanh"));
  net.Add(std::make_unique<Dense>("fc2", 5, 2, &rng));
  Tensor in = Tensor::RandomGaussian(Shape({2, 3}), &rng);
  Tensor out = net.Forward(in, true);
  Tensor grad = Tensor::Ones(out.shape());
  Tensor gin = net.Backward(grad);
  EXPECT_EQ(gin.shape(), in.shape());
  EXPECT_GT(MaxAbs(gin), 0.0f);
}

TEST(NetworkTest, TrainsXorWithDenseLayers) {
  Rng rng(7);
  Network net;
  net.Add(std::make_unique<Dense>("fc1", 2, 16, &rng));
  net.Add(std::make_unique<Tanh>("tanh"));
  net.Add(std::make_unique<Dense>("fc2", 16, 2, &rng));
  Tensor inputs(Shape({4, 2}), {0, 0, 0, 1, 1, 0, 1, 1});
  const std::vector<int> labels = {0, 1, 1, 0};
  Adam adam(0.02f);
  double final_loss = 1e9;
  for (int step = 0; step < 400; ++step) {
    Tensor logits = net.Forward(inputs, true);
    const LossResult loss = SoftmaxCrossEntropy(logits, labels);
    net.Backward(loss.grad_logits);
    adam.Step(net.Parameters(), net.Gradients());
    final_loss = loss.loss;
  }
  EXPECT_LT(final_loss, 0.05);
  const LossResult final =
      SoftmaxCrossEntropy(net.Forward(inputs, false), labels);
  EXPECT_EQ(final.num_correct, 4);
}

}  // namespace
}  // namespace adr
