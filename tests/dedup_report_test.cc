// Tests for ExactDedupRows and the reuse reporting helpers.

#include <gtest/gtest.h>

#include "clustering/exact_dedup.h"
#include "clustering/lsh.h"
#include "core/reuse_report.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace adr {
namespace {

TEST(ExactDedupTest, GroupsIdenticalRows) {
  Tensor data(Shape({4, 2}), {1, 2, 3, 4, 1, 2, 3, 4});
  const Clustering c = ExactDedupRows(data.data(), 4, 2, 2);
  EXPECT_EQ(c.num_clusters(), 2);
  EXPECT_EQ(c.assignment[0], c.assignment[2]);
  EXPECT_EQ(c.assignment[1], c.assignment[3]);
  EXPECT_NE(c.assignment[0], c.assignment[1]);
}

TEST(ExactDedupTest, DistinctRowsStaySeparate) {
  Rng rng(1);
  Tensor data = Tensor::RandomGaussian(Shape({50, 8}), &rng);
  const Clustering c = ExactDedupRows(data.data(), 50, 8, 8);
  EXPECT_EQ(c.num_clusters(), 50);
  EXPECT_DOUBLE_EQ(c.remaining_ratio(), 1.0);
}

TEST(ExactDedupTest, ToleranceMergesNearbyRows) {
  Tensor data(Shape({3, 2}), {1.0f, 2.0f, 1.004f, 2.004f, 5.0f, 5.0f});
  const Clustering exact = ExactDedupRows(data.data(), 3, 2, 2, 0.0f);
  EXPECT_EQ(exact.num_clusters(), 3);
  const Clustering coarse = ExactDedupRows(data.data(), 3, 2, 2, 0.1f);
  EXPECT_EQ(coarse.num_clusters(), 2);
  EXPECT_EQ(coarse.assignment[0], coarse.assignment[1]);
}

TEST(ExactDedupTest, RespectsRowStride) {
  // Width-2 rows at stride 4, identical in the first two columns only.
  Tensor data(Shape({2, 4}), {1, 2, 99, 98, 1, 2, 55, 54});
  const Clustering c = ExactDedupRows(data.data(), 2, 2, 4);
  EXPECT_EQ(c.num_clusters(), 1);
}

TEST(ExactDedupTest, LshFindsAtLeastAsMuchReuseOnNoisyDuplicates) {
  // Near-duplicates: exact dedup sees all-distinct rows, LSH groups them —
  // the gap is deep reuse's advantage over trivial memoization.
  Rng rng(2);
  Tensor proto = Tensor::RandomGaussian(Shape({16}), &rng);
  Tensor data(Shape({64, 16}));
  for (int64_t i = 0; i < 64; ++i) {
    for (int64_t j = 0; j < 16; ++j) {
      data.at(i, j) = proto.at(j) + 1e-4f * rng.NextGaussian();
    }
  }
  const Clustering dedup = ExactDedupRows(data.data(), 64, 16, 16);
  EXPECT_EQ(dedup.num_clusters(), 64);  // all bitwise distinct

  LshFamily family;
  ASSERT_TRUE(LshFamily::Create(16, 16, 3, &family).ok());
  const Clustering lsh = LshCluster(family, data.data(), 64, 16);
  EXPECT_LT(lsh.num_clusters(), 5);  // nearly one cluster
}

Conv2dConfig ReportConv() {
  Conv2dConfig config;
  config.in_channels = 2;
  config.out_channels = 4;
  config.kernel = 3;
  config.stride = 1;
  config.pad = 1;
  config.in_height = 6;
  config.in_width = 6;
  return config;
}

TEST(ReuseReportTest, CollectsAndFormats) {
  Rng rng(3);
  ReuseConfig reuse;
  reuse.num_hashes = 8;
  ReuseConv2d layer1("conv1", ReportConv(), reuse, &rng);
  ReuseConv2d layer2("conv2", ReportConv(), reuse, &rng);
  Rng data_rng(4);
  Tensor in = Tensor::RandomGaussian(Shape({1, 2, 6, 6}), &data_rng);
  layer1.Forward(in, true);
  layer2.Forward(in, true);

  const ReuseReport report = CollectReuseReport({&layer1, &layer2});
  ASSERT_EQ(report.layers.size(), 2u);
  EXPECT_EQ(report.layers[0].name, "conv1");
  EXPECT_GT(report.total_macs_baseline, 0.0);
  EXPECT_DOUBLE_EQ(report.total_macs_baseline,
                   report.layers[0].macs_baseline +
                       report.layers[1].macs_baseline);

  const std::string table = FormatReuseReport(report);
  EXPECT_NE(table.find("conv1"), std::string::npos);
  EXPECT_NE(table.find("TOTAL"), std::string::npos);
}

TEST(ReuseReportTest, ApplyConfigClampsPerLayer) {
  Rng rng(5);
  ReuseConfig reuse;
  reuse.num_hashes = 8;
  ReuseConv2d layer("conv", ReportConv(), reuse, &rng);  // K = 18
  ReuseConfig wide;
  wide.sub_vector_length = 1000;
  wide.num_hashes = 10;
  ASSERT_TRUE(ApplyReuseConfig({&layer}, wide).ok());
  EXPECT_LE(layer.reuse_config().sub_vector_length, 18);
  EXPECT_EQ(layer.reuse_config().num_hashes, 10);
}

TEST(ReuseReportTest, ApplyConfigPropagatesErrors) {
  Rng rng(6);
  ReuseConfig reuse;
  reuse.num_hashes = 8;
  ReuseConv2d layer("conv", ReportConv(), reuse, &rng);
  ReuseConfig bad;
  bad.num_hashes = 0;
  EXPECT_FALSE(ApplyReuseConfig({&layer}, bad).ok());
}

TEST(ReuseReportTest, ResetStatsClearsAll) {
  Rng rng(7);
  ReuseConfig reuse;
  reuse.num_hashes = 8;
  ReuseConv2d layer("conv", ReportConv(), reuse, &rng);
  Rng data_rng(8);
  Tensor in = Tensor::RandomGaussian(Shape({1, 2, 6, 6}), &data_rng);
  layer.Forward(in, true);
  ResetReuseStats({&layer});
  EXPECT_EQ(layer.stats().forward_calls, 0);
}

}  // namespace
}  // namespace adr
