// Unit tests for src/util: Status, Result, Rng, CsvWriter, string utils.

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "util/csv_writer.h"
#include "util/logging.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace adr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad L");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad L");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad L");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, StreamsToOstream) {
  std::ostringstream os;
  os << Status::Internal("boom");
  EXPECT_EQ(os.str(), "Internal: boom");
}

Status FailingHelper() { return Status::NotFound("gone"); }

Status UsesReturnNotOk() {
  ADR_RETURN_NOT_OK(FailingHelper());
  return Status::Internal("unreachable");
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_EQ(UsesReturnNotOk().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Result<int> Doubled(Result<int> in) {
  if (!in.ok()) return in.status();
  return *in * 2;
}

TEST(ResultTest, ComposesThroughFunctions) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_FALSE(Doubled(Status::Internal("x")).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBoundedWithinBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(5.0f, 0.1f);
  EXPECT_NEAR(sum / n, 5.0, 0.01);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<size_t>(i)] = i;
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(original.begin(),
                                              original.end());
  EXPECT_EQ(a, b);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.Split();
  EXPECT_NE(parent.NextU64(), child.NextU64());
}

TEST(CsvEscapeTest, PlainFieldUntouched) {
  EXPECT_EQ(CsvEscape("hello"), "hello");
}

TEST(CsvEscapeTest, CommaTriggersQuoting) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
}

TEST(CsvEscapeTest, QuotesDoubled) {
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscapeTest, NewlineQuoted) {
  EXPECT_EQ(CsvEscape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriterTest, WritesHeaderAndRows) {
  const std::string path = testing::TempDir() + "/csv_writer_test.csv";
  CsvWriter writer;
  ASSERT_TRUE(CsvWriter::Open(path, {"x", "y"}, &writer).ok());
  ASSERT_TRUE(writer.WriteRow(std::vector<std::string>{"1", "2"}).ok());
  ASSERT_TRUE(writer.WriteRow(std::vector<double>{0.5, 1.25}).ok());
  writer.Close();

  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "0.5,1.25");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, RejectsArityMismatch) {
  const std::string path = testing::TempDir() + "/csv_arity_test.csv";
  CsvWriter writer;
  ASSERT_TRUE(CsvWriter::Open(path, {"a", "b"}, &writer).ok());
  EXPECT_EQ(writer.WriteRow(std::vector<std::string>{"only-one"}).code(),
            StatusCode::kInvalidArgument);
  writer.Close();
  std::remove(path.c_str());
}

TEST(CsvWriterTest, RejectsEmptyHeader) {
  CsvWriter writer;
  EXPECT_EQ(CsvWriter::Open("/tmp/x.csv", {}, &writer).code(),
            StatusCode::kInvalidArgument);
}

TEST(CsvWriterTest, RejectsUnopenedWrites) {
  CsvWriter writer;
  EXPECT_EQ(writer.WriteRow(std::vector<std::string>{"a"}).code(),
            StatusCode::kFailedPrecondition);
}

TEST(CsvWriterTest, ReportsUnwritablePath) {
  CsvWriter writer;
  EXPECT_EQ(
      CsvWriter::Open("/nonexistent-dir/file.csv", {"a"}, &writer).code(),
      StatusCode::kNotFound);
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, "-"), "solo");
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
}

TEST(StringUtilTest, SplitJoinRoundTrip) {
  const std::string text = "x,y,z,w";
  EXPECT_EQ(Join(Split(text, ','), ","), text);
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.5, 3), "0.500");
  EXPECT_EQ(FormatDouble(-1.25, 2), "-1.25");
}

TEST(StringUtilTest, FormatPercent) {
  EXPECT_EQ(FormatPercent(0.69), "69.0%");
  EXPECT_EQ(FormatPercent(0.12345, 2), "12.35%");
}

TEST(StringUtilTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512.0 B");
  EXPECT_EQ(FormatBytes(1536), "1.5 KiB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.0 MiB");
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedMillis(), timer.ElapsedSeconds());
}

TEST(CumulativeTimerTest, AccumulatesIntervals) {
  CumulativeTimer timer;
  timer.Start();
  timer.Stop();
  const double first = timer.TotalSeconds();
  timer.Start();
  timer.Stop();
  EXPECT_GE(timer.TotalSeconds(), first);
  timer.Clear();
  EXPECT_EQ(timer.TotalSeconds(), 0.0);
}

TEST(LoggingTest, LevelFilterRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  ADR_LOG(Info) << "should be suppressed";
  SetLogLevel(original);
}

}  // namespace
}  // namespace adr
