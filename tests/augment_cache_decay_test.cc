// Tests for data augmentation, the cache eviction policy, and optimizer
// weight decay.

#include <gtest/gtest.h>

#include "core/clustered_matmul.h"
#include "data/augment.h"
#include "nn/optimizer.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace adr {
namespace {

TEST(AugmentTest, FlipHorizontalReversesRows) {
  // 1 channel, 2x3: rows [1 2 3; 4 5 6] -> [3 2 1; 6 5 4].
  float image[6] = {1, 2, 3, 4, 5, 6};
  FlipHorizontal(image, 1, 2, 3);
  EXPECT_EQ(image[0], 3);
  EXPECT_EQ(image[2], 1);
  EXPECT_EQ(image[3], 6);
  EXPECT_EQ(image[5], 4);
}

TEST(AugmentTest, DoubleFlipIsIdentity) {
  Rng rng(1);
  Tensor image = Tensor::RandomGaussian(Shape({3, 4, 5}), &rng);
  Tensor copy = image;
  FlipHorizontal(image.data(), 3, 4, 5);
  FlipHorizontal(image.data(), 3, 4, 5);
  EXPECT_EQ(MaxAbsDiff(image, copy), 0.0f);
}

TEST(AugmentTest, ShiftMovesAndZeroFills) {
  // 1x2x2 image [1 2; 3 4], shift down-right by (1, 1).
  float image[4] = {1, 2, 3, 4};
  ShiftImage(image, 1, 2, 2, 1, 1);
  EXPECT_EQ(image[0], 0.0f);  // vacated
  EXPECT_EQ(image[1], 0.0f);
  EXPECT_EQ(image[2], 0.0f);
  EXPECT_EQ(image[3], 1.0f);  // old (0,0) lands at (1,1)
}

TEST(AugmentTest, ZeroShiftIsNoOp) {
  Rng rng(2);
  Tensor image = Tensor::RandomGaussian(Shape({2, 3, 3}), &rng);
  Tensor copy = image;
  ShiftImage(image.data(), 2, 3, 3, 0, 0);
  EXPECT_EQ(MaxAbsDiff(image, copy), 0.0f);
}

TEST(AugmentTest, BatchAugmentationIsDeterministic) {
  Rng data_rng(3);
  Batch a, b;
  a.images = Tensor::RandomGaussian(Shape({4, 3, 8, 8}), &data_rng);
  a.labels = {0, 1, 2, 3};
  b.images = a.images;
  b.labels = a.labels;
  AugmentConfig config;
  config.flip_probability = 0.5f;
  config.crop_padding = 2;
  config.brightness_jitter = 0.1f;
  Rng rng_a(7), rng_b(7);
  AugmentBatch(config, &rng_a, &a);
  AugmentBatch(config, &rng_b, &b);
  EXPECT_EQ(MaxAbsDiff(a.images, b.images), 0.0f);
}

TEST(AugmentTest, DisabledConfigLeavesBatchUntouched) {
  Rng data_rng(4);
  Batch batch;
  batch.images = Tensor::RandomGaussian(Shape({2, 3, 6, 6}), &data_rng);
  batch.labels = {0, 1};
  Tensor copy = batch.images;
  AugmentConfig config;
  config.flip_probability = 0.0f;
  config.crop_padding = 0;
  config.brightness_jitter = 0.0f;
  Rng rng(5);
  AugmentBatch(config, &rng, &batch);
  EXPECT_EQ(MaxAbsDiff(batch.images, copy), 0.0f);
}

TEST(AugmentTest, BrightnessJitterShiftsUniformly) {
  Batch batch;
  batch.images = Tensor(Shape({1, 1, 2, 2}));
  batch.labels = {0};
  AugmentConfig config;
  config.flip_probability = 0.0f;
  config.brightness_jitter = 0.5f;
  Rng rng(6);
  AugmentBatch(config, &rng, &batch);
  // All four pixels share the same shift.
  const float shift = batch.images.at(0);
  EXPECT_NE(shift, 0.0f);
  for (int64_t i = 1; i < 4; ++i) {
    EXPECT_EQ(batch.images.at(i), shift);
  }
  EXPECT_LE(std::abs(shift), 0.5f);
}

TEST(CacheEvictionTest, EvictsUntouchedOldestBeyondCap) {
  // With no intervening hits, second-chance degenerates to FIFO: the
  // oldest untouched entry goes first.
  ClusterReuseCache cache;
  cache.set_max_entries(2);
  LshSignature s1, s2, s3;
  s1.SetBit(1);
  s2.SetBit(2);
  s3.SetBit(3);
  const float rep[] = {1.0f};
  const float out[] = {2.0f};
  cache.Insert(0, s1, rep, 1, out, 1);
  cache.Insert(0, s2, rep, 1, out, 1);
  EXPECT_EQ(cache.TotalEntries(), 2);
  cache.Insert(0, s3, rep, 1, out, 1);  // evicts s1
  EXPECT_EQ(cache.TotalEntries(), 2);
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_FALSE(cache.Find(0, s1));
  EXPECT_TRUE(cache.Find(0, s2));
  EXPECT_TRUE(cache.Find(0, s3));
}

TEST(CacheEvictionTest, UnboundedByDefault) {
  ClusterReuseCache cache;
  const float rep[] = {1.0f};
  const float out[] = {2.0f};
  for (int i = 0; i < 100; ++i) {
    LshSignature sig;
    sig.SetBit(i % 128);
    sig.words[0] ^= static_cast<uint64_t>(i) << 32;
    cache.Insert(0, sig, rep, 1, out, 1);
  }
  EXPECT_EQ(cache.TotalEntries(), 100);
  EXPECT_EQ(cache.evictions(), 0);
}

TEST(CacheEvictionTest, ReinsertDoesNotDoubleCount) {
  ClusterReuseCache cache;
  cache.set_max_entries(4);
  LshSignature sig;
  sig.SetBit(5);
  const float rep[] = {0.0f};
  const float out1[] = {1.0f};
  const float out2[] = {2.0f};
  cache.Insert(0, sig, rep, 1, out1, 1);
  cache.Insert(0, sig, rep, 1, out2, 1);  // overwrite, not a new entry
  EXPECT_EQ(cache.TotalEntries(), 1);
  ClusterReuseCache::View view;
  ASSERT_TRUE(cache.Find(0, sig, &view));
  EXPECT_EQ(view.output[0], 2.0f);
}

TEST(CacheEvictionTest, MemoryAccounting) {
  ClusterReuseCache cache;
  LshSignature sig;
  const float rep[] = {1, 2, 3, 4};  // 16 bytes
  const float out[] = {1, 2};        // 8 bytes
  cache.Insert(0, sig, rep, 4, out, 2);
  EXPECT_EQ(cache.ResidentBytes(),
            static_cast<int64_t>(sizeof(LshSignature)) + 24);
}

TEST(WeightDecayTest, SgdShrinksParameters) {
  Tensor param(Shape({1}), {1.0f});
  Tensor grad(Shape({1}), {0.0f});  // isolate the decay term
  Sgd sgd(0.1f);
  sgd.set_weight_decay(0.5f);
  sgd.Step({&param}, {&grad});
  EXPECT_FLOAT_EQ(param.at(0), 1.0f * (1.0f - 0.1f * 0.5f));
}

TEST(WeightDecayTest, ZeroDecayIsNoOp) {
  Tensor param(Shape({1}), {2.0f});
  Tensor grad(Shape({1}), {0.0f});
  Adam adam(0.1f);
  adam.Step({&param}, {&grad});
  EXPECT_FLOAT_EQ(param.at(0), 2.0f);
}

TEST(WeightDecayTest, AdamDecayIsDecoupled) {
  // With zero gradient, AdamW-style decay still shrinks parameters.
  Tensor param(Shape({1}), {4.0f});
  Tensor grad(Shape({1}), {0.0f});
  Adam adam(0.01f);
  adam.set_weight_decay(1.0f);
  adam.Step({&param}, {&grad});
  EXPECT_FLOAT_EQ(param.at(0), 4.0f * 0.99f);
}

TEST(WeightDecayTest, MomentumDecayAccumulates) {
  Tensor param(Shape({1}), {1.0f});
  Tensor grad(Shape({1}), {0.0f});
  MomentumSgd opt(0.1f, 0.9f);
  opt.set_weight_decay(0.1f);
  opt.Step({&param}, {&grad});
  opt.Step({&param}, {&grad});
  EXPECT_FLOAT_EQ(param.at(0), 1.0f * 0.99f * 0.99f);
}

}  // namespace
}  // namespace adr
