// Tests for the reuse extensions: the per-layer enabled switch, the
// k-means clustering mode, and the controller's exact landing stage.

#include <gtest/gtest.h>

#include "core/adaptive_controller.h"
#include "core/reuse_conv2d.h"
#include "nn/conv2d.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace adr {
namespace {

Conv2dConfig SmallConv() {
  Conv2dConfig config;
  config.in_channels = 2;
  config.out_channels = 4;
  config.kernel = 3;
  config.stride = 1;
  config.pad = 1;
  config.in_height = 6;
  config.in_width = 6;
  return config;
}

TEST(ReuseDisabledTest, ForwardMatchesConv2dExactly) {
  Rng rng1(1), rng2(1);
  Conv2d dense("conv", SmallConv(), &rng1);
  ReuseConfig off;
  off.enabled = false;
  ReuseConv2d reuse("conv_r", SmallConv(), off, &rng2);
  reuse.CopyWeightsFrom(dense);

  Rng data_rng(2);
  Tensor in = Tensor::RandomGaussian(Shape({2, 2, 6, 6}), &data_rng);
  EXPECT_EQ(MaxAbsDiff(reuse.Forward(in, true), dense.Forward(in, true)),
            0.0f);
}

TEST(ReuseDisabledTest, BackwardMatchesConv2dExactly) {
  Rng rng1(3), rng2(3);
  Conv2d dense("conv", SmallConv(), &rng1);
  ReuseConfig off;
  off.enabled = false;
  ReuseConv2d reuse("conv_r", SmallConv(), off, &rng2);
  reuse.CopyWeightsFrom(dense);

  Rng data_rng(4);
  Tensor in = Tensor::RandomGaussian(Shape({2, 2, 6, 6}), &data_rng);
  Tensor grad_out = Tensor::RandomGaussian(Shape({2, 4, 6, 6}), &data_rng);
  dense.Forward(in, true);
  reuse.Forward(in, true);
  Tensor dense_gin = dense.Backward(grad_out);
  Tensor reuse_gin = reuse.Backward(grad_out);
  EXPECT_LT(MaxAbsDiff(reuse_gin, dense_gin), 1e-6f);
  EXPECT_LT(MaxAbsDiff(*reuse.Gradients()[0], *dense.Gradients()[0]),
            1e-6f);
}

TEST(ReuseDisabledTest, MacsCountedAsBaseline) {
  Rng rng(5);
  ReuseConfig off;
  off.enabled = false;
  ReuseConv2d layer("conv", SmallConv(), off, &rng);
  Rng data_rng(6);
  Tensor in = Tensor::RandomGaussian(Shape({1, 2, 6, 6}), &data_rng);
  layer.Forward(in, true);
  EXPECT_DOUBLE_EQ(layer.stats().macs_executed,
                   layer.stats().macs_baseline);
  EXPECT_DOUBLE_EQ(layer.stats().MacsSavedFraction(), 0.0);
}

TEST(ReuseKMeansTest, RunsAndApproximatesDense) {
  Rng rng1(7), rng2(7);
  Conv2d dense("conv", SmallConv(), &rng1);
  ReuseConfig kmeans;
  kmeans.method = ClusteringMethod::kKMeans;
  kmeans.kmeans_clusters = 1000000;  // clamped to rows => exact
  kmeans.kmeans_iterations = 3;
  ReuseConv2d reuse("conv_r", SmallConv(), kmeans, &rng2);
  reuse.CopyWeightsFrom(dense);

  Rng data_rng(8);
  Tensor in = Tensor::RandomGaussian(Shape({1, 2, 6, 6}), &data_rng);
  Tensor expected = dense.Forward(in, false);
  Tensor actual = reuse.Forward(in, false);
  // Clamped to one cluster per row: exact reconstruction.
  EXPECT_LT(MaxAbsDiff(actual, expected), 1e-4f);
}

TEST(ReuseKMeansTest, FewClustersCoarsens) {
  Rng rng(9);
  ReuseConfig kmeans;
  kmeans.method = ClusteringMethod::kKMeans;
  kmeans.kmeans_clusters = 2;
  ReuseConv2d layer("conv", SmallConv(), kmeans, &rng);
  Rng data_rng(10);
  Tensor in = Tensor::RandomGaussian(Shape({1, 2, 6, 6}), &data_rng);
  layer.Forward(in, true);
  // 36 rows in 2 clusters: r_c = 2/36.
  EXPECT_NEAR(layer.stats().avg_remaining_ratio, 2.0 / 36.0, 1e-9);
}

TEST(ReuseKMeansTest, ValidationRules) {
  ReuseConfig config;
  config.method = ClusteringMethod::kKMeans;
  config.kmeans_clusters = 0;
  EXPECT_FALSE(config.Validate(100).ok());
  config.kmeans_clusters = 8;
  config.kmeans_iterations = 0;
  EXPECT_FALSE(config.Validate(100).ok());
  config.kmeans_iterations = 5;
  EXPECT_TRUE(config.Validate(100).ok());
  config.cluster_reuse = true;  // CR needs LSH signatures
  EXPECT_FALSE(config.Validate(100).ok());
}

TEST(ReuseConfigTest, MethodToString) {
  EXPECT_EQ(ClusteringMethodToString(ClusteringMethod::kLsh), "lsh");
  EXPECT_EQ(ClusteringMethodToString(ClusteringMethod::kKMeans), "kmeans");
  ReuseConfig config;
  config.method = ClusteringMethod::kKMeans;
  config.kmeans_clusters = 32;
  EXPECT_NE(config.ToString().find("kmeans(|C|=32)"), std::string::npos);
}

std::unique_ptr<ReuseConv2d> MakeLayer(Rng* rng) {
  ReuseConfig reuse;
  reuse.num_hashes = 8;
  Conv2dConfig conv;
  conv.in_channels = 3;
  conv.out_channels = 8;
  conv.kernel = 3;
  conv.stride = 1;
  conv.pad = 1;
  conv.in_height = 8;
  conv.in_width = 8;
  return std::make_unique<ReuseConv2d>("conv1", conv, reuse, rng);
}

TEST(FinalExactStageTest, LastStageDisablesReuse) {
  Rng rng(11);
  auto layer = MakeLayer(&rng);
  AdaptiveOptions options;
  options.plateau_window = 1;
  options.min_steps_per_stage = 1;
  options.final_exact_stage = true;
  AdaptiveController controller({layer.get()}, 4, options);
  ASSERT_TRUE(controller.Init().ok());
  EXPECT_TRUE(layer->reuse_config().enabled);
  while (!controller.Exhausted()) {
    controller.Step(1.0, 0.2, [&]() { return 0.9; });
  }
  EXPECT_FALSE(layer->reuse_config().enabled);
}

TEST(FinalExactStageTest, DisabledOptionKeepsReuseOn) {
  Rng rng(12);
  auto layer = MakeLayer(&rng);
  AdaptiveOptions options;
  options.plateau_window = 1;
  options.min_steps_per_stage = 1;
  options.final_exact_stage = false;
  AdaptiveController controller({layer.get()}, 4, options);
  ASSERT_TRUE(controller.Init().ok());
  while (!controller.Exhausted()) {
    controller.Step(1.0, 0.2, [&]() { return 0.9; });
  }
  EXPECT_TRUE(layer->reuse_config().enabled);
  // And it ends on its most precise candidate.
  const LhCandidate& last = controller.CurrentCandidate(0);
  EXPECT_EQ(layer->reuse_config().sub_vector_length, last.l);
  EXPECT_EQ(layer->reuse_config().num_hashes, last.h);
}

TEST(FinalExactStageTest, AddsExactlyOneStage) {
  Rng rng(13);
  auto with_layer = MakeLayer(&rng);
  auto without_layer = MakeLayer(&rng);
  AdaptiveOptions with_exact;
  with_exact.final_exact_stage = true;
  AdaptiveOptions without_exact;
  without_exact.final_exact_stage = false;
  AdaptiveController with({with_layer.get()}, 4, with_exact);
  AdaptiveController without({without_layer.get()}, 4, without_exact);
  ASSERT_TRUE(with.Init().ok());
  ASSERT_TRUE(without.Init().ok());
  EXPECT_EQ(with.num_stages(), without.num_stages() + 1);
}

}  // namespace
}  // namespace adr
