// Tests for the schedule policies (paper Section V-A: Policies 1-3 and
// Amendment 1), including the paper's own CifarNet/AlexNet geometries.

#include <gtest/gtest.h>

#include "core/parameter_schedule.h"

namespace adr {
namespace {

LayerScheduleParams CifarNetConv2() {
  // CifarNet conv2: k_w = 5, I_c = 64, K = 1600, M = 64 (paper Table II).
  LayerScheduleParams params;
  params.kernel_w = 5;
  params.in_channels = 64;
  params.k = 1600;
  params.m = 64;
  params.n = 16384;  // batch 64 of 16x16 outputs
  params.is_first_layer = false;
  return params;
}

TEST(LRangeTest, Policy1CifarNetConv2) {
  const LayerScheduleParams params = CifarNetConv2();
  int64_t l_min = 0, l_max = 0;
  ComputeLRange(params, &l_min, &l_max);
  // L_min = k_w = 5 (k_w^2 = 25 >= 10 so Amendment 1 does not fire);
  // L_max = ceil(sqrt(64)) * 5 = 40.
  EXPECT_EQ(l_min, 5);
  EXPECT_EQ(l_max, 40);
}

TEST(LRangeTest, Amendment1FiresForSmallHiddenKernels) {
  // VGG-style 3x3 hidden layer: k_w^2 = 9 < 10 -> L_min = 9.
  LayerScheduleParams params;
  params.kernel_w = 3;
  params.in_channels = 64;
  params.k = 576;
  params.m = 64;
  params.n = 1 << 14;
  params.is_first_layer = false;
  int64_t l_min = 0, l_max = 0;
  ComputeLRange(params, &l_min, &l_max);
  EXPECT_EQ(l_min, 9);
  EXPECT_EQ(l_max, 24);  // ceil(sqrt(64)) * 3
}

TEST(LRangeTest, Amendment1SkipsFirstLayer) {
  LayerScheduleParams params;
  params.kernel_w = 3;
  params.in_channels = 3;
  params.k = 27;
  params.m = 64;
  params.n = 1 << 14;
  params.is_first_layer = true;
  int64_t l_min = 0, l_max = 0;
  ComputeLRange(params, &l_min, &l_max);
  EXPECT_EQ(l_min, 3);  // Policy 1 unmodified
  EXPECT_EQ(l_max, 6);  // ceil(sqrt(3)) * 3
}

TEST(LRangeTest, ClampedToK) {
  LayerScheduleParams params;
  params.kernel_w = 7;
  params.in_channels = 1;
  params.k = 10;  // K smaller than the policy range
  params.m = 8;
  params.n = 1024;
  params.is_first_layer = true;
  int64_t l_min = 0, l_max = 0;
  ComputeLRange(params, &l_min, &l_max);
  EXPECT_LE(l_max, 10);
  EXPECT_GE(l_min, 1);
  EXPECT_LE(l_min, l_max);
}

TEST(HRangeTest, Policy2Bounds) {
  LayerScheduleParams params = CifarNetConv2();
  params.n = 50000;
  int h_min = 0, h_max = 0;
  ComputeHRange(params, &h_min, &h_max);
  // 2^h_min > 500 -> h_min = 9; 2^h_max < 50000 -> h_max = 15.
  EXPECT_EQ(h_min, 9);
  EXPECT_EQ(h_max, 15);
}

TEST(HRangeTest, SmallNDegenerates) {
  LayerScheduleParams params = CifarNetConv2();
  params.n = 4;
  int h_min = 0, h_max = 0;
  ComputeHRange(params, &h_min, &h_max);
  EXPECT_GE(h_min, 1);
  EXPECT_GE(h_max, h_min);
}

TEST(CandidateLValuesTest, DivisorsDescending) {
  const std::vector<int64_t> values = CandidateLValues(1600, 5, 40);
  // Divisors of 1600 in [5, 40]: 40, 32, 25, 20, 16, 10, 8, 5.
  EXPECT_EQ(values.front(), 40);
  EXPECT_EQ(values.back(), 5);
  for (size_t i = 1; i < values.size(); ++i) {
    EXPECT_LT(values[i], values[i - 1]);
    EXPECT_EQ(1600 % values[i], 0);
  }
  EXPECT_EQ(values.size(), 8u);
}

TEST(CandidateLValuesTest, FallbackWhenNoDivisor) {
  // K = 7 prime, range [2, 5] contains no divisor: fall back to one value.
  const std::vector<int64_t> values = CandidateLValues(7, 2, 5);
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0], 5);
}

TEST(BuildCandidateListTest, StartsAggressiveEndsPrecise) {
  auto list = BuildCandidateList(CifarNetConv2());
  ASSERT_TRUE(list.ok());
  ASSERT_GE(list->size(), 2u);
  int64_t l_min = 0, l_max = 0;
  ComputeLRange(CifarNetConv2(), &l_min, &l_max);
  int h_min = 0, h_max = 0;
  ComputeHRange(CifarNetConv2(), &h_min, &h_max);
  EXPECT_EQ(list->front().l, l_max);
  EXPECT_EQ(list->front().h, h_min);
  EXPECT_EQ(list->back().l, l_min);
  EXPECT_EQ(list->back().h, h_max);
}

TEST(BuildCandidateListTest, MonotoneKnobWalk) {
  auto list = BuildCandidateList(CifarNetConv2());
  ASSERT_TRUE(list.ok());
  for (size_t i = 1; i < list->size(); ++i) {
    const LhCandidate& prev = (*list)[i - 1];
    const LhCandidate& cur = (*list)[i];
    // Exactly one knob moves per step, in its fixed direction.
    const bool l_moved = cur.l < prev.l && cur.h == prev.h;
    const bool h_moved = cur.h > prev.h && cur.l == prev.l;
    EXPECT_TRUE(l_moved || h_moved)
        << "step " << i << ": " << prev.ToString() << " -> "
        << cur.ToString();
  }
}

TEST(BuildCandidateListTest, CoversWholeGridWalk) {
  auto list = BuildCandidateList(CifarNetConv2());
  ASSERT_TRUE(list.ok());
  const std::vector<int64_t> ls = CandidateLValues(1600, 5, 40);
  int h_min = 0, h_max = 0;
  ComputeHRange(CifarNetConv2(), &h_min, &h_max);
  // A single-knob walk from (L_max, H_min) to (L_min, H_max) has exactly
  // (#L - 1) + (#H - 1) + 1 entries.
  EXPECT_EQ(list->size(),
            ls.size() + static_cast<size_t>(h_max - h_min + 1) - 1);
}

TEST(BuildCandidateListTest, RejectsBadParams) {
  LayerScheduleParams params;  // all zero
  EXPECT_FALSE(BuildCandidateList(params).ok());
}

TEST(LhCandidateTest, ToString) {
  const LhCandidate c{40, 9};
  EXPECT_EQ(c.ToString(), "{L=40, H=9}");
}

}  // namespace
}  // namespace adr
