// Tests for gradient clipping.

#include <cmath>

#include <gtest/gtest.h>

#include "nn/gradient_clip.h"
#include "tensor/tensor_ops.h"

namespace adr {
namespace {

TEST(GradientClipTest, GlobalNormAcrossTensors) {
  Tensor a(Shape({2}), {3.0f, 0.0f});
  Tensor b(Shape({1}), {4.0f});
  EXPECT_DOUBLE_EQ(GlobalGradientNorm({&a, &b}), 5.0);
}

TEST(GradientClipTest, NoClipBelowThreshold) {
  Tensor g(Shape({2}), {0.3f, 0.4f});  // norm 0.5
  const double norm = ClipGradientsByGlobalNorm({&g}, 1.0);
  EXPECT_NEAR(norm, 0.5, 1e-6);
  EXPECT_FLOAT_EQ(g.at(0), 0.3f);
  EXPECT_FLOAT_EQ(g.at(1), 0.4f);
}

TEST(GradientClipTest, ScalesDownAboveThreshold) {
  Tensor g(Shape({2}), {3.0f, 4.0f});  // norm 5
  const double norm = ClipGradientsByGlobalNorm({&g}, 1.0);
  EXPECT_DOUBLE_EQ(norm, 5.0);
  EXPECT_NEAR(GlobalGradientNorm({&g}), 1.0, 1e-6);
  // Direction preserved.
  EXPECT_NEAR(g.at(1) / g.at(0), 4.0f / 3.0f, 1e-5f);
}

TEST(GradientClipTest, MultiTensorClipIsJoint) {
  Tensor a(Shape({1}), {3.0f});
  Tensor b(Shape({1}), {4.0f});
  ClipGradientsByGlobalNorm({&a, &b}, 2.5);  // joint norm 5 -> scale 0.5
  EXPECT_FLOAT_EQ(a.at(0), 1.5f);
  EXPECT_FLOAT_EQ(b.at(0), 2.0f);
}

TEST(GradientClipTest, ClipByValueClamps) {
  Tensor g(Shape({4}), {-5.0f, -0.5f, 0.5f, 5.0f});
  ClipGradientsByValue({&g}, 1.0f);
  EXPECT_FLOAT_EQ(g.at(0), -1.0f);
  EXPECT_FLOAT_EQ(g.at(1), -0.5f);
  EXPECT_FLOAT_EQ(g.at(2), 0.5f);
  EXPECT_FLOAT_EQ(g.at(3), 1.0f);
}

TEST(GradientClipTest, ZeroGradientsStable) {
  Tensor g(Shape({3}));
  EXPECT_DOUBLE_EQ(ClipGradientsByGlobalNorm({&g}, 1.0), 0.0);
  EXPECT_EQ(MaxAbs(g), 0.0f);
}

}  // namespace
}  // namespace adr
