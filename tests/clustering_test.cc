// Tests for the clustering substrate: LSH, signature grouping, centroids,
// scatter, normalization and cluster stats.

#include <cmath>

#include <gtest/gtest.h>

#include "clustering/cluster_stats.h"
#include "clustering/clustering.h"
#include "clustering/lsh.h"
#include "clustering/normalize.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace adr {
namespace {

TEST(LshSignatureTest, SetBitAndEquality) {
  LshSignature a, b;
  EXPECT_EQ(a, b);
  a.SetBit(0);
  EXPECT_FALSE(a == b);
  b.SetBit(0);
  EXPECT_EQ(a, b);
  a.SetBit(127);  // second word
  EXPECT_FALSE(a == b);
  EXPECT_EQ(a.words[1], uint64_t{1} << 63);
}

TEST(LshSignatureTest, HashDistinguishesSignatures) {
  LshSignatureHash hasher;
  LshSignature a, b;
  a.SetBit(3);
  b.SetBit(4);
  EXPECT_NE(hasher(a), hasher(b));
}

TEST(LshFamilyTest, CreateValidation) {
  LshFamily family;
  EXPECT_FALSE(LshFamily::Create(0, 4, 1, &family).ok());
  EXPECT_FALSE(LshFamily::Create(8, 0, 1, &family).ok());
  EXPECT_FALSE(LshFamily::Create(8, kMaxLshHashes + 1, 1, &family).ok());
  EXPECT_TRUE(LshFamily::Create(8, kMaxLshHashes, 1, &family).ok());
  EXPECT_EQ(family.dim(), 8);
  EXPECT_EQ(family.num_hashes(), kMaxLshHashes);
}

TEST(LshFamilyTest, IdenticalVectorsGetSameSignature) {
  LshFamily family;
  ASSERT_TRUE(LshFamily::Create(16, 20, 7, &family).ok());
  Rng rng(1);
  Tensor v = Tensor::RandomGaussian(Shape({16}), &rng);
  EXPECT_EQ(family.Hash(v.data()), family.Hash(v.data()));
}

TEST(LshFamilyTest, PositiveScalingIsSignatureInvariant) {
  // Sign-random-projection depends only on direction, which is why the
  // angular metric needs no explicit normalization before hashing.
  LshFamily family;
  ASSERT_TRUE(LshFamily::Create(16, 24, 3, &family).ok());
  Rng rng(2);
  Tensor v = Tensor::RandomGaussian(Shape({16}), &rng);
  Tensor scaled = v;
  ScaleInPlace(37.5f, &scaled);
  EXPECT_EQ(family.Hash(v.data()), family.Hash(scaled.data()));
}

TEST(LshFamilyTest, OppositeVectorsGetComplementarySignatures) {
  LshFamily family;
  ASSERT_TRUE(LshFamily::Create(16, 32, 5, &family).ok());
  Rng rng(3);
  Tensor v = Tensor::RandomGaussian(Shape({16}), &rng);
  Tensor neg = v;
  ScaleInPlace(-1.0f, &neg);
  const LshSignature a = family.Hash(v.data());
  const LshSignature b = family.Hash(neg.data());
  EXPECT_FALSE(a == b);
}

TEST(LshFamilyTest, NearbyVectorsCollideMoreThanFarOnes) {
  LshFamily family;
  ASSERT_TRUE(LshFamily::Create(32, 16, 11, &family).ok());
  Rng rng(4);
  int near_collisions = 0, far_collisions = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    Tensor base = Tensor::RandomGaussian(Shape({32}), &rng);
    Tensor near = base;
    for (int64_t i = 0; i < 32; ++i) near.at(i) += rng.NextGaussian() * 0.01f;
    Tensor far = Tensor::RandomGaussian(Shape({32}), &rng);
    if (family.Hash(base.data()) == family.Hash(near.data())) {
      ++near_collisions;
    }
    if (family.Hash(base.data()) == family.Hash(far.data())) {
      ++far_collisions;
    }
  }
  EXPECT_GT(near_collisions, trials / 2);
  EXPECT_LT(far_collisions, trials / 10);
}

TEST(LshFamilyTest, DeterministicAcrossInstances) {
  LshFamily a, b;
  ASSERT_TRUE(LshFamily::Create(8, 12, 99, &a).ok());
  ASSERT_TRUE(LshFamily::Create(8, 12, 99, &b).ok());
  Rng rng(5);
  Tensor v = Tensor::RandomGaussian(Shape({8}), &rng);
  EXPECT_EQ(a.Hash(v.data()), b.Hash(v.data()));
}

TEST(LshFamilyTest, HashRowsRespectsStride) {
  LshFamily family;
  ASSERT_TRUE(LshFamily::Create(4, 8, 1, &family).ok());
  Rng rng(6);
  // 3 rows embedded in a matrix with stride 10, offset 0.
  Tensor data = Tensor::RandomGaussian(Shape({3, 10}), &rng);
  std::vector<LshSignature> strided;
  family.HashRows(data.data(), 3, 10, &strided);
  ASSERT_EQ(strided.size(), 3u);
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(strided[static_cast<size_t>(i)],
              family.Hash(data.data() + i * 10));
  }
}

TEST(ClusterBySignatureTest, GroupsEqualSignatures) {
  LshSignature s1, s2;
  s2.SetBit(5);
  std::vector<LshSignature> sigs = {s1, s2, s1, s1, s2};
  std::vector<LshSignature> cluster_sigs;
  const Clustering c = ClusterBySignature(sigs, &cluster_sigs);
  EXPECT_EQ(c.num_rows(), 5);
  EXPECT_EQ(c.num_clusters(), 2);
  EXPECT_EQ(c.assignment[0], c.assignment[2]);
  EXPECT_EQ(c.assignment[0], c.assignment[3]);
  EXPECT_EQ(c.assignment[1], c.assignment[4]);
  EXPECT_NE(c.assignment[0], c.assignment[1]);
  EXPECT_EQ(c.cluster_sizes[static_cast<size_t>(c.assignment[0])], 3);
  EXPECT_EQ(c.cluster_sizes[static_cast<size_t>(c.assignment[1])], 2);
  EXPECT_EQ(cluster_sigs.size(), 2u);
  EXPECT_EQ(cluster_sigs[static_cast<size_t>(c.assignment[0])], s1);
}

TEST(ClusteringTest, RemainingRatio) {
  Clustering c;
  c.assignment = {0, 0, 1, 1};
  c.cluster_sizes = {2, 2};
  EXPECT_DOUBLE_EQ(c.remaining_ratio(), 0.5);
}

TEST(ComputeCentroidsTest, MeansOfMembers) {
  // Rows: [1,1], [3,3] in cluster 0; [10,0] alone in cluster 1.
  Tensor data(Shape({3, 2}), {1, 1, 3, 3, 10, 0});
  Clustering c;
  c.assignment = {0, 0, 1};
  c.cluster_sizes = {2, 1};
  Tensor centroids = ComputeCentroids(data.data(), 3, 2, 2, c);
  EXPECT_EQ(centroids.shape(), Shape({2, 2}));
  EXPECT_FLOAT_EQ(centroids.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(centroids.at(0, 1), 2.0f);
  EXPECT_FLOAT_EQ(centroids.at(1, 0), 10.0f);
}

TEST(ComputeCentroidsTest, RespectsRowStride) {
  // Two rows of width 2 embedded at stride 4.
  Tensor data(Shape({2, 4}), {1, 2, 99, 99, 3, 4, 99, 99});
  Clustering c;
  c.assignment = {0, 0};
  c.cluster_sizes = {2};
  Tensor centroids = ComputeCentroids(data.data(), 2, 2, 4, c);
  EXPECT_FLOAT_EQ(centroids.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(centroids.at(0, 1), 3.0f);
}

TEST(ScatterRowsTest, CopiesClusterRowToMembers) {
  Tensor cluster_rows(Shape({2, 3}), {1, 2, 3, 10, 20, 30});
  Clustering c;
  c.assignment = {1, 0, 1};
  c.cluster_sizes = {1, 2};
  Tensor out(Shape({3, 3}));
  ScatterRows(cluster_rows, c, out.data(), 3);
  EXPECT_FLOAT_EQ(out.at(0, 0), 10.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(out.at(2, 2), 30.0f);
}

TEST(NormalizeTest, RowsBecomeUnitNorm) {
  Tensor data(Shape({2, 3}), {3, 4, 0, 0, 0, 5});
  NormalizeRowsInPlace(data.data(), 2, 3, 3);
  EXPECT_NEAR(data.at(0, 0), 0.6f, 1e-6f);
  EXPECT_NEAR(data.at(0, 1), 0.8f, 1e-6f);
  EXPECT_NEAR(data.at(1, 2), 1.0f, 1e-6f);
}

TEST(NormalizeTest, ZeroRowLeftUnchanged) {
  Tensor data(Shape({1, 3}));
  NormalizeRowsInPlace(data.data(), 1, 3, 3);
  EXPECT_EQ(data.at(0), 0.0f);
}

TEST(AngularDistanceTest, KnownValues) {
  const float a[2] = {1.0f, 0.0f};
  const float b[2] = {0.0f, 1.0f};
  const float c[2] = {2.0f, 0.0f};
  const float neg[2] = {-1.0f, 0.0f};
  EXPECT_NEAR(AngularDistance(a, b, 2), std::sqrt(2.0), 1e-6);
  EXPECT_NEAR(AngularDistance(a, c, 2), 0.0, 1e-6);  // scale invariant
  EXPECT_NEAR(AngularDistance(a, neg, 2), 2.0, 1e-6);
}

TEST(AngularDistanceTest, DegenerateZeroVectors) {
  const float zero[2] = {0.0f, 0.0f};
  const float a[2] = {1.0f, 0.0f};
  EXPECT_EQ(AngularDistance(zero, zero, 2), 0.0);
  EXPECT_EQ(AngularDistance(zero, a, 2), 2.0);
}

TEST(ClusterStatsTest, CountsAndRatios) {
  Tensor data(Shape({4, 2}), {1, 0, 1, 0.01f, 0, 1, 5, 5});
  Clustering c;
  c.assignment = {0, 0, 1, 2};
  c.cluster_sizes = {2, 1, 1};
  const ClusterStats stats = ComputeClusterStats(data.data(), 4, 2, 2, c);
  EXPECT_EQ(stats.num_rows, 4);
  EXPECT_EQ(stats.num_clusters, 3);
  EXPECT_DOUBLE_EQ(stats.remaining_ratio, 0.75);
  EXPECT_EQ(stats.largest_cluster, 2);
  EXPECT_EQ(stats.singleton_clusters, 2);
  // Singletons sit on their centroid; only cluster 0 contributes distance.
  EXPECT_GT(stats.mean_intra_distance, 0.0);
  EXPECT_LT(stats.mean_intra_distance, 0.01);
}

}  // namespace
}  // namespace adr
