// Tests for the training-step and evaluation helpers.

#include <gtest/gtest.h>

#include "data/synthetic_images.h"
#include "models/models.h"
#include "nn/dense.h"
#include "nn/trainer.h"
#include "tensor/tensor_ops.h"

namespace adr {
namespace {

SyntheticImageDataset TinyDataset() {
  SyntheticImageConfig config;
  config.num_classes = 2;
  config.num_samples = 64;
  config.height = 8;
  config.width = 8;
  config.seed = 5;
  return *SyntheticImageDataset::Create(config);
}

Model TinyModel() {
  ModelOptions options;
  options.num_classes = 2;
  options.input_size = 8;
  options.width = 0.0625;
  options.fc_width = 0.02;
  return BuildCifarNet(options).ValueOrDie();
}

TEST(TrainerTest, TrainStepReducesLossOnRepeatedBatch) {
  const SyntheticImageDataset dataset = TinyDataset();
  Model model = TinyModel();
  const Batch batch = MakeBatch(dataset, 0, 16);
  Adam optimizer(0.005f);
  const StepResult first = TrainStep(&model.network, &optimizer, batch);
  StepResult last = first;
  for (int i = 0; i < 20; ++i) {
    last = TrainStep(&model.network, &optimizer, batch);
  }
  EXPECT_LT(last.loss, first.loss);
  EXPECT_GE(last.accuracy, first.accuracy);
}

TEST(TrainerTest, TrainStepUpdatesParameters) {
  const SyntheticImageDataset dataset = TinyDataset();
  Model model = TinyModel();
  const Batch batch = MakeBatch(dataset, 0, 8);
  // Snapshot a parameter.
  Tensor before = *model.network.Parameters()[0];
  Adam optimizer(0.01f);
  TrainStep(&model.network, &optimizer, batch);
  EXPECT_GT(MaxAbsDiff(*model.network.Parameters()[0], before), 0.0f);
}

TEST(TrainerTest, EvaluateBatchDoesNotUpdateParameters) {
  const SyntheticImageDataset dataset = TinyDataset();
  Model model = TinyModel();
  const Batch batch = MakeBatch(dataset, 0, 8);
  Tensor before = *model.network.Parameters()[0];
  const StepResult result = EvaluateBatch(&model.network, batch);
  EXPECT_EQ(MaxAbsDiff(*model.network.Parameters()[0], before), 0.0f);
  EXPECT_GT(result.loss, 0.0);
  EXPECT_GE(result.accuracy, 0.0);
  EXPECT_LE(result.accuracy, 1.0);
}

TEST(TrainerTest, EvaluateAccuracyBounds) {
  const SyntheticImageDataset dataset = TinyDataset();
  Model model = TinyModel();
  const double accuracy =
      EvaluateAccuracy(&model.network, dataset, 16, 64);
  EXPECT_GE(accuracy, 0.0);
  EXPECT_LE(accuracy, 1.0);
}

TEST(TrainerTest, EvaluateAccuracyRespectsMaxSamples) {
  const SyntheticImageDataset dataset = TinyDataset();
  Model model = TinyModel();
  // Only full batches are evaluated: 20 samples at batch 16 -> one batch.
  const double subset = EvaluateAccuracy(&model.network, dataset, 16, 20);
  const double one_batch = EvaluateAccuracy(&model.network, dataset, 16, 16);
  EXPECT_EQ(subset, one_batch);
}

TEST(TrainerTest, EvaluateAccuracyDefaultsToWholeDataset) {
  const SyntheticImageDataset dataset = TinyDataset();
  Model model = TinyModel();
  const double all = EvaluateAccuracy(&model.network, dataset, 16);
  const double capped = EvaluateAccuracy(&model.network, dataset, 16, 64);
  EXPECT_EQ(all, capped);  // dataset has exactly 64 samples
}

TEST(TrainerTest, DeterministicEvaluation) {
  const SyntheticImageDataset dataset = TinyDataset();
  Model model = TinyModel();
  EXPECT_EQ(EvaluateAccuracy(&model.network, dataset, 16, 32),
            EvaluateAccuracy(&model.network, dataset, 16, 32));
}

}  // namespace
}  // namespace adr
