// Tests for ClusteredMatmulForward and the Algorithm-1 cluster reuse cache.

#include <gtest/gtest.h>

#include "core/clustered_matmul.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace adr {
namespace {

Tensor DenseReference(const Tensor& x, const Tensor& w, const Tensor* bias) {
  const int64_t n = x.shape()[0], k = x.shape()[1], m = w.shape()[1];
  Tensor y(Shape({n, m}));
  Gemm(x.data(), w.data(), y.data(), n, k, m);
  if (bias != nullptr) AddRowBias(*bias, &y);
  return y;
}

TEST(ClusteredMatmulTest, ExactWhenRowsIdentical) {
  // All rows identical: one cluster per block; the reconstruction must be
  // exactly the dense product.
  auto families = BlockLshFamilies::Create(8, 4, 12, 1);
  ASSERT_TRUE(families.ok());
  Rng rng(1);
  Tensor row = Tensor::RandomGaussian(Shape({8}), &rng);
  Tensor x(Shape({16, 8}));
  for (int64_t i = 0; i < 16; ++i) {
    for (int64_t j = 0; j < 8; ++j) x.at(i, j) = row.at(j);
  }
  Tensor w = Tensor::RandomGaussian(Shape({8, 5}), &rng);
  Tensor bias = Tensor::RandomGaussian(Shape({5}), &rng);

  const ForwardReuseResult result = ClusteredMatmulForward(
      *families, x.data(), 16, w, &bias, 16, nullptr);
  const Tensor expected = DenseReference(x, w, &bias);
  EXPECT_TRUE(AllClose(result.y_rows, expected, 1e-4f, 1e-5f));
  EXPECT_EQ(result.stats.clusters_total, 2);  // one per block
  EXPECT_DOUBLE_EQ(result.stats.avg_remaining_ratio, 1.0 / 16.0);
}

TEST(ClusteredMatmulTest, ExactWhenAllSingletons) {
  // With many hyperplanes random rows land in singleton clusters; then the
  // centroid of each cluster is the row itself and the result is exact.
  auto families = BlockLshFamilies::Create(6, 0, 64, 2);
  ASSERT_TRUE(families.ok());
  Rng rng(2);
  Tensor x = Tensor::RandomGaussian(Shape({12, 6}), &rng);
  Tensor w = Tensor::RandomGaussian(Shape({6, 4}), &rng);

  const ForwardReuseResult result = ClusteredMatmulForward(
      *families, x.data(), 12, w, nullptr, 12, nullptr);
  if (result.stats.clusters_total == 12) {  // no accidental collisions
    const Tensor expected = DenseReference(x, w, nullptr);
    EXPECT_TRUE(AllClose(result.y_rows, expected, 1e-4f, 1e-5f));
  }
}

TEST(ClusteredMatmulTest, ApproximatesWithNoisyDuplicates) {
  // Rows = few distinct prototypes + small noise. Reuse output must be
  // close to dense output.
  auto families = BlockLshFamilies::Create(16, 8, 14, 3);
  ASSERT_TRUE(families.ok());
  Rng rng(3);
  Tensor protos = Tensor::RandomGaussian(Shape({4, 16}), &rng);
  const int64_t n = 64;
  Tensor x(Shape({n, 16}));
  for (int64_t i = 0; i < n; ++i) {
    const int64_t p = i % 4;
    for (int64_t j = 0; j < 16; ++j) {
      x.at(i, j) = protos.at(p, j) + rng.NextGaussian() * 0.001f;
    }
  }
  Tensor w = Tensor::RandomGaussian(Shape({16, 8}), &rng);
  const ForwardReuseResult result = ClusteredMatmulForward(
      *families, x.data(), n, w, nullptr, n, nullptr);
  const Tensor expected = DenseReference(x, w, nullptr);
  EXPECT_LT(MaxAbsDiff(result.y_rows, expected), 0.05f);
  // Should find roughly 4 clusters per block, far fewer than 64 rows.
  EXPECT_LT(result.stats.avg_remaining_ratio, 0.25);
}

TEST(ClusteredMatmulTest, StatsAccounting) {
  auto families = BlockLshFamilies::Create(8, 4, 6, 4);
  ASSERT_TRUE(families.ok());
  Rng rng(4);
  Tensor x = Tensor::RandomGaussian(Shape({32, 8}), &rng);
  Tensor w = Tensor::RandomGaussian(Shape({8, 10}), &rng);
  const ForwardReuseResult result = ClusteredMatmulForward(
      *families, x.data(), 32, w, nullptr, 32, nullptr);
  EXPECT_DOUBLE_EQ(result.stats.macs_baseline, 32.0 * 8 * 10);
  EXPECT_DOUBLE_EQ(result.stats.macs_hash, 32.0 * 8 * 6);  // N*K*H
  EXPECT_DOUBLE_EQ(result.stats.macs_scatter, 2.0 * 32 * 10);  // blocks*N*M
  // GEMM MACs = sum_blocks |C_b| * L * M.
  double expected_gemm = 0.0;
  for (const auto& block : result.clustering.blocks) {
    expected_gemm += static_cast<double>(block.clustering.num_clusters()) *
                     block.length * 10;
  }
  EXPECT_DOUBLE_EQ(result.stats.macs_gemm, expected_gemm);
  EXPECT_EQ(result.stats.batch_reuse_rate, 0.0);  // no cache
}

TEST(ClusterReuseCacheTest, FindMissThenHit) {
  ClusterReuseCache cache;
  LshSignature sig;
  sig.SetBit(3);
  EXPECT_FALSE(cache.Find(0, sig));
  const float rep[] = {1.0f, 2.0f};
  const float out[] = {3.0f};
  cache.Insert(0, sig, rep, 2, out, 1);
  ClusterReuseCache::View view;
  ASSERT_TRUE(cache.Find(0, sig, &view));
  ASSERT_EQ(view.m, 1);
  ASSERT_EQ(view.length, 2);
  EXPECT_EQ(view.output[0], 3.0f);
  EXPECT_EQ(view.representative[1], 2.0f);
  EXPECT_EQ(cache.lookups(), 2);
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_DOUBLE_EQ(cache.ReuseRate(), 0.5);
}

TEST(ClusterReuseCacheTest, BlocksAreIndependent) {
  ClusterReuseCache cache;
  LshSignature sig;
  const float rep[] = {1.0f};
  const float out[] = {2.0f};
  cache.Insert(0, sig, rep, 1, out, 1);
  EXPECT_TRUE(cache.Find(0, sig));
  EXPECT_FALSE(cache.Find(1, sig));
  EXPECT_EQ(cache.TotalEntries(), 1);
}

TEST(ClusterReuseCacheTest, ClearResetsEverything) {
  ClusterReuseCache cache;
  LshSignature sig;
  const float rep[] = {1.0f};
  const float out[] = {2.0f};
  cache.Insert(0, sig, rep, 1, out, 1);
  cache.Find(0, sig);
  cache.Clear();
  EXPECT_EQ(cache.TotalEntries(), 0);
  EXPECT_EQ(cache.lookups(), 0);
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.ResidentBytes(), 0);
  EXPECT_FALSE(cache.Find(0, sig));
}

TEST(ClusteredMatmulTest, SecondIdenticalBatchFullyReused) {
  // Algorithm 1: feeding the same batch twice, the second pass must hit
  // the cache for every cluster and reproduce the same output.
  auto families = BlockLshFamilies::Create(10, 5, 10, 5);
  ASSERT_TRUE(families.ok());
  Rng rng(5);
  Tensor x = Tensor::RandomGaussian(Shape({24, 10}), &rng);
  Tensor w = Tensor::RandomGaussian(Shape({10, 6}), &rng);
  ClusterReuseCache cache;

  const ForwardReuseResult first = ClusteredMatmulForward(
      *families, x.data(), 24, w, nullptr, 24, &cache);
  EXPECT_EQ(first.stats.clusters_reused, 0);
  const ForwardReuseResult second = ClusteredMatmulForward(
      *families, x.data(), 24, w, nullptr, 24, &cache);
  EXPECT_EQ(second.stats.clusters_reused, second.stats.clusters_total);
  EXPECT_DOUBLE_EQ(second.stats.batch_reuse_rate, 1.0);
  EXPECT_TRUE(AllClose(second.y_rows, first.y_rows));
  EXPECT_DOUBLE_EQ(second.stats.macs_gemm, 0.0);  // everything reused
}

TEST(ClusteredMatmulTest, CacheServesStaleOutputsAfterWeightChange) {
  // The CR approximation: cached outputs are NOT invalidated when W
  // changes. This is exactly Algorithm 1's behaviour.
  auto families = BlockLshFamilies::Create(4, 0, 12, 6);
  ASSERT_TRUE(families.ok());
  Rng rng(6);
  Tensor x = Tensor::RandomGaussian(Shape({8, 4}), &rng);
  Tensor w = Tensor::RandomGaussian(Shape({4, 3}), &rng);
  ClusterReuseCache cache;
  const ForwardReuseResult first = ClusteredMatmulForward(
      *families, x.data(), 8, w, nullptr, 8, &cache);
  ScaleInPlace(2.0f, &w);  // change the weights
  const ForwardReuseResult second = ClusteredMatmulForward(
      *families, x.data(), 8, w, nullptr, 8, &cache);
  // Outputs are the stale cached ones, not the doubled ones.
  EXPECT_TRUE(AllClose(second.y_rows, first.y_rows));
}

TEST(ClusteredMatmulTest, PartialReuseAcrossOverlappingBatches) {
  auto families = BlockLshFamilies::Create(4, 0, 16, 7);
  ASSERT_TRUE(families.ok());
  Rng rng(7);
  Tensor batch1 = Tensor::RandomGaussian(Shape({8, 4}), &rng);
  // batch2 = first 4 rows of batch1 + 4 new rows.
  Tensor batch2 = Tensor::RandomGaussian(Shape({8, 4}), &rng);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 4; ++j) batch2.at(i, j) = batch1.at(i, j);
  }
  Tensor w = Tensor::RandomGaussian(Shape({4, 3}), &rng);
  ClusterReuseCache cache;
  ClusteredMatmulForward(*families, batch1.data(), 8, w, nullptr, 8, &cache);
  const ForwardReuseResult second = ClusteredMatmulForward(
      *families, batch2.data(), 8, w, nullptr, 8, &cache);
  EXPECT_GT(second.stats.clusters_reused, 0);
  EXPECT_LT(second.stats.clusters_reused, second.stats.clusters_total);
}

TEST(ClusteredMatmulTest, SingleInputScopeMatchesGroupedClustering) {
  auto families = BlockLshFamilies::Create(6, 3, 8, 8);
  ASSERT_TRUE(families.ok());
  Rng rng(8);
  Tensor x = Tensor::RandomGaussian(Shape({12, 6}), &rng);
  Tensor w = Tensor::RandomGaussian(Shape({6, 4}), &rng);
  // rows_per_group = 4 simulates 3 images of 4 rows each.
  const ForwardReuseResult result = ClusteredMatmulForward(
      *families, x.data(), 12, w, nullptr, 4, nullptr);
  EXPECT_EQ(result.y_rows.shape(), Shape({12, 4}));
  // Single-input clustering can only have more (or equal) clusters than
  // single-batch.
  const ForwardReuseResult batch_scope = ClusteredMatmulForward(
      *families, x.data(), 12, w, nullptr, 12, nullptr);
  EXPECT_GE(result.stats.clusters_total, batch_scope.stats.clusters_total);
}

}  // namespace
}  // namespace adr
