// Tests for the model builders: geometry against the paper's Table II,
// forward shapes, validation and weight copying.

#include <gtest/gtest.h>

#include "models/models.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace adr {
namespace {

ModelOptions TinyOptions() {
  ModelOptions options;
  options.num_classes = 4;
  options.input_size = 32;
  options.width = 0.125;  // 64 -> 8 channels
  options.fc_width = 0.05;
  return options;
}

TEST(CifarNetTest, BuildsAndRunsForward) {
  auto model = BuildCifarNet(TinyOptions());
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->conv_layers.size(), 2u);
  EXPECT_TRUE(model->reuse_layers.empty());
  Rng rng(1);
  Tensor in = Tensor::RandomGaussian(Shape({2, 3, 32, 32}), &rng);
  Tensor out = model->network.Forward(in, false);
  EXPECT_EQ(out.shape(), Shape({2, 4}));
}

TEST(CifarNetTest, FullSizeGeometryMatchesPaperTable2) {
  ModelOptions options;
  options.num_classes = 10;
  options.input_size = 32;
  auto model = BuildCifarNet(options);
  ASSERT_TRUE(model.ok());
  // K ranges 75 (conv1: 3*5*5) to 1600 (conv2: 64*5*5); M = 64.
  const Conv2dConfig& conv1 = model->conv_layers[0]->config();
  const Conv2dConfig& conv2 = model->conv_layers[1]->config();
  EXPECT_EQ(conv1.in_channels * conv1.kernel * conv1.kernel, 75);
  EXPECT_EQ(conv2.in_channels * conv2.kernel * conv2.kernel, 1600);
  EXPECT_EQ(conv1.out_channels, 64);
  EXPECT_EQ(conv2.out_channels, 64);
}

TEST(CifarNetTest, RejectsBadInputSize) {
  ModelOptions options = TinyOptions();
  options.input_size = 30;  // not divisible by 4
  EXPECT_FALSE(BuildCifarNet(options).ok());
  options.input_size = 4;  // too small
  EXPECT_FALSE(BuildCifarNet(options).ok());
}

TEST(AlexNetTest, FullSizeGeometryMatchesPaperTable2) {
  ModelOptions options;
  options.num_classes = 100;
  options.input_size = 227;
  auto model = BuildAlexNet(options);
  ASSERT_TRUE(model.ok());
  ASSERT_EQ(model->conv_layers.size(), 5u);
  // K: conv1 = 3*11*11 = 363 ... conv4/5 = 384*3*3 = 3456; M: 64..384.
  const auto k_of = [&](size_t i) {
    const Conv2dConfig& c = model->conv_layers[i]->config();
    return c.in_channels * c.kernel * c.kernel;
  };
  EXPECT_EQ(k_of(0), 363);
  EXPECT_EQ(k_of(4), 3456);
  EXPECT_EQ(model->conv_layers[0]->config().out_channels, 64);
  EXPECT_EQ(model->conv_layers[3]->config().out_channels, 384);
}

TEST(AlexNetTest, ScaledVariantRunsForward) {
  ModelOptions options;
  options.num_classes = 4;
  options.input_size = 67;
  options.width = 0.125;
  options.fc_width = 0.01;
  auto model = BuildAlexNet(options);
  ASSERT_TRUE(model.ok());
  Rng rng(2);
  Tensor in = Tensor::RandomGaussian(Shape({1, 3, 67, 67}), &rng);
  Tensor out = model->network.Forward(in, false);
  EXPECT_EQ(out.shape(), Shape({1, 4}));
}

TEST(AlexNetTest, RejectsIncompatibleInputSize) {
  ModelOptions options = TinyOptions();
  options.input_size = 64;  // (64-11) % 4 != 0
  EXPECT_FALSE(BuildAlexNet(options).ok());
}

TEST(Vgg19Test, Has16ConvLayers) {
  ModelOptions options;
  options.num_classes = 4;
  options.input_size = 32;
  options.width = 0.0625;
  options.fc_width = 0.01;
  auto model = BuildVgg19(options);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->conv_layers.size(), 16u);
  Rng rng(3);
  Tensor in = Tensor::RandomGaussian(Shape({1, 3, 32, 32}), &rng);
  Tensor out = model->network.Forward(in, false);
  EXPECT_EQ(out.shape(), Shape({1, 4}));
}

TEST(Vgg19Test, FullSizeGeometryMatchesPaperTable2) {
  ModelOptions options;
  options.num_classes = 100;
  options.input_size = 224;
  auto model = BuildVgg19(options);
  ASSERT_TRUE(model.ok());
  const Conv2dConfig& first = model->conv_layers.front()->config();
  const Conv2dConfig& last = model->conv_layers.back()->config();
  EXPECT_EQ(first.in_channels * first.kernel * first.kernel, 27);
  EXPECT_EQ(last.in_channels * last.kernel * last.kernel, 4608);
  EXPECT_EQ(first.out_channels, 64);
  EXPECT_EQ(last.out_channels, 512);
}

TEST(Vgg19Test, RejectsBadInputSize) {
  ModelOptions options = TinyOptions();
  options.input_size = 48;  // not divisible by 32
  EXPECT_FALSE(BuildVgg19(options).ok());
}

TEST(BuildModelTest, DispatchesByName) {
  EXPECT_TRUE(BuildModel("cifarnet", TinyOptions()).ok());
  EXPECT_FALSE(BuildModel("resnet50", TinyOptions()).ok());
  EXPECT_EQ(BuildModel("resnet50", TinyOptions()).status().code(),
            StatusCode::kNotFound);
}

TEST(BuildModelTest, ReuseModeBuildsReuseLayers) {
  ModelOptions options = TinyOptions();
  options.use_reuse = true;
  options.reuse.num_hashes = 8;
  auto model = BuildModel("cifarnet", options);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->reuse_layers.size(), 2u);
  EXPECT_TRUE(model->conv_layers.empty());
  Rng rng(4);
  Tensor in = Tensor::RandomGaussian(Shape({2, 3, 32, 32}), &rng);
  Tensor out = model->network.Forward(in, true);
  EXPECT_EQ(out.shape(), Shape({2, 4}));
}

TEST(BuildModelTest, NetworkCollectsReuseStats) {
  ModelOptions options = TinyOptions();
  options.use_reuse = true;
  options.reuse.num_hashes = 8;
  auto model = BuildModel("cifarnet", options);
  ASSERT_TRUE(model.ok());

  // Before any forward pass: one entry per reuse layer, all zeroed.
  auto stats = model->network.CollectReuseStats();
  ASSERT_EQ(stats.size(), model->reuse_layers.size());
  for (const auto& [name, s] : stats) EXPECT_EQ(s.forward_calls, 0);

  Rng rng(4);
  Tensor in = Tensor::RandomGaussian(Shape({2, 3, 32, 32}), &rng);
  model->network.Forward(in, true);
  stats = model->network.CollectReuseStats();
  for (size_t i = 0; i < stats.size(); ++i) {
    EXPECT_EQ(stats[i].first, model->reuse_layers[i]->name());
    EXPECT_EQ(stats[i].second.forward_calls, 1);
    EXPECT_GT(stats[i].second.macs_baseline, 0.0);
  }

  model->network.ResetReuseStats();
  for (const auto& [name, s] : model->network.CollectReuseStats()) {
    EXPECT_EQ(s.forward_calls, 0);
    EXPECT_EQ(s.macs_baseline, 0.0);
  }

  // Dense models expose no reuse telemetry.
  auto dense = BuildModel("cifarnet", TinyOptions());
  ASSERT_TRUE(dense.ok());
  EXPECT_TRUE(dense->network.CollectReuseStats().empty());
}

TEST(BuildModelTest, ReuseConfigClampedPerLayer) {
  ModelOptions options = TinyOptions();
  options.use_reuse = true;
  options.reuse.sub_vector_length = 100000;  // clamped to each layer's K
  options.reuse.num_hashes = 8;
  auto model = BuildModel("cifarnet", options);
  ASSERT_TRUE(model.ok());
  for (ReuseConv2d* layer : model->reuse_layers) {
    EXPECT_LE(layer->reuse_config().sub_vector_length,
              layer->unfolded_cols());
  }
}

TEST(CopyWeightsTest, BaselineToReuseProducesSameOutput) {
  ModelOptions options = TinyOptions();
  auto baseline = BuildCifarNet(options);
  ASSERT_TRUE(baseline.ok());
  ModelOptions reuse_options = options;
  reuse_options.use_reuse = true;
  reuse_options.reuse.num_hashes = 96;  // near-exact clustering
  reuse_options.seed = 777;             // different init, then overwritten
  auto reuse = BuildCifarNet(reuse_options);
  ASSERT_TRUE(reuse.ok());
  ASSERT_TRUE(CopyWeights(*baseline, &*reuse).ok());

  Rng rng(5);
  Tensor in = Tensor::RandomGaussian(Shape({2, 3, 32, 32}), &rng);
  Tensor expected = baseline->network.Forward(in, false);
  Tensor actual = reuse->network.Forward(in, false);
  EXPECT_LT(MaxAbsDiff(actual, expected), 0.05f);
}

TEST(CopyWeightsTest, RejectsMismatchedModels) {
  auto a = BuildCifarNet(TinyOptions());
  ModelOptions bigger = TinyOptions();
  bigger.width = 0.25;
  auto b = BuildCifarNet(bigger);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(CopyWeights(*a, &*b).ok());
}

TEST(ModelTest, ValidatesCommonOptions) {
  ModelOptions options = TinyOptions();
  options.num_classes = 1;
  EXPECT_FALSE(BuildCifarNet(options).ok());
  options = TinyOptions();
  options.width = 0.0;
  EXPECT_FALSE(BuildCifarNet(options).ok());
}

TEST(ModelTest, NetworkMacsPositive) {
  auto model = BuildCifarNet(TinyOptions());
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->network.ForwardMacs(8), 0.0);
  EXPECT_GT(model->network.NumParameters(), 0);
}

}  // namespace
}  // namespace adr
