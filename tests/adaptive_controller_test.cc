// Tests for PlateauDetector and AdaptiveController (Amendments 3.1-3.3).

#include <gtest/gtest.h>

#include "core/adaptive_controller.h"
#include "util/rng.h"

namespace adr {
namespace {

TEST(PlateauDetectorTest, NoVerdictBeforeTwoWindows) {
  PlateauDetector detector(5, 0.01);
  for (int i = 0; i < 9; ++i) {
    EXPECT_FALSE(detector.Observe(1.0));
  }
  EXPECT_TRUE(detector.Observe(1.0));  // 10th observation, flat
}

TEST(PlateauDetectorTest, DecreasingLossIsNotPlateau) {
  PlateauDetector detector(5, 0.01);
  bool plateaued = false;
  for (int i = 0; i < 30; ++i) {
    plateaued = detector.Observe(10.0 - 0.3 * i);
  }
  EXPECT_FALSE(plateaued);
}

TEST(PlateauDetectorTest, FlatLossIsPlateau) {
  PlateauDetector detector(5, 0.01);
  bool plateaued = false;
  for (int i = 0; i < 10; ++i) plateaued = detector.Observe(2.0);
  EXPECT_TRUE(plateaued);
}

TEST(PlateauDetectorTest, ResetClearsHistory) {
  PlateauDetector detector(3, 0.01);
  for (int i = 0; i < 6; ++i) detector.Observe(1.0);
  detector.Reset();
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(detector.Observe(1.0));
  }
}

TEST(PlateauDetectorTest, SlowImprovementBelowThresholdIsPlateau) {
  PlateauDetector detector(5, 0.05);  // requires 5% improvement per window
  bool plateaued = false;
  for (int i = 0; i < 10; ++i) plateaued = detector.Observe(1.0 - 1e-4 * i);
  EXPECT_TRUE(plateaued);
}

Conv2dConfig TinyConv(int64_t in_channels) {
  Conv2dConfig config;
  config.in_channels = in_channels;
  config.out_channels = 8;
  config.kernel = 3;
  config.stride = 1;
  config.pad = 1;
  config.in_height = 8;
  config.in_width = 8;
  return config;
}

std::unique_ptr<ReuseConv2d> MakeLayer(const std::string& name,
                                       int64_t in_channels, Rng* rng) {
  ReuseConfig reuse;
  reuse.num_hashes = 8;
  return std::make_unique<ReuseConv2d>(name, TinyConv(in_channels), reuse,
                                       rng);
}

TEST(AdaptiveControllerTest, InitAppliesMostAggressiveCandidate) {
  Rng rng(1);
  auto layer = MakeLayer("conv1", 3, &rng);
  AdaptiveOptions options;
  AdaptiveController controller({layer.get()}, 4, options);
  ASSERT_TRUE(controller.Init().ok());
  const LhCandidate& first = controller.CurrentCandidate(0);
  EXPECT_EQ(layer->reuse_config().sub_vector_length, first.l);
  EXPECT_EQ(layer->reuse_config().num_hashes, first.h);
  EXPECT_EQ(controller.stage(), 0);
  EXPECT_GT(controller.num_stages(), 1);
}

TEST(AdaptiveControllerTest, RejectsEmptyLayerList) {
  AdaptiveOptions options;
  AdaptiveController controller({}, 4, options);
  EXPECT_FALSE(controller.Init().ok());
}

TEST(AdaptiveControllerTest, NoAdvanceWhileLossDecreases) {
  Rng rng(2);
  auto layer = MakeLayer("conv1", 3, &rng);
  AdaptiveOptions options;
  options.plateau_window = 3;
  options.min_steps_per_stage = 4;
  AdaptiveController controller({layer.get()}, 4, options);
  ASSERT_TRUE(controller.Init().ok());
  int probes = 0;
  for (int i = 0; i < 30; ++i) {
    const bool advanced = controller.Step(
        10.0 - 0.3 * i, 0.2, [&]() {
          ++probes;
          return 0.5;
        });
    EXPECT_FALSE(advanced);
  }
  EXPECT_EQ(probes, 0);
  EXPECT_EQ(controller.stage(), 0);
}

TEST(AdaptiveControllerTest, AdvancesOnPlateauWithGoodProbe) {
  Rng rng(3);
  auto layer = MakeLayer("conv1", 3, &rng);
  AdaptiveOptions options;
  options.plateau_window = 3;
  options.min_steps_per_stage = 4;
  AdaptiveController controller({layer.get()}, 4, options);
  ASSERT_TRUE(controller.Init().ok());
  // Probe returns improving accuracy: first call (A_cur) low, later high,
  // satisfying Amendment 3.1's 1.5x ratio at low training accuracy.
  int call = 0;
  bool advanced = false;
  for (int i = 0; i < 20 && !advanced; ++i) {
    advanced = controller.Step(1.0, /*train_accuracy=*/0.2, [&]() {
      return ++call == 1 ? 0.2 : 0.6;
    });
  }
  EXPECT_TRUE(advanced);
  EXPECT_EQ(controller.stage(), 1);
  // Layer must now carry stage-1 parameters.
  const LhCandidate& current = controller.CurrentCandidate(0);
  EXPECT_EQ(layer->reuse_config().sub_vector_length, current.l);
  EXPECT_EQ(layer->reuse_config().num_hashes, current.h);
}

TEST(AdaptiveControllerTest, Amendment32UsesDifferenceAtHighAccuracy) {
  Rng rng(4);
  auto layer = MakeLayer("conv1", 3, &rng);
  AdaptiveOptions options;
  options.plateau_window = 2;
  options.min_steps_per_stage = 2;
  AdaptiveController controller({layer.get()}, 4, options);
  ASSERT_TRUE(controller.Init().ok());
  // train accuracy 0.8 (> 0.5): need A_next - A_cur >= 0.1.
  int call = 0;
  bool advanced = false;
  for (int i = 0; i < 20 && !advanced; ++i) {
    advanced = controller.Step(1.0, 0.8, [&]() {
      return ++call == 1 ? 0.70 : 0.82;  // +0.12 >= 0.1
    });
  }
  EXPECT_TRUE(advanced);
}

TEST(AdaptiveControllerTest, FallbackStillGuaranteesProgress) {
  Rng rng(5);
  auto layer = MakeLayer("conv1", 3, &rng);
  AdaptiveOptions options;
  options.plateau_window = 2;
  options.min_steps_per_stage = 2;
  AdaptiveController controller({layer.get()}, 4, options);
  ASSERT_TRUE(controller.Init().ok());
  // Probe never improves: Amendments 3.1/3.2 fail, 3.3's 1.1 ratio fails,
  // yet the controller must still advance by one stage.
  bool advanced = false;
  for (int i = 0; i < 20 && !advanced; ++i) {
    advanced = controller.Step(1.0, 0.8, [&]() { return 0.5; });
  }
  EXPECT_TRUE(advanced);
  EXPECT_EQ(controller.stage(), 1);
}

TEST(AdaptiveControllerTest, ExhaustsAtEndOfSchedule) {
  Rng rng(6);
  auto layer = MakeLayer("conv1", 3, &rng);
  AdaptiveOptions options;
  options.plateau_window = 1;
  options.min_steps_per_stage = 1;
  AdaptiveController controller({layer.get()}, 4, options);
  ASSERT_TRUE(controller.Init().ok());
  const int stages = controller.num_stages();
  int advances = 0;
  for (int i = 0; i < 500 && !controller.Exhausted(); ++i) {
    if (controller.Step(1.0, 0.2, [&]() { return 0.9; })) ++advances;
  }
  EXPECT_TRUE(controller.Exhausted());
  EXPECT_LE(controller.stage(), stages - 1);
  EXPECT_GT(advances, 0);
  // Once exhausted, Step never advances again.
  EXPECT_FALSE(controller.Step(1.0, 0.2, [&]() { return 0.99; }));
}

TEST(AdaptiveControllerTest, MultipleLayersEachFollowOwnList) {
  Rng rng(7);
  auto layer1 = MakeLayer("conv1", 3, &rng);
  auto layer2 = MakeLayer("conv2", 16, &rng);
  AdaptiveOptions options;
  options.plateau_window = 1;
  options.min_steps_per_stage = 1;
  AdaptiveController controller({layer1.get(), layer2.get()}, 4, options);
  ASSERT_TRUE(controller.Init().ok());
  // Different geometry (I_c 3 vs 16) must give different candidates.
  EXPECT_NE(controller.CurrentCandidate(0).l,
            controller.CurrentCandidate(1).l);
  while (!controller.Exhausted()) {
    controller.Step(1.0, 0.2, [&]() { return 0.9; });
  }
  // Both layers end on their most precise setting.
  EXPECT_EQ(layer1->reuse_config().num_hashes,
            controller.CurrentCandidate(0).h);
  EXPECT_EQ(layer2->reuse_config().num_hashes,
            controller.CurrentCandidate(1).h);
}

}  // namespace
}  // namespace adr
