// Tests for ReuseConfig, BlockLshFamilies and ClusterSubVectors.

#include <gtest/gtest.h>

#include "core/reuse_config.h"
#include "core/subvector_clustering.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace adr {
namespace {

TEST(ReuseConfigTest, EffectiveLength) {
  ReuseConfig config;
  config.sub_vector_length = 0;
  EXPECT_EQ(config.EffectiveLength(100), 100);
  config.sub_vector_length = 25;
  EXPECT_EQ(config.EffectiveLength(100), 25);
  config.sub_vector_length = 200;
  EXPECT_EQ(config.EffectiveLength(100), 100);
}

TEST(ReuseConfigTest, Validation) {
  ReuseConfig config;
  EXPECT_TRUE(config.Validate(100).ok());
  config.sub_vector_length = -1;
  EXPECT_FALSE(config.Validate(100).ok());
  config.sub_vector_length = 101;
  EXPECT_FALSE(config.Validate(100).ok());
  config.sub_vector_length = 10;
  config.num_hashes = 0;
  EXPECT_FALSE(config.Validate(100).ok());
  config.num_hashes = kMaxLshHashes + 1;
  EXPECT_FALSE(config.Validate(100).ok());
  config.num_hashes = 8;
  EXPECT_TRUE(config.Validate(100).ok());
  EXPECT_FALSE(config.Validate(0).ok());
}

TEST(ReuseConfigTest, ClusterReuseImpliedByScope) {
  ReuseConfig config;
  EXPECT_FALSE(config.ClusterReuseEnabled());
  config.scope = ClusterScope::kAcrossBatch;
  EXPECT_TRUE(config.ClusterReuseEnabled());
  config.scope = ClusterScope::kSingleBatch;
  config.cluster_reuse = true;
  EXPECT_TRUE(config.ClusterReuseEnabled());
}

TEST(ReuseConfigTest, ToStringMentionsEverything) {
  ReuseConfig config;
  config.sub_vector_length = 8;
  config.num_hashes = 10;
  const std::string s = config.ToString();
  EXPECT_NE(s.find("L=8"), std::string::npos);
  EXPECT_NE(s.find("H=10"), std::string::npos);
  EXPECT_NE(s.find("CR=0"), std::string::npos);
  EXPECT_NE(s.find("single-batch"), std::string::npos);
}

TEST(BlockLshFamiliesTest, EvenSplit) {
  auto families = BlockLshFamilies::Create(12, 4, 8, 1);
  ASSERT_TRUE(families.ok());
  EXPECT_EQ(families->num_blocks(), 3);
  for (int64_t b = 0; b < 3; ++b) {
    EXPECT_EQ(families->block_offset(b), b * 4);
    EXPECT_EQ(families->block_length(b), 4);
    EXPECT_EQ(families->family(b).dim(), 4);
  }
}

TEST(BlockLshFamiliesTest, RaggedTailBlock) {
  auto families = BlockLshFamilies::Create(10, 4, 8, 1);
  ASSERT_TRUE(families.ok());
  EXPECT_EQ(families->num_blocks(), 3);
  EXPECT_EQ(families->block_length(2), 2);
}

TEST(BlockLshFamiliesTest, WholeRowWhenLZero) {
  auto families = BlockLshFamilies::Create(10, 0, 8, 1);
  ASSERT_TRUE(families.ok());
  EXPECT_EQ(families->num_blocks(), 1);
  EXPECT_EQ(families->block_length(0), 10);
}

TEST(BlockLshFamiliesTest, BlocksUseDistinctHyperplanes) {
  auto families = BlockLshFamilies::Create(8, 4, 16, 1);
  ASSERT_TRUE(families.ok());
  // Hash the same 4-vector through both blocks; with independent
  // hyperplanes, the signatures should differ with high probability.
  Rng rng(1);
  Tensor v = Tensor::RandomGaussian(Shape({4}), &rng);
  EXPECT_FALSE(families->family(0).Hash(v.data()) ==
               families->family(1).Hash(v.data()));
}

TEST(ClusterSubVectorsTest, DuplicateRowsShareClusters) {
  auto families = BlockLshFamilies::Create(6, 3, 12, 2);
  ASSERT_TRUE(families.ok());
  Rng rng(2);
  Tensor base = Tensor::RandomGaussian(Shape({1, 6}), &rng);
  Tensor x(Shape({4, 6}));
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 6; ++j) x.at(i, j) = base.at(0, j);
  }
  const ReuseClustering result =
      ClusterSubVectors(*families, x.data(), 4, 4);
  ASSERT_EQ(result.blocks.size(), 2u);
  for (const auto& block : result.blocks) {
    EXPECT_EQ(block.clustering.num_clusters(), 1);
    EXPECT_EQ(block.clustering.cluster_sizes[0], 4);
    // Centroid of identical rows equals the row.
    for (int64_t j = 0; j < block.length; ++j) {
      EXPECT_NEAR(block.centroids.at(0, j),
                  base.at(0, block.col_offset + j), 1e-5f);
    }
  }
  EXPECT_DOUBLE_EQ(result.AverageRemainingRatio(), 0.25);
  EXPECT_EQ(result.TotalClusters(), 2);
}

TEST(ClusterSubVectorsTest, RandomRowsMostlySeparate) {
  auto families = BlockLshFamilies::Create(16, 16, 32, 3);
  ASSERT_TRUE(families.ok());
  Rng rng(3);
  Tensor x = Tensor::RandomGaussian(Shape({64, 16}), &rng);
  const ReuseClustering result =
      ClusterSubVectors(*families, x.data(), 64, 64);
  // 32 hyperplanes over random gaussian rows: collisions are rare.
  EXPECT_GT(result.blocks[0].clustering.num_clusters(), 55);
}

TEST(ClusterSubVectorsTest, FewerHashesCoarserClustering) {
  Rng rng(4);
  Tensor x = Tensor::RandomGaussian(Shape({128, 8}), &rng);
  auto fine = BlockLshFamilies::Create(8, 8, 24, 5);
  auto coarse = BlockLshFamilies::Create(8, 8, 2, 5);
  ASSERT_TRUE(fine.ok());
  ASSERT_TRUE(coarse.ok());
  const auto fine_result = ClusterSubVectors(*fine, x.data(), 128, 128);
  const auto coarse_result = ClusterSubVectors(*coarse, x.data(), 128, 128);
  EXPECT_LT(coarse_result.TotalClusters(), fine_result.TotalClusters());
  // With H=2 there can be at most 4 signatures.
  EXPECT_LE(coarse_result.blocks[0].clustering.num_clusters(), 4);
}

TEST(ClusterSubVectorsTest, GroupsNeverShareClusters) {
  // Single-input scope: identical rows in different groups must land in
  // different clusters.
  auto families = BlockLshFamilies::Create(4, 4, 8, 6);
  ASSERT_TRUE(families.ok());
  Rng rng(5);
  Tensor row = Tensor::RandomGaussian(Shape({4}), &rng);
  Tensor x(Shape({4, 4}));
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 4; ++j) x.at(i, j) = row.at(j);
  }
  const ReuseClustering grouped =
      ClusterSubVectors(*families, x.data(), 4, /*rows_per_group=*/2);
  const auto& c = grouped.blocks[0].clustering;
  EXPECT_EQ(c.num_clusters(), 2);
  EXPECT_EQ(c.assignment[0], c.assignment[1]);
  EXPECT_EQ(c.assignment[2], c.assignment[3]);
  EXPECT_NE(c.assignment[0], c.assignment[2]);
}

TEST(ClusterSubVectorsTest, SignaturesAlignWithClusters) {
  auto families = BlockLshFamilies::Create(8, 8, 16, 7);
  ASSERT_TRUE(families.ok());
  Rng rng(6);
  Tensor x = Tensor::RandomGaussian(Shape({32, 8}), &rng);
  const ReuseClustering result =
      ClusterSubVectors(*families, x.data(), 32, 32);
  const auto& block = result.blocks[0];
  ASSERT_EQ(static_cast<int64_t>(block.signatures.size()),
            block.clustering.num_clusters());
  // Re-hashing any row must reproduce its cluster's stored signature.
  for (int64_t i = 0; i < 32; ++i) {
    const LshSignature sig = families->family(0).Hash(x.data() + i * 8);
    const int32_t cluster = block.clustering.assignment[static_cast<size_t>(i)];
    EXPECT_EQ(sig, block.signatures[static_cast<size_t>(cluster)]);
  }
}

TEST(ClusterSubVectorsTest, RemainingRatioBounds) {
  auto families = BlockLshFamilies::Create(8, 4, 10, 8);
  ASSERT_TRUE(families.ok());
  Rng rng(7);
  Tensor x = Tensor::RandomGaussian(Shape({100, 8}), &rng);
  const ReuseClustering result =
      ClusterSubVectors(*families, x.data(), 100, 100);
  const double rc = result.AverageRemainingRatio();
  EXPECT_GT(rc, 0.0);
  EXPECT_LE(rc, 1.0);
}

}  // namespace
}  // namespace adr
