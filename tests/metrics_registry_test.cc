// Unit tests of the MetricsRegistry: handle identity, lock-free publish
// under concurrent ParallelFor workers, histogram percentile bounds, and
// the JSON dump shape.

#include "util/metrics_registry.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>

#include "tests/json_syntax.h"
#include "util/parallel.h"

namespace adr {
namespace {

class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(ThreadPool::GlobalThreads()) {}
  ~ThreadCountGuard() { ThreadPool::SetGlobalThreads(saved_); }

 private:
  int saved_;
};

TEST(CounterTest, IncrementsAccumulate) {
  MetricsRegistry registry;
  Counter* c = registry.counter("a/b");
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42);
}

TEST(GaugeTest, SetAndAdd) {
  MetricsRegistry registry;
  Gauge* g = registry.gauge("a/g");
  EXPECT_EQ(g->value(), 0.0);
  g->Set(1.5);
  g->Add(0.25);
  EXPECT_DOUBLE_EQ(g->value(), 1.75);
}

TEST(MetricsRegistryTest, SameNameReturnsSameHandle) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.counter("x"), registry.counter("x"));
  EXPECT_EQ(registry.gauge("x"), registry.gauge("x"));
  EXPECT_EQ(registry.histogram("x"), registry.histogram("x"));
  EXPECT_NE(registry.counter("x"), registry.counter("y"));
}

TEST(MetricsRegistryTest, ClearDropsEverything) {
  MetricsRegistry registry;
  registry.counter("c")->Increment();
  registry.gauge("g")->Set(1.0);
  registry.histogram("h")->Record(1.0);
  registry.Clear();
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_TRUE(snapshot.counters.empty());
  EXPECT_TRUE(snapshot.gauges.empty());
  EXPECT_TRUE(snapshot.histograms.empty());
}

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("h");
  EXPECT_EQ(h->count(), 0);
  EXPECT_EQ(h->sum(), 0.0);
  EXPECT_EQ(h->min(), 0.0);
  EXPECT_EQ(h->max(), 0.0);
  EXPECT_EQ(h->mean(), 0.0);
  EXPECT_EQ(h->Percentile(50.0), 0.0);
}

TEST(HistogramTest, ExactStatsAreExact) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("h");
  for (const double v : {0.5, 2.0, 8.0, 8.0}) h->Record(v);
  EXPECT_EQ(h->count(), 4);
  EXPECT_DOUBLE_EQ(h->sum(), 18.5);
  EXPECT_DOUBLE_EQ(h->min(), 0.5);
  EXPECT_DOUBLE_EQ(h->max(), 8.0);
  EXPECT_DOUBLE_EQ(h->mean(), 18.5 / 4.0);
}

// The power-of-two bucketing promises relative error <= sqrt(2) on any
// percentile, clamped to [min, max].
TEST(HistogramTest, PercentileWithinGuaranteedRelativeError) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("h");
  for (int i = 1; i <= 1000; ++i) h->Record(static_cast<double>(i));
  const double kSqrt2 = std::sqrt(2.0);
  for (const double p : {1.0, 25.0, 50.0, 90.0, 99.0}) {
    const double exact = p * 10.0;  // value at percentile p of 1..1000
    const double approx = h->Percentile(p);
    EXPECT_GE(approx, exact / kSqrt2) << "p=" << p;
    EXPECT_LE(approx, exact * kSqrt2) << "p=" << p;
  }
  EXPECT_GE(h->Percentile(0.0), h->min());
  EXPECT_LE(h->Percentile(100.0), h->max());
}

TEST(HistogramTest, NonPositiveValuesLandInBottomBucket) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("h");
  h->Record(0.0);
  h->Record(-3.0);
  EXPECT_EQ(h->count(), 2);
  EXPECT_DOUBLE_EQ(h->min(), -3.0);
  // Percentiles stay clamped to the observed range.
  EXPECT_LE(h->Percentile(50.0), 0.0);
  EXPECT_GE(h->Percentile(50.0), -3.0);
}

// The lock-free publish path must tolerate all ParallelFor workers
// hammering shared handles; the exact totals prove no update was lost.
TEST(MetricsRegistryTest, ConcurrentPublishFromPoolWorkers) {
  ThreadCountGuard guard;
  ThreadPool::SetGlobalThreads(4);

  MetricsRegistry registry;
  Counter* counter = registry.counter("stress/counter");
  Gauge* gauge = registry.gauge("stress/gauge");
  Histogram* histogram = registry.histogram("stress/histogram");

  constexpr int64_t kItems = 10'000;
  ParallelFor(kItems, /*grain=*/64, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      counter->Increment();
      gauge->Add(1.0);
      histogram->Record(static_cast<double>(i % 7 + 1));
      // Concurrent lookups must also be safe.
      registry.counter("stress/lookup")->Increment();
    }
  });

  EXPECT_EQ(counter->value(), kItems);
  EXPECT_DOUBLE_EQ(gauge->value(), static_cast<double>(kItems));
  EXPECT_EQ(histogram->count(), kItems);
  EXPECT_EQ(registry.counter("stress/lookup")->value(), kItems);
}

TEST(MetricsRegistryTest, SnapshotCarriesAllThreeKinds) {
  MetricsRegistry registry;
  registry.counter("c/one")->Increment(3);
  registry.gauge("g/one")->Set(2.5);
  Histogram* h = registry.histogram("h/one");
  h->Record(1.0);
  h->Record(4.0);

  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.count("c/one"), 1u);
  EXPECT_EQ(snapshot.counters.at("c/one"), 3);
  ASSERT_EQ(snapshot.gauges.count("g/one"), 1u);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("g/one"), 2.5);
  ASSERT_EQ(snapshot.histograms.count("h/one"), 1u);
  const auto& stats = snapshot.histograms.at("h/one");
  EXPECT_EQ(stats.count, 2);
  EXPECT_DOUBLE_EQ(stats.sum, 5.0);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 4.0);
  EXPECT_GE(stats.p50, stats.min);
  EXPECT_LE(stats.p99, stats.max);
}

TEST(MetricsRegistryTest, ToJsonIsValidAndVersioned) {
  MetricsRegistry registry;
  registry.counter("train/steps")->Increment(7);
  registry.gauge("reuse/conv1/r_c")->Set(0.31);
  registry.histogram("core/gemm_seconds")->Record(0.002);
  // A name needing escaping must not break the document.
  registry.counter("weird\"name\\with\ncontrols")->Increment();

  const std::string json = registry.ToJson();
  EXPECT_TRUE(adr::testing::IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("train/steps"), std::string::npos);
  EXPECT_NE(json.find("reuse/conv1/r_c"), std::string::npos);
}

TEST(MetricsRegistryTest, WriteJsonFileRoundTrips) {
  MetricsRegistry registry;
  registry.counter("c")->Increment();
  const std::string path = ::testing::TempDir() + "/metrics_dump.json";
  ASSERT_TRUE(registry.WriteJsonFile(path).ok());

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(f);
  EXPECT_TRUE(adr::testing::IsValidJson(contents)) << contents;
}

TEST(MetricsRegistryTest, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

}  // namespace
}  // namespace adr
