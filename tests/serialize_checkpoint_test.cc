// Tests for binary serialization and network checkpointing.

#include <cstdio>

#include <gtest/gtest.h>

#include "models/models.h"
#include "nn/checkpoint.h"
#include "nn/dense.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace adr {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(BinarySerializeTest, RoundTripsScalars) {
  const std::string path = TempPath("scalars.bin");
  BinaryWriter writer;
  ASSERT_TRUE(BinaryWriter::Open(path, &writer).ok());
  ASSERT_TRUE(writer.WriteU32(0xdeadbeef).ok());
  ASSERT_TRUE(writer.WriteU64(1ULL << 50).ok());
  ASSERT_TRUE(writer.WriteI64(-42).ok());
  ASSERT_TRUE(writer.WriteDouble(3.25).ok());
  ASSERT_TRUE(writer.WriteString("hello").ok());
  ASSERT_TRUE(writer.Close().ok());

  BinaryReader reader;
  ASSERT_TRUE(BinaryReader::Open(path, &reader).ok());
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  double d = 0.0;
  std::string s;
  ASSERT_TRUE(reader.ReadU32(&u32).ok());
  ASSERT_TRUE(reader.ReadU64(&u64).ok());
  ASSERT_TRUE(reader.ReadI64(&i64).ok());
  ASSERT_TRUE(reader.ReadDouble(&d).ok());
  ASSERT_TRUE(reader.ReadString(&s).ok());
  EXPECT_EQ(u32, 0xdeadbeef);
  EXPECT_EQ(u64, 1ULL << 50);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(d, 3.25);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(reader.AtEof());
  std::remove(path.c_str());
}

TEST(BinarySerializeTest, RoundTripsFloatArray) {
  const std::string path = TempPath("floats.bin");
  const std::vector<float> values = {1.5f, -2.25f, 0.0f, 1e-20f};
  BinaryWriter writer;
  ASSERT_TRUE(BinaryWriter::Open(path, &writer).ok());
  ASSERT_TRUE(writer.WriteFloats(values.data(), values.size()).ok());
  ASSERT_TRUE(writer.Close().ok());

  BinaryReader reader;
  ASSERT_TRUE(BinaryReader::Open(path, &reader).ok());
  std::vector<float> read(values.size());
  ASSERT_TRUE(reader.ReadFloats(read.data(), read.size()).ok());
  EXPECT_EQ(read, values);
  std::remove(path.c_str());
}

TEST(BinarySerializeTest, ReadPastEndFails) {
  const std::string path = TempPath("short.bin");
  BinaryWriter writer;
  ASSERT_TRUE(BinaryWriter::Open(path, &writer).ok());
  ASSERT_TRUE(writer.WriteU32(7).ok());
  ASSERT_TRUE(writer.Close().ok());

  BinaryReader reader;
  ASSERT_TRUE(BinaryReader::Open(path, &reader).ok());
  uint64_t too_big = 0;
  EXPECT_EQ(reader.ReadU64(&too_big).code(), StatusCode::kOutOfRange);
  std::remove(path.c_str());
}

TEST(BinarySerializeTest, StringLengthGuard) {
  const std::string path = TempPath("longstr.bin");
  BinaryWriter writer;
  ASSERT_TRUE(BinaryWriter::Open(path, &writer).ok());
  ASSERT_TRUE(writer.WriteString(std::string(100, 'x')).ok());
  ASSERT_TRUE(writer.Close().ok());

  BinaryReader reader;
  ASSERT_TRUE(BinaryReader::Open(path, &reader).ok());
  std::string s;
  EXPECT_EQ(reader.ReadString(&s, /*max_length=*/10).code(),
            StatusCode::kOutOfRange);
  std::remove(path.c_str());
}

TEST(BinarySerializeTest, FloatCountMismatchFails) {
  const std::string path = TempPath("count.bin");
  const float values[3] = {1, 2, 3};
  BinaryWriter writer;
  ASSERT_TRUE(BinaryWriter::Open(path, &writer).ok());
  ASSERT_TRUE(writer.WriteFloats(values, 3).ok());
  ASSERT_TRUE(writer.Close().ok());

  BinaryReader reader;
  ASSERT_TRUE(BinaryReader::Open(path, &reader).ok());
  float out[4];
  EXPECT_EQ(reader.ReadFloats(out, 4).code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(BinarySerializeTest, MissingFileReportsNotFound) {
  BinaryReader reader;
  EXPECT_EQ(BinaryReader::Open("/no/such/file.bin", &reader).code(),
            StatusCode::kNotFound);
  BinaryWriter writer;
  EXPECT_EQ(BinaryWriter::Open("/no/such/dir/file.bin", &writer).code(),
            StatusCode::kNotFound);
}

ModelOptions TinyModel() {
  ModelOptions options;
  options.num_classes = 4;
  options.input_size = 16;
  options.width = 0.125;
  options.fc_width = 0.05;
  return options;
}

TEST(CheckpointTest, SaveLoadRoundTripRestoresOutputs) {
  const std::string path = TempPath("model.ckpt");
  auto original = BuildCifarNet(TinyModel());
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(SaveCheckpoint(original->network, path).ok());

  ModelOptions other_options = TinyModel();
  other_options.seed = 999;  // different init
  auto restored = BuildCifarNet(other_options);
  ASSERT_TRUE(restored.ok());
  ASSERT_TRUE(LoadCheckpoint(path, &restored->network).ok());

  Rng rng(5);
  Tensor in = Tensor::RandomGaussian(Shape({2, 3, 16, 16}), &rng);
  Tensor expected = original->network.Forward(in, false);
  Tensor actual = restored->network.Forward(in, false);
  EXPECT_EQ(MaxAbsDiff(actual, expected), 0.0f);
  std::remove(path.c_str());
}

TEST(CheckpointTest, LoadIntoReuseTwinWorks) {
  // Checkpoints are architecture-keyed by parameter shapes, so a baseline
  // checkpoint loads into a reuse-mode model of the same geometry.
  const std::string path = TempPath("model_reuse.ckpt");
  auto baseline = BuildCifarNet(TinyModel());
  ASSERT_TRUE(baseline.ok());
  ASSERT_TRUE(SaveCheckpoint(baseline->network, path).ok());

  ModelOptions reuse_options = TinyModel();
  reuse_options.use_reuse = true;
  reuse_options.reuse.enabled = false;
  auto reuse = BuildCifarNet(reuse_options);
  ASSERT_TRUE(reuse.ok());
  ASSERT_TRUE(LoadCheckpoint(path, &reuse->network).ok());

  Rng rng(6);
  Tensor in = Tensor::RandomGaussian(Shape({1, 3, 16, 16}), &rng);
  EXPECT_LT(MaxAbsDiff(reuse->network.Forward(in, false),
                       baseline->network.Forward(in, false)),
            1e-5f);
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsMismatchedArchitecture) {
  const std::string path = TempPath("mismatch.ckpt");
  auto small = BuildCifarNet(TinyModel());
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(SaveCheckpoint(small->network, path).ok());

  ModelOptions bigger = TinyModel();
  bigger.width = 0.25;
  auto big = BuildCifarNet(bigger);
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(LoadCheckpoint(path, &big->network).code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsGarbageFile) {
  const std::string path = TempPath("garbage.ckpt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a checkpoint at all";
  }
  auto model = BuildCifarNet(TinyModel());
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(LoadCheckpoint(path, &model->network).ok());
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsMissingFile) {
  auto model = BuildCifarNet(TinyModel());
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(LoadCheckpoint("/no/such/checkpoint.ckpt", &model->network)
                .code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace adr
