// Compile check for the umbrella header plus a miniature end-to-end use
// of the public API exactly as README documents it.

#include "src/adr.h"

#include <gtest/gtest.h>

namespace adr {
namespace {

TEST(UmbrellaTest, ReadmeQuickstartCompilesAndRuns) {
  SyntheticImageConfig data_config = SyntheticImageConfig::CifarLike(64, 1);
  data_config.num_classes = 4;
  data_config.height = data_config.width = 16;
  auto dataset = SyntheticImageDataset::Create(data_config);
  ASSERT_TRUE(dataset.ok());

  ModelOptions options;
  options.num_classes = 4;
  options.input_size = 16;
  options.width = 0.125;
  options.fc_width = 0.05;
  options.use_reuse = true;
  options.reuse.sub_vector_length = 25;
  options.reuse.num_hashes = 12;
  options.reuse.cluster_reuse = false;
  auto model = BuildCifarNet(options);
  ASSERT_TRUE(model.ok());

  DataLoader loader(&*dataset, 16, true, 2);
  Adam optimizer(0.002f);
  Batch batch;
  loader.Next(&batch);
  const StepResult result = TrainStep(&model->network, &optimizer, batch);
  EXPECT_GT(result.loss, 0.0);

  for (ReuseConv2d* layer : model->reuse_layers) {
    EXPECT_GE(layer->stats().avg_remaining_ratio, 0.0);
  }
}

}  // namespace
}  // namespace adr
