// Unit tests of the parallel runtime: ParallelFor chunking semantics,
// exception propagation through the pool, and thread-count plumbing.

#include "util/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

namespace adr {
namespace {

// Restores the ambient thread count on scope exit so tests that resize the
// global pool do not leak their setting into other tests.
class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(ThreadPool::GlobalThreads()) {}
  ~ThreadCountGuard() { ThreadPool::SetGlobalThreads(saved_); }

 private:
  int saved_;
};

TEST(ParallelForTest, EmptyRangeNeverCallsFn) {
  std::atomic<int> calls{0};
  ParallelFor(0, 1, [&](int64_t, int64_t) { ++calls; });
  ParallelFor(-5, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, GrainLargerThanRangeIsOneChunk) {
  std::mutex mu;
  std::vector<std::pair<int64_t, int64_t>> ranges;
  ParallelFor(7, 100, [&](int64_t begin, int64_t end) {
    std::lock_guard<std::mutex> lock(mu);
    ranges.emplace_back(begin, end);
  });
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0].first, 0);
  EXPECT_EQ(ranges[0].second, 7);
}

TEST(ParallelForTest, ChunksCoverRangeExactlyOnce) {
  ThreadCountGuard guard;
  for (const int threads : {1, 3}) {
    ThreadPool::SetGlobalThreads(threads);
    for (const int64_t n : {1, 2, 17, 64, 1000}) {
      for (const int64_t grain : {1, 3, 7, 64, 2000}) {
        std::vector<std::atomic<int>> hits(static_cast<size_t>(n));
        for (auto& h : hits) h = 0;
        ParallelFor(n, grain, [&](int64_t begin, int64_t end) {
          ASSERT_LE(0, begin);
          ASSERT_LT(begin, end);
          ASSERT_LE(end, n);
          for (int64_t i = begin; i < end; ++i) ++hits[static_cast<size_t>(i)];
        });
        for (int64_t i = 0; i < n; ++i) {
          EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1)
              << "n=" << n << " grain=" << grain << " i=" << i;
        }
      }
    }
  }
}

TEST(ParallelForTest, ChunkBoundariesIndependentOfThreadCount) {
  ThreadCountGuard guard;
  auto boundaries = [](int64_t n, int64_t grain) {
    std::mutex mu;
    std::vector<std::pair<int64_t, int64_t>> ranges;
    ParallelFor(n, grain, [&](int64_t begin, int64_t end) {
      std::lock_guard<std::mutex> lock(mu);
      ranges.emplace_back(begin, end);
    });
    std::sort(ranges.begin(), ranges.end());
    return ranges;
  };
  ThreadPool::SetGlobalThreads(1);
  const auto serial = boundaries(1000, 13);
  ThreadPool::SetGlobalThreads(4);
  EXPECT_EQ(boundaries(1000, 13), serial);
}

TEST(ParallelForTest, ExceptionPropagatesToCaller) {
  ThreadCountGuard guard;
  for (const int threads : {1, 4}) {
    ThreadPool::SetGlobalThreads(threads);
    EXPECT_THROW(
        ParallelFor(100, 1,
                    [&](int64_t begin, int64_t) {
                      if (begin >= 50) throw std::runtime_error("boom");
                    }),
        std::runtime_error);
    // The pool must stay usable after an exception.
    std::atomic<int64_t> sum{0};
    ParallelFor(10, 1, [&](int64_t begin, int64_t end) {
      for (int64_t i = begin; i < end; ++i) sum += i;
    });
    EXPECT_EQ(sum.load(), 45);
  }
}

TEST(ParallelForTest, NestedCallsRunInline) {
  ThreadCountGuard guard;
  ThreadPool::SetGlobalThreads(4);
  std::atomic<int> inner_calls{0};
  // An inner ParallelFor inside a pool chunk must not deadlock on the
  // single job slot; it executes inline on the calling thread.
  ParallelFor(8, 1, [&](int64_t, int64_t) {
    ParallelFor(4, 1, [&](int64_t begin, int64_t end) {
      inner_calls += static_cast<int>(end - begin);
    });
  });
  EXPECT_EQ(inner_calls.load(), 32);
}

TEST(ThreadPoolTest, SetGlobalThreadsClampsToOne) {
  ThreadCountGuard guard;
  ThreadPool::SetGlobalThreads(0);
  EXPECT_EQ(ThreadPool::GlobalThreads(), 1);
  ThreadPool::SetGlobalThreads(-3);
  EXPECT_EQ(ThreadPool::GlobalThreads(), 1);
  ThreadPool::SetGlobalThreads(5);
  EXPECT_EQ(ThreadPool::GlobalThreads(), 5);
}

TEST(ThreadPoolTest, GrainForCostScalesInversely) {
  EXPECT_GE(GrainForCost(1), GrainForCost(100));
  EXPECT_EQ(GrainForCost(1 << 30), 1);  // expensive items: one per chunk
  EXPECT_GE(GrainForCost(1), 1);
}

TEST(ThreadPoolTest, DirectRunExecutesEveryChunkOnce) {
  ThreadCountGuard guard;
  ThreadPool::SetGlobalThreads(3);
  std::vector<std::atomic<int>> hits(16);
  for (auto& h : hits) h = 0;
  ThreadPool::Global()->Run(16, [&](int64_t chunk) {
    ++hits[static_cast<size_t>(chunk)];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace adr
