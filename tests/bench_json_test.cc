// Unit tests of the bench JSON emitter: schema versioning, record shape,
// default path resolution, and file round-trip — the contract that
// scripts/check_bench_regression.py parses.

#include "util/bench_json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "tests/json_syntax.h"

namespace adr {
namespace {

BenchRecord MakeRecord(const std::string& name, double cpu_ns) {
  BenchRecord record;
  record.name = name;
  record.iterations = 1000;
  record.real_time_ns = cpu_ns * 1.1;
  record.cpu_time_ns = cpu_ns;
  record.items_per_second = 1e9 / cpu_ns;
  return record;
}

TEST(BenchJsonTest, EmptyEmitterStillProducesValidDocument) {
  BenchJsonEmitter emitter("micro_kernels");
  const std::string json = emitter.ToJson();
  EXPECT_TRUE(adr::testing::IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"suite\":\"micro_kernels\""), std::string::npos);
  EXPECT_NE(json.find("\"records\":[]"), std::string::npos);
}

TEST(BenchJsonTest, RecordsCarryAllFields) {
  BenchJsonEmitter emitter("micro_reuse");
  emitter.Add(MakeRecord("BM_Gemm/64", 1500.0));
  emitter.Add(MakeRecord("BM_Hash/32", 800.0));
  EXPECT_EQ(emitter.size(), 2u);

  const std::string json = emitter.ToJson();
  EXPECT_TRUE(adr::testing::IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"name\":\"BM_Gemm/64\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"BM_Hash/32\""), std::string::npos);
  EXPECT_NE(json.find("\"iterations\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"cpu_time_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"real_time_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"items_per_second\""), std::string::npos);
}

TEST(BenchJsonTest, CountersEmittedOnlyWhenPresent) {
  BenchJsonEmitter emitter("micro_reuse");
  emitter.Add(MakeRecord("BM_NoCounters/1", 100.0));
  BenchRecord with = MakeRecord("BM_WithCounters/1", 200.0);
  with.counters.emplace_back("peak_workspace_bytes", 4096.0);
  with.counters.emplace_back("alloc_events", 7.0);
  emitter.Add(with);

  const std::string json = emitter.ToJson();
  EXPECT_TRUE(adr::testing::IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"counters\":{\"peak_workspace_bytes\":"),
            std::string::npos);
  EXPECT_NE(json.find("\"alloc_events\":"), std::string::npos);
  // The record without counters keeps the counter-free shape.
  const size_t plain = json.find("BM_NoCounters/1");
  const size_t rich = json.find("BM_WithCounters/1");
  ASSERT_NE(plain, std::string::npos);
  ASSERT_NE(rich, std::string::npos);
  EXPECT_EQ(json.substr(plain, rich - plain).find("counters"),
            std::string::npos);
}

TEST(BenchJsonTest, SchemaVersionMatchesConstant) {
  // The checker hard-fails on version mismatch, so the constant and the
  // document must agree.
  BenchJsonEmitter emitter("s");
  const std::string expected =
      "\"schema_version\":" + std::to_string(kBenchJsonSchemaVersion);
  EXPECT_NE(emitter.ToJson().find(expected), std::string::npos);
}

TEST(BenchJsonTest, WriteFileRoundTrips) {
  BenchJsonEmitter emitter("roundtrip");
  emitter.Add(MakeRecord("BM_X/1", 100.0));
  const std::string path = ::testing::TempDir() + "/bench_roundtrip.json";
  ASSERT_TRUE(emitter.WriteFile(path).ok());

  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, n);
  }
  std::fclose(f);
  EXPECT_TRUE(adr::testing::IsValidJson(contents)) << contents;
  EXPECT_NE(contents.find("BM_X/1"), std::string::npos);
}

TEST(BenchJsonTest, DefaultPathUsesSuiteAndEnvDir) {
  EXPECT_EQ(BenchJsonEmitter::DefaultPath("micro_kernels"),
            "BENCH_micro_kernels.json");

  ::setenv("ADR_BENCH_JSON_DIR", "/tmp/bench-out", /*overwrite=*/1);
  EXPECT_EQ(BenchJsonEmitter::DefaultPath("micro_reuse"),
            "/tmp/bench-out/BENCH_micro_reuse.json");
  ::unsetenv("ADR_BENCH_JSON_DIR");
}

TEST(BenchJsonTest, WriteFileFailsOnUnwritablePath) {
  BenchJsonEmitter emitter("s");
  EXPECT_FALSE(emitter.WriteFile("/nonexistent-dir/x/y.json").ok());
}

}  // namespace
}  // namespace adr
