// WorkspaceArena semantics plus the layer-level zero-allocation contract:
// after the first training step at fixed shapes, a conv layer's arena
// must not grow or touch the heap again.

#include <gtest/gtest.h>

#include <cstdint>

#include "core/reuse_conv2d.h"
#include "nn/conv2d.h"
#include "tensor/tensor.h"
#include "tensor/workspace_arena.h"
#include "util/metrics_registry.h"
#include "util/rng.h"

namespace adr {
namespace {

TEST(WorkspaceArenaTest, ReturnsAlignedDistinctBuffers) {
  WorkspaceArena arena;
  float* a = arena.AllocFloats(3);
  float* b = arena.AllocFloats(100);
  int32_t* c = arena.AllocInt32(1);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c) % 64, 0u);
  EXPECT_NE(static_cast<void*>(a), static_cast<void*>(b));
  EXPECT_NE(static_cast<void*>(b), static_cast<void*>(c));
  // Zero-size requests still give valid unique pointers.
  EXPECT_NE(arena.AllocBytes(0), arena.AllocBytes(0));
}

TEST(WorkspaceArenaTest, ConsolidatesToHighWaterAndStopsAllocating) {
  WorkspaceArena arena;
  // First epoch: everything is an overflow slab (empty primary).
  arena.AllocFloats(1000);
  arena.AllocFloats(500);
  const int64_t first_epoch_used = arena.used_bytes();
  EXPECT_EQ(arena.alloc_slabs(), 2);
  EXPECT_EQ(arena.high_water_bytes(), first_epoch_used);

  // Reset consolidates: one primary slab covering the high water mark.
  arena.Reset();
  EXPECT_EQ(arena.consolidations(), 1);
  EXPECT_EQ(arena.used_bytes(), 0);
  EXPECT_EQ(arena.reserved_bytes(), first_epoch_used);

  // Same-shape epochs run entirely inside the primary slab.
  for (int step = 0; step < 3; ++step) {
    arena.AllocFloats(1000);
    arena.AllocFloats(500);
    EXPECT_EQ(arena.used_bytes(), first_epoch_used);
    arena.Reset();
  }
  EXPECT_EQ(arena.alloc_slabs(), 2);      // unchanged since the first epoch
  EXPECT_EQ(arena.consolidations(), 1);   // no further replanning
  EXPECT_EQ(arena.reserved_bytes(), first_epoch_used);
}

TEST(WorkspaceArenaTest, GrowthTriggersOverflowThenReplan) {
  WorkspaceArena arena;
  arena.AllocFloats(100);
  arena.Reset();
  const int64_t small_capacity = arena.reserved_bytes();

  // A bigger epoch spills into overflow (hot-path allocation)...
  arena.AllocFloats(100);
  arena.AllocFloats(4000);
  EXPECT_GT(arena.alloc_slabs(), 1);
  EXPECT_GT(arena.reserved_bytes(), small_capacity);

  // ...and the next Reset folds the new high water into the primary.
  const int64_t slabs_after_growth = arena.alloc_slabs();
  arena.Reset();
  arena.AllocFloats(100);
  arena.AllocFloats(4000);
  EXPECT_EQ(arena.alloc_slabs(), slabs_after_growth);
}

TEST(WorkspaceArenaTest, ReleaseDropsCapacity) {
  WorkspaceArena arena;
  arena.AllocFloats(2048);
  arena.Reset();
  EXPECT_GT(arena.reserved_bytes(), 0);
  arena.Release();
  EXPECT_EQ(arena.reserved_bytes(), 0);
  EXPECT_EQ(arena.used_bytes(), 0);
  // The arena is reusable after Release.
  float* p = arena.AllocFloats(16);
  EXPECT_NE(p, nullptr);
}

// One full training step (Forward + Backward) of a layer.
template <typename LayerT>
void RunStep(LayerT* layer, const Tensor& input, const Tensor& grad_out) {
  layer->Forward(input, /*training=*/true);
  layer->Backward(grad_out);
}

TEST(WorkspaceArenaTest, ReuseConv2dStopsAllocatingAfterFirstStep) {
  Conv2dConfig config;
  config.in_channels = 3;
  config.out_channels = 8;
  config.kernel = 3;
  config.stride = 1;
  config.pad = 1;
  config.in_height = 8;
  config.in_width = 8;
  ReuseConfig reuse;
  reuse.sub_vector_length = 9;
  reuse.num_hashes = 10;

  Rng rng(31);
  ReuseConv2d layer("arena_steady", config, reuse, &rng);
  Rng data_rng(32);
  const Tensor input = Tensor::RandomGaussian(Shape({2, 3, 8, 8}),
                                              &data_rng);
  const Tensor grad_out = Tensor::RandomGaussian(Shape({2, 8, 8, 8}),
                                                 &data_rng);

  RunStep(&layer, input, grad_out);
  // Step 2 may still consolidate capacity planned in step 1's Reset.
  RunStep(&layer, input, grad_out);
  const int64_t steady_reserved = layer.workspace().reserved_bytes();
  const int64_t steady_slabs = layer.workspace().alloc_slabs();
  EXPECT_GT(steady_reserved, 0);

  for (int step = 0; step < 4; ++step) {
    RunStep(&layer, input, grad_out);
    EXPECT_EQ(layer.workspace().reserved_bytes(), steady_reserved)
        << "arena grew at step " << step;
    EXPECT_EQ(layer.workspace().alloc_slabs(), steady_slabs)
        << "hot-path allocation at step " << step;
  }

  // The published metrics agree: the gauge shows the arena capacity and
  // the per-step allocation counter has stopped advancing.
  MetricsRegistry& metrics = MetricsRegistry::Global();
  EXPECT_EQ(metrics.gauge("reuse/arena_steady/workspace_bytes")->value(),
            static_cast<double>(steady_reserved));
  const int64_t allocs =
      metrics.counter("reuse/arena_steady/allocations_per_step")->value();
  RunStep(&layer, input, grad_out);
  EXPECT_EQ(
      metrics.counter("reuse/arena_steady/allocations_per_step")->value(),
      allocs);
}

TEST(WorkspaceArenaTest, ReuseConv2dExactBackwardStopsAllocating) {
  Conv2dConfig config;
  config.in_channels = 2;
  config.out_channels = 4;
  config.kernel = 3;
  config.stride = 1;
  config.pad = 1;
  config.in_height = 6;
  config.in_width = 6;
  ReuseConfig reuse;
  reuse.sub_vector_length = 6;
  reuse.num_hashes = 8;

  Rng rng(33);
  ReuseConv2d layer("arena_exact", config, reuse, &rng);
  layer.set_exact_backward(true);
  Rng data_rng(34);
  const Tensor input = Tensor::RandomGaussian(Shape({2, 2, 6, 6}),
                                              &data_rng);
  const Tensor grad_out = Tensor::RandomGaussian(Shape({2, 4, 6, 6}),
                                                 &data_rng);

  RunStep(&layer, input, grad_out);
  RunStep(&layer, input, grad_out);
  const int64_t steady_slabs = layer.workspace().alloc_slabs();
  for (int step = 0; step < 3; ++step) {
    RunStep(&layer, input, grad_out);
    EXPECT_EQ(layer.workspace().alloc_slabs(), steady_slabs);
  }
}

TEST(WorkspaceArenaTest, Conv2dStopsAllocatingAfterFirstStep) {
  Conv2dConfig config;
  config.in_channels = 3;
  config.out_channels = 5;
  config.kernel = 3;
  config.stride = 1;
  config.pad = 1;
  config.in_height = 7;
  config.in_width = 7;

  Rng rng(35);
  Conv2d layer("conv_steady", config, &rng);
  Rng data_rng(36);
  const Tensor input = Tensor::RandomGaussian(Shape({2, 3, 7, 7}),
                                              &data_rng);
  const Tensor grad_out = Tensor::RandomGaussian(Shape({2, 5, 7, 7}),
                                                 &data_rng);

  RunStep(&layer, input, grad_out);
  RunStep(&layer, input, grad_out);
  const int64_t steady_reserved = layer.workspace().reserved_bytes();
  const int64_t steady_slabs = layer.workspace().alloc_slabs();
  for (int step = 0; step < 3; ++step) {
    RunStep(&layer, input, grad_out);
    EXPECT_EQ(layer.workspace().reserved_bytes(), steady_reserved);
    EXPECT_EQ(layer.workspace().alloc_slabs(), steady_slabs);
  }
}

}  // namespace
}  // namespace adr
