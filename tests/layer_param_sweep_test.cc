// Parameterized property sweeps over layer geometries: Conv2d against a
// direct convolution reference, pooling round trips, and ReuseConv2d
// shape/consistency invariants across configurations.

#include <tuple>

#include <gtest/gtest.h>

#include "core/reuse_conv2d.h"
#include "nn/conv2d.h"
#include "nn/pooling.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace adr {
namespace {

// Direct (non-im2col) convolution used as an independent reference.
Tensor DirectConvolution(const Tensor& input, const Tensor& weight,
                         const Tensor& bias, const Conv2dConfig& config) {
  const int64_t batch = input.shape()[0];
  const int64_t oh =
      (config.in_height + 2 * config.pad - config.kernel) / config.stride + 1;
  const int64_t ow =
      (config.in_width + 2 * config.pad - config.kernel) / config.stride + 1;
  Tensor out(Shape({batch, config.out_channels, oh, ow}));
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t m = 0; m < config.out_channels; ++m) {
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          double acc = bias.at(m);
          for (int64_t c = 0; c < config.in_channels; ++c) {
            for (int64_t ky = 0; ky < config.kernel; ++ky) {
              const int64_t y = oy * config.stride + ky - config.pad;
              if (y < 0 || y >= config.in_height) continue;
              for (int64_t kx = 0; kx < config.kernel; ++kx) {
                const int64_t x = ox * config.stride + kx - config.pad;
                if (x < 0 || x >= config.in_width) continue;
                // Weight row index in the K x M layout.
                const int64_t k_index =
                    (c * config.kernel + ky) * config.kernel + kx;
                acc += static_cast<double>(input.at4(n, c, y, x)) *
                       weight.at(k_index, m);
              }
            }
          }
          out.at4(n, m, oy, ox) = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

class ConvGeometrySweep
    : public ::testing::TestWithParam<
          std::tuple<int64_t, int64_t, int64_t, int64_t, int64_t, int64_t>> {
};

TEST_P(ConvGeometrySweep, Im2ColConvMatchesDirectConv) {
  const auto [in_channels, out_channels, size, kernel, stride, pad] =
      GetParam();
  Conv2dConfig config;
  config.in_channels = in_channels;
  config.out_channels = out_channels;
  config.kernel = kernel;
  config.stride = stride;
  config.pad = pad;
  config.in_height = size;
  config.in_width = size;

  Rng rng(101);
  Conv2d conv("conv", config, &rng);
  Rng data_rng(202);
  Tensor input = Tensor::RandomGaussian(
      Shape({2, in_channels, size, size}), &data_rng);
  Tensor bias_copy = Tensor::RandomGaussian(
      Shape({out_channels}), &data_rng);
  conv.bias() = bias_copy;

  const Tensor expected =
      DirectConvolution(input, conv.weight(), bias_copy, config);
  const Tensor actual = conv.Forward(input, false);
  EXPECT_TRUE(AllClose(actual, expected, 1e-3f, 1e-4f))
      << "geometry: c=" << in_channels << " m=" << out_channels
      << " size=" << size << " k=" << kernel << " s=" << stride
      << " p=" << pad;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvGeometrySweep,
    ::testing::Values(std::make_tuple(1, 1, 5, 3, 1, 0),
                      std::make_tuple(3, 8, 8, 3, 1, 1),
                      std::make_tuple(2, 4, 9, 3, 2, 0),
                      std::make_tuple(4, 2, 7, 1, 1, 0),
                      std::make_tuple(3, 6, 11, 5, 2, 1),
                      std::make_tuple(1, 16, 12, 4, 4, 0),
                      std::make_tuple(8, 8, 6, 3, 1, 1)));

class ReuseShapeSweep
    : public ::testing::TestWithParam<std::tuple<int64_t, int>> {};

TEST_P(ReuseShapeSweep, ForwardBackwardShapesHold) {
  const auto [l, h] = GetParam();
  Conv2dConfig config;
  config.in_channels = 3;
  config.out_channels = 6;
  config.kernel = 3;
  config.stride = 1;
  config.pad = 1;
  config.in_height = 8;
  config.in_width = 8;
  ReuseConfig reuse;
  reuse.sub_vector_length = l;
  reuse.num_hashes = h;
  Rng rng(7);
  ReuseConv2d layer("conv", config, reuse, &rng);
  Rng data_rng(8);
  Tensor input = Tensor::RandomGaussian(Shape({2, 3, 8, 8}), &data_rng);
  Tensor out = layer.Forward(input, true);
  EXPECT_EQ(out.shape(), Shape({2, 6, 8, 8}));
  Tensor grad = Tensor::RandomGaussian(out.shape(), &data_rng);
  Tensor gin = layer.Backward(grad);
  EXPECT_EQ(gin.shape(), input.shape());
  // Bias gradient is exact regardless of {L, H}.
  Tensor dy_rows = NchwToRows(grad);
  EXPECT_TRUE(AllClose(*layer.Gradients()[1], ColumnSums(dy_rows), 1e-4f,
                       1e-5f));
  // r_c bounded.
  EXPECT_GT(layer.stats().avg_remaining_ratio, 0.0);
  EXPECT_LE(layer.stats().avg_remaining_ratio, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ReuseShapeSweep,
    ::testing::Values(std::make_tuple(0, 4), std::make_tuple(0, 32),
                      std::make_tuple(27, 8), std::make_tuple(9, 8),
                      std::make_tuple(3, 16), std::make_tuple(5, 2),
                      std::make_tuple(1, 1)));

class PoolSweep
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(PoolSweep, MaxPoolGradientSumsPreserved) {
  const auto [kernel, stride] = GetParam();
  MaxPool2d pool("pool", PoolConfig{kernel, stride});
  Rng rng(9);
  Tensor in = Tensor::RandomGaussian(Shape({2, 3, 12, 12}), &rng);
  Tensor out = pool.Forward(in, false);
  Tensor grad = Tensor::Ones(out.shape());
  Tensor gin = pool.Backward(grad);
  // Every unit of output gradient lands on exactly one input element.
  EXPECT_DOUBLE_EQ(Sum(gin), static_cast<double>(out.num_elements()));
}

INSTANTIATE_TEST_SUITE_P(Kernels, PoolSweep,
                         ::testing::Values(std::make_tuple(2, 2),
                                           std::make_tuple(3, 2),
                                           std::make_tuple(3, 3),
                                           std::make_tuple(4, 4),
                                           std::make_tuple(2, 1)));

}  // namespace
}  // namespace adr
