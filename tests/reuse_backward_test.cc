// Tests for ReuseBackward (paper Section IV): exactness in the singleton
// limit, the averaging semantics of Eq. 13, and MAC accounting.

#include <gtest/gtest.h>

#include "core/clustered_matmul.h"
#include "core/reuse_backward.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace adr {
namespace {

struct DenseBackward {
  Tensor grad_weight;
  Tensor grad_x;
};

DenseBackward ExactBackward(const Tensor& x, const Tensor& w,
                            const Tensor& dy) {
  const int64_t n = x.shape()[0], k = x.shape()[1], m = w.shape()[1];
  DenseBackward result;
  result.grad_weight = Tensor(Shape({k, m}));
  GemmTransA(x.data(), dy.data(), result.grad_weight.data(), k, n, m);
  result.grad_x = Tensor(Shape({n, k}));
  GemmTransB(dy.data(), w.data(), result.grad_x.data(), n, m, k);
  return result;
}

TEST(ReuseBackwardTest, ExactInSingletonLimit) {
  // Enough hyperplanes that every random row is its own cluster; the
  // reuse backward must then equal the exact backward.
  auto families = BlockLshFamilies::Create(6, 0, 80, 1);
  ASSERT_TRUE(families.ok());
  Rng rng(1);
  Tensor x = Tensor::RandomGaussian(Shape({10, 6}), &rng);
  Tensor w = Tensor::RandomGaussian(Shape({6, 4}), &rng);
  Tensor dy = Tensor::RandomGaussian(Shape({10, 4}), &rng);

  const ReuseClustering clustering =
      ClusterSubVectors(*families, x.data(), 10, 10);
  if (clustering.TotalClusters() != 10) {
    GTEST_SKIP() << "accidental LSH collision; singleton limit not reached";
  }
  const BackwardReuseResult reuse = ReuseBackward(clustering, w, dy);
  const DenseBackward exact = ExactBackward(x, w, dy);
  EXPECT_TRUE(AllClose(reuse.grad_weight, exact.grad_weight, 1e-4f, 1e-5f));
  EXPECT_TRUE(AllClose(reuse.grad_x, exact.grad_x, 1e-4f, 1e-5f));
}

TEST(ReuseBackwardTest, BiasGradientAlwaysExact)
{
  auto families = BlockLshFamilies::Create(6, 3, 2, 2);  // coarse clustering
  ASSERT_TRUE(families.ok());
  Rng rng(2);
  Tensor x = Tensor::RandomGaussian(Shape({20, 6}), &rng);
  Tensor w = Tensor::RandomGaussian(Shape({6, 5}), &rng);
  Tensor dy = Tensor::RandomGaussian(Shape({20, 5}), &rng);
  const ReuseClustering clustering =
      ClusterSubVectors(*families, x.data(), 20, 20);
  const BackwardReuseResult reuse = ReuseBackward(clustering, w, dy);
  EXPECT_TRUE(AllClose(reuse.grad_bias, ColumnSums(dy)));
}

TEST(ReuseBackwardTest, WeightGradUsesClusterSums) {
  // Two identical rows in one cluster: dW must be x_c^T (dy_0 + dy_1),
  // which equals the exact gradient because x rows are identical.
  auto families = BlockLshFamilies::Create(4, 0, 16, 3);
  ASSERT_TRUE(families.ok());
  Rng rng(3);
  Tensor row = Tensor::RandomGaussian(Shape({4}), &rng);
  Tensor x(Shape({2, 4}));
  for (int64_t j = 0; j < 4; ++j) {
    x.at(0, j) = row.at(j);
    x.at(1, j) = row.at(j);
  }
  Tensor w = Tensor::RandomGaussian(Shape({4, 3}), &rng);
  Tensor dy = Tensor::RandomGaussian(Shape({2, 3}), &rng);

  const ReuseClustering clustering =
      ClusterSubVectors(*families, x.data(), 2, 2);
  ASSERT_EQ(clustering.TotalClusters(), 1);
  const BackwardReuseResult reuse = ReuseBackward(clustering, w, dy);
  const DenseBackward exact = ExactBackward(x, w, dy);
  EXPECT_TRUE(AllClose(reuse.grad_weight, exact.grad_weight, 1e-4f, 1e-5f));
}

TEST(ReuseBackwardTest, InputDeltaIsClusterAverageScattered) {
  // Eq. 13: every member of a cluster receives the *average* member
  // gradient, i.e. mean_i(dy_i) * W^T.
  auto families = BlockLshFamilies::Create(4, 0, 16, 4);
  ASSERT_TRUE(families.ok());
  Rng rng(4);
  Tensor row = Tensor::RandomGaussian(Shape({4}), &rng);
  Tensor x(Shape({3, 4}));
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 4; ++j) x.at(i, j) = row.at(j);
  }
  Tensor w = Tensor::RandomGaussian(Shape({4, 2}), &rng);
  Tensor dy = Tensor::RandomGaussian(Shape({3, 2}), &rng);

  const ReuseClustering clustering =
      ClusterSubVectors(*families, x.data(), 3, 3);
  ASSERT_EQ(clustering.TotalClusters(), 1);
  const BackwardReuseResult reuse = ReuseBackward(clustering, w, dy);

  // Expected: dy_avg * W^T for every row.
  Tensor dy_avg(Shape({1, 2}));
  for (int64_t j = 0; j < 2; ++j) {
    dy_avg.at(0, j) = (dy.at(0, j) + dy.at(1, j) + dy.at(2, j)) / 3.0f;
  }
  Tensor expected_row(Shape({1, 4}));
  GemmTransB(dy_avg.data(), w.data(), expected_row.data(), 1, 2, 4);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(reuse.grad_x.at(i, j), expected_row.at(0, j), 1e-5f);
    }
  }
}

TEST(ReuseBackwardTest, SubVectorBlocksFillDisjointColumnRanges) {
  auto families = BlockLshFamilies::Create(8, 4, 60, 5);
  ASSERT_TRUE(families.ok());
  Rng rng(5);
  Tensor x = Tensor::RandomGaussian(Shape({6, 8}), &rng);
  Tensor w = Tensor::RandomGaussian(Shape({8, 3}), &rng);
  Tensor dy = Tensor::RandomGaussian(Shape({6, 3}), &rng);
  const ReuseClustering clustering =
      ClusterSubVectors(*families, x.data(), 6, 6);
  // Singleton limit per block (60 hashes): exact again, and the two column
  // blocks of dW/dx must combine to the dense result.
  if (clustering.blocks[0].clustering.num_clusters() == 6 &&
      clustering.blocks[1].clustering.num_clusters() == 6) {
    const BackwardReuseResult reuse = ReuseBackward(clustering, w, dy);
    const DenseBackward exact = ExactBackward(x, w, dy);
    EXPECT_TRUE(AllClose(reuse.grad_weight, exact.grad_weight, 1e-4f, 1e-5f));
    EXPECT_TRUE(AllClose(reuse.grad_x, exact.grad_x, 1e-4f, 1e-5f));
  }
}

TEST(ReuseBackwardTest, MacAccounting) {
  auto families = BlockLshFamilies::Create(8, 4, 8, 6);
  ASSERT_TRUE(families.ok());
  Rng rng(6);
  Tensor x = Tensor::RandomGaussian(Shape({16, 8}), &rng);
  Tensor w = Tensor::RandomGaussian(Shape({8, 5}), &rng);
  Tensor dy = Tensor::RandomGaussian(Shape({16, 5}), &rng);
  const ReuseClustering clustering =
      ClusterSubVectors(*families, x.data(), 16, 16);
  const BackwardReuseResult reuse = ReuseBackward(clustering, w, dy);
  EXPECT_DOUBLE_EQ(reuse.stats.macs_baseline, 2.0 * 16 * 8 * 5);
  EXPECT_GT(reuse.stats.macs, 0.0);
  EXPECT_LE(reuse.stats.macs, reuse.stats.macs_baseline);
}

TEST(ReuseBackwardTest, CoarseClusteringStillDescends) {
  // Even with very coarse clustering (H=1) the approximate gradient should
  // be positively correlated with the exact gradient — the property that
  // lets early-stage training tolerate aggressive reuse.
  auto families = BlockLshFamilies::Create(8, 0, 1, 7);
  ASSERT_TRUE(families.ok());
  Rng rng(7);
  // Correlated rows so clusters are meaningful.
  Tensor proto = Tensor::RandomGaussian(Shape({8}), &rng);
  Tensor x(Shape({32, 8}));
  for (int64_t i = 0; i < 32; ++i) {
    for (int64_t j = 0; j < 8; ++j) {
      x.at(i, j) = proto.at(j) + 0.1f * rng.NextGaussian();
    }
  }
  Tensor w = Tensor::RandomGaussian(Shape({8, 4}), &rng);
  Tensor dy = Tensor::RandomGaussian(Shape({32, 4}), &rng);
  const ReuseClustering clustering =
      ClusterSubVectors(*families, x.data(), 32, 32);
  const BackwardReuseResult reuse = ReuseBackward(clustering, w, dy);
  const DenseBackward exact = ExactBackward(x, w, dy);
  double dot = 0.0;
  for (int64_t i = 0; i < exact.grad_weight.num_elements(); ++i) {
    dot += static_cast<double>(reuse.grad_weight.at(i)) *
           exact.grad_weight.at(i);
  }
  EXPECT_GT(dot, 0.0);
}

}  // namespace
}  // namespace adr
