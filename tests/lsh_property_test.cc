// Property tests for sign-random-projection LSH: the per-bit collision
// probability of two vectors at angle theta is 1 - theta/pi (Goemans &
// Williamson / Charikar), which is the theoretical foundation the paper's
// clustering rests on.

#include <cmath>

#include <gtest/gtest.h>

#include "clustering/lsh.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"
#include "tests/kernel_harness.h"
#include "util/rng.h"

namespace adr {
namespace {

// Counts matching bits between two signatures over the first H bits.
int MatchingBits(const LshSignature& a, const LshSignature& b, int h) {
  int matches = 0;
  for (int i = 0; i < h; ++i) {
    const bool bit_a = (a.words[i >> 6] >> (i & 63)) & 1;
    const bool bit_b = (b.words[i >> 6] >> (i & 63)) & 1;
    if (bit_a == bit_b) ++matches;
  }
  return matches;
}

class LshAngleSweep : public ::testing::TestWithParam<double> {};

TEST_P(LshAngleSweep, BitCollisionMatchesTheory) {
  const double theta = GetParam();
  // Build many independent hash families; for each, hash a fixed pair of
  // vectors at angle theta and count per-bit agreements.
  const int64_t dim = 16;
  const int h = 64;
  const int families = 40;

  // Construct u along e0 and v at angle theta in the (e0, e1) plane.
  Tensor u(Shape({dim}));
  Tensor v(Shape({dim}));
  u.at(0) = 1.0f;
  v.at(0) = static_cast<float>(std::cos(theta));
  v.at(1) = static_cast<float>(std::sin(theta));

  int64_t agreements = 0;
  for (int f = 0; f < families; ++f) {
    LshFamily family;
    ASSERT_TRUE(
        LshFamily::Create(dim, h, 1000 + static_cast<uint64_t>(f), &family)
            .ok());
    agreements += MatchingBits(family.Hash(u.data()), family.Hash(v.data()),
                               h);
  }
  const double observed =
      static_cast<double>(agreements) / (families * h);
  const double expected = 1.0 - theta / M_PI;
  // ~2560 Bernoulli trials: 3-sigma is about 0.03.
  EXPECT_NEAR(observed, expected, 0.04)
      << "theta = " << theta;
}

INSTANTIATE_TEST_SUITE_P(Angles, LshAngleSweep,
                         ::testing::Values(0.0, M_PI / 8, M_PI / 4,
                                           M_PI / 2, 3 * M_PI / 4, M_PI));

class LshHashCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(LshHashCountSweep, ClusterCountGrowsWithH) {
  // On i.i.d. Gaussian rows, the expected number of clusters rises
  // monotonically with H (more hyperplanes split finer). Property checked
  // across H with a shared dataset.
  const int h = GetParam();
  Rng rng(42);
  Tensor data = Tensor::RandomGaussian(Shape({256, 12}), &rng);

  LshFamily family;
  ASSERT_TRUE(LshFamily::Create(12, h, 7, &family).ok());
  const Clustering clustering =
      LshCluster(family, data.data(), 256, 12);
  // Coarse bounds: at least 2^0 clusters and at most min(2^h, 256).
  EXPECT_GE(clustering.num_clusters(), 1);
  EXPECT_LE(clustering.num_clusters(),
            std::min<int64_t>(int64_t{1} << std::min(h, 62), 256));
  // Record into a static to assert monotonicity across the sweep order.
  static int last_h = -1;
  static int64_t last_count = 0;
  if (last_h >= 0 && h > last_h) {
    EXPECT_GE(clustering.num_clusters(), last_count);
  }
  last_h = h;
  last_count = clustering.num_clusters();
}

INSTANTIATE_TEST_SUITE_P(HashCounts, LshHashCountSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

TEST(LshPropertyTest, SignatureStableAcrossBatchSplits) {
  // Hashing rows one-by-one, in one batch, or via strided access must give
  // identical signatures — the invariant cluster reuse depends on.
  Rng rng(9);
  Tensor data = Tensor::RandomGaussian(Shape({32, 10}), &rng);
  LshFamily family;
  ASSERT_TRUE(LshFamily::Create(10, 24, 5, &family).ok());

  std::vector<LshSignature> batched;
  family.HashRows(data.data(), 32, 10, &batched);
  for (int64_t i = 0; i < 32; ++i) {
    EXPECT_EQ(batched[static_cast<size_t>(i)],
              family.Hash(data.data() + i * 10));
  }

  std::vector<LshSignature> first_half, second_half;
  family.HashRows(data.data(), 16, 10, &first_half);
  family.HashRows(data.data() + 16 * 10, 16, 10, &second_half);
  for (int64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(first_half[static_cast<size_t>(i)],
              batched[static_cast<size_t>(i)]);
    EXPECT_EQ(second_half[static_cast<size_t>(i)],
              batched[static_cast<size_t>(16 + i)]);
  }
}

// Fuzz-style invariance properties of the sign hash, checked on every
// SIMD backend: the signature depends only on projection signs, so it is
// invariant under positive scaling of the row, and negating the row flips
// every bit. Exercised over many random rows, dimensions with remainder
// lanes, and scale factors spanning five orders of magnitude.
TEST(LshPropertyTest, SignatureInvariantUnderPositiveScaling) {
  const int h = 48;
  for (const simd::Kernels* backend : testutil::Backends()) {
    simd::ScopedKernelsOverride override_backend(*backend);
    for (const int64_t dim : {int64_t{7}, int64_t{17}, int64_t{33}}) {
      LshFamily family;
      ASSERT_TRUE(
          LshFamily::Create(dim, h, 100 + static_cast<uint64_t>(dim), &family)
              .ok());
      for (int trial = 0; trial < 50; ++trial) {
        const std::vector<float> row = testutil::RandomVector(
            dim, 9000 + static_cast<uint64_t>(trial) * 3 +
                     static_cast<uint64_t>(dim));
        const LshSignature sig = family.Hash(row.data());
        for (const float scale : {1e-3f, 0.25f, 3.0f, 17.5f, 100.0f}) {
          std::vector<float> scaled = row;
          for (float& v : scaled) v *= scale;
          EXPECT_EQ(family.Hash(scaled.data()), sig)
              << backend->name << " dim=" << dim << " trial=" << trial
              << " scale=" << scale;
        }
      }
    }
  }
}

TEST(LshPropertyTest, NegationFlipsEveryBit) {
  const int64_t dim = 23;
  const int h = 48;
  LshFamily family;
  ASSERT_TRUE(LshFamily::Create(dim, h, 13, &family).ok());
  for (const simd::Kernels* backend : testutil::Backends()) {
    simd::ScopedKernelsOverride override_backend(*backend);
    for (int trial = 0; trial < 50; ++trial) {
      const std::vector<float> row =
          testutil::RandomVector(dim, 9500 + static_cast<uint64_t>(trial));
      std::vector<float> negated = row;
      for (float& v : negated) v = -v;
      const LshSignature sig = family.Hash(row.data());
      const LshSignature neg = family.Hash(negated.data());
      // IEEE negation is exact, so every projection flips sign exactly
      // (the > 0 threshold makes exact zeros flip too, but Gaussian data
      // never lands on exactly zero).
      EXPECT_EQ(MatchingBits(sig, neg, h), 0)
          << backend->name << " trial=" << trial;
    }
  }
}

TEST(LshPropertyTest, SignaturesIdenticalAcrossBackends) {
  const int64_t dim = 37;
  const int h = 96;
  LshFamily family;
  ASSERT_TRUE(LshFamily::Create(dim, h, 21, &family).ok());
  Rng rng(77);
  Tensor data = Tensor::RandomGaussian(Shape({64, dim}), &rng);

  std::vector<LshSignature> scalar_sigs;
  {
    simd::ScopedKernelsOverride scalar_override(simd::Scalar());
    family.HashRows(data.data(), 64, dim, &scalar_sigs);
  }
  for (const simd::Kernels* backend : testutil::Backends()) {
    simd::ScopedKernelsOverride override_backend(*backend);
    std::vector<LshSignature> sigs;
    family.HashRows(data.data(), 64, dim, &sigs);
    for (int64_t i = 0; i < 64; ++i) {
      EXPECT_EQ(sigs[static_cast<size_t>(i)],
                scalar_sigs[static_cast<size_t>(i)])
          << backend->name << " row " << i
          << ": backend changed a signature (cluster IDs would diverge)";
    }
  }
}

TEST(LshPropertyTest, PerturbationCollisionDecaysWithMagnitude) {
  // The larger the perturbation, the lower the full-signature collision
  // rate — the graded-similarity behaviour adaptive deep reuse exploits.
  Rng rng(11);
  LshFamily family;
  ASSERT_TRUE(LshFamily::Create(24, 12, 3, &family).ok());
  const int trials = 300;
  int collisions_small = 0, collisions_large = 0;
  for (int t = 0; t < trials; ++t) {
    Tensor base = Tensor::RandomGaussian(Shape({24}), &rng);
    Tensor small = base;
    Tensor large = base;
    for (int64_t i = 0; i < 24; ++i) {
      small.at(i) += 0.02f * rng.NextGaussian();
      large.at(i) += 0.5f * rng.NextGaussian();
    }
    const LshSignature sig = family.Hash(base.data());
    if (sig == family.Hash(small.data())) ++collisions_small;
    if (sig == family.Hash(large.data())) ++collisions_large;
  }
  EXPECT_GT(collisions_small, collisions_large);
  EXPECT_GT(collisions_small, trials * 3 / 5);
}

}  // namespace
}  // namespace adr
