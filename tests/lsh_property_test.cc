// Property tests for sign-random-projection LSH: the per-bit collision
// probability of two vectors at angle theta is 1 - theta/pi (Goemans &
// Williamson / Charikar), which is the theoretical foundation the paper's
// clustering rests on.

#include <cmath>

#include <gtest/gtest.h>

#include "clustering/lsh.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace adr {
namespace {

// Counts matching bits between two signatures over the first H bits.
int MatchingBits(const LshSignature& a, const LshSignature& b, int h) {
  int matches = 0;
  for (int i = 0; i < h; ++i) {
    const bool bit_a = (a.words[i >> 6] >> (i & 63)) & 1;
    const bool bit_b = (b.words[i >> 6] >> (i & 63)) & 1;
    if (bit_a == bit_b) ++matches;
  }
  return matches;
}

class LshAngleSweep : public ::testing::TestWithParam<double> {};

TEST_P(LshAngleSweep, BitCollisionMatchesTheory) {
  const double theta = GetParam();
  // Build many independent hash families; for each, hash a fixed pair of
  // vectors at angle theta and count per-bit agreements.
  const int64_t dim = 16;
  const int h = 64;
  const int families = 40;

  // Construct u along e0 and v at angle theta in the (e0, e1) plane.
  Tensor u(Shape({dim}));
  Tensor v(Shape({dim}));
  u.at(0) = 1.0f;
  v.at(0) = static_cast<float>(std::cos(theta));
  v.at(1) = static_cast<float>(std::sin(theta));

  int64_t agreements = 0;
  for (int f = 0; f < families; ++f) {
    LshFamily family;
    ASSERT_TRUE(
        LshFamily::Create(dim, h, 1000 + static_cast<uint64_t>(f), &family)
            .ok());
    agreements += MatchingBits(family.Hash(u.data()), family.Hash(v.data()),
                               h);
  }
  const double observed =
      static_cast<double>(agreements) / (families * h);
  const double expected = 1.0 - theta / M_PI;
  // ~2560 Bernoulli trials: 3-sigma is about 0.03.
  EXPECT_NEAR(observed, expected, 0.04)
      << "theta = " << theta;
}

INSTANTIATE_TEST_SUITE_P(Angles, LshAngleSweep,
                         ::testing::Values(0.0, M_PI / 8, M_PI / 4,
                                           M_PI / 2, 3 * M_PI / 4, M_PI));

class LshHashCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(LshHashCountSweep, ClusterCountGrowsWithH) {
  // On i.i.d. Gaussian rows, the expected number of clusters rises
  // monotonically with H (more hyperplanes split finer). Property checked
  // across H with a shared dataset.
  const int h = GetParam();
  Rng rng(42);
  Tensor data = Tensor::RandomGaussian(Shape({256, 12}), &rng);

  LshFamily family;
  ASSERT_TRUE(LshFamily::Create(12, h, 7, &family).ok());
  const Clustering clustering =
      LshCluster(family, data.data(), 256, 12);
  // Coarse bounds: at least 2^0 clusters and at most min(2^h, 256).
  EXPECT_GE(clustering.num_clusters(), 1);
  EXPECT_LE(clustering.num_clusters(),
            std::min<int64_t>(int64_t{1} << std::min(h, 62), 256));
  // Record into a static to assert monotonicity across the sweep order.
  static int last_h = -1;
  static int64_t last_count = 0;
  if (last_h >= 0 && h > last_h) {
    EXPECT_GE(clustering.num_clusters(), last_count);
  }
  last_h = h;
  last_count = clustering.num_clusters();
}

INSTANTIATE_TEST_SUITE_P(HashCounts, LshHashCountSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

TEST(LshPropertyTest, SignatureStableAcrossBatchSplits) {
  // Hashing rows one-by-one, in one batch, or via strided access must give
  // identical signatures — the invariant cluster reuse depends on.
  Rng rng(9);
  Tensor data = Tensor::RandomGaussian(Shape({32, 10}), &rng);
  LshFamily family;
  ASSERT_TRUE(LshFamily::Create(10, 24, 5, &family).ok());

  std::vector<LshSignature> batched;
  family.HashRows(data.data(), 32, 10, &batched);
  for (int64_t i = 0; i < 32; ++i) {
    EXPECT_EQ(batched[static_cast<size_t>(i)],
              family.Hash(data.data() + i * 10));
  }

  std::vector<LshSignature> first_half, second_half;
  family.HashRows(data.data(), 16, 10, &first_half);
  family.HashRows(data.data() + 16 * 10, 16, 10, &second_half);
  for (int64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(first_half[static_cast<size_t>(i)],
              batched[static_cast<size_t>(i)]);
    EXPECT_EQ(second_half[static_cast<size_t>(i)],
              batched[static_cast<size_t>(16 + i)]);
  }
}

TEST(LshPropertyTest, PerturbationCollisionDecaysWithMagnitude) {
  // The larger the perturbation, the lower the full-signature collision
  // rate — the graded-similarity behaviour adaptive deep reuse exploits.
  Rng rng(11);
  LshFamily family;
  ASSERT_TRUE(LshFamily::Create(24, 12, 3, &family).ok());
  const int trials = 300;
  int collisions_small = 0, collisions_large = 0;
  for (int t = 0; t < trials; ++t) {
    Tensor base = Tensor::RandomGaussian(Shape({24}), &rng);
    Tensor small = base;
    Tensor large = base;
    for (int64_t i = 0; i < 24; ++i) {
      small.at(i) += 0.02f * rng.NextGaussian();
      large.at(i) += 0.5f * rng.NextGaussian();
    }
    const LshSignature sig = family.Hash(base.data());
    if (sig == family.Hash(small.data())) ++collisions_small;
    if (sig == family.Hash(large.data())) ++collisions_large;
  }
  EXPECT_GT(collisions_small, collisions_large);
  EXPECT_GT(collisions_small, trials * 3 / 5);
}

}  // namespace
}  // namespace adr
