// Tests for the k-means substrate used by the Fig. 7 similarity study.

#include <gtest/gtest.h>

#include "clustering/kmeans.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace adr {
namespace {

// Three well-separated 2-D blobs of 20 points each.
Tensor ThreeBlobs(uint64_t seed) {
  Rng rng(seed);
  Tensor data(Shape({60, 2}));
  const float centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  for (int64_t i = 0; i < 60; ++i) {
    const int blob = static_cast<int>(i / 20);
    data.at(i, 0) = centers[blob][0] + rng.NextGaussian() * 0.2f;
    data.at(i, 1) = centers[blob][1] + rng.NextGaussian() * 0.2f;
  }
  return data;
}

TEST(KMeansTest, RecoversSeparableBlobs) {
  Tensor data = ThreeBlobs(1);
  KMeansOptions options;
  options.num_clusters = 3;
  auto result = KMeans(data.data(), 60, 2, 2, options);
  ASSERT_TRUE(result.ok());
  const Clustering& c = result->clustering;
  EXPECT_EQ(c.num_clusters(), 3);
  // All points of one blob share a cluster.
  for (int blob = 0; blob < 3; ++blob) {
    const int32_t expected = c.assignment[static_cast<size_t>(blob * 20)];
    for (int64_t i = blob * 20; i < (blob + 1) * 20; ++i) {
      EXPECT_EQ(c.assignment[static_cast<size_t>(i)], expected);
    }
  }
  EXPECT_LT(result->mean_squared_distance, 0.5);
}

TEST(KMeansTest, SingleClusterGivesGlobalMean) {
  Tensor data(Shape({4, 1}), {0, 2, 4, 6});
  KMeansOptions options;
  options.num_clusters = 1;
  auto result = KMeans(data.data(), 4, 1, 1, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FLOAT_EQ(result->centroids.at(0), 3.0f);
  EXPECT_EQ(result->clustering.cluster_sizes[0], 4);
}

TEST(KMeansTest, KEqualsNGivesZeroInertia) {
  Tensor data = ThreeBlobs(2);
  KMeansOptions options;
  options.num_clusters = 60;
  options.max_iterations = 50;
  auto result = KMeans(data.data(), 60, 2, 2, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clustering.num_clusters(), 60);
  // Every cluster must be non-empty (empty-cluster reseeding).
  for (int64_t size : result->clustering.cluster_sizes) {
    EXPECT_GE(size, 1);
  }
  EXPECT_NEAR(result->mean_squared_distance, 0.0, 1e-9);
}

TEST(KMeansTest, RejectsBadArguments) {
  Tensor data(Shape({4, 2}));
  KMeansOptions options;
  options.num_clusters = 0;
  EXPECT_FALSE(KMeans(data.data(), 4, 2, 2, options).ok());
  options.num_clusters = 5;  // more clusters than rows
  EXPECT_FALSE(KMeans(data.data(), 4, 2, 2, options).ok());
  options.num_clusters = 2;
  EXPECT_FALSE(KMeans(data.data(), 0, 2, 2, options).ok());
}

TEST(KMeansTest, DeterministicForSameSeed) {
  Tensor data = ThreeBlobs(3);
  KMeansOptions options;
  options.num_clusters = 4;
  auto a = KMeans(data.data(), 60, 2, 2, options);
  auto b = KMeans(data.data(), 60, 2, 2, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->clustering.assignment, b->clustering.assignment);
}

TEST(KMeansTest, RemainingRatioMatchesDefinition) {
  Tensor data = ThreeBlobs(4);
  KMeansOptions options;
  options.num_clusters = 6;
  auto result = KMeans(data.data(), 60, 2, 2, options);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->clustering.remaining_ratio(), 6.0 / 60.0);
}

TEST(KMeansTest, StridedRowsSupported) {
  // Rows of width 2 embedded in stride-5 storage.
  Rng rng(5);
  Tensor data = Tensor::RandomGaussian(Shape({10, 5}), &rng);
  KMeansOptions options;
  options.num_clusters = 2;
  auto result = KMeans(data.data(), 10, 2, 5, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->clustering.num_rows(), 10);
}

}  // namespace
}  // namespace adr
