// Unit tests for Shape, Tensor and tensor_ops.

#include <gtest/gtest.h>

#include "tensor/shape.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"
#include "util/rng.h"

namespace adr {
namespace {

TEST(ShapeTest, RankAndDims) {
  Shape s({2, 3, 4});
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s[0], 2);
  EXPECT_EQ(s[1], 3);
  EXPECT_EQ(s[2], 4);
  EXPECT_EQ(s.num_elements(), 24);
}

TEST(ShapeTest, ScalarShape) {
  Shape s;
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.num_elements(), 1);
}

TEST(ShapeTest, Strides) {
  Shape s({2, 3, 4});
  const std::vector<int64_t> strides = s.strides();
  EXPECT_EQ(strides, (std::vector<int64_t>{12, 4, 1}));
}

TEST(ShapeTest, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(ShapeTest, ToString) {
  EXPECT_EQ(Shape({32, 3, 32, 32}).ToString(), "[32, 3, 32, 32]");
  EXPECT_EQ(Shape().ToString(), "[]");
}

TEST(TensorTest, ZeroInitialized) {
  Tensor t(Shape({3, 4}));
  for (int64_t i = 0; i < t.num_elements(); ++i) {
    EXPECT_EQ(t.at(i), 0.0f);
  }
}

TEST(TensorTest, FullAndOnes) {
  Tensor t = Tensor::Full(Shape({5}), 2.5f);
  EXPECT_EQ(t.at(0), 2.5f);
  EXPECT_EQ(t.at(4), 2.5f);
  Tensor ones = Tensor::Ones(Shape({2, 2}));
  EXPECT_EQ(Sum(ones), 4.0);
}

TEST(TensorTest, ConstructFromData) {
  Tensor t(Shape({2, 2}), {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(TensorTest, RowMajor2dAccessor) {
  Tensor t(Shape({2, 3}));
  t.at(1, 2) = 7.0f;
  EXPECT_EQ(t.at(5), 7.0f);
}

TEST(TensorTest, Nchw4dAccessor) {
  Tensor t(Shape({2, 3, 4, 5}));
  t.at4(1, 2, 3, 4) = 9.0f;
  // flat = ((1*3 + 2)*4 + 3)*5 + 4 = 119
  EXPECT_EQ(t.at(119), 9.0f);
}

TEST(TensorTest, Reshape) {
  Tensor t(Shape({2, 6}));
  t.at(0, 5) = 3.0f;
  Tensor r = t.Reshaped(Shape({3, 4}));
  EXPECT_EQ(r.shape(), Shape({3, 4}));
  EXPECT_EQ(r.at(1, 1), 3.0f);  // same flat index 5
}

TEST(TensorTest, RandomGaussianDeterministic) {
  Rng a(42), b(42);
  Tensor x = Tensor::RandomGaussian(Shape({100}), &a);
  Tensor y = Tensor::RandomGaussian(Shape({100}), &b);
  EXPECT_EQ(MaxAbsDiff(x, y), 0.0f);
}

TEST(TensorTest, RandomUniformRange) {
  Rng rng(1);
  Tensor t = Tensor::RandomUniform(Shape({1000}), &rng, -2.0f, 3.0f);
  EXPECT_GE(-2.0f, -2.0f);
  for (int64_t i = 0; i < t.num_elements(); ++i) {
    EXPECT_GE(t.at(i), -2.0f);
    EXPECT_LT(t.at(i), 3.0f);
  }
}

TEST(TensorTest, DebugStringTruncates) {
  Tensor t = Tensor::Ones(Shape({100}));
  const std::string s = t.DebugString(4);
  EXPECT_NE(s.find("..."), std::string::npos);
}

TEST(TensorOpsTest, AddAndSub) {
  Tensor a(Shape({3}), {1.0f, 2.0f, 3.0f});
  Tensor b(Shape({3}), {10.0f, 20.0f, 30.0f});
  Tensor sum = Add(a, b);
  EXPECT_EQ(sum.at(2), 33.0f);
  Tensor diff = Sub(b, a);
  EXPECT_EQ(diff.at(0), 9.0f);
}

TEST(TensorOpsTest, ScaleAndAxpy) {
  Tensor a(Shape({2}), {1.0f, -2.0f});
  ScaleInPlace(3.0f, &a);
  EXPECT_EQ(a.at(0), 3.0f);
  EXPECT_EQ(a.at(1), -6.0f);
  Tensor b(Shape({2}), {1.0f, 1.0f});
  Axpy(0.5f, a, &b);
  EXPECT_EQ(b.at(0), 2.5f);
  EXPECT_EQ(b.at(1), -2.0f);
}

TEST(TensorOpsTest, AddRowBias) {
  Tensor m(Shape({2, 3}));
  Tensor bias(Shape({3}), {1.0f, 2.0f, 3.0f});
  AddRowBias(bias, &m);
  EXPECT_EQ(m.at(0, 0), 1.0f);
  EXPECT_EQ(m.at(1, 2), 3.0f);
}

TEST(TensorOpsTest, Reductions) {
  Tensor t(Shape({4}), {1.0f, -2.0f, 3.0f, -4.0f});
  EXPECT_EQ(Sum(t), -2.0);
  EXPECT_EQ(Mean(t), -0.5);
  EXPECT_EQ(MaxAbs(t), 4.0f);
  EXPECT_EQ(SquaredNorm(t), 30.0);
}

TEST(TensorOpsTest, ColumnSums) {
  Tensor m(Shape({2, 3}), {1.0f, 2.0f, 3.0f, 10.0f, 20.0f, 30.0f});
  Tensor sums = ColumnSums(m);
  EXPECT_EQ(sums.shape(), Shape({3}));
  EXPECT_EQ(sums.at(0), 11.0f);
  EXPECT_EQ(sums.at(2), 33.0f);
}

TEST(TensorOpsTest, MaxAbsDiffAndAllClose) {
  Tensor a(Shape({3}), {1.0f, 2.0f, 3.0f});
  Tensor b(Shape({3}), {1.0f, 2.0f, 3.1f});
  EXPECT_NEAR(MaxAbsDiff(a, b), 0.1f, 1e-6f);
  EXPECT_FALSE(AllClose(a, b));
  EXPECT_TRUE(AllClose(a, b, /*rtol=*/0.1f, /*atol=*/0.1f));
  EXPECT_TRUE(AllClose(a, a));
}

TEST(TensorOpsTest, AllCloseShapeMismatch) {
  EXPECT_FALSE(AllClose(Tensor(Shape({2})), Tensor(Shape({3}))));
}

TEST(TensorOpsTest, ArgMaxRow) {
  Tensor m(Shape({2, 4}),
           {0.1f, 0.9f, 0.3f, 0.2f, 5.0f, 1.0f, 2.0f, 3.0f});
  EXPECT_EQ(ArgMaxRow(m, 0), 1);
  EXPECT_EQ(ArgMaxRow(m, 1), 0);
}

}  // namespace
}  // namespace adr
