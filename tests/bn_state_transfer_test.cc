// Regression tests for BatchNorm state transfer: running statistics must
// travel through CopyWeights and checkpoints, or inference-mode twins of
// BN models evaluate with fresh (garbage) normalizer stats. Found via the
// VGG fig-8 sweep collapsing to chance accuracy.

#include <cstdio>

#include <gtest/gtest.h>

#include "data/dataloader.h"
#include "data/synthetic_images.h"
#include "models/models.h"
#include "nn/checkpoint.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"
#include "tensor/tensor_ops.h"

namespace adr {
namespace {

struct Trained {
  SyntheticImageDataset dataset;
  Model model;
  ModelOptions options;
};

Trained TrainBnModel() {
  SyntheticImageConfig data_config;
  data_config.num_classes = 4;
  data_config.num_samples = 128;
  data_config.height = 16;
  data_config.width = 16;
  data_config.seed = 99;
  ModelOptions options;
  options.num_classes = 4;
  options.input_size = 16;
  options.width = 0.25;
  options.fc_width = 0.1;
  options.batch_norm = true;
  Trained out{*SyntheticImageDataset::Create(data_config),
              BuildCifarNet(options).ValueOrDie(), options};
  DataLoader loader(&out.dataset, 16, true, 3);
  Adam optimizer(0.002f);
  Batch batch;
  for (int i = 0; i < 60; ++i) {
    loader.Next(&batch);
    TrainStep(&out.model.network, &optimizer, batch);
  }
  return out;
}

TEST(BnStateTransferTest, NetworkExposesStateTensors) {
  Trained trained = TrainBnModel();
  // Two BN layers x (running_mean, running_var).
  EXPECT_EQ(trained.model.network.StateTensors().size(), 4u);
  // Stats moved away from their initialization.
  const Tensor* mean = trained.model.network.StateTensors()[0];
  EXPECT_GT(MaxAbs(*mean), 0.0f);
}

TEST(BnStateTransferTest, CopyWeightsCarriesRunningStats) {
  Trained trained = TrainBnModel();
  ModelOptions twin_options = trained.options;
  twin_options.use_reuse = true;
  twin_options.reuse.enabled = false;
  twin_options.seed = 1234;
  Model twin = BuildCifarNet(twin_options).ValueOrDie();
  ASSERT_TRUE(CopyWeights(trained.model, &twin).ok());

  const Batch batch = MakeBatch(trained.dataset, 0, 16);
  Tensor expected = trained.model.network.Forward(batch.images, false);
  Tensor actual = twin.network.Forward(batch.images, false);
  EXPECT_LT(MaxAbsDiff(actual, expected), 1e-5f);
}

TEST(BnStateTransferTest, CheckpointCarriesRunningStats) {
  Trained trained = TrainBnModel();
  const std::string path = testing::TempDir() + "/bn_state.ckpt";
  ASSERT_TRUE(SaveCheckpoint(trained.model.network, path).ok());

  ModelOptions fresh_options = trained.options;
  fresh_options.seed = 4321;
  Model restored = BuildCifarNet(fresh_options).ValueOrDie();
  ASSERT_TRUE(LoadCheckpoint(path, &restored.network).ok());

  const Batch batch = MakeBatch(trained.dataset, 0, 16);
  Tensor expected = trained.model.network.Forward(batch.images, false);
  Tensor actual = restored.network.Forward(batch.images, false);
  EXPECT_EQ(MaxAbsDiff(actual, expected), 0.0f);
  std::remove(path.c_str());
}

TEST(BnStateTransferTest, EvalAccuracyMatchesAfterCopy) {
  Trained trained = TrainBnModel();
  ModelOptions twin_options = trained.options;
  twin_options.use_reuse = true;
  twin_options.reuse.enabled = false;
  Model twin = BuildCifarNet(twin_options).ValueOrDie();
  ASSERT_TRUE(CopyWeights(trained.model, &twin).ok());
  EXPECT_EQ(EvaluateAccuracy(&trained.model.network, trained.dataset, 16, 64),
            EvaluateAccuracy(&twin.network, trained.dataset, 16, 64));
}

}  // namespace
}  // namespace adr
