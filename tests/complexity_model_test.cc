// Tests for the analytic cost model (paper Eqs. 5, 6, 12, 20-23).

#include <gtest/gtest.h>

#include "core/complexity_model.h"

namespace adr {
namespace {

ComplexityParams Example() {
  ComplexityParams p;
  p.n = 1000;
  p.k = 100;
  p.m = 64;
  p.l = 10;
  p.h = 8;
  p.rc = 0.1;
  return p;
}

TEST(ComplexityModelTest, ForwardCostEq5) {
  const ComplexityParams p = Example();
  // H/M + r_c + 1/L = 8/64 + 0.1 + 0.1 = 0.325.
  EXPECT_DOUBLE_EQ(ForwardRelativeCost(p), 0.125 + 0.1 + 0.1);
}

TEST(ComplexityModelTest, ForwardCostClusterReuseEq6) {
  ComplexityParams p = Example();
  p.reuse_rate = 0.5;
  // H/M + (1-R) r_c + 1/L = 0.125 + 0.05 + 0.1.
  EXPECT_DOUBLE_EQ(ForwardRelativeCostClusterReuse(p), 0.275);
  p.reuse_rate = 1.0;  // everything reused: only hash + adds remain
  EXPECT_DOUBLE_EQ(ForwardRelativeCostClusterReuse(p), 0.225);
}

TEST(ComplexityModelTest, WeightGradCostEq12) {
  const ComplexityParams p = Example();
  // (1 - r_c)/L + r_c = 0.9/10 + 0.1 = 0.19.
  EXPECT_DOUBLE_EQ(WeightGradRelativeCost(p), 0.19);
}

TEST(ComplexityModelTest, InputDeltaCostEq20) {
  EXPECT_DOUBLE_EQ(InputDeltaRelativeCost(Example()), 0.1);
}

TEST(ComplexityModelTest, TrainingStepAveragesThreeGemms) {
  const ComplexityParams p = Example();
  const double expected =
      (ForwardRelativeCost(p) + WeightGradRelativeCost(p) +
       InputDeltaRelativeCost(p)) /
      3.0;
  EXPECT_DOUBLE_EQ(TrainingStepRelativeCost(p), expected);
  EXPECT_LT(TrainingStepRelativeCost(p), 1.0);  // reuse must pay off here
}

TEST(ComplexityModelTest, WholeRowWhenLZero) {
  ComplexityParams p = Example();
  p.l = 0;
  // 1/L term becomes 1/K.
  EXPECT_DOUBLE_EQ(ForwardRelativeCost(p), 0.125 + 0.1 + 1.0 / 100.0);
}

TEST(ComplexityModelTest, DeltaTimeForLEq22) {
  // Decreasing L from 20 to 10 adds 1/10 - 1/20 = 0.05 relative cost.
  EXPECT_DOUBLE_EQ(DeltaTimeForL(20, 10), 0.05);
  EXPECT_DOUBLE_EQ(DeltaTimeForL(10, 20), -0.05);
}

TEST(ComplexityModelTest, DeltaTimeForHEq23) {
  EXPECT_DOUBLE_EQ(DeltaTimeForH(8, 12, 64), 4.0 / 64.0);
  EXPECT_DOUBLE_EQ(DeltaTimeForH(12, 8, 64), -4.0 / 64.0);
}

TEST(ComplexityModelTest, LshProfitabilityCondition) {
  // Profitable iff H < M (1 - r_c).
  EXPECT_TRUE(LshProfitable(8, 64, 0.1));    // 8 < 57.6
  EXPECT_FALSE(LshProfitable(60, 64, 0.1));  // 60 > 57.6
  EXPECT_FALSE(LshProfitable(8, 64, 0.99));  // dense-ish clustering
}

TEST(ComplexityModelTest, NoReuseNoSavings) {
  // r_c = 1 (all singleton clusters): forward cost exceeds baseline by
  // the hashing and adding overheads — the regime LSH must avoid.
  ComplexityParams p = Example();
  p.rc = 1.0;
  EXPECT_GT(ForwardRelativeCost(p), 1.0);
}

TEST(ComplexityModelTest, SmallerLRaisesAddOverhead) {
  ComplexityParams p = Example();
  p.l = 2;
  const double cost_small_l = ForwardRelativeCost(p);
  p.l = 50;
  const double cost_large_l = ForwardRelativeCost(p);
  EXPECT_GT(cost_small_l, cost_large_l);  // same r_c: small L costs more
}

}  // namespace
}  // namespace adr
