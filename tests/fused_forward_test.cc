// Differential tests for the fused tiled forward: FusedClusteredForward
// must be bit-identical to ClusteredMatmulForward on the materialized
// Im2Col matrix — same signatures, same clusterings, same outputs — at
// every compiled SIMD backend and thread count, with and without the
// cluster-reuse cache, and across tile/group boundary misalignment.

#include <gtest/gtest.h>

#include <vector>

#include "core/clustered_matmul.h"
#include "core/reuse_conv2d.h"
#include "tensor/im2col.h"
#include "tensor/simd.h"
#include "tensor/workspace_arena.h"
#include "tests/kernel_harness.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace adr {
namespace {

using testutil::Backends;

constexpr int kThreadCounts[] = {1, 2, 8};

class ThreadCountGuard {
 public:
  ThreadCountGuard() : saved_(ThreadPool::GlobalThreads()) {}
  ~ThreadCountGuard() { ThreadPool::SetGlobalThreads(saved_); }

 private:
  int saved_;
};

// Geometry chosen so the fused path runs several L2 tiles whose
// boundaries do NOT align with the per-image group boundaries:
// K = 32*5*5 = 800 gives L2TileRows = 64, while each 7x7 image
// contributes 49 rows.
ConvGeometry MultiTileGeometry(int64_t batch) {
  ConvGeometry geo;
  geo.batch = batch;
  geo.in_channels = 32;
  geo.in_height = 7;
  geo.in_width = 7;
  geo.kernel_h = 5;
  geo.kernel_w = 5;
  geo.stride = 1;
  geo.pad = 2;
  return geo;
}

// Small single-tile geometry (K = 27, all rows fit in one tile).
ConvGeometry SingleTileGeometry(int64_t batch) {
  ConvGeometry geo;
  geo.batch = batch;
  geo.in_channels = 3;
  geo.in_height = 8;
  geo.in_width = 8;
  geo.kernel_h = 3;
  geo.kernel_w = 3;
  geo.stride = 1;
  geo.pad = 1;
  return geo;
}

void ExpectSameClustering(const ReuseClustering& fused,
                          const ReuseClustering& reference) {
  ASSERT_EQ(fused.num_rows, reference.num_rows);
  ASSERT_EQ(fused.num_cols, reference.num_cols);
  ASSERT_EQ(fused.blocks.size(), reference.blocks.size());
  for (size_t b = 0; b < fused.blocks.size(); ++b) {
    const SubMatrixClustering& fb = fused.blocks[b];
    const SubMatrixClustering& rb = reference.blocks[b];
    EXPECT_EQ(fb.col_offset, rb.col_offset) << "block " << b;
    EXPECT_EQ(fb.length, rb.length) << "block " << b;
    EXPECT_EQ(fb.clustering.assignment, rb.clustering.assignment)
        << "block " << b;
    EXPECT_EQ(fb.clustering.cluster_sizes, rb.clustering.cluster_sizes)
        << "block " << b;
    ASSERT_EQ(fb.signatures.size(), rb.signatures.size()) << "block " << b;
    for (size_t c = 0; c < fb.signatures.size(); ++c) {
      EXPECT_TRUE(fb.signatures[c] == rb.signatures[c])
          << "block " << b << " cluster " << c;
    }
    ASSERT_EQ(fb.centroids.shape(), rb.centroids.shape()) << "block " << b;
    const float* fc = fb.centroids.data();
    const float* rc = rb.centroids.data();
    for (int64_t i = 0; i < fb.centroids.num_elements(); ++i) {
      ASSERT_EQ(fc[i], rc[i]) << "block " << b << " centroid element " << i;
    }
  }
}

// Runs both paths on one input and checks bitwise equality of signatures,
// clusterings, and outputs. Caches (when provided) must be separate
// instances in identical states.
void ExpectFusedMatchesMaterialized(const BlockLshFamilies& families,
                                    const ConvGeometry& geo,
                                    const Tensor& input, const Tensor& weight,
                                    const Tensor& bias,
                                    int64_t rows_per_group,
                                    ClusterReuseCache* fused_cache,
                                    ClusterReuseCache* materialized_cache) {
  const int64_t n = geo.unfolded_rows();
  const int64_t k = geo.unfolded_cols();
  const int64_t m = weight.shape()[1];

  Tensor cols(Shape({n, k}));
  Im2Col(geo, input, &cols);
  const ForwardReuseResult reference =
      ClusteredMatmulForward(families, cols.data(), n, weight, &bias,
                             rows_per_group, materialized_cache);

  WorkspaceArena arena;
  StreamingSubVectorClusterer clusterer;
  std::vector<float> y(static_cast<size_t>(n * m));
  ReuseClustering clustering;
  ForwardReuseStats fs;
  FusedClusteredForward(families, geo, input.data(), weight, &bias,
                        rows_per_group, fused_cache, &arena, &clusterer,
                        y.data(), &clustering, &fs);

  const float* ry = reference.y_rows.data();
  for (int64_t i = 0; i < n * m; ++i) {
    ASSERT_EQ(y[static_cast<size_t>(i)], ry[i]) << "output element " << i;
  }
  ExpectSameClustering(clustering, reference.clustering);
  EXPECT_EQ(fs.clusters_total, reference.stats.clusters_total);
  EXPECT_EQ(fs.clusters_reused, reference.stats.clusters_reused);
  EXPECT_DOUBLE_EQ(fs.batch_reuse_rate, reference.stats.batch_reuse_rate);
}

TEST(FusedForwardTest, MatchesMaterializedAcrossBackendsAndThreads) {
  ThreadCountGuard guard;
  const ConvGeometry geo = MultiTileGeometry(4);
  const int64_t n = geo.unfolded_rows();
  const int64_t k = geo.unfolded_cols();
  ASSERT_GT(n, L2TileRows(k)) << "geometry must span several tiles";

  Rng rng(11);
  const Tensor input = Tensor::RandomGaussian(
      Shape({geo.batch, geo.in_channels, geo.in_height, geo.in_width}),
      &rng);
  const Tensor weight = Tensor::RandomGaussian(Shape({k, 16}), &rng);
  const Tensor bias = Tensor::RandomGaussian(Shape({16}), &rng);
  auto families = BlockLshFamilies::Create(k, 100, 10, 5);
  ASSERT_TRUE(families.ok());

  for (const simd::Kernels* backend : Backends()) {
    simd::ScopedKernelsOverride override_backend(*backend);
    for (const int threads : kThreadCounts) {
      SCOPED_TRACE(std::string(backend->name) + " threads=" +
                   std::to_string(threads));
      ThreadPool::SetGlobalThreads(threads);
      ExpectFusedMatchesMaterialized(*families, geo, input, weight, bias,
                                     /*rows_per_group=*/n, nullptr, nullptr);
    }
  }
}

TEST(FusedForwardTest, MatchesMaterializedWithMisalignedGroupBoundaries) {
  // Per-image scope: 49-row groups vs 64-row tiles, so the signature
  // table resets of the streaming clusterer land mid-tile.
  const ConvGeometry geo = MultiTileGeometry(4);
  const int64_t k = geo.unfolded_cols();
  ASSERT_NE(geo.rows_per_image() % L2TileRows(k), 0);

  Rng rng(12);
  const Tensor input = Tensor::RandomGaussian(
      Shape({geo.batch, geo.in_channels, geo.in_height, geo.in_width}),
      &rng);
  const Tensor weight = Tensor::RandomGaussian(Shape({k, 8}), &rng);
  const Tensor bias = Tensor::RandomGaussian(Shape({8}), &rng);
  auto families = BlockLshFamilies::Create(k, 160, 8, 6);
  ASSERT_TRUE(families.ok());

  ExpectFusedMatchesMaterialized(*families, geo, input, weight, bias,
                                 geo.rows_per_image(), nullptr, nullptr);
}

TEST(FusedForwardTest, MatchesMaterializedSingleTile) {
  const ConvGeometry geo = SingleTileGeometry(2);
  const int64_t k = geo.unfolded_cols();
  Rng rng(13);
  const Tensor input = Tensor::RandomGaussian(
      Shape({geo.batch, geo.in_channels, geo.in_height, geo.in_width}),
      &rng);
  const Tensor weight = Tensor::RandomGaussian(Shape({k, 6}), &rng);
  const Tensor bias = Tensor::RandomGaussian(Shape({6}), &rng);
  auto families = BlockLshFamilies::Create(k, 9, 12, 7);
  ASSERT_TRUE(families.ok());

  ExpectFusedMatchesMaterialized(*families, geo, input, weight, bias,
                                 geo.unfolded_rows(), nullptr, nullptr);
}

TEST(FusedForwardTest, MatchesMaterializedWithClusterReuseCache) {
  // Two consecutive batches against separate-but-identical caches: the
  // second batch exercises the hit/memcpy path and the reuse stats.
  const ConvGeometry geo = MultiTileGeometry(3);
  const int64_t k = geo.unfolded_cols();
  Rng rng(14);
  const Tensor weight = Tensor::RandomGaussian(Shape({k, 8}), &rng);
  const Tensor bias = Tensor::RandomGaussian(Shape({8}), &rng);
  auto families = BlockLshFamilies::Create(k, 200, 6, 8);
  ASSERT_TRUE(families.ok());

  ClusterReuseCache fused_cache;
  ClusterReuseCache materialized_cache;
  const Tensor batch1 = Tensor::RandomGaussian(
      Shape({geo.batch, geo.in_channels, geo.in_height, geo.in_width}),
      &rng);
  // Second batch = first batch plus small noise, so many signatures repeat.
  Tensor batch2 = batch1;
  for (int64_t i = 0; i < batch2.num_elements(); ++i) {
    batch2.data()[i] += rng.NextGaussian() * 1e-4f;
  }

  ExpectFusedMatchesMaterialized(*families, geo, batch1, weight, bias,
                                 geo.unfolded_rows(), &fused_cache,
                                 &materialized_cache);
  ExpectFusedMatchesMaterialized(*families, geo, batch2, weight, bias,
                                 geo.unfolded_rows(), &fused_cache,
                                 &materialized_cache);
  EXPECT_GT(fused_cache.hits(), 0);
  EXPECT_EQ(fused_cache.hits(), materialized_cache.hits());
  EXPECT_EQ(fused_cache.lookups(), materialized_cache.lookups());
}

TEST(FusedForwardTest, ReusedBuffersStayBitIdenticalAcrossSteps) {
  // Same FusedClusteredForward driven through one persistent clusterer
  // and arena for several steps (with Recycle between them, as the layer
  // does) must keep producing the same bits as a fresh run.
  const ConvGeometry geo = MultiTileGeometry(2);
  const int64_t n = geo.unfolded_rows();
  const int64_t k = geo.unfolded_cols();
  const int64_t m = 8;
  Rng rng(15);
  const Tensor input = Tensor::RandomGaussian(
      Shape({geo.batch, geo.in_channels, geo.in_height, geo.in_width}),
      &rng);
  const Tensor weight = Tensor::RandomGaussian(Shape({k, m}), &rng);
  const Tensor bias = Tensor::RandomGaussian(Shape({m}), &rng);
  auto families = BlockLshFamilies::Create(k, 100, 10, 9);
  ASSERT_TRUE(families.ok());

  WorkspaceArena arena;
  StreamingSubVectorClusterer clusterer;
  std::vector<float> first;
  for (int step = 0; step < 3; ++step) {
    arena.Reset();
    float* y = arena.AllocFloats(n * m);
    ReuseClustering clustering;
    ForwardReuseStats fs;
    FusedClusteredForward(*families, geo, input.data(), weight, &bias, n,
                          nullptr, &arena, &clusterer, y, &clustering, &fs);
    if (step == 0) {
      first.assign(y, y + n * m);
    } else {
      for (int64_t i = 0; i < n * m; ++i) {
        ASSERT_EQ(y[i], first[static_cast<size_t>(i)])
            << "step " << step << " element " << i;
      }
    }
    clusterer.Recycle(std::move(clustering));
  }
}

TEST(FusedForwardTest, ReuseConv2dFusedMatchesMaterializedLayer) {
  // Layer-level differential: with exact_backward set, the training
  // Forward takes the materialized path; the default layer takes the
  // fused path. Identically seeded weights must give bitwise-equal
  // outputs.
  Conv2dConfig config;
  config.in_channels = 32;
  config.out_channels = 12;
  config.kernel = 5;
  config.stride = 1;
  config.pad = 2;
  config.in_height = 7;
  config.in_width = 7;
  ReuseConfig reuse;
  reuse.sub_vector_length = 100;
  reuse.num_hashes = 8;

  Rng rng_a(21);
  Rng rng_b(21);
  ReuseConv2d fused_layer("fused", config, reuse, &rng_a);
  ReuseConv2d materialized_layer("materialized", config, reuse, &rng_b);
  materialized_layer.set_exact_backward(true);

  Rng data_rng(22);
  const Tensor input = Tensor::RandomGaussian(Shape({4, 32, 7, 7}),
                                              &data_rng);
  const Tensor out_fused = fused_layer.Forward(input, /*training=*/true);
  const Tensor out_materialized =
      materialized_layer.Forward(input, /*training=*/true);
  ASSERT_EQ(out_fused.shape(), out_materialized.shape());
  for (int64_t i = 0; i < out_fused.num_elements(); ++i) {
    ASSERT_EQ(out_fused.data()[i], out_materialized.data()[i])
        << "element " << i;
  }
}

TEST(FusedForwardTest, ReuseConv2dEvalMatchesTrainingOutput) {
  // Eval mode takes the fused path and caches nothing; without a
  // cluster-reuse cache the forward is pure, so eval and training
  // outputs are bitwise equal and repeated eval calls are stable.
  Conv2dConfig config;
  config.in_channels = 3;
  config.out_channels = 6;
  config.kernel = 3;
  config.stride = 1;
  config.pad = 1;
  config.in_height = 8;
  config.in_width = 8;
  ReuseConfig reuse;
  reuse.sub_vector_length = 9;
  reuse.num_hashes = 10;

  Rng rng(23);
  ReuseConv2d layer("evaltrain", config, reuse, &rng);
  Rng data_rng(24);
  const Tensor input = Tensor::RandomGaussian(Shape({2, 3, 8, 8}),
                                              &data_rng);

  const Tensor train_out = layer.Forward(input, /*training=*/true);
  const Tensor eval_out = layer.Forward(input, /*training=*/false);
  const Tensor eval_again = layer.Forward(input, /*training=*/false);
  for (int64_t i = 0; i < train_out.num_elements(); ++i) {
    ASSERT_EQ(eval_out.data()[i], train_out.data()[i]) << "element " << i;
    ASSERT_EQ(eval_again.data()[i], train_out.data()[i]) << "element " << i;
  }
}

}  // namespace
}  // namespace adr
