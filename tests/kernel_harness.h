// Shared machinery for the differential golden-kernel tests: backend
// iteration, deterministic fills, double-precision reference kernels and
// the per-kernel tolerance policy (DESIGN.md section 6.3).
//
// Tolerance policy. Elementwise kernels (add, scale) must match the
// scalar expression bitwise — vector lanes perform the identical single
// operation. axpy may fuse its multiply-add, so it gets a few-ULP
// relative bound. Reductions (dot, squared_norm, gemm) regroup the
// accumulation order across lanes, so they are compared against a
// double-precision reference with an error budget proportional to
// eps * sum_i |a_i| * |b_i| — the standard forward error bound of
// floating-point summation — times a generous constant.

#ifndef ADR_TESTS_KERNEL_HARNESS_H_
#define ADR_TESTS_KERNEL_HARNESS_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/simd.h"
#include "util/rng.h"

namespace adr::testutil {

/// Backends available on this build + machine, scalar first. Every golden
/// test iterates all of them, so the scalar fallback is always tested.
inline const std::vector<const simd::Kernels*>& Backends() {
  return simd::AllAvailable();
}

/// Shape sweep with remainder lanes: values straddling every vector width
/// in use (1, 4, 8 lanes and the 2x-unrolled 16-lane hot loops).
inline const std::vector<int64_t>& RemainderSizes() {
  static const std::vector<int64_t> sizes = {
      1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 23, 31, 32, 33,
      63, 64, 65, 100, 127, 128, 129, 255, 256, 257, 400};
  return sizes;
}

inline void FillGaussian(float* data, int64_t n, uint64_t seed) {
  Rng rng(seed);
  for (int64_t i = 0; i < n; ++i) data[i] = rng.NextGaussian();
}

inline std::vector<float> RandomVector(int64_t n, uint64_t seed) {
  std::vector<float> v(static_cast<size_t>(n));
  FillGaussian(v.data(), n, seed);
  return v;
}

// --- double-precision references -----------------------------------------

inline double RefDot(const float* a, const float* b, int64_t n) {
  double sum = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    sum += static_cast<double>(a[i]) * b[i];
  }
  return sum;
}

inline double RefSquaredNorm(const float* a, int64_t n) {
  return RefDot(a, a, n);
}

/// sum_i |a_i * b_i| — the magnitude the summation error bound scales
/// with.
inline double AbsDot(const float* a, const float* b, int64_t n) {
  double sum = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    sum += std::abs(static_cast<double>(a[i]) * b[i]);
  }
  return sum;
}

/// Reduction tolerance: c * n * eps * sum|a_i b_i|, floored to absorb
/// double-vs-float representation noise. c = 8 is far above the lane
/// regrouping error of any backend yet far below a real kernel bug (a
/// dropped or duplicated element shifts the result by O(|a_i b_i|)).
inline double ReductionTolerance(double abs_sum, int64_t n) {
  constexpr double kEps = 1.19209290e-07;  // FLT_EPSILON
  return 8.0 * static_cast<double>(n) * kEps * abs_sum + 1e-7;
}

/// C = A[m x k] * B[k x n] in double, row-major with leading dims, plus
/// per-element |A||B| products for the tolerance (written to abs_out).
inline void RefGemm(const float* a, int64_t lda, const float* b, int64_t ldb,
                    int64_t m, int64_t k, int64_t n, std::vector<double>* out,
                    std::vector<double>* abs_out) {
  out->assign(static_cast<size_t>(m * n), 0.0);
  abs_out->assign(static_cast<size_t>(m * n), 0.0);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const double a_ik = a[i * lda + kk];
      for (int64_t j = 0; j < n; ++j) {
        const double prod = a_ik * b[kk * ldb + j];
        (*out)[static_cast<size_t>(i * n + j)] += prod;
        (*abs_out)[static_cast<size_t>(i * n + j)] += std::abs(prod);
      }
    }
  }
}

}  // namespace adr::testutil

#endif  // ADR_TESTS_KERNEL_HARNESS_H_
