// Integration tests: the four training drivers on a small synthetic task.
// These exercise the full stack (data -> model -> reuse layers -> adaptive
// control -> optimizer) end to end.

#include <gtest/gtest.h>

#include "core/strategies.h"
#include "data/synthetic_images.h"

namespace adr {
namespace {

class StrategiesTest : public ::testing::Test {
 protected:
  static SyntheticImageDataset MakeDataset() {
    SyntheticImageConfig config;
    config.num_classes = 4;
    config.num_samples = 256;
    config.channels = 3;
    config.height = 16;
    config.width = 16;
    config.structured_noise = 0.15f;
    config.white_noise = 0.02f;
    config.seed = 11;
    return *SyntheticImageDataset::Create(config);
  }

  static ModelOptions SmallModel() {
    ModelOptions options;
    options.num_classes = 4;
    options.input_size = 16;
    options.width = 0.25;  // 16-channel CifarNet
    options.fc_width = 0.1;
    options.seed = 5;
    return options;
  }

  static TrainingRunOptions FastRun() {
    TrainingRunOptions options;
    options.batch_size = 16;
    options.learning_rate = 0.002f;
    options.target_accuracy = 0.9;
    options.max_steps = 220;
    options.eval_every = 20;
    options.eval_samples = 128;
    options.fixed_reuse.sub_vector_length = 25;
    options.fixed_reuse.num_hashes = 10;
    options.adaptive.plateau_window = 5;
    options.adaptive.min_steps_per_stage = 10;
    options.seed = 21;
    return options;
  }
};

TEST_F(StrategiesTest, BaselineLearnsTheTask) {
  const SyntheticImageDataset dataset = MakeDataset();
  auto result = RunTrainingStrategy(StrategyKind::kBaseline, "cifarnet",
                                    SmallModel(), dataset, FastRun());
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->final_accuracy, 0.6);
  EXPECT_GT(result->steps_run, 0);
  EXPECT_DOUBLE_EQ(result->MacsSavedFraction(), 0.0);
  EXPECT_FALSE(result->loss_history.empty());
  EXPECT_FALSE(result->eval_history.empty());
}

TEST_F(StrategiesTest, Strategy1FixedReuseLearnsAndSaves) {
  const SyntheticImageDataset dataset = MakeDataset();
  auto result = RunTrainingStrategy(StrategyKind::kFixed, "cifarnet",
                                    SmallModel(), dataset, FastRun());
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->final_accuracy, 0.5);
  EXPECT_GT(result->MacsSavedFraction(), 0.0);
  EXPECT_LT(result->conv_macs_executed, result->conv_macs_baseline);
}

TEST_F(StrategiesTest, Strategy2AdaptiveLearnsAndSavesMore) {
  const SyntheticImageDataset dataset = MakeDataset();
  auto s2 = RunTrainingStrategy(StrategyKind::kAdaptive, "cifarnet",
                                SmallModel(), dataset, FastRun());
  ASSERT_TRUE(s2.ok());
  EXPECT_GT(s2->final_accuracy, 0.5);
  EXPECT_GT(s2->MacsSavedFraction(), 0.0);
}

TEST_F(StrategiesTest, Strategy3ClusterReuseTogglesOff) {
  const SyntheticImageDataset dataset = MakeDataset();
  TrainingRunOptions options = FastRun();
  options.adaptive.plateau_window = 4;
  auto result = RunTrainingStrategy(StrategyKind::kClusterReuse, "cifarnet",
                                    SmallModel(), dataset, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->final_accuracy, 0.4);
  EXPECT_GT(result->MacsSavedFraction(), 0.0);
}

TEST_F(StrategiesTest, RejectsBadOptions) {
  const SyntheticImageDataset dataset = MakeDataset();
  TrainingRunOptions bad = FastRun();
  bad.batch_size = 0;
  EXPECT_FALSE(RunTrainingStrategy(StrategyKind::kBaseline, "cifarnet",
                                   SmallModel(), dataset, bad)
                   .ok());
  bad = FastRun();
  bad.max_steps = 0;
  EXPECT_FALSE(RunTrainingStrategy(StrategyKind::kBaseline, "cifarnet",
                                   SmallModel(), dataset, bad)
                   .ok());
}

TEST_F(StrategiesTest, RejectsUnknownModel) {
  const SyntheticImageDataset dataset = MakeDataset();
  EXPECT_FALSE(RunTrainingStrategy(StrategyKind::kBaseline, "lenet",
                                   SmallModel(), dataset, FastRun())
                   .ok());
}

TEST_F(StrategiesTest, StrategyNames) {
  EXPECT_EQ(StrategyKindToString(StrategyKind::kBaseline), "baseline");
  EXPECT_EQ(StrategyKindToString(StrategyKind::kFixed), "strategy1-fixed");
  EXPECT_EQ(StrategyKindToString(StrategyKind::kAdaptive),
            "strategy2-adaptive");
  EXPECT_EQ(StrategyKindToString(StrategyKind::kClusterReuse),
            "strategy3-cluster-reuse");
}

}  // namespace
}  // namespace adr
