// Tests for BatchNorm2d and LocalResponseNorm.

#include <cmath>

#include <gtest/gtest.h>

#include "nn/normalization.h"
#include "tensor/tensor_ops.h"
#include "tests/gradient_check.h"
#include "util/rng.h"

namespace adr {
namespace {

TEST(BatchNormTest, TrainingOutputIsNormalized) {
  BatchNorm2d bn("bn", 3);
  Rng rng(1);
  Tensor in = Tensor::RandomGaussian(Shape({8, 3, 4, 4}), &rng, 5.0f, 2.0f);
  Tensor out = bn.Forward(in, /*training=*/true);
  // Per channel: mean ~0, var ~1 (gamma=1, beta=0 at init).
  const int64_t hw = 16;
  for (int64_t c = 0; c < 3; ++c) {
    double sum = 0.0, sum_sq = 0.0;
    for (int64_t n = 0; n < 8; ++n) {
      for (int64_t p = 0; p < hw; ++p) {
        const float v = out.data()[(n * 3 + c) * hw + p];
        sum += v;
        sum_sq += static_cast<double>(v) * v;
      }
    }
    const double mean = sum / (8 * hw);
    const double var = sum_sq / (8 * hw) - mean * mean;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNormTest, RunningStatsConvergeToDataStats) {
  BatchNorm2d bn("bn", 2, /*momentum=*/0.5f);
  Rng rng(2);
  for (int i = 0; i < 30; ++i) {
    Tensor in = Tensor::RandomGaussian(Shape({16, 2, 4, 4}), &rng, 3.0f,
                                       1.5f);
    bn.Forward(in, true);
  }
  EXPECT_NEAR(bn.running_mean().at(0), 3.0f, 0.2f);
  EXPECT_NEAR(bn.running_var().at(0), 2.25f, 0.4f);
}

TEST(BatchNormTest, InferenceUsesRunningStats) {
  BatchNorm2d bn("bn", 1, /*momentum=*/0.0f);  // running = last batch
  Rng rng(3);
  Tensor train_in =
      Tensor::RandomGaussian(Shape({16, 1, 4, 4}), &rng, 2.0f, 1.0f);
  bn.Forward(train_in, true);
  // A constant input at inference maps deterministically through the
  // stored statistics.
  Tensor test_in = Tensor::Full(Shape({1, 1, 4, 4}), 2.0f);
  Tensor out = bn.Forward(test_in, false);
  const float expected =
      (2.0f - bn.running_mean().at(0)) /
      std::sqrt(bn.running_var().at(0) + 1e-5f);
  EXPECT_NEAR(out.at(0), expected, 1e-4f);
}

TEST(BatchNormTest, GradientCheckTrainingMode) {
  BatchNorm2d bn("bn", 2);
  Rng rng(4);
  Tensor in = Tensor::RandomGaussian(Shape({4, 2, 3, 3}), &rng);
  // Forward in training mode caches batch stats; check input + params.
  Tensor out = bn.Forward(in, true);
  Tensor projection = Tensor::RandomGaussian(out.shape(), &rng);
  Tensor grad = bn.Backward(projection);

  const float eps = 1e-3f;
  Tensor x = in;
  for (int64_t i = 0; i < x.num_elements(); i += 7) {
    const float saved = x.at(i);
    x.at(i) = saved + eps;
    const double up = testutil::Dot(bn.Forward(x, true), projection);
    x.at(i) = saved - eps;
    const double down = testutil::Dot(bn.Forward(x, true), projection);
    x.at(i) = saved;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(grad.at(i), numeric, 5e-2 * (std::abs(numeric) + 1.0));
  }
}

TEST(BatchNormTest, GammaBetaGradients) {
  BatchNorm2d bn("bn", 2);
  Rng rng(5);
  Tensor in = Tensor::RandomGaussian(Shape({4, 2, 3, 3}), &rng);
  Tensor out = bn.Forward(in, true);
  Tensor projection = Tensor::RandomGaussian(out.shape(), &rng);
  bn.Backward(projection);
  Tensor analytic_gamma = *bn.Gradients()[0];
  Tensor analytic_beta = *bn.Gradients()[1];

  const float eps = 1e-3f;
  for (int64_t c = 0; c < 2; ++c) {
    Tensor* gamma = bn.Parameters()[0];
    const float saved = gamma->at(c);
    gamma->at(c) = saved + eps;
    const double up = testutil::Dot(bn.Forward(in, true), projection);
    gamma->at(c) = saved - eps;
    const double down = testutil::Dot(bn.Forward(in, true), projection);
    gamma->at(c) = saved;
    EXPECT_NEAR(analytic_gamma.at(c), (up - down) / (2.0 * eps), 5e-2);
  }
  for (int64_t c = 0; c < 2; ++c) {
    Tensor* beta = bn.Parameters()[1];
    const float saved = beta->at(c);
    beta->at(c) = saved + eps;
    const double up = testutil::Dot(bn.Forward(in, true), projection);
    beta->at(c) = saved - eps;
    const double down = testutil::Dot(bn.Forward(in, true), projection);
    beta->at(c) = saved;
    EXPECT_NEAR(analytic_beta.at(c), (up - down) / (2.0 * eps), 5e-2);
  }
}

TEST(LrnTest, UniformInputScalesAsFormula) {
  LocalResponseNorm lrn("lrn", /*size=*/3, /*alpha=*/0.3f, /*beta=*/0.5f,
                        /*k=*/1.0f);
  // Single pixel, 3 channels, all ones: middle channel window sums 3 ones.
  Tensor in = Tensor::Ones(Shape({1, 3, 1, 1}));
  Tensor out = lrn.Forward(in, false);
  // Channel 1 (middle): scale = 1 + 0.3/3 * 3 = 1.3; y = 1.3^-0.5.
  EXPECT_NEAR(out.at(1), std::pow(1.3f, -0.5f), 1e-5f);
  // Edge channels see a 2-element window: scale = 1 + 0.1*2 = 1.2.
  EXPECT_NEAR(out.at(0), std::pow(1.2f, -0.5f), 1e-5f);
}

TEST(LrnTest, GradientCheck) {
  LocalResponseNorm lrn("lrn", 3, 0.2f, 0.75f, 2.0f);
  Rng rng(6);
  Tensor in = Tensor::RandomGaussian(Shape({2, 4, 2, 2}), &rng);
  testutil::CheckGradients(&lrn, in, /*tolerance=*/5e-2);
}

TEST(LrnTest, IdentityWhenAlphaZero) {
  LocalResponseNorm lrn("lrn", 5, 0.0f, 0.75f, 1.0f);
  Rng rng(7);
  Tensor in = Tensor::RandomGaussian(Shape({1, 6, 3, 3}), &rng);
  Tensor out = lrn.Forward(in, false);
  EXPECT_LT(MaxAbsDiff(out, in), 1e-6f);
}

}  // namespace
}  // namespace adr
