// Ablation of the clustering scope (paper Section III-B): single-input vs
// single-batch vs across-batch (cluster reuse) on one trained layer.
// Expectation: wider scopes pool more redundancy, so they reach the same
// accuracy at smaller remaining ratios, with across-batch additionally
// removing recomputation of clusters seen in earlier batches.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/reuse_conv2d.h"
#include "util/csv_writer.h"

namespace adr::bench {
namespace {

void Main() {
  std::printf("== Ablation: clustering scope on CifarNet conv2 ==\n");
  CsvWriter csv;
  const Status open = CsvWriter::Open(
      ResultsDir() + "/ablation_scope.csv",
      {"scope", "H", "rc", "accuracy", "cumulative_reuse_rate"}, &csv);
  ADR_CHECK(open.ok()) << open.ToString();

  TrainSpec spec;
  spec.model_name = "cifarnet";
  spec.model_options.num_classes = 10;
  spec.model_options.input_size = 16;
  spec.model_options.width = 0.25;
  spec.model_options.fc_width = 0.1;
  spec.data_config = HardTask(16, 512, 71);
  spec.train_steps = Scaled(300);
  spec.batch_size = 8;
  const TrainedContext context = TrainBaseline(spec);
  std::printf("dense accuracy: %.3f\n\n", context.baseline_accuracy);

  PrintRow({"scope", "H", "r_c", "accuracy", "cum. R"});
  for (const ClusterScope scope :
       {ClusterScope::kSingleInput, ClusterScope::kSingleBatch,
        ClusterScope::kAcrossBatch}) {
    for (int h : {6, 10, 14}) {
      Model twin = MakeReuseTwin(context, ExactReuseConfig());
      ReuseConv2d* layer = twin.reuse_layers[1];
      const ReuseConfig config = ReuseConfigBuilder()
                                     .SubVectorLength(10)
                                     .NumHashes(h)
                                     .Scope(scope)
                                     .BuildUnchecked();
      const Status status = layer->SetReuseConfig(config);
      ADR_CHECK(status.ok()) << status.ToString();
      const double accuracy = EvaluateAccuracy(
          &twin.network, context.dataset, 8, Scaled(128));
      const double rc = layer->stats().avg_remaining_ratio;
      const double reuse_rate =
          layer->cache() != nullptr ? layer->cache()->ReuseRate() : 0.0;
      PrintRow({std::string(ClusterScopeToString(scope)),
                std::to_string(h), Fmt(rc, 4), Fmt(accuracy, 3),
                Fmt(reuse_rate, 3)});
      csv.WriteRow(std::vector<std::string>{
          std::string(ClusterScopeToString(scope)), std::to_string(h),
          Fmt(rc, 6), Fmt(accuracy, 6), Fmt(reuse_rate, 6)});
    }
  }
  csv.Close();
  std::printf("\nCSV written to %s/ablation_scope.csv\n",
              ResultsDir().c_str());
}

}  // namespace
}  // namespace adr::bench

int main() {
  adr::bench::Main();
  return 0;
}
