// Shared main() for the google-benchmark micro benches: runs the normal
// console report and additionally captures every run into a
// BenchJsonEmitter, writing the suite's schema-versioned
// BENCH_<suite>.json (see util/bench_json.h for the schema and
// scripts/check_bench_regression.py for the consumer).

#ifndef ADR_BENCH_BENCH_JSON_MAIN_H_
#define ADR_BENCH_BENCH_JSON_MAIN_H_

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "util/bench_json.h"

namespace adr::bench {

/// Console reporter that also records each successful non-aggregate run.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCaptureReporter(BenchJsonEmitter* emitter)
      : emitter_(emitter) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      BenchRecord record;
      record.name = run.benchmark_name();
      record.iterations = static_cast<int64_t>(run.iterations);
      // Per-iteration times; the benches use the default ns time unit.
      record.real_time_ns = run.GetAdjustedRealTime();
      record.cpu_time_ns = run.GetAdjustedCPUTime();
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        record.items_per_second = items->second.value;
      }
      // Remaining user counters (peak_workspace_bytes, alloc_events, ...)
      // ride along in the record's counters object.
      for (const auto& [key, counter] : run.counters) {
        if (key == "items_per_second") continue;
        record.counters.emplace_back(key, counter.value);
      }
      emitter_->Add(std::move(record));
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

 private:
  BenchJsonEmitter* emitter_;
};

/// \brief Drop-in replacement for BENCHMARK_MAIN(): runs the registered
/// benchmarks, then writes BENCH_<suite>.json (path overridable via
/// ADR_BENCH_JSON_DIR). Returns the process exit code.
inline int RunBenchmarksWithJson(int argc, char** argv,
                                 const std::string& suite) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  BenchJsonEmitter emitter(suite);
  JsonCaptureReporter reporter(&emitter);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  const std::string path = BenchJsonEmitter::DefaultPath(suite);
  if (const Status status = emitter.WriteFile(path); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu record(s) to %s\n", emitter.size(), path.c_str());
  return 0;
}

}  // namespace adr::bench

#endif  // ADR_BENCH_BENCH_JSON_MAIN_H_
