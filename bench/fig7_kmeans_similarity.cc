// Figure 7 reproduction: the r_c-accuracy relationship of k-means
// clustering applied to the neuron vectors of a single convolutional layer
// of a trained model, at single-input and single-batch clustering scopes.
//
// Paper reference points (full-scale): CifarNet conv1 recovers ~0.76 of
// its 0.81 accuracy at r_c = 0.5 (single-input); AlexNet conv3 recovers
// its original accuracy at r_c ~ 0.5 (single-input) / ~0.15 (single-batch),
// and the single-batch curve dominates the single-input curve.
//
// Our substrate is a scaled model on the synthetic dataset (see DESIGN.md),
// so absolute accuracies differ; the claims checked here are the *shapes*:
// accuracy rises with r_c, approaches the dense accuracy well before
// r_c = 1, and batch-scope clustering needs a smaller r_c than input-scope.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/reuse_conv2d.h"
#include "util/csv_writer.h"

namespace adr::bench {
namespace {

void RunLayerSweep(const std::string& title, const TrainedContext& context,
                   size_t layer_index, int64_t batch_size,
                   const std::vector<int64_t>& cluster_counts,
                   CsvWriter* csv) {
  std::printf("\n%s (dense accuracy %.3f)\n", title.c_str(),
              context.baseline_accuracy);
  PrintRow({"scope", "clusters", "r_c", "accuracy"});

  for (const ClusterScope scope :
       {ClusterScope::kSingleInput, ClusterScope::kSingleBatch}) {
    for (int64_t clusters : cluster_counts) {
      Model twin = MakeReuseTwin(context, ExactReuseConfig());
      ReuseConv2d* layer = twin.reuse_layers[layer_index];
      // Fig. 7 clusters whole row vectors, so L = 0 ("use the full row").
      const ReuseConfig config = ReuseConfigBuilder()
                                     .KMeans(clusters, /*iterations=*/5)
                                     .SubVectorLength(0)
                                     .Scope(scope)
                                     .BuildUnchecked();
      const Status status = layer->SetReuseConfig(config);
      ADR_CHECK(status.ok()) << status.ToString();

      const double accuracy =
          EvaluateAccuracy(&twin.network, context.dataset, batch_size,
                           Scaled(96));
      const double rc = layer->stats().avg_remaining_ratio;
      PrintRow({std::string(ClusterScopeToString(scope)),
                std::to_string(clusters), Fmt(rc), Fmt(accuracy, 3)});
      if (csv != nullptr) {
        csv->WriteRow(std::vector<std::string>{
            title, std::string(ClusterScopeToString(scope)),
            std::to_string(clusters), Fmt(rc, 6), Fmt(accuracy, 6)});
      }
    }
  }
}

void Main() {
  std::printf("== Fig. 7: k-means similarity verification ==\n");
  std::printf("(scaled models on the synthetic dataset; see DESIGN.md)\n");

  CsvWriter csv;
  const Status open = CsvWriter::Open(
      ResultsDir() + "/fig7_kmeans_similarity.csv",
      {"experiment", "scope", "clusters", "rc", "accuracy"}, &csv);
  ADR_CHECK(open.ok()) << open.ToString();

  // (a) CifarNet conv1.
  {
    TrainSpec spec;
    spec.model_name = "cifarnet";
    spec.model_options.num_classes = 10;
    spec.model_options.input_size = 16;
    spec.model_options.width = 0.25;
    spec.model_options.fc_width = 0.1;
    spec.data_config = HardTask(16, 512, 7);
    spec.train_steps = Scaled(300);
    spec.batch_size = 8;
    const TrainedContext context = TrainBaseline(spec);
    // Rows per image: 16*16 = 256; per batch: 2048.
    RunLayerSweep("CifarNet conv1", context, /*layer_index=*/0,
                  /*batch_size=*/8, {4, 16, 64, 128, 256}, &csv);
  }

  // (b) AlexNet conv3.
  {
    TrainSpec spec;
    spec.model_name = "alexnet";
    spec.model_options.num_classes = 10;
    spec.model_options.input_size = 115;
    spec.model_options.width = 0.125;
    spec.model_options.fc_width = 0.02;
    spec.data_config = HardTask(115, 256, 9);
    spec.data_config.structured_noise = 0.8f;
    spec.train_steps = Scaled(250);
    spec.batch_size = 4;
    spec.eval_samples = 64;
    const TrainedContext context = TrainBaseline(spec);
    // conv3's map is 6x6: 36 rows per image, 144 per batch of 4.
    RunLayerSweep("AlexNet conv3", context, /*layer_index=*/2,
                  /*batch_size=*/4, {2, 4, 8, 18, 36}, &csv);
  }

  csv.Close();
  std::printf("\nCSV written to %s/fig7_kmeans_similarity.csv\n",
              ResultsDir().c_str());
}

}  // namespace
}  // namespace adr::bench

int main() {
  adr::bench::Main();
  return 0;
}
