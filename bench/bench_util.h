// Shared helpers for the experiment benches (bench/fig*, bench/table*,
// bench/ablation*): aligned table printing, CSV output, and the
// train-a-scaled-model-then-evaluate plumbing every experiment needs.

#ifndef ADR_BENCH_BENCH_UTIL_H_
#define ADR_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "data/dataloader.h"
#include "data/synthetic_images.h"
#include "models/models.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"
#include "util/check.h"
#include "util/csv_writer.h"
#include "util/logging.h"

namespace adr::bench {

/// Directory where benches drop their CSV series.
inline std::string ResultsDir() {
  const char* env = std::getenv("ADR_BENCH_RESULTS_DIR");
  std::string dir = env != nullptr ? env : "bench_results";
  std::filesystem::create_directories(dir);
  return dir;
}

/// Global effort multiplier (ADR_BENCH_SCALE, default 1): scales training
/// steps and evaluation sizes so the same binaries can run quick sanity
/// sweeps or longer, smoother curves.
inline double BenchScale() {
  const char* env = std::getenv("ADR_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double scale = std::atof(env);
  return scale > 0.0 ? scale : 1.0;
}

inline int64_t Scaled(int64_t base) {
  return std::max<int64_t>(1, static_cast<int64_t>(base * BenchScale()));
}

/// Prints an aligned table row; pass the header first.
inline void PrintRow(const std::vector<std::string>& cells, int width = 14) {
  for (const std::string& cell : cells) {
    std::printf("%-*s", width, cell.c_str());
  }
  std::printf("\n");
}

inline std::string Fmt(double value, int precision = 4) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

/// One experiment context: a synthetic dataset plus a trained baseline
/// model whose weights the reuse sweeps copy.
struct TrainedContext {
  SyntheticImageDataset dataset;
  Model baseline;
  double baseline_accuracy = 0.0;
  ModelOptions model_options;
};

struct TrainSpec {
  std::string model_name = "cifarnet";
  ModelOptions model_options;
  SyntheticImageConfig data_config;
  int64_t train_steps = 250;
  int64_t batch_size = 16;
  float learning_rate = 0.002f;
  int64_t eval_samples = 128;
};

/// Trains a dense baseline model on a fresh synthetic dataset and returns
/// both. Used by the inference-time experiments (Figs. 7-8, Table III).
inline TrainedContext TrainBaseline(const TrainSpec& spec) {
  auto dataset = SyntheticImageDataset::Create(spec.data_config);
  ADR_CHECK(dataset.ok()) << dataset.status().ToString();
  auto model = BuildModel(spec.model_name, spec.model_options);
  ADR_CHECK(model.ok()) << model.status().ToString();

  DataLoader loader(&*dataset, spec.batch_size, /*shuffle=*/true, 1234);
  // Adam: plain momentum SGD is too seed-sensitive on the deep scaled
  // networks (16-layer VGG without batch norm collapses to chance for
  // many seeds).
  Adam optimizer(spec.learning_rate);
  Batch batch;
  for (int64_t step = 0; step < spec.train_steps; ++step) {
    loader.Next(&batch);
    TrainStep(&model->network, &optimizer, batch);
  }
  TrainedContext context{std::move(*dataset), std::move(*model), 0.0,
                         spec.model_options};
  context.baseline_accuracy =
      EvaluateAccuracy(&context.baseline.network, context.dataset,
                       spec.batch_size, spec.eval_samples);
  return context;
}

/// Builds a reuse twin of `context.baseline` (same weights) whose every
/// layer starts at `default_config`.
inline Model MakeReuseTwin(const TrainedContext& context,
                           const ReuseConfig& default_config) {
  ModelOptions options = context.model_options;
  options.use_reuse = true;
  options.reuse = default_config;
  auto twin = BuildModel(context.baseline.name, options);
  ADR_CHECK(twin.ok()) << twin.status().ToString();
  const Status copied = CopyWeights(context.baseline, &*twin);
  ADR_CHECK(copied.ok()) << copied.ToString();
  return std::move(*twin);
}

/// The standard benchmark task: 10 classes at the given resolution, with
/// enough structured + white noise that the dense model lands around
/// 0.90-0.95 accuracy — leaving headroom for reuse-caused accuracy loss to
/// show, as in the paper's figures (an easy task saturates at 1.0 and
/// hides the trade-off).
inline SyntheticImageConfig HardTask(int64_t side, int64_t num_samples,
                                     uint64_t seed) {
  SyntheticImageConfig config =
      SyntheticImageConfig::CifarLike(num_samples, seed);
  config.num_classes = 10;
  config.height = side;
  config.width = side;
  config.structured_noise = 1.2f;
  config.white_noise = 0.02f;
  config.max_translation = static_cast<int>(std::min<int64_t>(side / 5, 8));
  return config;
}

/// The exact per-layer config: reuse disabled, dense convolution. Layers
/// held at this setting contribute no approximation error, isolating the
/// layer under study.
inline ReuseConfig ExactReuseConfig() {
  return ReuseConfigBuilder().Enabled(false).BuildUnchecked();
}

}  // namespace adr::bench

#endif  // ADR_BENCH_BENCH_UTIL_H_
