// Ablation: the analytic complexity model (Eqs. 5, 12, 20) against the
// measured MAC counts of the implementation, across the {L, H} grid.
// Validates that the expected-time ordering Policy 3 relies on (Eqs. 22-23)
// holds for the real kernels.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/clustered_matmul.h"
#include "core/complexity_model.h"
#include "core/reuse_backward.h"
#include "util/csv_writer.h"
#include "util/rng.h"

namespace adr::bench {
namespace {

void Main() {
  std::printf("== Ablation: complexity model vs measured MACs ==\n");
  CsvWriter csv;
  const Status open = CsvWriter::Open(
      ResultsDir() + "/ablation_complexity.csv",
      {"L", "H", "rc", "fwd_model", "fwd_measured", "bwd_model",
       "bwd_measured"},
      &csv);
  ADR_CHECK(open.ok()) << open.ToString();

  // A synthetic unfolded matrix with strong row redundancy: prototypes +
  // noise, like a real activation map.
  const int64_t n = 4096, k = 400, m = 64;
  Rng rng(1);
  Tensor protos = Tensor::RandomGaussian(Shape({32, k}), &rng);
  Tensor x(Shape({n, k}));
  for (int64_t i = 0; i < n; ++i) {
    const int64_t p = static_cast<int64_t>(rng.NextBounded(32));
    for (int64_t j = 0; j < k; ++j) {
      x.at(i, j) = protos.at(p, j) + 0.05f * rng.NextGaussian();
    }
  }
  Tensor w = Tensor::RandomGaussian(Shape({k, m}), &rng);
  Tensor dy = Tensor::RandomGaussian(Shape({n, m}), &rng);

  PrintRow({"L", "H", "r_c", "fwd model", "fwd meas", "bwd model",
            "bwd meas"});
  for (int64_t l : {400L, 100L, 50L, 20L, 10L}) {
    for (int h : {4, 8, 16}) {
      auto families = BlockLshFamilies::Create(k, l, h, 99);
      ADR_CHECK(families.ok());
      const ForwardReuseResult forward = ClusteredMatmulForward(
          *families, x.data(), n, w, nullptr, n, nullptr);
      const BackwardReuseResult backward =
          ReuseBackward(forward.clustering, w, dy);

      ComplexityParams params;
      params.n = n;
      params.k = k;
      params.m = m;
      params.l = l;
      params.h = h;
      params.rc = forward.stats.avg_remaining_ratio;

      const double fwd_measured =
          (forward.stats.macs_hash + forward.stats.macs_gemm +
           forward.stats.macs_scatter) /
          forward.stats.macs_baseline;
      const double bwd_measured =
          backward.stats.macs / backward.stats.macs_baseline;
      const double fwd_model = ForwardRelativeCost(params);
      const double bwd_model = (WeightGradRelativeCost(params) +
                                InputDeltaRelativeCost(params)) /
                               2.0;
      PrintRow({std::to_string(l), std::to_string(h), Fmt(params.rc, 3),
                Fmt(fwd_model, 3), Fmt(fwd_measured, 3), Fmt(bwd_model, 3),
                Fmt(bwd_measured, 3)});
      csv.WriteRow(std::vector<double>{
          static_cast<double>(l), static_cast<double>(h), params.rc,
          fwd_model, fwd_measured, bwd_model, bwd_measured});
    }
  }
  csv.Close();
  std::printf("\nModel and measurement should agree closely (both count\n");
  std::printf("the same hash/GEMM/add terms); deviations indicate the\n");
  std::printf("implementation diverging from Eqs. 5/12/20.\n");
  std::printf("CSV written to %s/ablation_complexity.csv\n",
              ResultsDir().c_str());
}

}  // namespace
}  // namespace adr::bench

int main() {
  adr::bench::Main();
  return 0;
}
