// Figure 8 reproduction: the r_c-accuracy relationship of LSH clustering
// on conv2 of CifarNet, AlexNet and VGG-19 — one curve per sub-vector
// length L, one point per number of hash functions H.
//
// Paper claims checked (shape, not absolute values):
//  - LSH recovers the dense accuracy at a small r_c;
//  - at equal r_c, smaller L gives higher accuracy;
//  - for fixed L, larger H gives higher accuracy and larger r_c.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/parameter_schedule.h"
#include "core/reuse_conv2d.h"
#include "util/csv_writer.h"

namespace adr::bench {
namespace {

void RunSweep(const std::string& title, const TrainedContext& context,
              size_t layer_index, int64_t batch_size, int64_t eval_samples,
              const std::vector<int>& h_values, CsvWriter* csv) {
  Model twin = MakeReuseTwin(context, ExactReuseConfig());
  ReuseConv2d* layer = twin.reuse_layers[layer_index];
  const int64_t k = layer->unfolded_cols();
  // Curves: whole-row plus the divisors of K spread over its range, the
  // same presentation as the paper's figure.
  std::vector<int64_t> l_values = CandidateLValues(
      k, /*l_min=*/layer->config().kernel, /*l_max=*/k);
  if (l_values.size() > 7) {
    // Thin to ~7 curves, keeping the extremes.
    std::vector<int64_t> thinned;
    const double stride =
        static_cast<double>(l_values.size() - 1) / 6.0;
    for (int i = 0; i < 7; ++i) {
      thinned.push_back(l_values[static_cast<size_t>(i * stride)]);
    }
    thinned.back() = l_values.back();
    l_values = thinned;
  }

  std::printf("\n%s: K=%lld, dense accuracy %.3f\n", title.c_str(),
              static_cast<long long>(k), context.baseline_accuracy);
  PrintRow({"L", "H", "r_c", "accuracy"});
  for (int64_t l : l_values) {
    for (int h : h_values) {
      const ReuseConfig config = ReuseConfigBuilder()
                                     .SubVectorLength(l)
                                     .NumHashes(h)
                                     .BuildUnchecked();
      const Status status = layer->SetReuseConfig(config);
      ADR_CHECK(status.ok()) << status.ToString();
      layer->ResetStats();
      const double accuracy = EvaluateAccuracy(
          &twin.network, context.dataset, batch_size, eval_samples);
      const double rc = layer->stats().avg_remaining_ratio;
      PrintRow({std::to_string(l), std::to_string(h), Fmt(rc),
                Fmt(accuracy, 3)});
      if (csv != nullptr) {
        csv->WriteRow(std::vector<std::string>{
            title, std::to_string(l), std::to_string(h), Fmt(rc, 6),
            Fmt(accuracy, 6)});
      }
    }
  }
}

void Main() {
  std::printf("== Fig. 8: LSH r_c-accuracy sweep on conv2 ==\n");
  CsvWriter csv;
  const Status open =
      CsvWriter::Open(ResultsDir() + "/fig8_lsh_sweep.csv",
                      {"experiment", "L", "H", "rc", "accuracy"}, &csv);
  ADR_CHECK(open.ok()) << open.ToString();
  const std::vector<int> h_values = {2, 4, 8, 12, 16, 24};

  {
    TrainSpec spec;
    spec.model_name = "cifarnet";
    spec.model_options.num_classes = 10;
    spec.model_options.input_size = 16;
    spec.model_options.width = 0.25;
    spec.model_options.fc_width = 0.1;
    spec.data_config = HardTask(16, 512, 17);
    spec.train_steps = Scaled(300);
    spec.batch_size = 8;
    const TrainedContext context = TrainBaseline(spec);
    RunSweep("CifarNet conv2", context, 1, 8, Scaled(96), h_values, &csv);
  }
  {
    TrainSpec spec;
    spec.model_name = "alexnet";
    spec.model_options.num_classes = 10;
    spec.model_options.input_size = 115;
    spec.model_options.width = 0.125;
    spec.model_options.fc_width = 0.02;
    spec.data_config = HardTask(115, 256, 19);
    spec.data_config.structured_noise = 0.8f;
    spec.train_steps = Scaled(250);
    spec.batch_size = 4;
    spec.eval_samples = 64;
    const TrainedContext context = TrainBaseline(spec);
    RunSweep("AlexNet conv2", context, 1, 4, Scaled(64), h_values, &csv);
  }
  {
    TrainSpec spec;
    spec.model_name = "vgg19";
    spec.model_options.num_classes = 10;
    spec.model_options.input_size = 32;
    spec.model_options.width = 0.125;
    spec.model_options.fc_width = 0.05;
    // The 16-layer stack needs BN to train at this scale (DESIGN.md).
    spec.model_options.batch_norm = true;
    spec.data_config = HardTask(32, 512, 23);
    spec.data_config.structured_noise = 0.6f;
    spec.train_steps = Scaled(400);
    spec.batch_size = 8;
    spec.eval_samples = 64;
    const TrainedContext context = TrainBaseline(spec);
    RunSweep("VGG-19 conv2", context, 1, 8, Scaled(64), h_values, &csv);
  }

  csv.Close();
  std::printf("\nCSV written to %s/fig8_lsh_sweep.csv\n",
              ResultsDir().c_str());
}

}  // namespace
}  // namespace adr::bench

int main() {
  adr::bench::Main();
  return 0;
}
