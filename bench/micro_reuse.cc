// google-benchmark microbenchmarks of the reuse kernels themselves:
// forward clustering+GEMM, backward reuse vs exact backward, the cluster
// reuse cache, and exact dedup as the trivial baseline.
//
// Every benchmark takes the worker thread count as its first argument
// (the "threads" column); compare threads=1 vs threads=4 rows to read
// the parallel runtime's scaling.

#include <benchmark/benchmark.h>

#include <array>
#include <utility>
#include <vector>

#include "bench_json_main.h"
#include "clustering/exact_dedup.h"
#include "core/cluster_cache_reference.h"
#include "core/clustered_matmul.h"
#include "core/reuse_backward.h"
#include "tensor/gemm.h"
#include "tensor/tensor.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace adr {
namespace {

constexpr int64_t kThreadCounts[] = {1, 2, 4};

// Reads the leading "threads" argument and points the global pool at it.
void SetupThreads(const benchmark::State& state) {
  ThreadPool::SetGlobalThreads(static_cast<int>(state.range(0)));
}

void ThreadsOnlyArgs(benchmark::internal::Benchmark* bench) {
  bench->ArgNames({"threads"});
  for (const int64_t threads : kThreadCounts) bench->Args({threads});
}

void ThreadsLHArgs(benchmark::internal::Benchmark* bench,
                   std::initializer_list<std::array<int64_t, 2>> lh) {
  bench->ArgNames({"threads", "L", "H"});
  for (const auto& shape : lh) {
    for (const int64_t threads : kThreadCounts) {
      bench->Args({threads, shape[0], shape[1]});
    }
  }
}

// Redundant unfolded matrix: prototypes + small noise.
struct Workload {
  Tensor x;
  Tensor w;
  Tensor dy;
  static constexpr int64_t kN = 4096;
  static constexpr int64_t kK = 400;
  static constexpr int64_t kM = 64;

  Workload() {
    Rng rng(17);
    Tensor protos = Tensor::RandomGaussian(Shape({32, kK}), &rng);
    x = Tensor(Shape({kN, kK}));
    for (int64_t i = 0; i < kN; ++i) {
      const int64_t p = static_cast<int64_t>(rng.NextBounded(32));
      for (int64_t j = 0; j < kK; ++j) {
        x.at(i, j) = protos.at(p, j) + 0.05f * rng.NextGaussian();
      }
    }
    w = Tensor::RandomGaussian(Shape({kK, kM}), &rng);
    dy = Tensor::RandomGaussian(Shape({kN, kM}), &rng);
  }
};

Workload& SharedWorkload() {
  static Workload* workload = new Workload();
  return *workload;
}

void BM_ExactBackward(benchmark::State& state) {
  SetupThreads(state);
  Workload& wl = SharedWorkload();
  Tensor dw(Shape({Workload::kK, Workload::kM}));
  Tensor dx(Shape({Workload::kN, Workload::kK}));
  for (auto _ : state) {
    GemmTransA(wl.x.data(), wl.dy.data(), dw.data(), Workload::kK,
               Workload::kN, Workload::kM);
    GemmTransB(wl.dy.data(), wl.w.data(), dx.data(), Workload::kN,
               Workload::kM, Workload::kK);
    benchmark::DoNotOptimize(dw.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * Workload::kN *
                          Workload::kK * Workload::kM);
}
BENCHMARK(BM_ExactBackward)->Apply(ThreadsOnlyArgs);

void BM_ReuseBackward(benchmark::State& state) {
  SetupThreads(state);
  Workload& wl = SharedWorkload();
  const int64_t l = state.range(1);
  const int h = static_cast<int>(state.range(2));
  auto families = BlockLshFamilies::Create(Workload::kK, l, h, 5);
  if (!families.ok()) {
    state.SkipWithError(families.status().ToString().c_str());
    return;
  }
  const ReuseClustering clustering =
      ClusterSubVectors(*families, wl.x.data(), Workload::kN, Workload::kN);
  for (auto _ : state) {
    BackwardReuseResult result = ReuseBackward(clustering, wl.w, wl.dy);
    benchmark::DoNotOptimize(result.grad_weight.data());
  }
  // Items = the dense work replaced, so throughput shows effective gain.
  state.SetItemsProcessed(state.iterations() * 2 * Workload::kN *
                          Workload::kK * Workload::kM);
}
BENCHMARK(BM_ReuseBackward)->Apply([](benchmark::internal::Benchmark* b) {
  ThreadsLHArgs(b, {{100, 8}, {25, 12}});
});

void BM_ClusterOnly(benchmark::State& state) {
  SetupThreads(state);
  Workload& wl = SharedWorkload();
  const int64_t l = state.range(1);
  const int h = static_cast<int>(state.range(2));
  auto families = BlockLshFamilies::Create(Workload::kK, l, h, 5);
  if (!families.ok()) {
    state.SkipWithError(families.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    ReuseClustering clustering = ClusterSubVectors(
        *families, wl.x.data(), Workload::kN, Workload::kN);
    benchmark::DoNotOptimize(clustering.blocks.data());
  }
  state.SetItemsProcessed(state.iterations() * Workload::kN * Workload::kK *
                          h);
}
BENCHMARK(BM_ClusterOnly)->Apply([](benchmark::internal::Benchmark* b) {
  ThreadsLHArgs(b, {{400, 8}, {25, 12}});
});

void BM_ClusterReuseCacheWarm(benchmark::State& state) {
  SetupThreads(state);
  Workload& wl = SharedWorkload();
  auto families = BlockLshFamilies::Create(Workload::kK, 100, 10, 5);
  if (!families.ok()) {
    state.SkipWithError(families.status().ToString().c_str());
    return;
  }
  ClusterReuseCache cache;
  // Warm the cache once; steady state then reuses everything.
  ClusteredMatmulForward(*families, wl.x.data(), Workload::kN, wl.w,
                         nullptr, Workload::kN, &cache);
  for (auto _ : state) {
    ForwardReuseResult result = ClusteredMatmulForward(
        *families, wl.x.data(), Workload::kN, wl.w, nullptr, Workload::kN,
        &cache);
    benchmark::DoNotOptimize(result.y_rows.data());
  }
  state.SetItemsProcessed(state.iterations() * Workload::kN * Workload::kK *
                          Workload::kM);
}
BENCHMARK(BM_ClusterReuseCacheWarm)->Apply(ThreadsOnlyArgs);

// The same steady-state forward with CR off: the cost of clustering +
// full centroid GEMM every batch. The gap to BM_ClusterReuseCacheWarm is
// what the warm cache saves.
void BM_ClusteredForwardCROff(benchmark::State& state) {
  SetupThreads(state);
  Workload& wl = SharedWorkload();
  auto families = BlockLshFamilies::Create(Workload::kK, 100, 10, 5);
  if (!families.ok()) {
    state.SkipWithError(families.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    ForwardReuseResult result = ClusteredMatmulForward(
        *families, wl.x.data(), Workload::kN, wl.w, nullptr, Workload::kN,
        nullptr);
    benchmark::DoNotOptimize(result.y_rows.data());
  }
  state.SetItemsProcessed(state.iterations() * Workload::kN * Workload::kK *
                          Workload::kM);
}
BENCHMARK(BM_ClusteredForwardCROff)->Apply(ThreadsOnlyArgs);

// --- cluster-cache microbenches ------------------------------------------
// One block, kCacheResident resident entries (well past 10k so open
// addressing is measured at realistic occupancy), kCacheQueries all-hit
// lookups per iteration; items/sec = lookups/sec.

constexpr int64_t kCacheResident = 16384;
constexpr int64_t kCacheQueries = 4096;
constexpr int64_t kCacheRepLen = 25;
constexpr int64_t kCacheOutLen = 64;

LshSignature CacheBenchSignature(int64_t i) {
  LshSignature sig;
  sig.words[0] = static_cast<uint64_t>(i) * 0x9e3779b97f4a7c15ULL + 1;
  sig.words[1] = static_cast<uint64_t>(i);
  return sig;
}

std::vector<LshSignature>& CacheBenchQueries() {
  static auto* queries = [] {
    auto* q = new std::vector<LshSignature>(
        static_cast<size_t>(kCacheQueries));
    Rng rng(23);
    for (auto& sig : *q) {
      sig = CacheBenchSignature(
          static_cast<int64_t>(rng.NextBounded(kCacheResident)));
    }
    return q;
  }();
  return *queries;
}

// Batched lookup against the slab-backed cache. Compare against
// BM_ReferenceCacheLookup below — the acceptance bar for the open
// addressing + batched API is >= 3x lower time per lookup at >= 10k
// resident entries.
void BM_ClusterCacheLookup(benchmark::State& state) {
  SetupThreads(state);
  ClusterReuseCache cache;
  std::vector<float> rep(kCacheRepLen, 1.0f);
  std::vector<float> out(kCacheOutLen, 2.0f);
  for (int64_t i = 0; i < kCacheResident; ++i) {
    cache.Insert(0, CacheBenchSignature(i), rep.data(), kCacheRepLen,
                 out.data(), kCacheOutLen);
  }
  const std::vector<LshSignature>& queries = CacheBenchQueries();
  std::vector<int32_t> entries(static_cast<size_t>(kCacheQueries));
  for (auto _ : state) {
    const int64_t hits = cache.FindBatch(0, queries.data(), kCacheQueries,
                                         entries.data());
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * kCacheQueries);
}
BENCHMARK(BM_ClusterCacheLookup)->Apply(ThreadsOnlyArgs);

// The original map-based cache on the identical workload: one
// unordered_map probe (hash + node chase) per sequential Find call.
void BM_ReferenceCacheLookup(benchmark::State& state) {
  SetupThreads(state);
  ReferenceClusterCache cache;
  for (int64_t i = 0; i < kCacheResident; ++i) {
    ReferenceClusterCache::Entry entry;
    entry.representative.assign(static_cast<size_t>(kCacheRepLen), 1.0f);
    entry.output.assign(static_cast<size_t>(kCacheOutLen), 2.0f);
    cache.Insert(0, CacheBenchSignature(i), std::move(entry));
  }
  const std::vector<LshSignature>& queries = CacheBenchQueries();
  for (auto _ : state) {
    int64_t hits = 0;
    for (const LshSignature& sig : queries) {
      if (cache.Find(0, sig) != nullptr) ++hits;
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations() * kCacheQueries);
}
BENCHMARK(BM_ReferenceCacheLookup)->Apply(ThreadsOnlyArgs);

// Steady-state insert under an entry budget: every insert of a fresh
// signature recycles a second-chance-evicted slot (zero allocations —
// the free list and tables reached capacity during the warm-up).
void BM_ClusterCacheInsert(benchmark::State& state) {
  SetupThreads(state);
  ClusterReuseCache cache;
  cache.set_max_entries(kCacheResident);
  std::vector<float> rep(kCacheRepLen, 1.0f);
  std::vector<float> out(kCacheOutLen, 2.0f);
  int64_t next = 0;
  for (; next < kCacheResident + 1024; ++next) {
    cache.Insert(0, CacheBenchSignature(next), rep.data(), kCacheRepLen,
                 out.data(), kCacheOutLen);
  }
  for (auto _ : state) {
    cache.Insert(0, CacheBenchSignature(next++), rep.data(), kCacheRepLen,
                 out.data(), kCacheOutLen);
  }
  state.counters["alloc_events"] =
      static_cast<double>(cache.alloc_events());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClusterCacheInsert)->Apply(ThreadsOnlyArgs);

// Conv-shaped workload for the fused-vs-materialized comparison: a
// spatially periodic image (period 4) whose interior im2col rows repeat,
// scaled per image (signatures are scale-invariant, so clusters recur).
// K = 16*5*5 = 400 matches the flat Workload, N = 8*16*16 = 2048.
struct ConvWorkload {
  ConvGeometry geo;
  Tensor input;
  Tensor w;
  static constexpr int64_t kM = 64;

  ConvWorkload() {
    geo.batch = 8;
    geo.in_channels = 16;
    geo.in_height = 16;
    geo.in_width = 16;
    geo.kernel_h = 5;
    geo.kernel_w = 5;
    geo.stride = 1;
    geo.pad = 2;
    Rng rng(19);
    Tensor pattern = Tensor::RandomGaussian(
        Shape({geo.in_channels, 4, 4}), &rng);
    input = Tensor(Shape({geo.batch, geo.in_channels, geo.in_height,
                          geo.in_width}));
    float* dst = input.data();
    const float* pat = pattern.data();
    for (int64_t n = 0; n < geo.batch; ++n) {
      const float scale = 0.5f + 0.25f * static_cast<float>(n);
      for (int64_t c = 0; c < geo.in_channels; ++c) {
        for (int64_t y = 0; y < geo.in_height; ++y) {
          for (int64_t x = 0; x < geo.in_width; ++x) {
            *dst++ = scale * pat[(c * 4 + y % 4) * 4 + x % 4];
          }
        }
      }
    }
    w = Tensor::RandomGaussian(Shape({geo.unfolded_cols(), kM}), &rng);
  }
};

ConvWorkload& SharedConvWorkload() {
  static ConvWorkload* workload = new ConvWorkload();
  return *workload;
}

// Materialized pipeline: im2col the whole batch, then cluster + gather
// GEMM — the pre-fusion data flow, on the same arena-backed core.
void BM_MaterializedClusteredForward(benchmark::State& state) {
  SetupThreads(state);
  ConvWorkload& wl = SharedConvWorkload();
  const int64_t l = state.range(1);
  const int h = static_cast<int>(state.range(2));
  const int64_t n = wl.geo.unfolded_rows();
  const int64_t k = wl.geo.unfolded_cols();
  auto families = BlockLshFamilies::Create(k, l, h, 5);
  if (!families.ok()) {
    state.SkipWithError(families.status().ToString().c_str());
    return;
  }
  WorkspaceArena arena;
  for (auto _ : state) {
    arena.Reset();
    float* cols = arena.AllocFloats(n * k);
    Im2Col(wl.geo, wl.input.data(), cols);
    float* y = arena.AllocFloats(n * ConvWorkload::kM);
    ReuseClustering clustering;
    ForwardReuseStats stats;
    ClusteredMatmulForwardInto(*families, cols, n, wl.w, nullptr, n,
                               nullptr, &arena, y, &clustering, &stats);
    benchmark::DoNotOptimize(y);
  }
  state.counters["peak_workspace_bytes"] =
      static_cast<double>(arena.reserved_bytes());
  state.SetItemsProcessed(state.iterations() * n * k * ConvWorkload::kM);
}
BENCHMARK(BM_MaterializedClusteredForward)
    ->Apply([](benchmark::internal::Benchmark* b) {
      ThreadsLHArgs(b, {{100, 8}, {25, 12}});
    });

// Fused tiled pipeline on the identical workload: im2col rows stream
// straight into hashing, the N x K matrix never exists. Same bits out
// (see fused_forward_test), far smaller peak_workspace_bytes.
void BM_FusedClusteredForward(benchmark::State& state) {
  SetupThreads(state);
  ConvWorkload& wl = SharedConvWorkload();
  const int64_t l = state.range(1);
  const int h = static_cast<int>(state.range(2));
  const int64_t n = wl.geo.unfolded_rows();
  const int64_t k = wl.geo.unfolded_cols();
  auto families = BlockLshFamilies::Create(k, l, h, 5);
  if (!families.ok()) {
    state.SkipWithError(families.status().ToString().c_str());
    return;
  }
  WorkspaceArena arena;
  StreamingSubVectorClusterer clusterer;
  for (auto _ : state) {
    arena.Reset();
    float* y = arena.AllocFloats(n * ConvWorkload::kM);
    ReuseClustering clustering;
    ForwardReuseStats stats;
    FusedClusteredForward(*families, wl.geo, wl.input.data(), wl.w,
                          nullptr, n, nullptr, &arena, &clusterer, y,
                          &clustering, &stats);
    benchmark::DoNotOptimize(y);
    clusterer.Recycle(std::move(clustering));
  }
  state.counters["peak_workspace_bytes"] =
      static_cast<double>(arena.reserved_bytes());
  state.SetItemsProcessed(state.iterations() * n * k * ConvWorkload::kM);
}
BENCHMARK(BM_FusedClusteredForward)
    ->Apply([](benchmark::internal::Benchmark* b) {
      ThreadsLHArgs(b, {{100, 8}, {25, 12}});
    });

void BM_ExactDedup(benchmark::State& state) {
  SetupThreads(state);
  Workload& wl = SharedWorkload();
  for (auto _ : state) {
    Clustering clustering =
        ExactDedupRows(wl.x.data(), Workload::kN, Workload::kK,
                       Workload::kK);
    benchmark::DoNotOptimize(clustering.assignment.data());
  }
  state.SetItemsProcessed(state.iterations() * Workload::kN * Workload::kK);
}
BENCHMARK(BM_ExactDedup)->Apply(ThreadsOnlyArgs);

}  // namespace
}  // namespace adr

int main(int argc, char** argv) {
  return adr::bench::RunBenchmarksWithJson(argc, argv, "micro_reuse");
}
