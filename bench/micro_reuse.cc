// google-benchmark microbenchmarks of the reuse kernels themselves:
// forward clustering+GEMM, backward reuse vs exact backward, the cluster
// reuse cache, and exact dedup as the trivial baseline.
//
// Every benchmark takes the worker thread count as its first argument
// (the "threads" column); compare threads=1 vs threads=4 rows to read
// the parallel runtime's scaling.

#include <benchmark/benchmark.h>

#include <array>

#include "bench_json_main.h"
#include "clustering/exact_dedup.h"
#include "core/clustered_matmul.h"
#include "core/reuse_backward.h"
#include "tensor/gemm.h"
#include "tensor/tensor.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace adr {
namespace {

constexpr int64_t kThreadCounts[] = {1, 2, 4};

// Reads the leading "threads" argument and points the global pool at it.
void SetupThreads(const benchmark::State& state) {
  ThreadPool::SetGlobalThreads(static_cast<int>(state.range(0)));
}

void ThreadsOnlyArgs(benchmark::internal::Benchmark* bench) {
  bench->ArgNames({"threads"});
  for (const int64_t threads : kThreadCounts) bench->Args({threads});
}

void ThreadsLHArgs(benchmark::internal::Benchmark* bench,
                   std::initializer_list<std::array<int64_t, 2>> lh) {
  bench->ArgNames({"threads", "L", "H"});
  for (const auto& shape : lh) {
    for (const int64_t threads : kThreadCounts) {
      bench->Args({threads, shape[0], shape[1]});
    }
  }
}

// Redundant unfolded matrix: prototypes + small noise.
struct Workload {
  Tensor x;
  Tensor w;
  Tensor dy;
  static constexpr int64_t kN = 4096;
  static constexpr int64_t kK = 400;
  static constexpr int64_t kM = 64;

  Workload() {
    Rng rng(17);
    Tensor protos = Tensor::RandomGaussian(Shape({32, kK}), &rng);
    x = Tensor(Shape({kN, kK}));
    for (int64_t i = 0; i < kN; ++i) {
      const int64_t p = static_cast<int64_t>(rng.NextBounded(32));
      for (int64_t j = 0; j < kK; ++j) {
        x.at(i, j) = protos.at(p, j) + 0.05f * rng.NextGaussian();
      }
    }
    w = Tensor::RandomGaussian(Shape({kK, kM}), &rng);
    dy = Tensor::RandomGaussian(Shape({kN, kM}), &rng);
  }
};

Workload& SharedWorkload() {
  static Workload* workload = new Workload();
  return *workload;
}

void BM_ExactBackward(benchmark::State& state) {
  SetupThreads(state);
  Workload& wl = SharedWorkload();
  Tensor dw(Shape({Workload::kK, Workload::kM}));
  Tensor dx(Shape({Workload::kN, Workload::kK}));
  for (auto _ : state) {
    GemmTransA(wl.x.data(), wl.dy.data(), dw.data(), Workload::kK,
               Workload::kN, Workload::kM);
    GemmTransB(wl.dy.data(), wl.w.data(), dx.data(), Workload::kN,
               Workload::kM, Workload::kK);
    benchmark::DoNotOptimize(dw.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * Workload::kN *
                          Workload::kK * Workload::kM);
}
BENCHMARK(BM_ExactBackward)->Apply(ThreadsOnlyArgs);

void BM_ReuseBackward(benchmark::State& state) {
  SetupThreads(state);
  Workload& wl = SharedWorkload();
  const int64_t l = state.range(1);
  const int h = static_cast<int>(state.range(2));
  auto families = BlockLshFamilies::Create(Workload::kK, l, h, 5);
  if (!families.ok()) {
    state.SkipWithError(families.status().ToString().c_str());
    return;
  }
  const ReuseClustering clustering =
      ClusterSubVectors(*families, wl.x.data(), Workload::kN, Workload::kN);
  for (auto _ : state) {
    BackwardReuseResult result = ReuseBackward(clustering, wl.w, wl.dy);
    benchmark::DoNotOptimize(result.grad_weight.data());
  }
  // Items = the dense work replaced, so throughput shows effective gain.
  state.SetItemsProcessed(state.iterations() * 2 * Workload::kN *
                          Workload::kK * Workload::kM);
}
BENCHMARK(BM_ReuseBackward)->Apply([](benchmark::internal::Benchmark* b) {
  ThreadsLHArgs(b, {{100, 8}, {25, 12}});
});

void BM_ClusterOnly(benchmark::State& state) {
  SetupThreads(state);
  Workload& wl = SharedWorkload();
  const int64_t l = state.range(1);
  const int h = static_cast<int>(state.range(2));
  auto families = BlockLshFamilies::Create(Workload::kK, l, h, 5);
  if (!families.ok()) {
    state.SkipWithError(families.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    ReuseClustering clustering = ClusterSubVectors(
        *families, wl.x.data(), Workload::kN, Workload::kN);
    benchmark::DoNotOptimize(clustering.blocks.data());
  }
  state.SetItemsProcessed(state.iterations() * Workload::kN * Workload::kK *
                          h);
}
BENCHMARK(BM_ClusterOnly)->Apply([](benchmark::internal::Benchmark* b) {
  ThreadsLHArgs(b, {{400, 8}, {25, 12}});
});

void BM_ClusterReuseCacheWarm(benchmark::State& state) {
  SetupThreads(state);
  Workload& wl = SharedWorkload();
  auto families = BlockLshFamilies::Create(Workload::kK, 100, 10, 5);
  if (!families.ok()) {
    state.SkipWithError(families.status().ToString().c_str());
    return;
  }
  ClusterReuseCache cache;
  // Warm the cache once; steady state then reuses everything.
  ClusteredMatmulForward(*families, wl.x.data(), Workload::kN, wl.w,
                         nullptr, Workload::kN, &cache);
  for (auto _ : state) {
    ForwardReuseResult result = ClusteredMatmulForward(
        *families, wl.x.data(), Workload::kN, wl.w, nullptr, Workload::kN,
        &cache);
    benchmark::DoNotOptimize(result.y_rows.data());
  }
  state.SetItemsProcessed(state.iterations() * Workload::kN * Workload::kK *
                          Workload::kM);
}
BENCHMARK(BM_ClusterReuseCacheWarm)->Apply(ThreadsOnlyArgs);

void BM_ExactDedup(benchmark::State& state) {
  SetupThreads(state);
  Workload& wl = SharedWorkload();
  for (auto _ : state) {
    Clustering clustering =
        ExactDedupRows(wl.x.data(), Workload::kN, Workload::kK,
                       Workload::kK);
    benchmark::DoNotOptimize(clustering.assignment.data());
  }
  state.SetItemsProcessed(state.iterations() * Workload::kN * Workload::kK);
}
BENCHMARK(BM_ExactDedup)->Apply(ThreadsOnlyArgs);

}  // namespace
}  // namespace adr

int main(int argc, char** argv) {
  return adr::bench::RunBenchmarksWithJson(argc, argv, "micro_reuse");
}
