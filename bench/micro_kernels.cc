// google-benchmark microbenchmarks of the substrate kernels the reuse
// savings are measured against: GEMM, im2col, LSH hashing, and the full
// clustered matmul vs its dense equivalent.

#include <benchmark/benchmark.h>

#include "core/clustered_matmul.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace adr {
namespace {

void BM_Gemm(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t k = state.range(1);
  const int64_t m = state.range(2);
  Rng rng(1);
  Tensor a = Tensor::RandomGaussian(Shape({n, k}), &rng);
  Tensor b = Tensor::RandomGaussian(Shape({k, m}), &rng);
  Tensor c(Shape({n, m}));
  for (auto _ : state) {
    Gemm(a.data(), b.data(), c.data(), n, k, m);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * k * m);
}
BENCHMARK(BM_Gemm)
    ->Args({256, 256, 256})
    ->Args({1024, 400, 64})
    ->Args({4096, 75, 64});

void BM_GemmTransA(benchmark::State& state) {
  const int64_t n = state.range(0), k = state.range(1), m = state.range(2);
  Rng rng(2);
  Tensor a = Tensor::RandomGaussian(Shape({n, k}), &rng);   // n x k
  Tensor dy = Tensor::RandomGaussian(Shape({n, m}), &rng);  // n x m
  Tensor c(Shape({k, m}));
  for (auto _ : state) {
    GemmTransA(a.data(), dy.data(), c.data(), k, n, m);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * k * m);
}
BENCHMARK(BM_GemmTransA)->Args({1024, 400, 64});

void BM_Im2Col(benchmark::State& state) {
  ConvGeometry geo;
  geo.batch = 8;
  geo.in_channels = 16;
  geo.in_height = 32;
  geo.in_width = 32;
  geo.kernel_h = 5;
  geo.kernel_w = 5;
  geo.stride = 1;
  geo.pad = 2;
  Rng rng(3);
  Tensor input = Tensor::RandomGaussian(Shape({8, 16, 32, 32}), &rng);
  Tensor cols(Shape({geo.unfolded_rows(), geo.unfolded_cols()}));
  for (auto _ : state) {
    Im2Col(geo, input, &cols);
    benchmark::DoNotOptimize(cols.data());
  }
  state.SetItemsProcessed(state.iterations() * cols.num_elements());
}
BENCHMARK(BM_Im2Col);

void BM_LshHash(benchmark::State& state) {
  const int64_t rows = 4096;
  const int64_t dim = state.range(0);
  const int num_hashes = static_cast<int>(state.range(1));
  LshFamily family;
  const Status status = LshFamily::Create(dim, num_hashes, 7, &family);
  if (!status.ok()) {
    state.SkipWithError(status.ToString().c_str());
    return;
  }
  Rng rng(4);
  Tensor data = Tensor::RandomGaussian(Shape({rows, dim}), &rng);
  std::vector<LshSignature> sigs;
  for (auto _ : state) {
    family.HashRows(data.data(), rows, dim, &sigs);
    benchmark::DoNotOptimize(sigs.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * dim * num_hashes);
}
BENCHMARK(BM_LshHash)->Args({400, 8})->Args({400, 16})->Args({25, 8});

// Dense vs clustered forward on a redundant matrix: the headline kernel
// comparison. Items processed counts the *baseline* work so the reported
// throughput difference is the effective speedup.
void SetupRedundant(Tensor* x, Tensor* w, int64_t n, int64_t k, int64_t m) {
  Rng rng(5);
  Tensor protos = Tensor::RandomGaussian(Shape({16, k}), &rng);
  *x = Tensor(Shape({n, k}));
  for (int64_t i = 0; i < n; ++i) {
    const int64_t p = static_cast<int64_t>(rng.NextBounded(16));
    for (int64_t j = 0; j < k; ++j) {
      x->at(i, j) = protos.at(p, j) + 0.05f * rng.NextGaussian();
    }
  }
  *w = Tensor::RandomGaussian(Shape({k, m}), &rng);
}

void BM_DenseForward(benchmark::State& state) {
  const int64_t n = 4096, k = 400, m = 64;
  Tensor x, w;
  SetupRedundant(&x, &w, n, k, m);
  Tensor y(Shape({n, m}));
  for (auto _ : state) {
    Gemm(x.data(), w.data(), y.data(), n, k, m);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n * k * m);
}
BENCHMARK(BM_DenseForward);

void BM_ClusteredForward(benchmark::State& state) {
  const int64_t n = 4096, k = 400, m = 64;
  const int64_t l = state.range(0);
  const int h = static_cast<int>(state.range(1));
  Tensor x, w;
  SetupRedundant(&x, &w, n, k, m);
  auto families = BlockLshFamilies::Create(k, l, h, 11);
  if (!families.ok()) {
    state.SkipWithError(families.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    ForwardReuseResult result =
        ClusteredMatmulForward(*families, x.data(), n, w, nullptr, n,
                               nullptr);
    benchmark::DoNotOptimize(result.y_rows.data());
  }
  state.SetItemsProcessed(state.iterations() * n * k * m);
}
BENCHMARK(BM_ClusteredForward)
    ->Args({400, 8})
    ->Args({100, 8})
    ->Args({25, 12});

}  // namespace
}  // namespace adr

BENCHMARK_MAIN();
