// google-benchmark microbenchmarks of the substrate kernels the reuse
// savings are measured against: GEMM, im2col, LSH hashing, and the full
// clustered matmul vs its dense equivalent.
//
// Every benchmark takes the worker thread count as its first argument
// (the "threads" column), so scaling of the parallel runtime is read
// straight off the report: compare threads=1 vs threads=4 rows.

#include <benchmark/benchmark.h>

#include <array>
#include <cstring>

#include "bench_json_main.h"
#include "clustering/normalize.h"
#include "core/clustered_matmul.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "tensor/tensor.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace adr {
namespace {

constexpr int64_t kThreadCounts[] = {1, 2, 4};

// Reads the leading "threads" argument and points the global pool at it.
int64_t SetupThreads(const benchmark::State& state) {
  const int64_t threads = state.range(0);
  ThreadPool::SetGlobalThreads(static_cast<int>(threads));
  return threads;
}

void BM_Gemm(benchmark::State& state) {
  SetupThreads(state);
  const int64_t n = state.range(1);
  const int64_t k = state.range(2);
  const int64_t m = state.range(3);
  Rng rng(1);
  Tensor a = Tensor::RandomGaussian(Shape({n, k}), &rng);
  Tensor b = Tensor::RandomGaussian(Shape({k, m}), &rng);
  Tensor c(Shape({n, m}));
  for (auto _ : state) {
    Gemm(a.data(), b.data(), c.data(), n, k, m);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * k * m);
}
void GemmArgs(benchmark::internal::Benchmark* bench) {
  bench->ArgNames({"threads", "n", "k", "m"});
  for (const auto shape : {std::array<int64_t, 3>{256, 256, 256},
                           std::array<int64_t, 3>{1024, 400, 64},
                           std::array<int64_t, 3>{4096, 75, 64}}) {
    for (const int64_t threads : kThreadCounts) {
      bench->Args({threads, shape[0], shape[1], shape[2]});
    }
  }
}
BENCHMARK(BM_Gemm)->Apply(GemmArgs);

void BM_GemmTransA(benchmark::State& state) {
  SetupThreads(state);
  const int64_t n = state.range(1), k = state.range(2), m = state.range(3);
  Rng rng(2);
  Tensor a = Tensor::RandomGaussian(Shape({n, k}), &rng);   // n x k
  Tensor dy = Tensor::RandomGaussian(Shape({n, m}), &rng);  // n x m
  Tensor c(Shape({k, m}));
  for (auto _ : state) {
    GemmTransA(a.data(), dy.data(), c.data(), k, n, m);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * k * m);
}
void GemmTransAArgs(benchmark::internal::Benchmark* bench) {
  bench->ArgNames({"threads", "n", "k", "m"});
  for (const int64_t threads : kThreadCounts) {
    bench->Args({threads, 1024, 400, 64});
  }
}
BENCHMARK(BM_GemmTransA)->Apply(GemmTransAArgs);

void BM_GemmTransB(benchmark::State& state) {
  SetupThreads(state);
  const int64_t n = state.range(1), k = state.range(2), m = state.range(3);
  Rng rng(6);
  Tensor dy = Tensor::RandomGaussian(Shape({n, m}), &rng);  // n x m
  Tensor w = Tensor::RandomGaussian(Shape({k, m}), &rng);   // k x m
  Tensor c(Shape({n, k}));
  for (auto _ : state) {
    GemmTransB(dy.data(), w.data(), c.data(), n, m, k);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * k * m);
}
void GemmTransBArgs(benchmark::internal::Benchmark* bench) {
  bench->ArgNames({"threads", "n", "k", "m"});
  for (const int64_t threads : kThreadCounts) {
    bench->Args({threads, 1024, 400, 64});
  }
}
BENCHMARK(BM_GemmTransB)->Apply(GemmTransBArgs);

void BM_NormalizeRows(benchmark::State& state) {
  SetupThreads(state);
  const int64_t rows = 4096, dim = state.range(1);
  Rng rng(7);
  Tensor data = Tensor::RandomGaussian(Shape({rows, dim}), &rng);
  Tensor scratch = data;
  for (auto _ : state) {
    // Copy + normalize per iteration so the kernel always sees
    // unnormalized input (the copy is a fraction of the kernel cost).
    std::memcpy(scratch.data(), data.data(),
                static_cast<size_t>(rows * dim) * sizeof(float));
    NormalizeRowsInPlace(scratch.data(), rows, dim, dim);
    benchmark::DoNotOptimize(scratch.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * dim);
}
void NormalizeRowsArgs(benchmark::internal::Benchmark* bench) {
  bench->ArgNames({"threads", "dim"});
  for (const int64_t dim : {int64_t{400}, int64_t{25}}) {
    for (const int64_t threads : kThreadCounts) {
      bench->Args({threads, dim});
    }
  }
}
BENCHMARK(BM_NormalizeRows)->Apply(NormalizeRowsArgs);

void BM_Im2Col(benchmark::State& state) {
  SetupThreads(state);
  ConvGeometry geo;
  geo.batch = 8;
  geo.in_channels = 16;
  geo.in_height = 32;
  geo.in_width = 32;
  geo.kernel_h = 5;
  geo.kernel_w = 5;
  geo.stride = 1;
  geo.pad = 2;
  Rng rng(3);
  Tensor input = Tensor::RandomGaussian(Shape({8, 16, 32, 32}), &rng);
  Tensor cols(Shape({geo.unfolded_rows(), geo.unfolded_cols()}));
  for (auto _ : state) {
    Im2Col(geo, input, &cols);
    benchmark::DoNotOptimize(cols.data());
  }
  state.SetItemsProcessed(state.iterations() * cols.num_elements());
}
void ThreadsOnlyArgs(benchmark::internal::Benchmark* bench) {
  bench->ArgNames({"threads"});
  for (const int64_t threads : kThreadCounts) bench->Args({threads});
}
BENCHMARK(BM_Im2Col)->Apply(ThreadsOnlyArgs);

void BM_LshHash(benchmark::State& state) {
  SetupThreads(state);
  const int64_t rows = 4096;
  const int64_t dim = state.range(1);
  const int num_hashes = static_cast<int>(state.range(2));
  LshFamily family;
  const Status status = LshFamily::Create(dim, num_hashes, 7, &family);
  if (!status.ok()) {
    state.SkipWithError(status.ToString().c_str());
    return;
  }
  Rng rng(4);
  Tensor data = Tensor::RandomGaussian(Shape({rows, dim}), &rng);
  std::vector<LshSignature> sigs;
  for (auto _ : state) {
    family.HashRows(data.data(), rows, dim, &sigs);
    benchmark::DoNotOptimize(sigs.data());
  }
  state.SetItemsProcessed(state.iterations() * rows * dim * num_hashes);
}
void LshHashArgs(benchmark::internal::Benchmark* bench) {
  bench->ArgNames({"threads", "dim", "h"});
  for (const auto shape :
       {std::array<int64_t, 2>{400, 8}, std::array<int64_t, 2>{400, 16},
        std::array<int64_t, 2>{25, 8}}) {
    for (const int64_t threads : kThreadCounts) {
      bench->Args({threads, shape[0], shape[1]});
    }
  }
}
BENCHMARK(BM_LshHash)->Apply(LshHashArgs);

// Dense vs clustered forward on a redundant matrix: the headline kernel
// comparison. Items processed counts the *baseline* work so the reported
// throughput difference is the effective speedup.
void SetupRedundant(Tensor* x, Tensor* w, int64_t n, int64_t k, int64_t m) {
  Rng rng(5);
  Tensor protos = Tensor::RandomGaussian(Shape({16, k}), &rng);
  *x = Tensor(Shape({n, k}));
  for (int64_t i = 0; i < n; ++i) {
    const int64_t p = static_cast<int64_t>(rng.NextBounded(16));
    for (int64_t j = 0; j < k; ++j) {
      x->at(i, j) = protos.at(p, j) + 0.05f * rng.NextGaussian();
    }
  }
  *w = Tensor::RandomGaussian(Shape({k, m}), &rng);
}

void BM_DenseForward(benchmark::State& state) {
  SetupThreads(state);
  const int64_t n = 4096, k = 400, m = 64;
  Tensor x, w;
  SetupRedundant(&x, &w, n, k, m);
  Tensor y(Shape({n, m}));
  for (auto _ : state) {
    Gemm(x.data(), w.data(), y.data(), n, k, m);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n * k * m);
}
BENCHMARK(BM_DenseForward)->Apply(ThreadsOnlyArgs);

void BM_ClusteredForward(benchmark::State& state) {
  SetupThreads(state);
  const int64_t n = 4096, k = 400, m = 64;
  const int64_t l = state.range(1);
  const int h = static_cast<int>(state.range(2));
  Tensor x, w;
  SetupRedundant(&x, &w, n, k, m);
  auto families = BlockLshFamilies::Create(k, l, h, 11);
  if (!families.ok()) {
    state.SkipWithError(families.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    ForwardReuseResult result =
        ClusteredMatmulForward(*families, x.data(), n, w, nullptr, n,
                               nullptr);
    benchmark::DoNotOptimize(result.y_rows.data());
  }
  state.SetItemsProcessed(state.iterations() * n * k * m);
}
void ClusteredForwardArgs(benchmark::internal::Benchmark* bench) {
  bench->ArgNames({"threads", "L", "H"});
  for (const auto shape :
       {std::array<int64_t, 2>{400, 8}, std::array<int64_t, 2>{100, 8},
        std::array<int64_t, 2>{25, 12}}) {
    for (const int64_t threads : kThreadCounts) {
      bench->Args({threads, shape[0], shape[1]});
    }
  }
}
BENCHMARK(BM_ClusteredForward)->Apply(ClusteredForwardArgs);

}  // namespace
}  // namespace adr

int main(int argc, char** argv) {
  return adr::bench::RunBenchmarksWithJson(argc, argv, "micro_kernels");
}
