// Table III reproduction: inference accuracy with cluster reuse off vs on
// (CR=0 vs CR=1) for each CifarNet conv layer at its best {L, H}, plus the
// Section VI-B2 claim that the per-batch reuse rate R climbs toward ~1
// within ~20 batches.
//
// Paper reference (full scale): conv1 {L=5, H=15}: 0.813 -> 0.799;
// conv2 {L=10, H=10}: 0.816 -> 0.784 — CR trades a little accuracy for
// removing most computation on later batches.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/reuse_conv2d.h"
#include "util/bench_json.h"
#include "util/csv_writer.h"

namespace adr::bench {
namespace {

struct LayerSetting {
  size_t layer_index;
  std::string name;
  int64_t l;
  int h;
};

double EvaluateWithConfig(const TrainedContext& context,
                          const LayerSetting& setting, bool cluster_reuse,
                          int64_t batch_size, int64_t eval_samples,
                          double* reuse_rate_out) {
  Model twin = MakeReuseTwin(context, ExactReuseConfig());
  ReuseConv2d* layer = twin.reuse_layers[setting.layer_index];
  const ReuseConfig config = ReuseConfigBuilder()
                                 .SubVectorLength(setting.l)
                                 .NumHashes(setting.h)
                                 .ClusterReuse(cluster_reuse)
                                 .BuildUnchecked();
  const Status status = layer->SetReuseConfig(config);
  ADR_CHECK(status.ok()) << status.ToString();
  const double accuracy = EvaluateAccuracy(&twin.network, context.dataset,
                                           batch_size, eval_samples);
  if (reuse_rate_out != nullptr) {
    *reuse_rate_out =
        layer->cache() != nullptr ? layer->cache()->ReuseRate() : 0.0;
  }
  return accuracy;
}

void Main() {
  std::printf("== Table III: cluster reuse (CR) on CifarNet ==\n");
  CsvWriter csv;
  Status open = CsvWriter::Open(
      ResultsDir() + "/table3_cluster_reuse.csv",
      {"layer", "L", "H", "accuracy_cr0", "accuracy_cr1", "reuse_rate"},
      &csv);
  ADR_CHECK(open.ok()) << open.ToString();

  TrainSpec spec;
  spec.model_name = "cifarnet";
  spec.model_options.num_classes = 10;
  spec.model_options.input_size = 16;
  spec.model_options.width = 0.25;
  spec.model_options.fc_width = 0.1;
  spec.data_config = HardTask(16, 512, 31);
  spec.train_steps = Scaled(300);
  spec.batch_size = 8;
  const TrainedContext context = TrainBaseline(spec);
  std::printf("dense accuracy: %.3f\n\n", context.baseline_accuracy);

  // The paper's per-layer optimal settings. conv1 K = 75 (divisible by 5);
  // conv2 K = 16*25 = 400 at width 0.25 (divisible by 10).
  const std::vector<LayerSetting> settings = {
      {0, "conv1", 5, 15},
      {1, "conv2", 10, 10},
  };

  // Alongside the CSVs, the same results go into a schema-versioned
  // BENCH_table3_cluster_reuse.json (util/bench_json.h) so the table
  // benches share the micro benches' machine-readable trajectory format.
  BenchJsonEmitter emitter("table3_cluster_reuse");

  PrintRow({"layer", "L", "H", "acc CR=0", "acc CR=1", "cum. R"});
  for (const LayerSetting& setting : settings) {
    const double acc0 = EvaluateWithConfig(context, setting, false, 8,
                                           Scaled(128), nullptr);
    double reuse_rate = 0.0;
    const double acc1 = EvaluateWithConfig(context, setting, true, 8,
                                           Scaled(128), &reuse_rate);
    PrintRow({setting.name, std::to_string(setting.l),
              std::to_string(setting.h), Fmt(acc0, 3), Fmt(acc1, 3),
              Fmt(reuse_rate, 3)});
    csv.WriteRow(std::vector<std::string>{
        setting.name, std::to_string(setting.l), std::to_string(setting.h),
        Fmt(acc0, 6), Fmt(acc1, 6), Fmt(reuse_rate, 6)});
    BenchRecord record;
    record.name = "table3/" + setting.name + "/L:" +
                  std::to_string(setting.l) + "/H:" +
                  std::to_string(setting.h);
    record.iterations = 1;
    record.counters.emplace_back("accuracy_cr0", acc0);
    record.counters.emplace_back("accuracy_cr1", acc1);
    record.counters.emplace_back("reuse_rate", reuse_rate);
    emitter.Add(std::move(record));
  }
  csv.Close();

  // Section VI-B2: reuse rate R per batch over the first 20 batches.
  std::printf("\nPer-batch reuse rate R (conv1, CR=1), Section VI-B2:\n");
  CsvWriter rate_csv;
  open = CsvWriter::Open(ResultsDir() + "/table3_reuse_rate_growth.csv",
                         {"batch", "reuse_rate"}, &rate_csv);
  ADR_CHECK(open.ok()) << open.ToString();
  Model twin = MakeReuseTwin(context, ExactReuseConfig());
  ReuseConv2d* layer = twin.reuse_layers[0];
  const ReuseConfig config = ReuseConfigBuilder()
                                 .SubVectorLength(5)
                                 .NumHashes(15)
                                 .ClusterReuse(true)
                                 .BuildUnchecked();
  ADR_CHECK(layer->SetReuseConfig(config).ok());
  DataLoader loader(&context.dataset, 8, /*shuffle=*/true, 555);
  Batch batch;
  PrintRow({"batch", "R"});
  BenchRecord growth;
  growth.name = "table3/conv1/reuse_rate_growth";
  growth.iterations = 20;
  for (int b = 1; b <= 20; ++b) {
    loader.Next(&batch);
    twin.network.Forward(batch.images, /*training=*/false);
    const double r = layer->stats().last_batch_reuse_rate;
    PrintRow({std::to_string(b), Fmt(r, 3)});
    rate_csv.WriteRow(std::vector<double>{static_cast<double>(b), r});
    growth.counters.emplace_back("r_batch_" + std::to_string(b), r);
  }
  rate_csv.Close();
  emitter.Add(std::move(growth));
  const std::string json_path =
      BenchJsonEmitter::DefaultPath("table3_cluster_reuse");
  const Status json_status = emitter.WriteFile(json_path);
  ADR_CHECK(json_status.ok()) << json_status.ToString();
  std::printf("\nCSVs written to %s; JSON written to %s\n",
              ResultsDir().c_str(), json_path.c_str());
}

}  // namespace
}  // namespace adr::bench

int main() {
  adr::bench::Main();
  return 0;
}
