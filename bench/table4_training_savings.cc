// Table IV reproduction: end-to-end training savings of the three reuse
// strategies on CifarNet, AlexNet and VGG-19, against dense baseline
// training to the same accuracy target.
//
// Paper reference (full scale, wall-clock savings):
//   network   S1    S2    S3
//   CifarNet  38%   63%   46%
//   AlexNet   49%   69%   58%
//   VGG-19    45%   68%   54%
// with the ordering S2 > S3 > S1 > 0 everywhere, and reuse runs taking
// somewhat more iterations than baseline to reach the same accuracy.
//
// We report both wall-clock savings and conv-layer MAC savings; on this
// CPU substrate the MAC savings track the paper's computation-savings
// story while wall-clock depends on the GEMM/hash cost ratio.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/strategies.h"
#include "util/csv_writer.h"

namespace adr::bench {
namespace {

// Table IV's training task: like HardTask but smoother (larger blobs,
// milder structured noise) so the clusters LSH finds align with the
// class-relevant features — the property real images have that lets
// reuse-mode training converge (see EXPERIMENTS.md fidelity notes).
SyntheticImageConfig Table4Task(int64_t side, int64_t num_samples,
                                uint64_t seed, int num_classes,
                                float structured_noise) {
  SyntheticImageConfig config = HardTask(side, num_samples, seed);
  config.num_classes = num_classes;
  config.structured_noise = structured_noise;
  config.blob_radius_fraction = 0.35f;
  return config;
}

struct NetworkSpec {
  std::string name;
  ModelOptions model;
  SyntheticImageConfig data;
  TrainingRunOptions run;
};

NetworkSpec CifarNetSpec() {
  NetworkSpec spec;
  spec.name = "cifarnet";
  spec.model.num_classes = 24;
  spec.model.input_size = 32;
  spec.model.width = 0.5;
  spec.model.fc_width = 0.25;
  spec.data = Table4Task(32, 2048, 41, 24, 0.5f);
  spec.run.batch_size = 16;
  spec.run.target_accuracy = 0.85;
  spec.run.max_steps = Scaled(600);
  spec.run.eval_every = 25;
  spec.run.eval_samples = 160;
  spec.run.fixed_reuse.sub_vector_length = 10;
  spec.run.fixed_reuse.num_hashes = 11;
  spec.run.adaptive.plateau_window = 5;
  spec.run.adaptive.min_steps_per_stage = 10;
  return spec;
}

NetworkSpec AlexNetSpec() {
  NetworkSpec spec;
  spec.name = "alexnet";
  spec.model.num_classes = 12;
  spec.model.input_size = 67;
  spec.model.width = 0.25;
  spec.model.fc_width = 0.05;
  spec.data = Table4Task(67, 1024, 43, 12, 0.4f);
  spec.run.batch_size = 8;
  spec.run.target_accuracy = 0.85;
  spec.run.max_steps = Scaled(400);
  spec.run.eval_every = 25;
  spec.run.eval_samples = 120;
  // Conservative fixed setting: error compounds over 5 conv layers.
  spec.run.fixed_reuse.sub_vector_length = 10;
  spec.run.fixed_reuse.num_hashes = 20;
  spec.run.adaptive.plateau_window = 5;
  spec.run.adaptive.min_steps_per_stage = 10;
  return spec;
}

NetworkSpec Vgg19Spec() {
  NetworkSpec spec;
  spec.name = "vgg19";
  spec.model.num_classes = 12;
  spec.model.input_size = 32;
  spec.model.width = 0.25;
  spec.model.fc_width = 0.05;
  // The 16-conv-layer stack does not train at this scale without batch
  // normalization (see DESIGN.md).
  spec.model.batch_norm = true;
  spec.data = Table4Task(32, 1024, 47, 12, 0.4f);
  spec.run.batch_size = 8;
  spec.run.target_accuracy = 0.7;
  spec.run.max_steps = Scaled(600);
  spec.run.eval_every = 25;
  spec.run.eval_samples = 120;
  // Approximation error compounds across 16 layers, so the fixed
  // strategies get the gentlest setting (whole-row clustering, max-H);
  // even that degrades the deep stack at this scale — see EXPERIMENTS.md.
  spec.run.fixed_reuse.sub_vector_length = 0;
  spec.run.fixed_reuse.num_hashes = 24;
  spec.run.adaptive.plateau_window = 5;
  spec.run.adaptive.min_steps_per_stage = 10;
  return spec;
}

void Main() {
  std::printf("== Table IV: end-to-end training savings ==\n");
  std::printf(
      "(scaled networks, synthetic data; savings relative to the dense "
      "baseline run)\n\n");
  CsvWriter csv;
  const Status open = CsvWriter::Open(
      ResultsDir() + "/table4_training_savings.csv",
      {"network", "strategy", "steps", "seconds", "accuracy",
       "mac_saved_frac", "time_saved_frac", "stages"},
      &csv);
  ADR_CHECK(open.ok()) << open.ToString();

  for (const NetworkSpec& spec :
       {CifarNetSpec(), AlexNetSpec(), Vgg19Spec()}) {
    auto dataset = SyntheticImageDataset::Create(spec.data);
    ADR_CHECK(dataset.ok()) << dataset.status().ToString();
    std::printf("--- %s ---\n", spec.name.c_str());
    PrintRow({"strategy", "steps", "seconds", "accuracy", "MACs saved",
              "time saved", "stages"},
             16);

    double baseline_seconds = 0.0;
    for (const StrategyKind kind :
         {StrategyKind::kBaseline, StrategyKind::kFixed,
          StrategyKind::kAdaptive, StrategyKind::kClusterReuse}) {
      auto result = RunTrainingStrategy(kind, spec.name, spec.model,
                                        *dataset, spec.run);
      ADR_CHECK(result.ok()) << result.status().ToString();
      if (kind == StrategyKind::kBaseline) {
        baseline_seconds = result->wall_seconds;
      }
      const double time_saved =
          baseline_seconds > 0.0
              ? 1.0 - result->wall_seconds / baseline_seconds
              : 0.0;
      PrintRow({std::string(StrategyKindToString(kind)),
                std::to_string(result->steps_run),
                Fmt(result->wall_seconds, 2), Fmt(result->final_accuracy, 3),
                Fmt(result->MacsSavedFraction() * 100.0, 1) + "%",
                Fmt(time_saved * 100.0, 1) + "%",
                std::to_string(result->stages_used)},
               16);
      csv.WriteRow(std::vector<std::string>{
          spec.name, std::string(StrategyKindToString(kind)),
          std::to_string(result->steps_run), Fmt(result->wall_seconds, 4),
          Fmt(result->final_accuracy, 4),
          Fmt(result->MacsSavedFraction(), 4), Fmt(time_saved, 4),
          std::to_string(result->stages_used)});
    }
    std::printf("\n");
  }
  csv.Close();
  std::printf("CSV written to %s/table4_training_savings.csv\n",
              ResultsDir().c_str());
}

}  // namespace
}  // namespace adr::bench

int main() {
  adr::bench::Main();
  return 0;
}
