// Ablation of the Section V observations that motivate the adaptive
// strategy:
//   (1) at fixed H, smaller L gives smaller reuse-caused accuracy loss;
//   (2) at fixed L, larger H gives higher accuracy but larger r_c;
//   (3) layers close to the output tolerate larger L than early layers;
//   (4) the backward-reuse approximation vs exact backward (our extra
//       ablation knob, exact_backward);
//   (5) plateau-detector sensitivity (window/threshold), our formalization
//       of "the loss stops decreasing".

#include <cstdio>

#include "bench/bench_util.h"
#include "core/adaptive_controller.h"
#include "core/strategies.h"
#include "util/csv_writer.h"

namespace adr::bench {
namespace {

TrainSpec CifarSpec() {
  TrainSpec spec;
  spec.model_name = "cifarnet";
  spec.model_options.num_classes = 10;
  spec.model_options.input_size = 16;
  spec.model_options.width = 0.25;
  spec.model_options.fc_width = 0.1;
  spec.data_config = HardTask(16, 512, 61);
  spec.train_steps = Scaled(300);
  spec.batch_size = 8;
  return spec;
}

double EvalLayerConfig(const TrainedContext& context, size_t layer_index,
                       const ReuseConfig& config, double* rc_out) {
  Model twin = MakeReuseTwin(context, ExactReuseConfig());
  ReuseConv2d* layer = twin.reuse_layers[layer_index];
  const Status status = layer->SetReuseConfig(config);
  ADR_CHECK(status.ok()) << status.ToString();
  const double accuracy =
      EvaluateAccuracy(&twin.network, context.dataset, 8, Scaled(96));
  if (rc_out != nullptr) *rc_out = layer->stats().avg_remaining_ratio;
  return accuracy;
}

void ObservationOneAndTwo(const TrainedContext& context, CsvWriter* csv) {
  std::printf("\n(1)+(2) accuracy and r_c across the {L, H} grid, conv2:\n");
  PrintRow({"L", "H", "r_c", "accuracy"});
  for (int64_t l : {400L, 50L, 10L}) {
    for (int h : {4, 10, 16}) {
      const ReuseConfig config = ReuseConfigBuilder()
                                     .SubVectorLength(l)
                                     .NumHashes(h)
                                     .BuildUnchecked();
      double rc = 0.0;
      const double accuracy = EvalLayerConfig(context, 1, config, &rc);
      PrintRow({std::to_string(l), std::to_string(h), Fmt(rc, 3),
                Fmt(accuracy, 3)});
      csv->WriteRow(std::vector<std::string>{
          "grid_conv2", std::to_string(l), std::to_string(h), Fmt(rc, 6),
          Fmt(accuracy, 6)});
    }
  }
}

void ObservationThree(const TrainedContext& context, CsvWriter* csv) {
  std::printf(
      "\n(3) same coarse config applied to conv1 (early) vs conv2 "
      "(late):\n");
  PrintRow({"layer", "L", "H", "r_c", "accuracy"});
  for (size_t layer_index : {size_t{0}, size_t{1}}) {
    // A deliberately coarse setting; conv1 K = 75, conv2 K = 400. Use the
    // whole row for both so the comparison is "coarsest possible".
    const ReuseConfig config =
        ReuseConfigBuilder().SubVectorLength(0).NumHashes(6).BuildUnchecked();
    double rc = 0.0;
    const double accuracy =
        EvalLayerConfig(context, layer_index, config, &rc);
    const std::string name = layer_index == 0 ? "conv1" : "conv2";
    PrintRow({name, "K", "6", Fmt(rc, 3), Fmt(accuracy, 3)});
    csv->WriteRow(std::vector<std::string>{"layer_depth_" + name, "K", "6",
                                           Fmt(rc, 6), Fmt(accuracy, 6)});
  }
  std::printf("(the later layer should lose less accuracy)\n");
}

void ObservationFour(CsvWriter* csv) {
  std::printf("\n(4) approximate vs exact backward during training:\n");
  TrainSpec spec = CifarSpec();
  auto dataset = SyntheticImageDataset::Create(spec.data_config);
  ADR_CHECK(dataset.ok());

  PrintRow({"backward", "steps", "accuracy", "MACs saved"});
  for (const bool exact : {false, true}) {
    ModelOptions options = spec.model_options;
    options.use_reuse = true;
    options.reuse.sub_vector_length = 25;
    options.reuse.num_hashes = 12;
    auto model = BuildModel("cifarnet", options);
    ADR_CHECK(model.ok());
    for (ReuseConv2d* layer : model->reuse_layers) {
      layer->set_exact_backward(exact);
    }
    DataLoader loader(&*dataset, 16, true, 77);
    Adam optimizer(0.002f);
    Batch batch;
    const int64_t steps = Scaled(200);
    for (int64_t step = 0; step < steps; ++step) {
      loader.Next(&batch);
      TrainStep(&model->network, &optimizer, batch);
    }
    const double accuracy =
        EvaluateAccuracy(&model->network, *dataset, 16, 128);
    double executed = 0.0, baseline = 0.0;
    for (ReuseConv2d* layer : model->reuse_layers) {
      executed += layer->stats().macs_executed;
      baseline += layer->stats().macs_baseline;
    }
    const double saved = 1.0 - executed / baseline;
    PrintRow({exact ? "exact" : "reused-clustering",
              std::to_string(steps), Fmt(accuracy, 3),
              Fmt(saved * 100.0, 1) + "%"});
    csv->WriteRow(std::vector<std::string>{
        exact ? "backward_exact" : "backward_reuse", "-", "-",
        Fmt(saved, 6), Fmt(accuracy, 6)});
  }
  std::printf(
      "(clustering reuse in backward should cost little accuracy while\n"
      " saving the 2/3 of MACs the backward pass accounts for)\n");
}

void ObservationFive(CsvWriter* csv) {
  std::printf("\n(5) plateau-detector sensitivity (Strategy 2):\n");
  TrainSpec spec = CifarSpec();
  auto dataset = SyntheticImageDataset::Create(spec.data_config);
  ADR_CHECK(dataset.ok());
  PrintRow({"window", "threshold", "steps", "accuracy", "stages",
            "MACs saved"});
  for (const int window : {5, 10, 20}) {
    TrainingRunOptions run;
    run.batch_size = 16;
    run.learning_rate = 0.002f;
    run.target_accuracy = 0.9;
    run.max_steps = Scaled(300);
    run.eval_every = 20;
    run.eval_samples = 128;
    run.adaptive.plateau_window = window;
    run.adaptive.min_steps_per_stage = 2 * window;
    auto result = RunTrainingStrategy(StrategyKind::kAdaptive, "cifarnet",
                                      spec.model_options, *dataset, run);
    ADR_CHECK(result.ok()) << result.status().ToString();
    PrintRow({std::to_string(window),
              Fmt(run.adaptive.plateau_min_rel_improvement, 3),
              std::to_string(result->steps_run),
              Fmt(result->final_accuracy, 3),
              std::to_string(result->stages_used),
              Fmt(result->MacsSavedFraction() * 100.0, 1) + "%"});
    csv->WriteRow(std::vector<std::string>{
        "plateau_w" + std::to_string(window), "-", "-",
        Fmt(result->MacsSavedFraction(), 6),
        Fmt(result->final_accuracy, 6)});
  }
}

void Main() {
  std::printf("== Ablation: Section V parameter observations ==\n");
  CsvWriter csv;
  const Status open = CsvWriter::Open(
      ResultsDir() + "/ablation_parameters.csv",
      {"experiment", "L", "H", "rc_or_saved", "accuracy"}, &csv);
  ADR_CHECK(open.ok()) << open.ToString();

  const TrainedContext context = TrainBaseline(CifarSpec());
  std::printf("dense accuracy: %.3f\n", context.baseline_accuracy);

  ObservationOneAndTwo(context, &csv);
  ObservationThree(context, &csv);
  ObservationFour(&csv);
  ObservationFive(&csv);
  csv.Close();
  std::printf("\nCSV written to %s/ablation_parameters.csv\n",
              ResultsDir().c_str());
}

}  // namespace
}  // namespace adr::bench

int main() {
  adr::bench::Main();
  return 0;
}
