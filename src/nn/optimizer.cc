#include "nn/optimizer.h"

#include <cmath>

#include "util/check.h"

namespace adr {

void Optimizer::ApplyWeightDecay(const std::vector<Tensor*>& params) {
  if (weight_decay_ == 0.0f) return;
  const float shrink = 1.0f - learning_rate_ * weight_decay_;
  for (Tensor* param : params) {
    float* p = param->data();
    const int64_t n = param->num_elements();
    for (int64_t j = 0; j < n; ++j) p[j] *= shrink;
  }
}

void Sgd::Step(const std::vector<Tensor*>& params,
               const std::vector<Tensor*>& grads) {
  ADR_CHECK_EQ(params.size(), grads.size());
  for (size_t i = 0; i < params.size(); ++i) {
    float* p = params[i]->data();
    const float* g = grads[i]->data();
    const int64_t n = params[i]->num_elements();
    ADR_CHECK_EQ(n, grads[i]->num_elements());
    for (int64_t j = 0; j < n; ++j) p[j] -= learning_rate_ * g[j];
  }
  ApplyWeightDecay(params);
}

void MomentumSgd::Step(const std::vector<Tensor*>& params,
                       const std::vector<Tensor*>& grads) {
  ADR_CHECK_EQ(params.size(), grads.size());
  if (velocity_.empty()) {
    velocity_.reserve(params.size());
    for (const Tensor* p : params) velocity_.emplace_back(p->shape());
  }
  ADR_CHECK_EQ(velocity_.size(), params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    float* p = params[i]->data();
    const float* g = grads[i]->data();
    float* v = velocity_[i].data();
    const int64_t n = params[i]->num_elements();
    for (int64_t j = 0; j < n; ++j) {
      v[j] = momentum_ * v[j] - learning_rate_ * g[j];
      p[j] += v[j];
    }
  }
  ApplyWeightDecay(params);
}

void Adam::Step(const std::vector<Tensor*>& params,
                const std::vector<Tensor*>& grads) {
  ADR_CHECK_EQ(params.size(), grads.size());
  if (m_.empty()) {
    m_.reserve(params.size());
    v_.reserve(params.size());
    for (const Tensor* p : params) {
      m_.emplace_back(p->shape());
      v_.emplace_back(p->shape());
    }
  }
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  const float step = static_cast<float>(
      static_cast<double>(learning_rate_) * std::sqrt(bias2) / bias1);
  for (size_t i = 0; i < params.size(); ++i) {
    float* p = params[i]->data();
    const float* g = grads[i]->data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const int64_t n = params[i]->num_elements();
    for (int64_t j = 0; j < n; ++j) {
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g[j] * g[j];
      p[j] -= step * m[j] / (std::sqrt(v[j]) + epsilon_);
    }
  }
  ApplyWeightDecay(params);
}

}  // namespace adr
