// Network: a sequential container of layers.

#ifndef ADR_NN_NETWORK_H_
#define ADR_NN_NETWORK_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/layer.h"
#include "nn/reuse_stats.h"
#include "tensor/tensor.h"

namespace adr {

/// \brief Sequential network: output of layer i feeds layer i+1.
class Network {
 public:
  Network() = default;

  /// \brief Appends a layer and returns a raw pointer for configuration
  /// (the network keeps ownership).
  template <typename LayerT>
  LayerT* Add(std::unique_ptr<LayerT> layer) {
    LayerT* raw = layer.get();
    layers_.push_back(std::move(layer));
    return raw;
  }

  /// \brief Runs all layers forward.
  Tensor Forward(const Tensor& input, bool training);

  /// \brief Runs all layers backward from the loss gradient; returns the
  /// gradient w.r.t. the network input.
  Tensor Backward(const Tensor& grad_output);

  /// \brief All learnable parameters, layer order.
  std::vector<Tensor*> Parameters() const;

  /// \brief All gradients, parallel to Parameters().
  std::vector<Tensor*> Gradients() const;

  /// \brief All non-learnable state tensors (see Layer::StateTensors).
  std::vector<Tensor*> StateTensors() const;

  size_t num_layers() const { return layers_.size(); }
  Layer* layer(size_t i) { return layers_[i].get(); }
  const Layer* layer(size_t i) const { return layers_[i].get(); }

  /// \brief First layer with the given name, or nullptr.
  Layer* FindLayer(const std::string& name);

  /// \brief Total learnable parameter count.
  int64_t NumParameters() const;

  /// \brief Total forward multiply-accumulates for one batch.
  double ForwardMacs(int64_t batch) const;

  /// \brief (layer name, stats) for every layer that exposes reuse
  /// telemetry, network order. Replaces downcasting to concrete reuse
  /// layer types in examples and benches.
  std::vector<std::pair<std::string, ReuseLayerStats>> CollectReuseStats()
      const;

  /// \brief Clears reuse telemetry on every layer.
  void ResetReuseStats();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace adr

#endif  // ADR_NN_NETWORK_H_
