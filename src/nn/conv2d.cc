#include "nn/conv2d.h"

#include <algorithm>
#include <cmath>

#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/parallel.h"

namespace adr {

Tensor RowsToNchw(const Tensor& rows, int64_t batch, int64_t channels,
                  int64_t height, int64_t width) {
  ADR_CHECK(rows.shape() == Shape({batch * height * width, channels}));
  Tensor out(Shape({batch, channels, height, width}));
  RowsToNchw(rows.data(), batch, channels, height, width, out.data());
  return out;
}

void RowsToNchw(const float* rows, int64_t batch, int64_t channels,
                int64_t height, int64_t width, float* out) {
  const int64_t hw = height * width;
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t p = 0; p < hw; ++p) {
      const float* row = rows + (n * hw + p) * channels;
      for (int64_t c = 0; c < channels; ++c) {
        out[(n * channels + c) * hw + p] = row[c];
      }
    }
  }
}

Tensor NchwToRows(const Tensor& nchw) {
  ADR_CHECK_EQ(nchw.shape().rank(), 4);
  const int64_t batch = nchw.shape()[0], channels = nchw.shape()[1];
  const int64_t height = nchw.shape()[2], width = nchw.shape()[3];
  Tensor out(Shape({batch * height * width, channels}));
  NchwToRows(nchw, out.data());
  return out;
}

void NchwToRows(const Tensor& nchw, float* out) {
  ADR_CHECK_EQ(nchw.shape().rank(), 4);
  const int64_t batch = nchw.shape()[0], channels = nchw.shape()[1];
  const int64_t height = nchw.shape()[2], width = nchw.shape()[3];
  const int64_t hw = height * width;
  const float* src = nchw.data();
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t p = 0; p < hw; ++p) {
      float* row = out + (n * hw + p) * channels;
      for (int64_t c = 0; c < channels; ++c) {
        row[c] = src[(n * channels + c) * hw + p];
      }
    }
  }
}

Conv2d::Conv2d(std::string name, const Conv2dConfig& config, Rng* rng)
    : name_(std::move(name)), config_(config) {
  const int64_t k =
      config_.in_channels * config_.kernel * config_.kernel;
  const int64_t m = config_.out_channels;
  ADR_CHECK_GT(k, 0);
  ADR_CHECK_GT(m, 0);
  // He-normal initialization: stddev = sqrt(2 / fan_in).
  const float stddev = std::sqrt(2.0f / static_cast<float>(k));
  weight_ = Tensor::RandomGaussian(Shape({k, m}), rng, 0.0f, stddev);
  bias_ = Tensor(Shape({m}));
  grad_weight_ = Tensor(Shape({k, m}));
  grad_bias_ = Tensor(Shape({m}));
}

ConvGeometry Conv2d::Geometry(int64_t batch) const {
  ConvGeometry geo;
  geo.batch = batch;
  geo.in_channels = config_.in_channels;
  geo.in_height = config_.in_height;
  geo.in_width = config_.in_width;
  geo.kernel_h = config_.kernel;
  geo.kernel_w = config_.kernel;
  geo.stride = config_.stride;
  geo.pad = config_.pad;
  return geo;
}

Tensor Conv2d::Forward(const Tensor& input, bool training) {
  const int64_t batch = input.shape()[0];
  const ConvGeometry geo = Geometry(batch);
  const int64_t n = geo.unfolded_rows();
  const int64_t k = geo.unfolded_cols();
  const int64_t m = config_.out_channels;

  arena_.Reset();
  float* y = arena_.AllocFloats(n * m);

  if (training) {
    // Keep the full unfolded input for Backward. The tensor persists
    // across steps, so at fixed shapes it is allocated once.
    if (!(cached_cols_.shape() == Shape({n, k}))) {
      cached_cols_ = Tensor(Shape({n, k}));
    }
    Im2Col(geo, input, &cached_cols_);
    cached_batch_ = batch;
    Gemm(cached_cols_.data(), weight_.data(), y, n, k, m);
  } else {
    // Inference needs no backward state: stream L2-sized row tiles
    // through im2col + GEMM instead of materializing N x K. Rows are
    // independent in both, so the output is bit-identical to the
    // materialized path.
    cached_cols_ = Tensor();
    cached_batch_ = 0;
    const int64_t tile_rows = L2TileRows(k);
    float* tile = arena_.AllocFloats(tile_rows * k);
    for (int64_t row = 0; row < n; row += tile_rows) {
      const int64_t rows = std::min<int64_t>(tile_rows, n - row);
      ParallelFor(rows, 32, [&](int64_t begin, int64_t end) {
        Im2ColRows(geo, input.data(), row + begin, row + end,
                   tile + begin * k);
      });
      Gemm(tile, weight_.data(), y + row * m, rows, k, m);
    }
  }

  AddRowBias(bias_.data(), y, n, m);
  Tensor out(Shape({batch, m, geo.out_height(), geo.out_width()}));
  RowsToNchw(y, batch, m, geo.out_height(), geo.out_width(), out.data());
  return out;
}

Tensor Conv2d::Backward(const Tensor& grad_output) {
  ADR_CHECK_GT(cached_batch_, 0)
      << "Backward requires a preceding training-mode Forward";
  const ConvGeometry geo = Geometry(cached_batch_);
  const int64_t n = geo.unfolded_rows();
  const int64_t k = geo.unfolded_cols();
  const int64_t m = config_.out_channels;

  ADR_CHECK(grad_output.shape() == Shape({cached_batch_, m,
                                          geo.out_height(),
                                          geo.out_width()}));
  float* dy = arena_.AllocFloats(n * m);  // [N, M]
  NchwToRows(grad_output, dy);

  // dW = x^T * dy  (Eq. 2); db = column sums of dy.
  GemmTransA(cached_cols_.data(), dy, grad_weight_.data(), k, n, m);
  ColumnSumsInto(dy, n, m, grad_bias_.data());

  // dx_cols = dy * W^T  (Eq. 3), folded back through col2im.
  float* dx_cols = arena_.AllocFloats(n * k);
  GemmTransB(dy, weight_.data(), dx_cols, n, m, k);
  Tensor grad_input(Shape(
      {cached_batch_, config_.in_channels, config_.in_height, config_.in_width}));
  Col2Im(geo, dx_cols, grad_input.data());
  return grad_input;
}

double Conv2d::ForwardMacs(int64_t batch) const {
  const ConvGeometry geo = Geometry(batch);
  return static_cast<double>(geo.unfolded_rows()) * geo.unfolded_cols() *
         config_.out_channels;
}

}  // namespace adr
