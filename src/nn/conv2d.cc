#include "nn/conv2d.h"

#include <cmath>

#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace adr {

Tensor RowsToNchw(const Tensor& rows, int64_t batch, int64_t channels,
                  int64_t height, int64_t width) {
  ADR_CHECK(rows.shape() == Shape({batch * height * width, channels}));
  Tensor out(Shape({batch, channels, height, width}));
  const float* src = rows.data();
  float* dst = out.data();
  const int64_t hw = height * width;
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t p = 0; p < hw; ++p) {
      const float* row = src + (n * hw + p) * channels;
      for (int64_t c = 0; c < channels; ++c) {
        dst[(n * channels + c) * hw + p] = row[c];
      }
    }
  }
  return out;
}

Tensor NchwToRows(const Tensor& nchw) {
  ADR_CHECK_EQ(nchw.shape().rank(), 4);
  const int64_t batch = nchw.shape()[0], channels = nchw.shape()[1];
  const int64_t height = nchw.shape()[2], width = nchw.shape()[3];
  const int64_t hw = height * width;
  Tensor out(Shape({batch * hw, channels}));
  const float* src = nchw.data();
  float* dst = out.data();
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t p = 0; p < hw; ++p) {
      float* row = dst + (n * hw + p) * channels;
      for (int64_t c = 0; c < channels; ++c) {
        row[c] = src[(n * channels + c) * hw + p];
      }
    }
  }
  return out;
}

Conv2d::Conv2d(std::string name, const Conv2dConfig& config, Rng* rng)
    : name_(std::move(name)), config_(config) {
  const int64_t k =
      config_.in_channels * config_.kernel * config_.kernel;
  const int64_t m = config_.out_channels;
  ADR_CHECK_GT(k, 0);
  ADR_CHECK_GT(m, 0);
  // He-normal initialization: stddev = sqrt(2 / fan_in).
  const float stddev = std::sqrt(2.0f / static_cast<float>(k));
  weight_ = Tensor::RandomGaussian(Shape({k, m}), rng, 0.0f, stddev);
  bias_ = Tensor(Shape({m}));
  grad_weight_ = Tensor(Shape({k, m}));
  grad_bias_ = Tensor(Shape({m}));
}

ConvGeometry Conv2d::Geometry(int64_t batch) const {
  ConvGeometry geo;
  geo.batch = batch;
  geo.in_channels = config_.in_channels;
  geo.in_height = config_.in_height;
  geo.in_width = config_.in_width;
  geo.kernel_h = config_.kernel;
  geo.kernel_w = config_.kernel;
  geo.stride = config_.stride;
  geo.pad = config_.pad;
  return geo;
}

Tensor Conv2d::Forward(const Tensor& input, bool /*training*/) {
  const int64_t batch = input.shape()[0];
  const ConvGeometry geo = Geometry(batch);
  const int64_t n = geo.unfolded_rows();
  const int64_t k = geo.unfolded_cols();
  const int64_t m = config_.out_channels;

  cached_cols_ = Tensor(Shape({n, k}));
  Im2Col(geo, input, &cached_cols_);
  cached_batch_ = batch;

  Tensor y_rows(Shape({n, m}));
  Gemm(cached_cols_.data(), weight_.data(), y_rows.data(), n, k, m);
  AddRowBias(bias_, &y_rows);
  return RowsToNchw(y_rows, batch, m, geo.out_height(), geo.out_width());
}

Tensor Conv2d::Backward(const Tensor& grad_output) {
  ADR_CHECK_GT(cached_batch_, 0) << "Backward before Forward";
  const ConvGeometry geo = Geometry(cached_batch_);
  const int64_t n = geo.unfolded_rows();
  const int64_t k = geo.unfolded_cols();
  const int64_t m = config_.out_channels;

  const Tensor dy = NchwToRows(grad_output);  // [N, M]
  ADR_CHECK(dy.shape() == Shape({n, m}));

  // dW = x^T * dy  (Eq. 2); db = column sums of dy.
  GemmTransA(cached_cols_.data(), dy.data(), grad_weight_.data(), k, n, m);
  grad_bias_ = ColumnSums(dy);

  // dx_cols = dy * W^T  (Eq. 3), folded back through col2im.
  Tensor dx_cols(Shape({n, k}));
  GemmTransB(dy.data(), weight_.data(), dx_cols.data(), n, m, k);
  Tensor grad_input(Shape(
      {cached_batch_, config_.in_channels, config_.in_height, config_.in_width}));
  Col2Im(geo, dx_cols, &grad_input);
  return grad_input;
}

double Conv2d::ForwardMacs(int64_t batch) const {
  const ConvGeometry geo = Geometry(batch);
  return static_cast<double>(geo.unfolded_rows()) * geo.unfolded_cols() *
         config_.out_channels;
}

}  // namespace adr
