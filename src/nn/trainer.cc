#include "nn/trainer.h"

#include <algorithm>

#include "util/check.h"
#include "util/metrics_registry.h"
#include "util/timer.h"
#include "util/trace.h"

namespace adr {

StepResult TrainStep(Network* network, Optimizer* optimizer,
                     const Batch& batch) {
  ADR_TRACE_SPAN("TrainStep");
  Timer timer;
  const Tensor logits = network->Forward(batch.images, /*training=*/true);
  const LossResult loss = SoftmaxCrossEntropy(logits, batch.labels);
  network->Backward(loss.grad_logits);
  {
    ADR_TRACE_SPAN("Optimizer::Step");
    optimizer->Step(network->Parameters(), network->Gradients());
  }
  StepResult result;
  result.loss = loss.loss;
  result.accuracy = static_cast<double>(loss.num_correct) /
                    static_cast<double>(batch.size());

  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.counter("train/steps")->Increment();
  metrics.histogram("train/step_seconds")->Record(timer.ElapsedSeconds());
  metrics.gauge("train/loss")->Set(result.loss);
  metrics.gauge("train/accuracy")->Set(result.accuracy);
  return result;
}

StepResult EvaluateBatch(Network* network, const Batch& batch,
                         bool training_mode) {
  ADR_TRACE_SPAN("EvaluateBatch");
  const Tensor logits = network->Forward(batch.images, training_mode);
  const LossResult loss = SoftmaxCrossEntropy(logits, batch.labels);
  StepResult result;
  result.loss = loss.loss;
  result.accuracy = static_cast<double>(loss.num_correct) /
                    static_cast<double>(batch.size());
  return result;
}

double EvaluateAccuracy(Network* network, const Dataset& dataset,
                        int64_t batch_size, int64_t max_samples) {
  ADR_TRACE_SPAN("EvaluateAccuracy");
  const int64_t total =
      max_samples < 0 ? dataset.size() : std::min(max_samples, dataset.size());
  ADR_CHECK_GT(total, 0);
  int64_t correct = 0;
  int64_t seen = 0;
  for (int64_t start = 0; start + batch_size <= total; start += batch_size) {
    const Batch batch = MakeBatch(dataset, start, batch_size);
    const Tensor logits = network->Forward(batch.images, /*training=*/false);
    const LossResult loss = SoftmaxCrossEntropy(logits, batch.labels);
    correct += loss.num_correct;
    seen += batch.size();
  }
  ADR_CHECK_GT(seen, 0) << "batch_size larger than evaluation set";
  MetricsRegistry::Global().counter("train/evaluations")->Increment();
  return static_cast<double>(correct) / static_cast<double>(seen);
}

}  // namespace adr
