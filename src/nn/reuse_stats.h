// ReuseLayerStats: telemetry every reuse-capable layer exposes through the
// Layer interface, so callers can read savings without knowing the
// concrete layer type (Network::CollectReuseStats).

#ifndef ADR_NN_REUSE_STATS_H_
#define ADR_NN_REUSE_STATS_H_

#include <cstdint>

namespace adr {

/// \brief Cumulative telemetry of a reuse layer, reset with
/// Layer::ResetReuseStats().
struct ReuseLayerStats {
  int64_t forward_calls = 0;
  double avg_remaining_ratio = 0.0;  ///< running mean of per-batch r_c
  double hash_seconds = 0.0;
  double gemm_seconds = 0.0;
  double backward_seconds = 0.0;
  double macs_executed = 0.0;  ///< forward + backward MACs actually done
  double macs_baseline = 0.0;  ///< 3 * N * K * M per call
  double last_batch_reuse_rate = 0.0;  ///< R of the most recent batch

  // Cross-batch cluster-reuse cache (all zero while CR is disabled).
  int64_t cache_lookups = 0;    ///< cumulative cluster lookups
  int64_t cache_hits = 0;       ///< cumulative lookups served from cache
  int64_t cache_evictions = 0;  ///< cumulative budget evictions
  int64_t cache_entries = 0;    ///< currently resident entries
  int64_t cache_resident_bytes = 0;  ///< exact resident payload bytes

  /// Fraction of baseline MACs avoided so far.
  double MacsSavedFraction() const {
    return macs_baseline == 0.0 ? 0.0 : 1.0 - macs_executed / macs_baseline;
  }
};

}  // namespace adr

#endif  // ADR_NN_REUSE_STATS_H_
