// Gradient clipping utilities applied between Backward and Optimizer::Step.

#ifndef ADR_NN_GRADIENT_CLIP_H_
#define ADR_NN_GRADIENT_CLIP_H_

#include <vector>

#include "tensor/tensor.h"

namespace adr {

/// \brief L2 norm over all gradients together.
double GlobalGradientNorm(const std::vector<Tensor*>& grads);

/// \brief Scales all gradients by max_norm/norm when the global norm
/// exceeds `max_norm`; returns the pre-clip norm.
double ClipGradientsByGlobalNorm(const std::vector<Tensor*>& grads,
                                 double max_norm);

/// \brief Clamps each gradient element to [-max_value, max_value].
void ClipGradientsByValue(const std::vector<Tensor*>& grads,
                          float max_value);

}  // namespace adr

#endif  // ADR_NN_GRADIENT_CLIP_H_
