// Learning-rate schedules applied on top of any Optimizer.

#ifndef ADR_NN_LR_SCHEDULE_H_
#define ADR_NN_LR_SCHEDULE_H_

#include <cstdint>
#include <memory>

#include "nn/optimizer.h"

namespace adr {

/// \brief Maps a step index to a learning rate.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  virtual float LearningRate(int64_t step) const = 0;

  /// \brief Convenience: applies the schedule's rate for `step`.
  void Apply(int64_t step, Optimizer* optimizer) const {
    optimizer->set_learning_rate(LearningRate(step));
  }
};

/// \brief Constant rate.
class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(float rate) : rate_(rate) {}
  float LearningRate(int64_t) const override { return rate_; }

 private:
  float rate_;
};

/// \brief Step decay: rate * decay^(step / interval).
class StepDecayLr : public LrSchedule {
 public:
  StepDecayLr(float initial, float decay, int64_t interval)
      : initial_(initial), decay_(decay), interval_(interval) {}
  float LearningRate(int64_t step) const override;

 private:
  float initial_;
  float decay_;
  int64_t interval_;
};

/// \brief Linear warmup to `peak` over `warmup_steps`, then cosine decay
/// to `floor` at `total_steps` (clamped to the floor afterwards).
class WarmupCosineLr : public LrSchedule {
 public:
  WarmupCosineLr(float peak, int64_t warmup_steps, int64_t total_steps,
                 float floor = 0.0f)
      : peak_(peak),
        warmup_steps_(warmup_steps),
        total_steps_(total_steps),
        floor_(floor) {}
  float LearningRate(int64_t step) const override;

 private:
  float peak_;
  int64_t warmup_steps_;
  int64_t total_steps_;
  float floor_;
};

}  // namespace adr

#endif  // ADR_NN_LR_SCHEDULE_H_
