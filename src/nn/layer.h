// Layer: the unit of composition of the NN substrate.
//
// Layers own their parameters and parameter gradients, cache whatever they
// need from Forward to run Backward, and exchange dense tensors:
// 4-D [N, C, H, W] between spatial layers, 2-D [N, features] after Flatten.

#ifndef ADR_NN_LAYER_H_
#define ADR_NN_LAYER_H_

#include <string>
#include <vector>

#include "nn/reuse_stats.h"
#include "tensor/tensor.h"

namespace adr {

/// \brief Abstract base for all network layers.
///
/// Protocol: Forward must be called before Backward for the same batch;
/// Backward accumulates nothing across calls (parameter gradients are
/// overwritten each time).
class Layer {
 public:
  virtual ~Layer() = default;

  /// \brief Human-readable layer name, e.g. "conv1".
  virtual std::string name() const = 0;

  /// \brief Computes the layer output; `training` toggles train-only
  /// behaviour (dropout masks, reuse statistics, ...).
  virtual Tensor Forward(const Tensor& input, bool training) = 0;

  /// \brief Computes the gradient w.r.t. the layer input given the gradient
  /// w.r.t. the output, and fills parameter gradients.
  virtual Tensor Backward(const Tensor& grad_output) = 0;

  /// \brief Learnable parameters (empty for stateless layers).
  virtual std::vector<Tensor*> Parameters() { return {}; }

  /// \brief Gradients, parallel to Parameters().
  virtual std::vector<Tensor*> Gradients() { return {}; }

  /// \brief Non-learnable state that must travel with the weights
  /// (e.g. BatchNorm running statistics). Copied by CopyWeights and
  /// saved in checkpoints; not touched by optimizers.
  virtual std::vector<Tensor*> StateTensors() { return {}; }

  /// \brief Number of multiply-accumulate operations of one forward pass for
  /// the given batch size (0 for negligible layers). Used by the complexity
  /// model and the bench harness.
  virtual double ForwardMacs(int64_t /*batch*/) const { return 0.0; }

  /// \brief Reuse telemetry, or nullptr for layers without reuse. Lets
  /// Network::CollectReuseStats report savings without downcasting to
  /// concrete reuse layer types.
  virtual const ReuseLayerStats* GetReuseStats() const { return nullptr; }

  /// \brief Clears the telemetry returned by GetReuseStats (no-op for
  /// layers without reuse).
  virtual void ResetReuseStats() {}
};

}  // namespace adr

#endif  // ADR_NN_LAYER_H_
