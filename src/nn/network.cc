#include "nn/network.h"

#include "util/check.h"
#include "util/trace.h"

namespace adr {

Tensor Network::Forward(const Tensor& input, bool training) {
  ADR_TRACE_SPAN("Network::Forward");
  ADR_CHECK(!layers_.empty());
  Tensor current = input;
  for (auto& layer : layers_) {
    current = layer->Forward(current, training);
  }
  return current;
}

Tensor Network::Backward(const Tensor& grad_output) {
  ADR_TRACE_SPAN("Network::Backward");
  ADR_CHECK(!layers_.empty());
  Tensor current = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    current = (*it)->Backward(current);
  }
  return current;
}

std::vector<Tensor*> Network::Parameters() const {
  std::vector<Tensor*> params;
  for (const auto& layer : layers_) {
    for (Tensor* p : layer->Parameters()) params.push_back(p);
  }
  return params;
}

std::vector<Tensor*> Network::Gradients() const {
  std::vector<Tensor*> grads;
  for (const auto& layer : layers_) {
    for (Tensor* g : layer->Gradients()) grads.push_back(g);
  }
  return grads;
}

std::vector<Tensor*> Network::StateTensors() const {
  std::vector<Tensor*> state;
  for (const auto& layer : layers_) {
    for (Tensor* s : layer->StateTensors()) state.push_back(s);
  }
  return state;
}

Layer* Network::FindLayer(const std::string& name) {
  for (auto& layer : layers_) {
    if (layer->name() == name) return layer.get();
  }
  return nullptr;
}

int64_t Network::NumParameters() const {
  int64_t n = 0;
  for (Tensor* p : Parameters()) n += p->num_elements();
  return n;
}

double Network::ForwardMacs(int64_t batch) const {
  double macs = 0.0;
  for (const auto& layer : layers_) macs += layer->ForwardMacs(batch);
  return macs;
}

std::vector<std::pair<std::string, ReuseLayerStats>>
Network::CollectReuseStats() const {
  std::vector<std::pair<std::string, ReuseLayerStats>> stats;
  for (const auto& layer : layers_) {
    if (const ReuseLayerStats* s = layer->GetReuseStats()) {
      stats.emplace_back(layer->name(), *s);
    }
  }
  return stats;
}

void Network::ResetReuseStats() {
  for (auto& layer : layers_) layer->ResetReuseStats();
}

}  // namespace adr
