// Inverted dropout.

#ifndef ADR_NN_DROPOUT_H_
#define ADR_NN_DROPOUT_H_

#include <string>

#include "nn/layer.h"
#include "util/rng.h"

namespace adr {

/// \brief Inverted dropout: at training time each element is zeroed with
/// probability `drop_prob` and survivors are scaled by 1/(1-p); identity at
/// inference.
class Dropout : public Layer {
 public:
  Dropout(std::string name, float drop_prob, Rng* rng);

  std::string name() const override { return name_; }
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  std::string name_;
  float drop_prob_;
  Rng rng_;
  Tensor mask_;
  bool last_was_training_ = false;
};

}  // namespace adr

#endif  // ADR_NN_DROPOUT_H_
