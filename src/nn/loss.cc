#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace adr {

LossResult SoftmaxCrossEntropy(const Tensor& logits,
                               const std::vector<int>& labels) {
  ADR_CHECK_EQ(logits.shape().rank(), 2);
  const int64_t n = logits.shape()[0];
  const int64_t classes = logits.shape()[1];
  ADR_CHECK_EQ(static_cast<int64_t>(labels.size()), n);

  LossResult result;
  result.grad_logits = Tensor(logits.shape());
  const float* in = logits.data();
  float* grad = result.grad_logits.data();
  const float inv_n = 1.0f / static_cast<float>(n);
  double total_loss = 0.0;

  for (int64_t i = 0; i < n; ++i) {
    const float* row = in + i * classes;
    float* grow = grad + i * classes;
    const int label = labels[static_cast<size_t>(i)];
    ADR_CHECK(label >= 0 && label < classes) << "label out of range";

    float max_logit = row[0];
    int64_t argmax = 0;
    for (int64_t j = 1; j < classes; ++j) {
      if (row[j] > max_logit) {
        max_logit = row[j];
        argmax = j;
      }
    }
    if (argmax == label) ++result.num_correct;

    double sum_exp = 0.0;
    for (int64_t j = 0; j < classes; ++j) {
      sum_exp += std::exp(static_cast<double>(row[j] - max_logit));
    }
    const double log_sum = std::log(sum_exp);
    total_loss += log_sum - static_cast<double>(row[label] - max_logit);

    for (int64_t j = 0; j < classes; ++j) {
      const double p =
          std::exp(static_cast<double>(row[j] - max_logit)) / sum_exp;
      grow[j] = static_cast<float>(p) * inv_n;
    }
    grow[label] -= inv_n;
  }
  result.loss = total_loss / static_cast<double>(n);
  return result;
}

Tensor Softmax(const Tensor& logits) {
  ADR_CHECK_EQ(logits.shape().rank(), 2);
  const int64_t n = logits.shape()[0];
  const int64_t classes = logits.shape()[1];
  Tensor out(logits.shape());
  const float* in = logits.data();
  float* dst = out.data();
  for (int64_t i = 0; i < n; ++i) {
    const float* row = in + i * classes;
    float* orow = dst + i * classes;
    const float max_logit = *std::max_element(row, row + classes);
    double sum_exp = 0.0;
    for (int64_t j = 0; j < classes; ++j) {
      const double e = std::exp(static_cast<double>(row[j] - max_logit));
      orow[j] = static_cast<float>(e);
      sum_exp += e;
    }
    const float inv = static_cast<float>(1.0 / sum_exp);
    for (int64_t j = 0; j < classes; ++j) orow[j] *= inv;
  }
  return out;
}

LossResult MeanSquaredError(const Tensor& predictions,
                            const Tensor& targets) {
  ADR_CHECK(predictions.SameShape(targets));
  const int64_t total = predictions.num_elements();
  const int64_t n = predictions.shape().rank() > 0
                        ? predictions.shape()[0]
                        : int64_t{1};
  LossResult result;
  result.grad_logits = Tensor(predictions.shape());
  const float* p = predictions.data();
  const float* t = targets.data();
  float* g = result.grad_logits.data();
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (int64_t i = 0; i < total; ++i) {
    const float diff = p[i] - t[i];
    loss += 0.5 * static_cast<double>(diff) * diff;
    g[i] = diff * inv_n;
  }
  result.loss = loss / static_cast<double>(n);
  return result;
}

}  // namespace adr
