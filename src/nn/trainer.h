// Training-step and evaluation helpers shared by examples, strategies and
// benches.

#ifndef ADR_NN_TRAINER_H_
#define ADR_NN_TRAINER_H_

#include <cstdint>

#include "data/dataloader.h"
#include "data/dataset.h"
#include "nn/loss.h"
#include "nn/network.h"
#include "nn/optimizer.h"

namespace adr {

/// \brief Outcome of one optimization step.
struct StepResult {
  double loss = 0.0;
  double accuracy = 0.0;  ///< training accuracy of this batch
};

/// \brief Forward + loss + backward + optimizer step on one batch.
StepResult TrainStep(Network* network, Optimizer* optimizer,
                     const Batch& batch);

/// \brief Mean loss/accuracy over one batch without updating weights.
StepResult EvaluateBatch(Network* network, const Batch& batch,
                         bool training_mode = false);

/// \brief Accuracy over the first `max_samples` samples of `dataset`,
/// evaluated in batches of `batch_size` (inference mode).
double EvaluateAccuracy(Network* network, const Dataset& dataset,
                        int64_t batch_size, int64_t max_samples = -1);

}  // namespace adr

#endif  // ADR_NN_TRAINER_H_
