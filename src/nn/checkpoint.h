// Network checkpointing: saves and restores all learnable parameters.
//
// File format (binary, little-endian):
//   magic "ADRCKPT1" (8 bytes)
//   u64 parameter count
//   per parameter: string name ("<index>" today), u64 rank, i64 dims...,
//                  length-prefixed float data.
// Loading validates every shape against the target network, so a
// checkpoint can only be restored into an architecturally identical model.

#ifndef ADR_NN_CHECKPOINT_H_
#define ADR_NN_CHECKPOINT_H_

#include <string>

#include "nn/network.h"
#include "util/status.h"

namespace adr {

/// \brief Writes all parameters of `network` to `path`.
Status SaveCheckpoint(const Network& network, const std::string& path);

/// \brief Restores parameters from `path` into `network`.
///
/// Returns InvalidArgument when the parameter count or any shape differs
/// from the target network, leaving already-copied parameters modified
/// (callers should treat a failed load as fatal for the model instance).
Status LoadCheckpoint(const std::string& path, Network* network);

}  // namespace adr

#endif  // ADR_NN_CHECKPOINT_H_
