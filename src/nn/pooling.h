// Spatial pooling layers over NCHW tensors.

#ifndef ADR_NN_POOLING_H_
#define ADR_NN_POOLING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace adr {

struct PoolConfig {
  int64_t kernel = 2;
  int64_t stride = 2;
};

/// \brief Max pooling; remembers argmax positions for the backward pass.
class MaxPool2d : public Layer {
 public:
  MaxPool2d(std::string name, const PoolConfig& config)
      : name_(std::move(name)), config_(config) {}

  std::string name() const override { return name_; }
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  std::string name_;
  PoolConfig config_;
  Shape input_shape_;
  std::vector<int64_t> argmax_;  ///< flat input index per output element
};

/// \brief Average pooling.
class AvgPool2d : public Layer {
 public:
  AvgPool2d(std::string name, const PoolConfig& config)
      : name_(std::move(name)), config_(config) {}

  std::string name() const override { return name_; }
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  std::string name_;
  PoolConfig config_;
  Shape input_shape_;
};

}  // namespace adr

#endif  // ADR_NN_POOLING_H_
