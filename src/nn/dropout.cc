#include "nn/dropout.h"

#include "util/check.h"

namespace adr {

Dropout::Dropout(std::string name, float drop_prob, Rng* rng)
    : name_(std::move(name)), drop_prob_(drop_prob), rng_(rng->Split()) {
  ADR_CHECK(drop_prob >= 0.0f && drop_prob < 1.0f)
      << "drop_prob must be in [0, 1), got " << drop_prob;
}

Tensor Dropout::Forward(const Tensor& input, bool training) {
  last_was_training_ = training;
  if (!training || drop_prob_ == 0.0f) return input;
  const float keep = 1.0f - drop_prob_;
  const float scale = 1.0f / keep;
  mask_ = Tensor(input.shape());
  Tensor out = input;
  float* m = mask_.data();
  float* o = out.data();
  const int64_t n = out.num_elements();
  for (int64_t i = 0; i < n; ++i) {
    if (rng_.NextDouble() < drop_prob_) {
      m[i] = 0.0f;
      o[i] = 0.0f;
    } else {
      m[i] = scale;
      o[i] *= scale;
    }
  }
  return out;
}

Tensor Dropout::Backward(const Tensor& grad_output) {
  if (!last_was_training_ || drop_prob_ == 0.0f) return grad_output;
  ADR_CHECK(grad_output.SameShape(mask_)) << "Backward before Forward";
  Tensor grad = grad_output;
  float* g = grad.data();
  const float* m = mask_.data();
  const int64_t n = grad.num_elements();
  for (int64_t i = 0; i < n; ++i) g[i] *= m[i];
  return grad;
}

}  // namespace adr
