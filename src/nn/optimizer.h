// First-order optimizers over (parameter, gradient) pairs.

#ifndef ADR_NN_OPTIMIZER_H_
#define ADR_NN_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace adr {

/// \brief Abstract optimizer; Step applies one update given matched
/// parameter and gradient lists (the same lists every call).
class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual std::string name() const = 0;
  virtual void Step(const std::vector<Tensor*>& params,
                    const std::vector<Tensor*>& grads) = 0;

  void set_learning_rate(float lr) { learning_rate_ = lr; }
  float learning_rate() const { return learning_rate_; }

  /// \brief Decoupled weight decay (AdamW-style): after the gradient
  /// update, parameters are shrunk by lr * weight_decay * p. 0 disables.
  void set_weight_decay(float weight_decay) { weight_decay_ = weight_decay; }
  float weight_decay() const { return weight_decay_; }

 protected:
  explicit Optimizer(float learning_rate) : learning_rate_(learning_rate) {}

  /// Applies the decoupled decay term to all parameters.
  void ApplyWeightDecay(const std::vector<Tensor*>& params);

  float learning_rate_;
  float weight_decay_ = 0.0f;
};

/// \brief Plain stochastic gradient descent.
class Sgd : public Optimizer {
 public:
  explicit Sgd(float learning_rate) : Optimizer(learning_rate) {}
  std::string name() const override { return "sgd"; }
  void Step(const std::vector<Tensor*>& params,
            const std::vector<Tensor*>& grads) override;
};

/// \brief SGD with classical momentum: v = mu*v - lr*g; p += v.
class MomentumSgd : public Optimizer {
 public:
  MomentumSgd(float learning_rate, float momentum)
      : Optimizer(learning_rate), momentum_(momentum) {}
  std::string name() const override { return "momentum"; }
  void Step(const std::vector<Tensor*>& params,
            const std::vector<Tensor*>& grads) override;

 private:
  float momentum_;
  std::vector<Tensor> velocity_;
};

/// \brief Adam (Kingma & Ba 2014), with bias correction.
class Adam : public Optimizer {
 public:
  explicit Adam(float learning_rate, float beta1 = 0.9f, float beta2 = 0.999f,
                float epsilon = 1e-8f)
      : Optimizer(learning_rate),
        beta1_(beta1),
        beta2_(beta2),
        epsilon_(epsilon) {}
  std::string name() const override { return "adam"; }
  void Step(const std::vector<Tensor*>& params,
            const std::vector<Tensor*>& grads) override;

 private:
  float beta1_, beta2_, epsilon_;
  int64_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace adr

#endif  // ADR_NN_OPTIMIZER_H_
