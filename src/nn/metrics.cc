#include "nn/metrics.h"

#include <algorithm>

#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/csv_writer.h"

namespace adr {

ConfusionMatrix::ConfusionMatrix(int num_classes)
    : num_classes_(num_classes),
      counts_(static_cast<size_t>(num_classes) * num_classes, 0) {
  ADR_CHECK_GT(num_classes, 1);
}

void ConfusionMatrix::AddBatch(const Tensor& logits,
                               const std::vector<int>& labels) {
  ADR_CHECK_EQ(logits.shape().rank(), 2);
  ADR_CHECK_EQ(logits.shape()[0], static_cast<int64_t>(labels.size()));
  for (size_t i = 0; i < labels.size(); ++i) {
    Add(labels[i],
        static_cast<int>(ArgMaxRow(logits, static_cast<int64_t>(i))));
  }
}

void ConfusionMatrix::Add(int true_label, int predicted_label) {
  ADR_CHECK(true_label >= 0 && true_label < num_classes_);
  ADR_CHECK(predicted_label >= 0 && predicted_label < num_classes_);
  ++counts_[static_cast<size_t>(true_label) * num_classes_ +
            predicted_label];
  ++total_;
}

int64_t ConfusionMatrix::count(int true_label, int predicted_label) const {
  ADR_CHECK(true_label >= 0 && true_label < num_classes_);
  ADR_CHECK(predicted_label >= 0 && predicted_label < num_classes_);
  return counts_[static_cast<size_t>(true_label) * num_classes_ +
                 predicted_label];
}

double ConfusionMatrix::Accuracy() const {
  if (total_ == 0) return 0.0;
  int64_t diagonal = 0;
  for (int c = 0; c < num_classes_; ++c) diagonal += count(c, c);
  return static_cast<double>(diagonal) / static_cast<double>(total_);
}

double ConfusionMatrix::Recall(int label) const {
  int64_t row = 0;
  for (int c = 0; c < num_classes_; ++c) row += count(label, c);
  if (row == 0) return 0.0;
  return static_cast<double>(count(label, label)) /
         static_cast<double>(row);
}

double ConfusionMatrix::Precision(int label) const {
  int64_t column = 0;
  for (int c = 0; c < num_classes_; ++c) column += count(c, label);
  if (column == 0) return 0.0;
  return static_cast<double>(count(label, label)) /
         static_cast<double>(column);
}

double ConfusionMatrix::MacroRecall() const {
  double sum = 0.0;
  int observed = 0;
  for (int c = 0; c < num_classes_; ++c) {
    int64_t row = 0;
    for (int j = 0; j < num_classes_; ++j) row += count(c, j);
    if (row > 0) {
      sum += Recall(c);
      ++observed;
    }
  }
  return observed == 0 ? 0.0 : sum / observed;
}

void ConfusionMatrix::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

double TrainingHistory::RecentMeanLoss(size_t window) const {
  if (entries_.empty()) return 0.0;
  const size_t n = std::min(window, entries_.size());
  double sum = 0.0;
  for (size_t i = entries_.size() - n; i < entries_.size(); ++i) {
    sum += entries_[i].loss;
  }
  return sum / static_cast<double>(n);
}

double TrainingHistory::BestEvalAccuracy() const {
  double best = -1.0;
  for (const Entry& entry : entries_) {
    best = std::max(best, entry.eval_accuracy);
  }
  return best;
}

Status TrainingHistory::WriteCsv(const std::string& path) const {
  CsvWriter writer;
  ADR_RETURN_NOT_OK(CsvWriter::Open(
      path, {"step", "loss", "train_accuracy", "eval_accuracy",
             "learning_rate", "seconds"},
      &writer));
  for (const Entry& entry : entries_) {
    ADR_RETURN_NOT_OK(writer.WriteRow(std::vector<double>{
        static_cast<double>(entry.step), entry.loss, entry.train_accuracy,
        entry.eval_accuracy, entry.learning_rate, entry.seconds_elapsed}));
  }
  writer.Close();
  return Status::OK();
}

}  // namespace adr
