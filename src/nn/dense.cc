#include "nn/dense.h"

#include <cmath>

#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace adr {

Dense::Dense(std::string name, int64_t in_features, int64_t out_features,
             Rng* rng)
    : name_(std::move(name)),
      in_features_(in_features),
      out_features_(out_features) {
  ADR_CHECK_GT(in_features, 0);
  ADR_CHECK_GT(out_features, 0);
  const float stddev = std::sqrt(2.0f / static_cast<float>(in_features));
  weight_ = Tensor::RandomGaussian(Shape({in_features, out_features}), rng,
                                   0.0f, stddev);
  bias_ = Tensor(Shape({out_features}));
  grad_weight_ = Tensor(Shape({in_features, out_features}));
  grad_bias_ = Tensor(Shape({out_features}));
}

Tensor Dense::Forward(const Tensor& input, bool /*training*/) {
  ADR_CHECK_EQ(input.shape().rank(), 2);
  ADR_CHECK_EQ(input.shape()[1], in_features_);
  cached_input_ = input;
  const int64_t batch = input.shape()[0];
  Tensor out(Shape({batch, out_features_}));
  Gemm(input.data(), weight_.data(), out.data(), batch, in_features_,
       out_features_);
  AddRowBias(bias_, &out);
  return out;
}

Tensor Dense::Backward(const Tensor& grad_output) {
  const int64_t batch = cached_input_.shape()[0];
  ADR_CHECK(grad_output.shape() == Shape({batch, out_features_}));

  GemmTransA(cached_input_.data(), grad_output.data(), grad_weight_.data(),
             in_features_, batch, out_features_);
  grad_bias_ = ColumnSums(grad_output);

  Tensor grad_input(Shape({batch, in_features_}));
  GemmTransB(grad_output.data(), weight_.data(), grad_input.data(), batch,
             out_features_, in_features_);
  return grad_input;
}

Tensor Flatten::Forward(const Tensor& input, bool /*training*/) {
  input_shape_ = input.shape();
  const int64_t batch = input.shape()[0];
  return input.Reshaped(Shape({batch, input.num_elements() / batch}));
}

Tensor Flatten::Backward(const Tensor& grad_output) {
  ADR_CHECK_GT(input_shape_.rank(), 0) << "Backward before Forward";
  return grad_output.Reshaped(input_shape_);
}

}  // namespace adr
