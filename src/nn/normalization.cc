#include "nn/normalization.h"

#include <cmath>

#include "util/check.h"

namespace adr {

BatchNorm2d::BatchNorm2d(std::string name, int64_t channels, float momentum,
                         float epsilon)
    : name_(std::move(name)),
      channels_(channels),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_(Tensor::Ones(Shape({channels}))),
      beta_(Tensor(Shape({channels}))),
      grad_gamma_(Tensor(Shape({channels}))),
      grad_beta_(Tensor(Shape({channels}))),
      running_mean_(Tensor(Shape({channels}))),
      running_var_(Tensor::Ones(Shape({channels}))) {
  ADR_CHECK_GT(channels, 0);
}

Tensor BatchNorm2d::Forward(const Tensor& input, bool training) {
  ADR_CHECK_EQ(input.shape().rank(), 4);
  ADR_CHECK_EQ(input.shape()[1], channels_);
  const int64_t batch = input.shape()[0];
  const int64_t hw = input.shape()[2] * input.shape()[3];
  const int64_t per_channel = batch * hw;
  last_was_training_ = training;

  Tensor mean(Shape({channels_}));
  Tensor var(Shape({channels_}));
  if (training) {
    const float* src = input.data();
    for (int64_t c = 0; c < channels_; ++c) {
      double sum = 0.0, sum_sq = 0.0;
      for (int64_t n = 0; n < batch; ++n) {
        const float* plane = src + (n * channels_ + c) * hw;
        for (int64_t p = 0; p < hw; ++p) {
          sum += plane[p];
          sum_sq += static_cast<double>(plane[p]) * plane[p];
        }
      }
      const double m = sum / static_cast<double>(per_channel);
      mean.at(c) = static_cast<float>(m);
      var.at(c) = static_cast<float>(
          sum_sq / static_cast<double>(per_channel) - m * m);
    }
    for (int64_t c = 0; c < channels_; ++c) {
      running_mean_.at(c) =
          momentum_ * running_mean_.at(c) + (1.0f - momentum_) * mean.at(c);
      running_var_.at(c) =
          momentum_ * running_var_.at(c) + (1.0f - momentum_) * var.at(c);
    }
  } else {
    mean = running_mean_;
    var = running_var_;
  }

  batch_inv_std_ = Tensor(Shape({channels_}));
  for (int64_t c = 0; c < channels_; ++c) {
    batch_inv_std_.at(c) = 1.0f / std::sqrt(var.at(c) + epsilon_);
  }

  normalized_ = Tensor(input.shape());
  Tensor out(input.shape());
  const float* src = input.data();
  float* norm = normalized_.data();
  float* dst = out.data();
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t c = 0; c < channels_; ++c) {
      const float m = mean.at(c);
      const float inv = batch_inv_std_.at(c);
      const float g = gamma_.at(c);
      const float b = beta_.at(c);
      const int64_t base = (n * channels_ + c) * hw;
      for (int64_t p = 0; p < hw; ++p) {
        const float x_hat = (src[base + p] - m) * inv;
        norm[base + p] = x_hat;
        dst[base + p] = g * x_hat + b;
      }
    }
  }
  return out;
}

Tensor BatchNorm2d::Backward(const Tensor& grad_output) {
  ADR_CHECK(grad_output.SameShape(normalized_)) << "Backward before Forward";
  const int64_t batch = grad_output.shape()[0];
  const int64_t hw = grad_output.shape()[2] * grad_output.shape()[3];
  const int64_t per_channel = batch * hw;

  grad_gamma_.SetZero();
  grad_beta_.SetZero();
  const float* dy = grad_output.data();
  const float* x_hat = normalized_.data();
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t c = 0; c < channels_; ++c) {
      const int64_t base = (n * channels_ + c) * hw;
      double dg = 0.0, db = 0.0;
      for (int64_t p = 0; p < hw; ++p) {
        dg += static_cast<double>(dy[base + p]) * x_hat[base + p];
        db += dy[base + p];
      }
      grad_gamma_.at(c) += static_cast<float>(dg);
      grad_beta_.at(c) += static_cast<float>(db);
    }
  }

  Tensor grad_input(grad_output.shape());
  float* dx = grad_input.data();
  if (!last_was_training_) {
    // Inference-mode backward (running stats are constants):
    // dx = dy * gamma * inv_std.
    for (int64_t n = 0; n < batch; ++n) {
      for (int64_t c = 0; c < channels_; ++c) {
        const float scale = gamma_.at(c) * batch_inv_std_.at(c);
        const int64_t base = (n * channels_ + c) * hw;
        for (int64_t p = 0; p < hw; ++p) {
          dx[base + p] = dy[base + p] * scale;
        }
      }
    }
    return grad_input;
  }

  // Training-mode backward:
  // dx = gamma*inv_std/N * (N*dy - sum(dy) - x_hat * sum(dy*x_hat)).
  const float inv_n = 1.0f / static_cast<float>(per_channel);
  for (int64_t c = 0; c < channels_; ++c) {
    const float sum_dy = grad_beta_.at(c);
    const float sum_dy_xhat = grad_gamma_.at(c);
    const float scale = gamma_.at(c) * batch_inv_std_.at(c) * inv_n;
    for (int64_t n = 0; n < batch; ++n) {
      const int64_t base = (n * channels_ + c) * hw;
      for (int64_t p = 0; p < hw; ++p) {
        dx[base + p] =
            scale * (static_cast<float>(per_channel) * dy[base + p] -
                     sum_dy - x_hat[base + p] * sum_dy_xhat);
      }
    }
  }
  return grad_input;
}

LocalResponseNorm::LocalResponseNorm(std::string name, int64_t size,
                                     float alpha, float beta, float k)
    : name_(std::move(name)), size_(size), alpha_(alpha), beta_(beta), k_(k) {
  ADR_CHECK_GT(size, 0);
}

Tensor LocalResponseNorm::Forward(const Tensor& input, bool /*training*/) {
  ADR_CHECK_EQ(input.shape().rank(), 4);
  input_ = input;
  const int64_t batch = input.shape()[0];
  const int64_t channels = input.shape()[1];
  const int64_t hw = input.shape()[2] * input.shape()[3];
  const int64_t half = size_ / 2;
  const float alpha_over_n = alpha_ / static_cast<float>(size_);

  scale_ = Tensor(input.shape());
  Tensor out(input.shape());
  const float* src = input.data();
  float* sc = scale_.data();
  float* dst = out.data();
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t c = 0; c < channels; ++c) {
      const int64_t lo = std::max<int64_t>(0, c - half);
      const int64_t hi = std::min<int64_t>(channels - 1, c + half);
      const int64_t base = (n * channels + c) * hw;
      for (int64_t p = 0; p < hw; ++p) {
        float window = 0.0f;
        for (int64_t cc = lo; cc <= hi; ++cc) {
          const float v = src[(n * channels + cc) * hw + p];
          window += v * v;
        }
        const float s = k_ + alpha_over_n * window;
        sc[base + p] = s;
        dst[base + p] = src[base + p] * std::pow(s, -beta_);
      }
    }
  }
  return out;
}

Tensor LocalResponseNorm::Backward(const Tensor& grad_output) {
  ADR_CHECK(grad_output.SameShape(input_)) << "Backward before Forward";
  const int64_t batch = input_.shape()[0];
  const int64_t channels = input_.shape()[1];
  const int64_t hw = input_.shape()[2] * input_.shape()[3];
  const int64_t half = size_ / 2;
  const float alpha_over_n = alpha_ / static_cast<float>(size_);

  Tensor grad_input(input_.shape());
  const float* x = input_.data();
  const float* sc = scale_.data();
  const float* dy = grad_output.data();
  float* dx = grad_input.data();
  // dx_i = dy_i * s_i^-beta
  //        - 2*alpha/n*beta * x_i * sum_{j: i in window(j)}
  //              dy_j * x_j * s_j^{-beta-1}.
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t c = 0; c < channels; ++c) {
      const int64_t lo = std::max<int64_t>(0, c - half);
      const int64_t hi = std::min<int64_t>(channels - 1, c + half);
      const int64_t base = (n * channels + c) * hw;
      for (int64_t p = 0; p < hw; ++p) {
        float acc = dy[base + p] * std::pow(sc[base + p], -beta_);
        float cross = 0.0f;
        for (int64_t cc = lo; cc <= hi; ++cc) {
          const int64_t j = (n * channels + cc) * hw + p;
          cross += dy[j] * x[j] * std::pow(sc[j], -beta_ - 1.0f);
        }
        acc -= 2.0f * alpha_over_n * beta_ * x[base + p] * cross;
        dx[base + p] = acc;
      }
    }
  }
  return grad_input;
}

}  // namespace adr
