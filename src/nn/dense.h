// Dense (fully connected) layer and Flatten adapter.

#ifndef ADR_NN_DENSE_H_
#define ADR_NN_DENSE_H_

#include <string>
#include <vector>

#include "nn/layer.h"
#include "util/rng.h"

namespace adr {

/// \brief Fully connected layer: y = x * W + b, x is [N, in], W [in, out].
class Dense : public Layer {
 public:
  Dense(std::string name, int64_t in_features, int64_t out_features,
        Rng* rng);

  std::string name() const override { return name_; }
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Tensor*> Parameters() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> Gradients() override {
    return {&grad_weight_, &grad_bias_};
  }
  double ForwardMacs(int64_t batch) const override {
    return static_cast<double>(batch) * in_features_ * out_features_;
  }

 private:
  std::string name_;
  int64_t in_features_;
  int64_t out_features_;
  Tensor weight_;
  Tensor bias_;
  Tensor grad_weight_;
  Tensor grad_bias_;
  Tensor cached_input_;
};

/// \brief Flattens [N, C, H, W] to [N, C*H*W]; restores the shape on the
/// way back.
class Flatten : public Layer {
 public:
  explicit Flatten(std::string name) : name_(std::move(name)) {}

  std::string name() const override { return name_; }
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  std::string name_;
  Shape input_shape_;
};

}  // namespace adr

#endif  // ADR_NN_DENSE_H_
