#include "nn/pooling.h"

#include <limits>

#include "util/check.h"

namespace adr {

namespace {

// Output spatial size of pooling without padding; allows a partial final
// window when the input is not evenly tiled (matches common "valid + ceil"
// behaviour closely enough for our networks, which are sized to tile).
int64_t PooledSize(int64_t in, int64_t kernel, int64_t stride) {
  ADR_CHECK_GE(in, kernel);
  return (in - kernel) / stride + 1;
}

}  // namespace

Tensor MaxPool2d::Forward(const Tensor& input, bool /*training*/) {
  ADR_CHECK_EQ(input.shape().rank(), 4);
  input_shape_ = input.shape();
  const int64_t batch = input.shape()[0], channels = input.shape()[1];
  const int64_t ih = input.shape()[2], iw = input.shape()[3];
  const int64_t oh = PooledSize(ih, config_.kernel, config_.stride);
  const int64_t ow = PooledSize(iw, config_.kernel, config_.stride);

  Tensor out(Shape({batch, channels, oh, ow}));
  argmax_.assign(static_cast<size_t>(out.num_elements()), 0);
  const float* src = input.data();
  float* dst = out.data();
  int64_t out_idx = 0;
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t c = 0; c < channels; ++c) {
      const float* plane = src + (n * channels + c) * ih * iw;
      const int64_t plane_base = (n * channels + c) * ih * iw;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          int64_t best_idx = 0;
          for (int64_t ky = 0; ky < config_.kernel; ++ky) {
            const int64_t y = oy * config_.stride + ky;
            for (int64_t kx = 0; kx < config_.kernel; ++kx) {
              const int64_t x = ox * config_.stride + kx;
              const float v = plane[y * iw + x];
              if (v > best) {
                best = v;
                best_idx = plane_base + y * iw + x;
              }
            }
          }
          dst[out_idx] = best;
          argmax_[static_cast<size_t>(out_idx)] = best_idx;
          ++out_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::Backward(const Tensor& grad_output) {
  ADR_CHECK_EQ(static_cast<size_t>(grad_output.num_elements()),
               argmax_.size())
      << "Backward before Forward";
  Tensor grad_input(input_shape_);
  float* dst = grad_input.data();
  const float* src = grad_output.data();
  for (size_t i = 0; i < argmax_.size(); ++i) {
    dst[argmax_[i]] += src[i];
  }
  return grad_input;
}

Tensor AvgPool2d::Forward(const Tensor& input, bool /*training*/) {
  ADR_CHECK_EQ(input.shape().rank(), 4);
  input_shape_ = input.shape();
  const int64_t batch = input.shape()[0], channels = input.shape()[1];
  const int64_t ih = input.shape()[2], iw = input.shape()[3];
  const int64_t oh = PooledSize(ih, config_.kernel, config_.stride);
  const int64_t ow = PooledSize(iw, config_.kernel, config_.stride);
  const float inv = 1.0f / static_cast<float>(config_.kernel * config_.kernel);

  Tensor out(Shape({batch, channels, oh, ow}));
  const float* src = input.data();
  float* dst = out.data();
  int64_t out_idx = 0;
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t c = 0; c < channels; ++c) {
      const float* plane = src + (n * channels + c) * ih * iw;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          float sum = 0.0f;
          for (int64_t ky = 0; ky < config_.kernel; ++ky) {
            const int64_t y = oy * config_.stride + ky;
            for (int64_t kx = 0; kx < config_.kernel; ++kx) {
              sum += plane[y * iw + ox * config_.stride + kx];
            }
          }
          dst[out_idx++] = sum * inv;
        }
      }
    }
  }
  return out;
}

Tensor AvgPool2d::Backward(const Tensor& grad_output) {
  ADR_CHECK_EQ(input_shape_.rank(), 4) << "Backward before Forward";
  const int64_t batch = input_shape_[0], channels = input_shape_[1];
  const int64_t ih = input_shape_[2], iw = input_shape_[3];
  const int64_t oh = grad_output.shape()[2], ow = grad_output.shape()[3];
  const float inv = 1.0f / static_cast<float>(config_.kernel * config_.kernel);

  Tensor grad_input(input_shape_);
  float* dst = grad_input.data();
  const float* src = grad_output.data();
  int64_t out_idx = 0;
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t c = 0; c < channels; ++c) {
      float* plane = dst + (n * channels + c) * ih * iw;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          const float g = src[out_idx++] * inv;
          for (int64_t ky = 0; ky < config_.kernel; ++ky) {
            const int64_t y = oy * config_.stride + ky;
            for (int64_t kx = 0; kx < config_.kernel; ++kx) {
              const int64_t x = ox * config_.stride + kx;
              plane[y * iw + x] += g;
            }
          }
        }
      }
    }
  }
  return grad_input;
}

}  // namespace adr
