#include "nn/lr_schedule.h"

#include <cmath>

#include "util/check.h"

namespace adr {

float StepDecayLr::LearningRate(int64_t step) const {
  ADR_CHECK_GT(interval_, 0);
  const int64_t decays = step / interval_;
  return initial_ * std::pow(decay_, static_cast<float>(decays));
}

float WarmupCosineLr::LearningRate(int64_t step) const {
  ADR_CHECK_GE(warmup_steps_, 0);
  ADR_CHECK_GT(total_steps_, warmup_steps_);
  if (step < warmup_steps_) {
    return peak_ * static_cast<float>(step + 1) /
           static_cast<float>(warmup_steps_);
  }
  if (step >= total_steps_) return floor_;
  const double progress =
      static_cast<double>(step - warmup_steps_) /
      static_cast<double>(total_steps_ - warmup_steps_);
  const double cosine = 0.5 * (1.0 + std::cos(M_PI * progress));
  return floor_ + (peak_ - floor_) * static_cast<float>(cosine);
}

}  // namespace adr
