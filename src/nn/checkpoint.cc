#include "nn/checkpoint.h"

#include <cstring>

#include "util/serialize.h"

namespace adr {

namespace {
constexpr char kMagic[8] = {'A', 'D', 'R', 'C', 'K', 'P', 'T', '1'};
}  // namespace

Status SaveCheckpoint(const Network& network, const std::string& path) {
  BinaryWriter writer;
  ADR_RETURN_NOT_OK(BinaryWriter::Open(path, &writer));
  ADR_RETURN_NOT_OK(writer.WriteString(std::string(kMagic, sizeof(kMagic))));

  // Learnable parameters followed by non-learnable state (BatchNorm
  // running statistics) — both are needed to reproduce inference.
  std::vector<Tensor*> params = network.Parameters();
  for (Tensor* state : network.StateTensors()) params.push_back(state);
  ADR_RETURN_NOT_OK(writer.WriteU64(params.size()));
  for (size_t i = 0; i < params.size(); ++i) {
    const Tensor* param = params[i];
    ADR_RETURN_NOT_OK(writer.WriteString(std::to_string(i)));
    ADR_RETURN_NOT_OK(writer.WriteU64(
        static_cast<uint64_t>(param->shape().rank())));
    for (int64_t dim : param->shape().dims()) {
      ADR_RETURN_NOT_OK(writer.WriteI64(dim));
    }
    ADR_RETURN_NOT_OK(writer.WriteFloats(
        param->data(), static_cast<size_t>(param->num_elements())));
  }
  return writer.Close();
}

Status LoadCheckpoint(const std::string& path, Network* network) {
  BinaryReader reader;
  ADR_RETURN_NOT_OK(BinaryReader::Open(path, &reader));

  std::string magic;
  ADR_RETURN_NOT_OK(reader.ReadString(&magic, sizeof(kMagic)));
  if (magic.size() != sizeof(kMagic) ||
      std::memcmp(magic.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not an ADR checkpoint: " + path);
  }

  std::vector<Tensor*> params = network->Parameters();
  for (Tensor* state : network->StateTensors()) params.push_back(state);
  uint64_t count = 0;
  ADR_RETURN_NOT_OK(reader.ReadU64(&count));
  if (count != params.size()) {
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(count) + " parameters, network " +
        std::to_string(params.size()));
  }

  for (size_t i = 0; i < params.size(); ++i) {
    std::string name;
    ADR_RETURN_NOT_OK(reader.ReadString(&name, 64));
    uint64_t rank = 0;
    ADR_RETURN_NOT_OK(reader.ReadU64(&rank));
    if (rank > 8) {
      return Status::InvalidArgument("implausible parameter rank");
    }
    std::vector<int64_t> dims(static_cast<size_t>(rank));
    for (auto& dim : dims) {
      ADR_RETURN_NOT_OK(reader.ReadI64(&dim));
      if (dim <= 0) return Status::InvalidArgument("non-positive dimension");
    }
    const Shape stored(dims);
    if (stored != params[i]->shape()) {
      return Status::InvalidArgument(
          "parameter " + std::to_string(i) + " shape mismatch: checkpoint " +
          stored.ToString() + " vs network " +
          params[i]->shape().ToString());
    }
    ADR_RETURN_NOT_OK(reader.ReadFloats(
        params[i]->data(), static_cast<size_t>(params[i]->num_elements())));
  }
  return Status::OK();
}

}  // namespace adr
