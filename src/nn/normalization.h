// Normalization layers: BatchNorm2d (per-channel batch normalization) and
// LocalResponseNorm (the across-channel normalization AlexNet used).

#ifndef ADR_NN_NORMALIZATION_H_
#define ADR_NN_NORMALIZATION_H_

#include <string>
#include <vector>

#include "nn/layer.h"

namespace adr {

/// \brief Per-channel batch normalization over NCHW tensors
/// (Ioffe & Szegedy 2015), with learnable scale/shift and running
/// statistics for inference.
class BatchNorm2d : public Layer {
 public:
  BatchNorm2d(std::string name, int64_t channels, float momentum = 0.9f,
              float epsilon = 1e-5f);

  std::string name() const override { return name_; }
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Tensor*> Parameters() override { return {&gamma_, &beta_}; }
  std::vector<Tensor*> Gradients() override {
    return {&grad_gamma_, &grad_beta_};
  }
  std::vector<Tensor*> StateTensors() override {
    return {&running_mean_, &running_var_};
  }

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  std::string name_;
  int64_t channels_;
  float momentum_;
  float epsilon_;
  Tensor gamma_;         ///< [C] scale, initialized to 1
  Tensor beta_;          ///< [C] shift, initialized to 0
  Tensor grad_gamma_;
  Tensor grad_beta_;
  Tensor running_mean_;  ///< [C]
  Tensor running_var_;   ///< [C]
  // Cached from the last training Forward for Backward.
  Tensor normalized_;    ///< x_hat
  Tensor batch_inv_std_; ///< [C]
  bool last_was_training_ = false;
};

/// \brief AlexNet-style local response normalization across channels:
/// y = x / (k + alpha/n * sum_{nearby channels} x^2)^beta.
class LocalResponseNorm : public Layer {
 public:
  LocalResponseNorm(std::string name, int64_t size = 5, float alpha = 1e-4f,
                    float beta = 0.75f, float k = 2.0f);

  std::string name() const override { return name_; }
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  std::string name_;
  int64_t size_;
  float alpha_;
  float beta_;
  float k_;
  Tensor input_;  ///< cached
  Tensor scale_;  ///< k + alpha/n * window sums of x^2
};

}  // namespace adr

#endif  // ADR_NN_NORMALIZATION_H_
