#include "nn/activations.h"

#include <cmath>

#include "util/check.h"

namespace adr {

Tensor Relu::Forward(const Tensor& input, bool /*training*/) {
  Tensor out = input;
  mask_ = Tensor(input.shape());
  float* o = out.data();
  float* m = mask_.data();
  const int64_t n = out.num_elements();
  for (int64_t i = 0; i < n; ++i) {
    if (o[i] > 0.0f) {
      m[i] = 1.0f;
    } else {
      o[i] = 0.0f;
      m[i] = 0.0f;
    }
  }
  return out;
}

Tensor Relu::Backward(const Tensor& grad_output) {
  ADR_CHECK(grad_output.SameShape(mask_)) << "Backward before Forward";
  Tensor grad = grad_output;
  float* g = grad.data();
  const float* m = mask_.data();
  const int64_t n = grad.num_elements();
  for (int64_t i = 0; i < n; ++i) g[i] *= m[i];
  return grad;
}

Tensor Tanh::Forward(const Tensor& input, bool /*training*/) {
  output_ = input;
  float* o = output_.data();
  const int64_t n = output_.num_elements();
  for (int64_t i = 0; i < n; ++i) o[i] = std::tanh(o[i]);
  return output_;
}

Tensor Tanh::Backward(const Tensor& grad_output) {
  ADR_CHECK(grad_output.SameShape(output_)) << "Backward before Forward";
  Tensor grad = grad_output;
  float* g = grad.data();
  const float* o = output_.data();
  const int64_t n = grad.num_elements();
  for (int64_t i = 0; i < n; ++i) g[i] *= 1.0f - o[i] * o[i];
  return grad;
}

}  // namespace adr
