// Conv2d: im2col + GEMM convolution, the baseline that deep reuse
// accelerates. Weight layout is the paper's: W is K x M with
// K = Ic*kh*kw and M = out_channels, so y = x_unfolded * W + b.

#ifndef ADR_NN_CONV2D_H_
#define ADR_NN_CONV2D_H_

#include <string>
#include <vector>

#include "nn/layer.h"
#include "tensor/im2col.h"
#include "tensor/tensor.h"
#include "tensor/workspace_arena.h"
#include "util/rng.h"

namespace adr {

/// \brief Spatial configuration of a conv layer (geometry minus batch size).
struct Conv2dConfig {
  int64_t in_channels = 0;
  int64_t out_channels = 0;
  int64_t kernel = 0;  ///< square kernel, kh == kw
  int64_t stride = 1;
  int64_t pad = 0;
  int64_t in_height = 0;  ///< expected input spatial size
  int64_t in_width = 0;
};

/// \brief Converts GEMM-output rows [N, M] (row order n, oy, ox) to a
/// [Nb, M, Oh, Ow] tensor.
Tensor RowsToNchw(const Tensor& rows, int64_t batch, int64_t channels,
                  int64_t height, int64_t width);

/// \brief Raw-buffer RowsToNchw; `out` holds batch*channels*height*width
/// floats and is fully overwritten.
void RowsToNchw(const float* rows, int64_t batch, int64_t channels,
                int64_t height, int64_t width, float* out);

/// \brief Inverse of RowsToNchw.
Tensor NchwToRows(const Tensor& nchw);

/// \brief NchwToRows into a caller-owned [N, M] buffer (fully overwritten).
void NchwToRows(const Tensor& nchw, float* out);

/// \brief Standard convolution layer.
class Conv2d : public Layer {
 public:
  Conv2d(std::string name, const Conv2dConfig& config, Rng* rng);

  std::string name() const override { return name_; }
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Tensor*> Parameters() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> Gradients() override {
    return {&grad_weight_, &grad_bias_};
  }
  double ForwardMacs(int64_t batch) const override;

  const Conv2dConfig& config() const { return config_; }
  /// \brief Geometry for the given batch size.
  ConvGeometry Geometry(int64_t batch) const;

  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }
  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

  /// \brief Step-scoped scratch arena (see WorkspaceArena); constant
  /// reserved_bytes()/alloc_slabs() after the first step at fixed shapes.
  const WorkspaceArena& workspace() const { return arena_; }

 private:
  std::string name_;
  Conv2dConfig config_;
  Tensor weight_;       ///< [K, M]
  Tensor bias_;         ///< [M]
  Tensor grad_weight_;  ///< [K, M]
  Tensor grad_bias_;    ///< [M]
  /// Step-scoped scratch; Reset() at the top of every Forward.
  WorkspaceArena arena_;
  /// Unfolded input kept for Backward — persistent across steps and only
  /// filled in training mode; eval streams L2-sized tiles instead.
  Tensor cached_cols_;
  int64_t cached_batch_ = 0;
};

}  // namespace adr

#endif  // ADR_NN_CONV2D_H_
