#include "nn/gradient_clip.h"

#include <algorithm>
#include <cmath>

#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace adr {

double GlobalGradientNorm(const std::vector<Tensor*>& grads) {
  double sum_sq = 0.0;
  for (const Tensor* grad : grads) {
    sum_sq += SquaredNorm(*grad);
  }
  return std::sqrt(sum_sq);
}

double ClipGradientsByGlobalNorm(const std::vector<Tensor*>& grads,
                                 double max_norm) {
  ADR_CHECK_GT(max_norm, 0.0);
  const double norm = GlobalGradientNorm(grads);
  if (norm > max_norm) {
    const float scale = static_cast<float>(max_norm / norm);
    for (Tensor* grad : grads) {
      ScaleInPlace(scale, grad);
    }
  }
  return norm;
}

void ClipGradientsByValue(const std::vector<Tensor*>& grads,
                          float max_value) {
  ADR_CHECK_GT(max_value, 0.0f);
  for (Tensor* grad : grads) {
    float* g = grad->data();
    const int64_t n = grad->num_elements();
    for (int64_t i = 0; i < n; ++i) {
      g[i] = std::clamp(g[i], -max_value, max_value);
    }
  }
}

}  // namespace adr
