// Classification metrics and a training-history recorder.

#ifndef ADR_NN_METRICS_H_
#define ADR_NN_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

namespace adr {

/// \brief Confusion counts for a C-class classifier; rows are true labels,
/// columns predictions.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);

  /// \brief Adds argmax predictions of `logits` ([N, C]) against `labels`.
  void AddBatch(const Tensor& logits, const std::vector<int>& labels);

  /// \brief Adds one (true, predicted) observation.
  void Add(int true_label, int predicted_label);

  int64_t count(int true_label, int predicted_label) const;
  int64_t total() const { return total_; }
  double Accuracy() const;
  /// \brief Recall of one class (diagonal / row sum); 0 when unseen.
  double Recall(int label) const;
  /// \brief Precision of one class (diagonal / column sum); 0 when never
  /// predicted.
  double Precision(int label) const;
  /// \brief Unweighted mean of per-class recalls over observed classes.
  double MacroRecall() const;

  int num_classes() const { return num_classes_; }
  void Reset();

 private:
  int num_classes_;
  int64_t total_ = 0;
  std::vector<int64_t> counts_;  ///< row-major C x C
};

/// \brief Append-only record of a training run; exports to CSV.
class TrainingHistory {
 public:
  struct Entry {
    int64_t step = 0;
    double loss = 0.0;
    double train_accuracy = 0.0;
    double eval_accuracy = -1.0;  ///< -1 when no eval happened this step
    double learning_rate = 0.0;
    double seconds_elapsed = 0.0;
  };

  void Record(const Entry& entry) { entries_.push_back(entry); }
  const std::vector<Entry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }

  /// \brief Mean loss of the last `window` entries (all if fewer).
  double RecentMeanLoss(size_t window) const;

  /// \brief Best eval accuracy observed, or -1 when none recorded.
  double BestEvalAccuracy() const;

  /// \brief Writes step,loss,train_acc,eval_acc,lr,seconds rows.
  Status WriteCsv(const std::string& path) const;

 private:
  std::vector<Entry> entries_;
};

}  // namespace adr

#endif  // ADR_NN_METRICS_H_
