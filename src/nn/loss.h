// Losses. SoftmaxCrossEntropy is the classification head used by all three
// benchmark networks.

#ifndef ADR_NN_LOSS_H_
#define ADR_NN_LOSS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace adr {

/// \brief Loss value and gradient w.r.t. the logits for one batch.
struct LossResult {
  double loss = 0.0;       ///< mean over the batch
  Tensor grad_logits;      ///< [N, classes], already divided by N
  int64_t num_correct = 0; ///< argmax(logits) == label count
};

/// \brief Numerically stable softmax + cross-entropy over integer labels.
///
/// `logits` is [N, classes]; `labels[i]` in [0, classes).
LossResult SoftmaxCrossEntropy(const Tensor& logits,
                               const std::vector<int>& labels);

/// \brief Row-wise softmax probabilities (for inspection / examples).
Tensor Softmax(const Tensor& logits);

/// \brief Mean squared error 1/(2N) * sum (pred - target)^2 with gradient.
LossResult MeanSquaredError(const Tensor& predictions, const Tensor& targets);

}  // namespace adr

#endif  // ADR_NN_LOSS_H_
