// Elementwise activation layers.

#ifndef ADR_NN_ACTIVATIONS_H_
#define ADR_NN_ACTIVATIONS_H_

#include <string>

#include "nn/layer.h"

namespace adr {

/// \brief Rectified linear unit, y = max(0, x).
class Relu : public Layer {
 public:
  explicit Relu(std::string name) : name_(std::move(name)) {}

  std::string name() const override { return name_; }
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  std::string name_;
  Tensor mask_;  ///< 1 where input > 0, else 0
};

/// \brief Hyperbolic tangent.
class Tanh : public Layer {
 public:
  explicit Tanh(std::string name) : name_(std::move(name)) {}

  std::string name() const override { return name_; }
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;

 private:
  std::string name_;
  Tensor output_;  ///< cached tanh(x)
};

}  // namespace adr

#endif  // ADR_NN_ACTIVATIONS_H_
