#include "util/parallel.h"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "util/trace.h"

namespace adr {

namespace {

// Work below this many arithmetic ops is cheaper to run inline than to
// wake a worker for (a wake is ~1-10us; 256K float MACs are ~50-100us).
constexpr int64_t kMinOpsPerChunk = int64_t{1} << 18;

// True while this thread is executing a pool chunk: nested Run calls
// (e.g. a parallelized kernel invoked from inside another parallel
// region) fall back to inline execution instead of deadlocking on the
// single job slot.
thread_local bool t_in_pool_chunk = false;

std::mutex& GlobalMutex() {
  static std::mutex mu;
  return mu;
}

ThreadPool*& GlobalSlot() {
  static ThreadPool* pool = nullptr;
  return pool;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RunChunks() {
  while (true) {
    const int64_t chunk = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job_chunks_) break;
    try {
      ADR_TRACE_SPAN("pool_chunk");
      (*job_)(chunk);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mu_);
      if (!error_) error_ = std::current_exception();
    }
  }
}

void ThreadPool::WorkerLoop(int worker_index) {
  Tracer::Global().SetCurrentThreadName("adr-worker-" +
                                        std::to_string(worker_index));
  uint64_t seen_generation = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
    }
    t_in_pool_chunk = true;
    RunChunks();
    t_in_pool_chunk = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--workers_running_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::Run(int64_t num_chunks,
                     const std::function<void(int64_t)>& fn) {
  if (num_chunks <= 0) return;
  if (workers_.empty() || num_chunks == 1 || t_in_pool_chunk) {
    // Inline path: no locking, and exceptions propagate unchanged — this
    // keeps the 1-thread configuration behaviourally identical to the
    // pre-pool serial code.
    for (int64_t i = 0; i < num_chunks; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_chunks_ = num_chunks;
    next_chunk_.store(0, std::memory_order_relaxed);
    workers_running_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  work_cv_.notify_all();
  t_in_pool_chunk = true;
  RunChunks();
  t_in_pool_chunk = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return workers_running_ == 0; });
    job_ = nullptr;
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    std::swap(error, error_);
  }
  if (error) std::rethrow_exception(error);
}

int ThreadPool::DefaultThreads() {
  if (const char* env = std::getenv("ADR_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<int>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool* ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(GlobalMutex());
  ThreadPool*& pool = GlobalSlot();
  if (pool == nullptr) pool = new ThreadPool(DefaultThreads());
  return pool;
}

void ThreadPool::SetGlobalThreads(int num_threads) {
  num_threads = std::max(1, num_threads);
  std::lock_guard<std::mutex> lock(GlobalMutex());
  ThreadPool*& pool = GlobalSlot();
  if (pool != nullptr && pool->num_threads() == num_threads) return;
  delete pool;
  pool = new ThreadPool(num_threads);
}

int ThreadPool::GlobalThreads() { return Global()->num_threads(); }

void ParallelFor(int64_t n, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  grain = std::max<int64_t>(1, grain);
  const int64_t num_chunks = (n + grain - 1) / grain;
  if (num_chunks == 1) {
    fn(0, n);
    return;
  }
  ThreadPool::Global()->Run(num_chunks, [&](int64_t chunk) {
    const int64_t begin = chunk * grain;
    fn(begin, std::min(begin + grain, n));
  });
}

int64_t GrainForCost(int64_t ops_per_item) {
  if (ops_per_item <= 0) return kMinOpsPerChunk;
  return std::max<int64_t>(1, kMinOpsPerChunk / ops_per_item);
}

}  // namespace adr
