// Minimal binary serialization primitives for checkpoints.
//
// Format: little-endian PODs; strings and arrays are length-prefixed with
// uint64. A file begins with a caller-chosen magic + version header (see
// nn/checkpoint.h for the network checkpoint format built on top).

#ifndef ADR_UTIL_SERIALIZE_H_
#define ADR_UTIL_SERIALIZE_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace adr {

/// \brief Streaming binary writer over a file.
class BinaryWriter {
 public:
  /// \brief Opens `path` for truncating binary write.
  static Status Open(const std::string& path, BinaryWriter* out);

  Status WriteU32(uint32_t value);
  Status WriteU64(uint64_t value);
  Status WriteI64(int64_t value);
  Status WriteDouble(double value);
  Status WriteString(const std::string& value);
  Status WriteFloats(const float* data, size_t count);

  /// \brief Flushes and closes; returns an error if any write failed.
  Status Close();

 private:
  Status WriteBytes(const void* data, size_t count);
  std::ofstream file_;
};

/// \brief Streaming binary reader over a file.
class BinaryReader {
 public:
  /// \brief Opens `path` for binary read.
  static Status Open(const std::string& path, BinaryReader* out);

  Status ReadU32(uint32_t* value);
  Status ReadU64(uint64_t* value);
  Status ReadI64(int64_t* value);
  Status ReadDouble(double* value);
  /// Rejects strings longer than `max_length` (corruption guard).
  Status ReadString(std::string* value, size_t max_length = 1 << 20);
  Status ReadFloats(float* data, size_t count);

  /// \brief True when the cursor is at end of file.
  bool AtEof();

 private:
  Status ReadBytes(void* data, size_t count);
  std::ifstream file_;
};

}  // namespace adr

#endif  // ADR_UTIL_SERIALIZE_H_
