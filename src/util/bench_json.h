// BenchJsonEmitter: schema-versioned JSON result files for the micro
// benches (BENCH_micro_kernels.json, BENCH_micro_reuse.json). The files
// are the repo's benchmark trajectory: scripts/check_bench_regression.py
// diffs two of them with a noise threshold, and CI diffs a fresh run
// against the checked-in baseline at the repo root.

#ifndef ADR_UTIL_BENCH_JSON_H_
#define ADR_UTIL_BENCH_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace adr {

/// Bump when the emitted structure changes shape; the regression checker
/// refuses to compare files of different versions.
inline constexpr int kBenchJsonSchemaVersion = 1;

/// \brief One benchmark measurement (per-iteration times in nanoseconds).
struct BenchRecord {
  std::string name;  ///< full benchmark name, args included
  int64_t iterations = 0;
  double real_time_ns = 0.0;
  double cpu_time_ns = 0.0;
  double items_per_second = 0.0;  ///< 0 when the bench reports no items
  /// Extra named values (benchmark user counters, table-bench metrics
  /// such as accuracies). Emitted as a "counters" object only when
  /// non-empty, so documents without counters keep their exact old shape
  /// under schema_version 1; the regression checker ignores the field.
  std::vector<std::pair<std::string, double>> counters;
};

/// \brief Collects BenchRecords and writes the suite's JSON file:
/// {"schema_version":1,"suite":"micro_kernels","records":[...]}.
class BenchJsonEmitter {
 public:
  explicit BenchJsonEmitter(std::string suite) : suite_(std::move(suite)) {}

  void Add(BenchRecord record) { records_.push_back(std::move(record)); }
  size_t size() const { return records_.size(); }
  const std::string& suite() const { return suite_; }

  std::string ToJson() const;
  Status WriteFile(const std::string& path) const;

  /// \brief "BENCH_<suite>.json" under $ADR_BENCH_JSON_DIR (default: the
  /// current directory — CI and scripts/bench_smoke.sh run from the repo
  /// root, which is where the trajectory files live).
  static std::string DefaultPath(const std::string& suite);

 private:
  std::string suite_;
  std::vector<BenchRecord> records_;
};

}  // namespace adr

#endif  // ADR_UTIL_BENCH_JSON_H_
