// Fail-fast invariant checks for internal errors (programming bugs), as
// opposed to Status which reports recoverable caller errors.

#ifndef ADR_UTIL_CHECK_H_
#define ADR_UTIL_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace adr::internal_check {

/// Accumulates the message after a failed check and aborts on destruction.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "ADR_CHECK failed: " << condition << " at " << file << ":"
            << line << " ";
  }
  ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  /// Yields an lvalue so the macro's trailing `<<` and Voidify both bind.
  CheckFailureStream& self() { return *this; }

 private:
  std::ostringstream stream_;
};

/// Converts the streamed expression to void so ADR_CHECK can sit in a
/// ternary (the glog "voidify" idiom, dangling-else safe).
struct Voidify {
  void operator&(CheckFailureStream&) {}
};

}  // namespace adr::internal_check

#define ADR_CHECK(condition)                               \
  (condition) ? static_cast<void>(0)                       \
              : ::adr::internal_check::Voidify() &         \
                    ::adr::internal_check::CheckFailureStream( \
                        #condition, __FILE__, __LINE__)       \
                        .self()

#define ADR_CHECK_EQ(a, b) ADR_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define ADR_CHECK_NE(a, b) ADR_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define ADR_CHECK_LT(a, b) ADR_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define ADR_CHECK_LE(a, b) ADR_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define ADR_CHECK_GT(a, b) ADR_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define ADR_CHECK_GE(a, b) ADR_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#ifndef NDEBUG
#define ADR_DCHECK(condition) ADR_CHECK(condition)
#else
#define ADR_DCHECK(condition) ADR_CHECK(true || (condition))
#endif

#endif  // ADR_UTIL_CHECK_H_
