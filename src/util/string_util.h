// Small string helpers shared across modules.

#ifndef ADR_UTIL_STRING_UTIL_H_
#define ADR_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace adr {

/// \brief Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// \brief Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> Split(std::string_view text, char delim);

/// \brief Formats a double with fixed precision, e.g. FormatDouble(0.5, 3)
/// -> "0.500".
std::string FormatDouble(double value, int precision);

/// \brief Renders a fraction as a percentage string, e.g. "69.0%".
std::string FormatPercent(double fraction, int precision = 1);

/// \brief Human-readable byte count ("1.5 MiB").
std::string FormatBytes(size_t bytes);

}  // namespace adr

#endif  // ADR_UTIL_STRING_UTIL_H_
