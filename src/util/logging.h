// Minimal leveled logging to stderr.

#ifndef ADR_UTIL_LOGGING_H_
#define ADR_UTIL_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace adr {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// One log statement; flushes the line on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace adr

#define ADR_LOG(level)                                          \
  ::adr::internal_logging::LogMessage(::adr::LogLevel::k##level, \
                                      __FILE__, __LINE__)

#endif  // ADR_UTIL_LOGGING_H_
