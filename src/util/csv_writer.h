// CSV table emitter used by the bench harness to persist experiment series.

#ifndef ADR_UTIL_CSV_WRITER_H_
#define ADR_UTIL_CSV_WRITER_H_

#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace adr {

/// \brief Writes rows of an experiment table to a CSV file.
///
/// Values containing commas, quotes, or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// \brief Opens `path` for writing and emits the header row.
  static Status Open(const std::string& path,
                     const std::vector<std::string>& header,
                     CsvWriter* out);

  /// \brief Appends one row; must have the same arity as the header.
  Status WriteRow(const std::vector<std::string>& fields);

  /// \brief Convenience overload converting doubles with %.6g.
  Status WriteRow(const std::vector<double>& fields);

  /// \brief Flushes and closes the underlying file.
  void Close();

  size_t num_columns() const { return num_columns_; }

 private:
  std::ofstream file_;
  size_t num_columns_ = 0;
};

/// \brief Escapes a single CSV field per RFC 4180 (exposed for testing).
std::string CsvEscape(const std::string& field);

}  // namespace adr

#endif  // ADR_UTIL_CSV_WRITER_H_
