#include "util/string_util.h"

#include <cstdio>

namespace adr {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatPercent(double fraction, int precision) {
  return FormatDouble(fraction * 100.0, precision) + "%";
}

std::string FormatBytes(size_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f %s", value, units[unit]);
  return buf;
}

}  // namespace adr
