#include "util/csv_writer.h"

#include <cstdio>

namespace adr {

std::string CsvEscape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

Status CsvWriter::Open(const std::string& path,
                       const std::vector<std::string>& header,
                       CsvWriter* out) {
  if (header.empty()) {
    return Status::InvalidArgument("CSV header must not be empty");
  }
  out->file_.open(path, std::ios::out | std::ios::trunc);
  if (!out->file_.is_open()) {
    return Status::NotFound("cannot open CSV file for writing: " + path);
  }
  out->num_columns_ = header.size();
  return out->WriteRow(header);
}

Status CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (!file_.is_open()) {
    return Status::FailedPrecondition("CsvWriter is not open");
  }
  if (fields.size() != num_columns_) {
    return Status::InvalidArgument("row arity mismatch: expected " +
                                   std::to_string(num_columns_) + ", got " +
                                   std::to_string(fields.size()));
  }
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) file_ << ',';
    file_ << CsvEscape(fields[i]);
  }
  file_ << '\n';
  return Status::OK();
}

Status CsvWriter::WriteRow(const std::vector<double>& fields) {
  std::vector<std::string> as_strings;
  as_strings.reserve(fields.size());
  char buf[64];
  for (double v : fields) {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    as_strings.emplace_back(buf);
  }
  return WriteRow(as_strings);
}

void CsvWriter::Close() {
  if (file_.is_open()) file_.close();
}

}  // namespace adr
