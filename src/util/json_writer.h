// Minimal streaming JSON emitter shared by the observability sinks
// (metrics dumps, Chrome trace export, bench result files). Commas and
// nesting are handled by the writer so call sites cannot produce
// malformed documents; non-finite doubles are emitted as null, which
// keeps the output strictly RFC 8259 parseable.

#ifndef ADR_UTIL_JSON_WRITER_H_
#define ADR_UTIL_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace adr {

/// \brief Append-only JSON document builder.
///
/// Usage:
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("schema_version"); w.Int(1);
///   w.Key("records"); w.BeginArray(); ... w.EndArray();
///   w.EndObject();
///   file << w.str();
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// \brief Emits an object key; the next value call supplies its value.
  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(int64_t value);
  void Double(double value);  ///< NaN/Inf are emitted as null
  void Bool(bool value);
  void Null();

  /// \brief The document built so far.
  const std::string& str() const { return out_; }

 private:
  void BeforeValue();

  std::string out_;
  /// One entry per open container: true once the first element was
  /// written (the next element needs a leading comma).
  std::vector<bool> has_element_;
  bool pending_key_ = false;
};

/// \brief Escapes a string for use inside a JSON string literal
/// (quotes, backslashes, and control characters).
std::string JsonEscape(std::string_view raw);

}  // namespace adr

#endif  // ADR_UTIL_JSON_WRITER_H_
