// Scoped-span tracer exporting Chrome trace-event JSON (load the file at
// chrome://tracing or https://ui.perfetto.dev).
//
// Spans are recorded into per-thread buffers, so every worker thread of
// the ThreadPool shows up as its own track; the pool names its workers
// via SetCurrentThreadName. Tracing is off by default: a disabled
// ADR_TRACE_SPAN costs one relaxed atomic load and nothing else, and
// defining ADR_TRACE_DISABLED at compile time removes even that.
//
// Span names must be string literals (or otherwise outlive the tracer
// dump): events store the pointer, not a copy.

#ifndef ADR_UTIL_TRACE_H_
#define ADR_UTIL_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace adr {

/// \brief One completed span, for test inspection (SnapshotEvents).
struct TraceEvent {
  const char* name = nullptr;
  int tid = 0;               ///< registration order of the owning thread
  int64_t start_us = 0;      ///< microseconds since tracer epoch
  int64_t duration_us = 0;
};

/// \brief Process-wide span collector.
class Tracer {
 public:
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  static Tracer& Global();

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// \brief Microseconds since the tracer was created (monotonic clock).
  int64_t NowMicros() const;

  /// \brief Names the calling thread's track in the exported trace.
  void SetCurrentThreadName(const std::string& name);

  /// \brief Records a completed span on the calling thread's track.
  /// `name` must outlive the tracer dump (use string literals).
  void RecordComplete(const char* name, int64_t start_us, int64_t duration_us);

  /// \brief All recorded events, across threads (test hook).
  std::vector<TraceEvent> SnapshotEvents() const;

  /// \brief Chrome trace-event JSON: {"traceEvents":[...]} with one "X"
  /// (complete) event per span and "M" metadata events naming threads.
  std::string ToJson() const;
  Status WriteJsonFile(const std::string& path) const;

  /// \brief Drops recorded events (thread registrations are kept, so
  /// outstanding thread-local buffers stay valid).
  void Clear();

 private:
  struct ThreadBuffer {
    mutable std::mutex mu;
    int tid = 0;
    std::string name;
    std::vector<TraceEvent> events;
  };

  Tracer();
  ThreadBuffer* CurrentBuffer();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;  ///< guards buffers_ registration
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// \brief RAII span: measures construction-to-destruction and records it
/// when tracing is enabled at construction time.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) : name_(name) {
    Tracer& tracer = Tracer::Global();
    start_us_ = tracer.enabled() ? tracer.NowMicros() : -1;
  }
  ~TraceSpan() {
    if (start_us_ >= 0) {
      Tracer& tracer = Tracer::Global();
      tracer.RecordComplete(name_, start_us_, tracer.NowMicros() - start_us_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  int64_t start_us_;
};

#define ADR_TRACE_CONCAT_IMPL(a, b) a##b
#define ADR_TRACE_CONCAT(a, b) ADR_TRACE_CONCAT_IMPL(a, b)

#if defined(ADR_TRACE_DISABLED)
#define ADR_TRACE_SPAN(name)
#else
/// Traces the enclosing scope under `name` (a string literal).
#define ADR_TRACE_SPAN(name) \
  ::adr::TraceSpan ADR_TRACE_CONCAT(adr_trace_span_, __LINE__)(name)
#endif

}  // namespace adr

#endif  // ADR_UTIL_TRACE_H_
