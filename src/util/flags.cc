#include "util/flags.h"

#include <cstdlib>

namespace adr {

void FlagSet::AddInt64(const std::string& name, int64_t* value,
                       const std::string& help) {
  flags_[name] = Flag{Kind::kInt64, value, help};
}
void FlagSet::AddDouble(const std::string& name, double* value,
                        const std::string& help) {
  flags_[name] = Flag{Kind::kDouble, value, help};
}
void FlagSet::AddBool(const std::string& name, bool* value,
                      const std::string& help) {
  flags_[name] = Flag{Kind::kBool, value, help};
}
void FlagSet::AddString(const std::string& name, std::string* value,
                        const std::string& help) {
  flags_[name] = Flag{Kind::kString, value, help};
}

Status FlagSet::SetValue(const std::string& name, const std::string& value) {
  const auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  Flag& flag = it->second;
  char* end = nullptr;
  switch (flag.kind) {
    case Kind::kInt64: {
      const long long parsed = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("--" + name +
                                       " expects an integer, got " + value);
      }
      *static_cast<int64_t*>(flag.target) = parsed;
      return Status::OK();
    }
    case Kind::kDouble: {
      const double parsed = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("--" + name +
                                       " expects a number, got " + value);
      }
      *static_cast<double*>(flag.target) = parsed;
      return Status::OK();
    }
    case Kind::kBool: {
      if (value == "true" || value == "1") {
        *static_cast<bool*>(flag.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(flag.target) = false;
      } else {
        return Status::InvalidArgument("--" + name +
                                       " expects true/false, got " + value);
      }
      return Status::OK();
    }
    case Kind::kString:
      *static_cast<std::string*>(flag.target) = value;
      return Status::OK();
  }
  return Status::Internal("unreachable");
}

Status FlagSet::Parse(int argc, const char* const* argv) {
  positional_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      ADR_RETURN_NOT_OK(SetValue(arg.substr(0, eq), arg.substr(eq + 1)));
      continue;
    }
    // --no-name for bools.
    if (arg.rfind("no-", 0) == 0) {
      const std::string name = arg.substr(3);
      const auto it = flags_.find(name);
      if (it != flags_.end() && it->second.kind == Kind::kBool) {
        *static_cast<bool*>(it->second.target) = false;
        continue;
      }
    }
    const auto it = flags_.find(arg);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + arg);
    }
    if (it->second.kind == Kind::kBool) {
      *static_cast<bool*>(it->second.target) = true;
      continue;
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("--" + arg + " expects a value");
    }
    ADR_RETURN_NOT_OK(SetValue(arg, argv[++i]));
  }
  return Status::OK();
}

std::string FlagSet::Usage(const std::string& program) const {
  std::string out = "Usage: " + program + " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out += "  --" + name + "  " + flag.help + "\n";
  }
  return out;
}

}  // namespace adr
