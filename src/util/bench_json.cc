#include "util/bench_json.h"

#include <cstdlib>
#include <fstream>

#include "util/json_writer.h"

namespace adr {

std::string BenchJsonEmitter::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version");
  w.Int(kBenchJsonSchemaVersion);
  w.Key("suite");
  w.String(suite_);
  w.Key("records");
  w.BeginArray();
  for (const BenchRecord& record : records_) {
    w.BeginObject();
    w.Key("name");
    w.String(record.name);
    w.Key("iterations");
    w.Int(record.iterations);
    w.Key("real_time_ns");
    w.Double(record.real_time_ns);
    w.Key("cpu_time_ns");
    w.Double(record.cpu_time_ns);
    w.Key("items_per_second");
    w.Double(record.items_per_second);
    if (!record.counters.empty()) {
      w.Key("counters");
      w.BeginObject();
      for (const auto& [key, value] : record.counters) {
        w.Key(key);
        w.Double(value);
      }
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

Status BenchJsonEmitter::WriteFile(const std::string& path) const {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::InvalidArgument("cannot open bench file: " + path);
  }
  file << ToJson() << "\n";
  file.close();
  if (!file) {
    return Status::Internal("failed writing bench file: " + path);
  }
  return Status::OK();
}

std::string BenchJsonEmitter::DefaultPath(const std::string& suite) {
  const char* dir = std::getenv("ADR_BENCH_JSON_DIR");
  const std::string prefix = dir != nullptr && *dir != '\0'
                                 ? std::string(dir) + "/"
                                 : std::string();
  return prefix + "BENCH_" + suite + ".json";
}

}  // namespace adr
