#include "util/json_writer.h"

#include <cmath>
#include <cstdio>

namespace adr {

std::string JsonEscape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // comma (if any) was written with the key
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_element_.push_back(false);
}

void JsonWriter::EndObject() {
  has_element_.pop_back();
  out_ += '}';
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_element_.push_back(false);
}

void JsonWriter::EndArray() {
  has_element_.pop_back();
  out_ += ']';
}

void JsonWriter::Key(std::string_view key) {
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

}  // namespace adr
