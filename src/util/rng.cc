#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace adr {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  ADR_CHECK_GT(bound, 0u);
  // Lemire's nearly-divisionless method.
  __uint128_t m = static_cast<__uint128_t>(NextU64()) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(NextU64()) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

float Rng::NextUniform(float lo, float hi) {
  return lo + static_cast<float>(NextDouble()) * (hi - lo);
}

float Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = static_cast<float>(r * std::sin(theta));
  has_cached_gaussian_ = true;
  return static_cast<float>(r * std::cos(theta));
}

float Rng::NextGaussian(float mean, float stddev) {
  return mean + stddev * NextGaussian();
}

void Rng::Shuffle(std::vector<int>* indices) {
  for (size_t i = indices->size(); i > 1; --i) {
    const size_t j = NextBounded(i);
    std::swap((*indices)[i - 1], (*indices)[j]);
  }
}

Rng Rng::Split() { return Rng(NextU64()); }

}  // namespace adr
