#include "util/serialize.h"

namespace adr {

Status BinaryWriter::Open(const std::string& path, BinaryWriter* out) {
  out->file_.open(path, std::ios::out | std::ios::trunc | std::ios::binary);
  if (!out->file_.is_open()) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  return Status::OK();
}

Status BinaryWriter::WriteBytes(const void* data, size_t count) {
  if (!file_.is_open()) {
    return Status::FailedPrecondition("writer is not open");
  }
  file_.write(static_cast<const char*>(data),
              static_cast<std::streamsize>(count));
  if (!file_.good()) return Status::Internal("write failed");
  return Status::OK();
}

Status BinaryWriter::WriteU32(uint32_t value) {
  return WriteBytes(&value, sizeof(value));
}
Status BinaryWriter::WriteU64(uint64_t value) {
  return WriteBytes(&value, sizeof(value));
}
Status BinaryWriter::WriteI64(int64_t value) {
  return WriteBytes(&value, sizeof(value));
}
Status BinaryWriter::WriteDouble(double value) {
  return WriteBytes(&value, sizeof(value));
}

Status BinaryWriter::WriteString(const std::string& value) {
  ADR_RETURN_NOT_OK(WriteU64(value.size()));
  return WriteBytes(value.data(), value.size());
}

Status BinaryWriter::WriteFloats(const float* data, size_t count) {
  ADR_RETURN_NOT_OK(WriteU64(count));
  return WriteBytes(data, count * sizeof(float));
}

Status BinaryWriter::Close() {
  if (!file_.is_open()) {
    return Status::FailedPrecondition("writer is not open");
  }
  file_.flush();
  const bool ok = file_.good();
  file_.close();
  return ok ? Status::OK() : Status::Internal("flush failed");
}

Status BinaryReader::Open(const std::string& path, BinaryReader* out) {
  out->file_.open(path, std::ios::in | std::ios::binary);
  if (!out->file_.is_open()) {
    return Status::NotFound("cannot open for reading: " + path);
  }
  return Status::OK();
}

Status BinaryReader::ReadBytes(void* data, size_t count) {
  if (!file_.is_open()) {
    return Status::FailedPrecondition("reader is not open");
  }
  file_.read(static_cast<char*>(data), static_cast<std::streamsize>(count));
  if (static_cast<size_t>(file_.gcount()) != count) {
    return Status::OutOfRange("unexpected end of file");
  }
  return Status::OK();
}

Status BinaryReader::ReadU32(uint32_t* value) {
  return ReadBytes(value, sizeof(*value));
}
Status BinaryReader::ReadU64(uint64_t* value) {
  return ReadBytes(value, sizeof(*value));
}
Status BinaryReader::ReadI64(int64_t* value) {
  return ReadBytes(value, sizeof(*value));
}
Status BinaryReader::ReadDouble(double* value) {
  return ReadBytes(value, sizeof(*value));
}

Status BinaryReader::ReadString(std::string* value, size_t max_length) {
  uint64_t length = 0;
  ADR_RETURN_NOT_OK(ReadU64(&length));
  if (length > max_length) {
    return Status::OutOfRange("string length " + std::to_string(length) +
                              " exceeds limit");
  }
  value->resize(static_cast<size_t>(length));
  return ReadBytes(value->data(), static_cast<size_t>(length));
}

Status BinaryReader::ReadFloats(float* data, size_t count) {
  uint64_t stored = 0;
  ADR_RETURN_NOT_OK(ReadU64(&stored));
  if (stored != count) {
    return Status::InvalidArgument(
        "float array length mismatch: stored " + std::to_string(stored) +
        ", expected " + std::to_string(count));
  }
  return ReadBytes(data, count * sizeof(float));
}

bool BinaryReader::AtEof() {
  if (!file_.is_open()) return true;
  return file_.peek() == std::ifstream::traits_type::eof();
}

}  // namespace adr
