#include "util/trace.h"

#include <fstream>

#include "util/json_writer.h"

namespace adr {

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

int64_t Tracer::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Tracer::ThreadBuffer* Tracer::CurrentBuffer() {
  // Cached per-thread buffer pointer. Buffers are owned by the tracer and
  // never deallocated (Clear() only empties them), so the cache cannot
  // dangle across Clear() calls.
  static thread_local ThreadBuffer* t_buffer = nullptr;
  if (t_buffer == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->tid = static_cast<int>(buffers_.size());
    t_buffer = buffer.get();
    buffers_.push_back(std::move(buffer));
  }
  return t_buffer;
}

void Tracer::SetCurrentThreadName(const std::string& name) {
  ThreadBuffer* buffer = CurrentBuffer();
  std::lock_guard<std::mutex> lock(buffer->mu);
  buffer->name = name;
}

void Tracer::RecordComplete(const char* name, int64_t start_us,
                            int64_t duration_us) {
  ThreadBuffer* buffer = CurrentBuffer();
  TraceEvent event;
  event.name = name;
  event.tid = buffer->tid;
  event.start_us = start_us;
  event.duration_us = duration_us;
  std::lock_guard<std::mutex> lock(buffer->mu);
  buffer->events.push_back(event);
}

std::vector<TraceEvent> Tracer::SnapshotEvents() const {
  std::vector<TraceEvent> events;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    events.insert(events.end(), buffer->events.begin(), buffer->events.end());
  }
  return events;
}

std::string Tracer::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit");
  w.String("ms");
  w.Key("traceEvents");
  w.BeginArray();
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    if (!buffer->name.empty()) {
      w.BeginObject();
      w.Key("name");
      w.String("thread_name");
      w.Key("ph");
      w.String("M");
      w.Key("pid");
      w.Int(1);
      w.Key("tid");
      w.Int(buffer->tid);
      w.Key("args");
      w.BeginObject();
      w.Key("name");
      w.String(buffer->name);
      w.EndObject();
      w.EndObject();
    }
    for (const TraceEvent& event : buffer->events) {
      w.BeginObject();
      w.Key("name");
      w.String(event.name);
      w.Key("cat");
      w.String("adr");
      w.Key("ph");
      w.String("X");
      w.Key("pid");
      w.Int(1);
      w.Key("tid");
      w.Int(event.tid);
      w.Key("ts");
      w.Int(event.start_us);
      w.Key("dur");
      w.Int(event.duration_us);
      w.EndObject();
    }
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

Status Tracer::WriteJsonFile(const std::string& path) const {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::InvalidArgument("cannot open trace file: " + path);
  }
  file << ToJson() << "\n";
  file.close();
  if (!file) {
    return Status::Internal("failed writing trace file: " + path);
  }
  return Status::OK();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
  }
}

}  // namespace adr
