// Wall-clock timing helpers for experiments and benches.

#ifndef ADR_UTIL_TIMER_H_
#define ADR_UTIL_TIMER_H_

#include <chrono>

namespace adr {

/// \brief Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// \brief Elapsed seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// \brief Elapsed milliseconds since construction or last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief Accumulates time across repeated Start/Stop intervals, e.g. to
/// separate hashing time from GEMM time inside a training step.
class CumulativeTimer {
 public:
  void Start() { timer_.Reset(); }
  void Stop() { total_seconds_ += timer_.ElapsedSeconds(); }
  double TotalSeconds() const { return total_seconds_; }
  void Clear() { total_seconds_ = 0.0; }

 private:
  Timer timer_;
  double total_seconds_ = 0.0;
};

}  // namespace adr

#endif  // ADR_UTIL_TIMER_H_
