// Result<T>: a value or a Status, for fallible factory-style APIs.

#ifndef ADR_UTIL_RESULT_H_
#define ADR_UTIL_RESULT_H_

#include <utility>
#include <variant>

#include "util/check.h"
#include "util/status.h"

namespace adr {

/// \brief Holds either a successfully produced T or the Status explaining
/// why production failed.
///
/// Accessors ValueOrDie()/operator* abort on error; check ok() first or use
/// status() to inspect. Mirrors arrow::Result / absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK Status (failure).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    ADR_CHECK(!std::get<Status>(repr_).ok())
        << "Result constructed from OK status without a value";
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// \brief Returns the error status, or OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& ValueOrDie() const& {
    ADR_CHECK(ok()) << "Result::ValueOrDie on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    ADR_CHECK(ok()) << "Result::ValueOrDie on error: " << status().ToString();
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    ADR_CHECK(ok()) << "Result::ValueOrDie on error: " << status().ToString();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace adr

/// Unwraps a Result into `lhs`, propagating errors to the caller.
#define ADR_ASSIGN_OR_RETURN(lhs, expr)             \
  auto ADR_CONCAT_(_res_, __LINE__) = (expr);       \
  if (!ADR_CONCAT_(_res_, __LINE__).ok())           \
    return ADR_CONCAT_(_res_, __LINE__).status();   \
  lhs = std::move(ADR_CONCAT_(_res_, __LINE__)).ValueOrDie()

#define ADR_CONCAT_IMPL_(a, b) a##b
#define ADR_CONCAT_(a, b) ADR_CONCAT_IMPL_(a, b)

#endif  // ADR_UTIL_RESULT_H_
