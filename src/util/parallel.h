// Shared work-partitioning thread pool: the one concurrency substrate of
// the library. Every hot kernel (GEMM, im2col, LSH hashing, the clustered
// centroid GEMM, the backward reductions) parallelizes through ParallelFor
// so thread count is controlled in exactly one place.
//
// Determinism contract: work is partitioned into chunks whose boundaries
// depend only on the problem size and grain, never on the thread count.
// Kernels either write disjoint output ranges per chunk or combine chunk
// partials in fixed chunk order, so results are bit-identical for any
// number of threads (including 1).
//
// Thread count resolution, highest priority first:
//   1. ThreadPool::SetGlobalThreads(n) — the --threads flag of the
//      examples and benches lands here;
//   2. the ADR_THREADS environment variable;
//   3. std::thread::hardware_concurrency().

#ifndef ADR_UTIL_PARALLEL_H_
#define ADR_UTIL_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace adr {

/// \brief Fixed-size fork-join pool. One job runs at a time; the calling
/// thread participates, so a pool of N threads applies N-way parallelism
/// with N-1 workers.
class ThreadPool {
 public:
  /// \brief Spawns `num_threads - 1` workers (clamped to >= 1 thread
  /// total, i.e. 0 workers means all work runs inline on the caller).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// \brief Executes fn(i) for every i in [0, num_chunks); the caller
  /// participates and blocks until all chunks finish. The first exception
  /// thrown by any chunk is rethrown on the caller after the join. Calls
  /// from inside a running chunk (nested parallelism) execute inline.
  void Run(int64_t num_chunks, const std::function<void(int64_t)>& fn);

  /// \brief Process-wide pool used by ParallelFor. Created on first use
  /// with DefaultThreads() threads.
  static ThreadPool* Global();

  /// \brief Replaces the global pool with one of `num_threads` threads
  /// (clamped to >= 1). Not safe concurrently with running kernels; call
  /// it from the main thread between pieces of work (flag parsing, bench
  /// setup, tests).
  static void SetGlobalThreads(int num_threads);

  /// \brief Thread count of the global pool without forcing its creation
  /// side effects beyond the first call.
  static int GlobalThreads();

  /// \brief ADR_THREADS if set to a positive integer, else
  /// hardware_concurrency(), else 1.
  static int DefaultThreads();

 private:
  void WorkerLoop(int worker_index);
  void RunChunks();

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;
  int workers_running_ = 0;
  bool shutdown_ = false;

  // Current job; valid while workers_running_ > 0 or the caller is inside
  // Run().
  const std::function<void(int64_t)>* job_ = nullptr;
  int64_t job_chunks_ = 0;
  std::atomic<int64_t> next_chunk_{0};

  std::mutex error_mu_;
  std::exception_ptr error_;
};

/// \brief Splits [0, n) into chunks of `grain` consecutive indices (the
/// last chunk may be shorter) and runs fn(begin, end) for each chunk on
/// the global pool. Chunk boundaries depend only on (n, grain): results
/// are deterministic for any thread count when chunks write disjoint
/// ranges. fn is invoked inline when there is a single chunk. No-op for
/// n <= 0; grain < 1 is treated as 1.
void ParallelFor(int64_t n, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

/// \brief Grain that amortizes dispatch overhead for a loop whose body
/// costs ~`ops_per_item` operations per index: at least enough items per
/// chunk to reach kMinOpsPerChunk (~256K ops), never less than 1.
int64_t GrainForCost(int64_t ops_per_item);

}  // namespace adr

#endif  // ADR_UTIL_PARALLEL_H_
