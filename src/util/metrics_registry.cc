#include "util/metrics_registry.h"

#include <cmath>
#include <fstream>

#include "util/json_writer.h"

namespace adr {

namespace {

// Lowers an atomic double with a CAS loop (used for min/max tracking).
template <typename Compare>
void AtomicExtremum(std::atomic<double>* slot, double value, Compare better) {
  double current = slot->load(std::memory_order_relaxed);
  while (better(value, current) &&
         !slot->compare_exchange_weak(current, value,
                                      std::memory_order_relaxed)) {
  }
}

}  // namespace

int Histogram::BucketIndex(double value) {
  if (!(value > 0.0)) return 0;  // zero, negative, NaN
  const int exponent = static_cast<int>(std::floor(std::log2(value)));
  if (exponent < kMinExponent) return 1;
  if (exponent > kMaxExponent) return kNumBuckets - 1;
  return exponent - kMinExponent + 1;
}

void Histogram::Record(double value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
  AtomicExtremum(&min_, value, std::less<double>());
  AtomicExtremum(&max_, value, std::greater<double>());
}

void Histogram::RecordN(double value, int64_t count) {
  if (count <= 0) return;
  buckets_[BucketIndex(value)].fetch_add(count, std::memory_order_relaxed);
  count_.fetch_add(count, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  const double delta = value * static_cast<double>(count);
  while (!sum_.compare_exchange_weak(sum, sum + delta,
                                     std::memory_order_relaxed)) {
  }
  AtomicExtremum(&min_, value, std::less<double>());
  AtomicExtremum(&max_, value, std::greater<double>());
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const int64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::Percentile(double p) const {
  const int64_t total = count();
  if (total == 0) return 0.0;
  p = std::fmin(100.0, std::fmax(0.0, p));
  // Rank of the requested percentile, 1-based (nearest-rank method).
  const int64_t rank = std::max<int64_t>(
      1, static_cast<int64_t>(std::ceil(p / 100.0 * total)));
  int64_t seen = 0;
  int bucket = 0;
  for (; bucket < kNumBuckets; ++bucket) {
    seen += buckets_[bucket].load(std::memory_order_relaxed);
    if (seen >= rank) break;
  }
  double estimate;
  if (bucket <= 0) {
    estimate = 0.0;
  } else if (bucket >= kNumBuckets - 1) {
    estimate = max();
  } else {
    // Geometric midpoint of [2^e, 2^(e+1)): relative error <= sqrt(2).
    const int exponent = bucket - 1 + kMinExponent;
    estimate = std::exp2(exponent + 0.5);
  }
  return std::fmin(max(), std::fmax(min(), estimate));
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramStats stats;
    stats.count = histogram->count();
    stats.sum = histogram->sum();
    stats.min = histogram->min();
    stats.max = histogram->max();
    stats.p50 = histogram->Percentile(50.0);
    stats.p90 = histogram->Percentile(90.0);
    stats.p99 = histogram->Percentile(99.0);
    snapshot.histograms[name] = stats;
  }
  return snapshot;
}

std::string MetricsRegistry::ToJson() const {
  const MetricsSnapshot snapshot = Snapshot();
  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version");
  w.Int(1);
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, value] : snapshot.counters) {
    w.Key(name);
    w.Int(value);
  }
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, value] : snapshot.gauges) {
    w.Key(name);
    w.Double(value);
  }
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& [name, stats] : snapshot.histograms) {
    w.Key(name);
    w.BeginObject();
    w.Key("count");
    w.Int(stats.count);
    w.Key("sum");
    w.Double(stats.sum);
    w.Key("min");
    w.Double(stats.min);
    w.Key("max");
    w.Double(stats.max);
    w.Key("p50");
    w.Double(stats.p50);
    w.Key("p90");
    w.Double(stats.p90);
    w.Key("p99");
    w.Double(stats.p99);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

Status MetricsRegistry::WriteJsonFile(const std::string& path) const {
  std::ofstream file(path);
  if (!file.is_open()) {
    return Status::InvalidArgument("cannot open metrics file: " + path);
  }
  file << ToJson() << "\n";
  file.close();
  if (!file) {
    return Status::Internal("failed writing metrics file: " + path);
  }
  return Status::OK();
}

void MetricsRegistry::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace adr
