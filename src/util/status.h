// Status: lightweight error propagation for fallible public APIs.
//
// Follows the RocksDB/Arrow idiom: functions that can fail return a Status
// (or a Result<T>, see result.h) instead of throwing. Internal invariant
// violations use ADR_CHECK (see check.h) and abort.

#ifndef ADR_UTIL_STATUS_H_
#define ADR_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace adr {

/// Error categories used across the library.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotFound = 4,
  kAlreadyExists = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kResourceExhausted = 8,
};

/// \brief Returns a human-readable name for a StatusCode.
std::string_view StatusCodeToString(StatusCode code);

/// \brief The outcome of a fallible operation: either OK or a code + message.
///
/// Status is cheap to copy in the OK case (no allocation). Construction of an
/// error Status allocates for the message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// \brief Renders e.g. "InvalidArgument: batch size must be positive".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace adr

/// Propagates a non-OK Status to the caller.
#define ADR_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::adr::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                  \
  } while (false)

#endif  // ADR_UTIL_STATUS_H_
