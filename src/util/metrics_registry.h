// MetricsRegistry: the process-wide telemetry hub of the library.
//
// Producers (ReuseConv2d, the clustering kernels, AdaptiveController, the
// trainer) publish named counters, gauges and histograms; consumers (the
// examples' --metrics-out flag, tests, dashboards) take a consistent
// snapshot or a JSON dump. Handles returned by counter()/gauge()/
// histogram() are lock-free to publish through and safe to share across
// ParallelFor workers; only the name -> handle lookup takes a mutex.
//
// Naming convention: slash-separated paths, most-general component first,
// e.g. "reuse/conv1/r_c", "train/steps", "adaptive/stage".

#ifndef ADR_UTIL_METRICS_REGISTRY_H_
#define ADR_UTIL_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "util/status.h"

namespace adr {

/// \brief Monotonic event count. All operations are lock-free.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Last-written instantaneous value. Set/Add are lock-free.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Lock-free histogram over power-of-two buckets.
///
/// Covers positive values from 2^-48 to 2^48 (seconds, MACs, bytes all
/// fit); zero and negative values land in a dedicated bottom bucket.
/// Percentile() interpolates at the geometric midpoint of the selected
/// bucket, so its relative error is bounded by sqrt(2); exact count, sum,
/// min and max are tracked alongside.
class Histogram {
 public:
  static constexpr int kMinExponent = -48;
  static constexpr int kMaxExponent = 48;
  // bucket 0: v <= 0; buckets 1..96: [2^e, 2^(e+1)); plus overflow.
  static constexpr int kNumBuckets = kMaxExponent - kMinExponent + 2;

  void Record(double value);
  /// \brief Records `count` observations of `value` with one update per
  /// internal counter — how batched producers (the cluster cache's
  /// probe-length buckets) publish per-step deltas. No-op for count <= 0.
  void RecordN(double value, int64_t count);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest/largest recorded value; 0 when empty.
  double min() const;
  double max() const;
  double mean() const;

  /// \brief Value at percentile `p` in [0, 100], clamped to the observed
  /// [min, max] range. Returns 0 when empty.
  double Percentile(double p) const;

 private:
  static int BucketIndex(double value);

  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// \brief Point-in-time copy of every metric, for reporting.
struct MetricsSnapshot {
  struct HistogramStats {
    int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
  };
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramStats> histograms;
};

/// \brief Named metric store. Thread-safe; normally used through Global().
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// \brief The process-wide registry every library component publishes
  /// into. Never destroyed.
  static MetricsRegistry& Global();

  /// \brief Returns the metric with this name, creating it on first use.
  /// The returned pointer stays valid until Clear().
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  /// \brief The snapshot as a JSON document:
  /// {"schema_version":1,"counters":{...},"gauges":{...},
  ///  "histograms":{name:{count,sum,min,max,p50,p90,p99}}}.
  std::string ToJson() const;
  Status WriteJsonFile(const std::string& path) const;

  /// \brief Drops every metric. Outstanding handles dangle: test-only,
  /// never concurrent with publishers.
  void Clear();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace adr

#endif  // ADR_UTIL_METRICS_REGISTRY_H_
