// Tiny command-line flag parser for the examples and bench binaries.
//
// Supports --name=value and --name value forms plus boolean --name /
// --no-name. Unknown flags are reported as errors; positional arguments
// are collected in order.

#ifndef ADR_UTIL_FLAGS_H_
#define ADR_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace adr {

/// \brief Declarative flag set: register flags bound to variables, then
/// Parse(argc, argv).
class FlagSet {
 public:
  void AddInt64(const std::string& name, int64_t* value,
                const std::string& help);
  void AddDouble(const std::string& name, double* value,
                 const std::string& help);
  void AddBool(const std::string& name, bool* value,
               const std::string& help);
  void AddString(const std::string& name, std::string* value,
                 const std::string& help);

  /// \brief Parses argv (skipping argv[0]); fills bound variables.
  /// Returns InvalidArgument on unknown flags or malformed values.
  Status Parse(int argc, const char* const* argv);

  const std::vector<std::string>& positional() const { return positional_; }

  /// \brief Usage text listing all registered flags.
  std::string Usage(const std::string& program) const;

 private:
  enum class Kind { kInt64, kDouble, kBool, kString };
  struct Flag {
    Kind kind;
    void* target;
    std::string help;
  };

  Status SetValue(const std::string& name, const std::string& value);

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace adr

#endif  // ADR_UTIL_FLAGS_H_
