// Deterministic pseudo-random number generation.
//
// All randomness in the library flows through Rng so that every experiment
// is reproducible from a single seed. The core generator is xoshiro256**,
// seeded via splitmix64 (public-domain algorithms by Blackman & Vigna).

#ifndef ADR_UTIL_RNG_H_
#define ADR_UTIL_RNG_H_

#include <cstdint>
#include <vector>

namespace adr {

/// \brief Deterministic random number generator (xoshiro256**).
///
/// Not thread-safe; use one instance per thread or Split() child generators.
class Rng {
 public:
  /// Seeds the state deterministically from `seed` via splitmix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// \brief Next raw 64-bit value.
  uint64_t NextU64();

  /// \brief Uniform integer in [0, bound) using Lemire's method. `bound` > 0.
  uint64_t NextBounded(uint64_t bound);

  /// \brief Uniform double in [0, 1).
  double NextDouble();

  /// \brief Uniform float in [lo, hi).
  float NextUniform(float lo, float hi);

  /// \brief Standard normal variate (Box-Muller, cached pair).
  float NextGaussian();

  /// \brief Normal variate with the given mean and standard deviation.
  float NextGaussian(float mean, float stddev);

  /// \brief Fisher-Yates shuffle of `indices`.
  void Shuffle(std::vector<int>* indices);

  /// \brief Derives an independent child generator (for per-layer streams).
  Rng Split();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  float cached_gaussian_ = 0.0f;
};

}  // namespace adr

#endif  // ADR_UTIL_RNG_H_
