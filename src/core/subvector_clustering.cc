#include "core/subvector_clustering.h"

#include <algorithm>
#include <string>
#include <utility>

#include "clustering/tile_hash.h"
#include "tensor/simd.h"
#include "util/check.h"

namespace adr {

double ReuseClustering::AverageRemainingRatio() const {
  if (blocks.empty() || num_rows == 0) return 0.0;
  double total = 0.0;
  for (const auto& block : blocks) {
    total += block.clustering.remaining_ratio();
  }
  return total / static_cast<double>(blocks.size());
}

int64_t ReuseClustering::TotalClusters() const {
  int64_t total = 0;
  for (const auto& block : blocks) total += block.clustering.num_clusters();
  return total;
}

Result<BlockLshFamilies> BlockLshFamilies::Create(int64_t k,
                                                  int64_t sub_vector_length,
                                                  int num_hashes,
                                                  uint64_t seed) {
  if (k <= 0) return Status::InvalidArgument("K must be > 0");
  const int64_t length = sub_vector_length <= 0 || sub_vector_length > k
                             ? k
                             : sub_vector_length;
  BlockLshFamilies out;
  out.k_ = k;
  for (int64_t offset = 0; offset < k; offset += length) {
    const int64_t block_len = std::min(length, k - offset);
    LshFamily family;
    const uint64_t block_seed =
        seed + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(offset + 1);
    ADR_RETURN_NOT_OK(
        LshFamily::Create(block_len, num_hashes, block_seed, &family));
    out.families_.push_back(std::move(family));
    out.offsets_.push_back(offset);
    out.lengths_.push_back(block_len);
  }
  return out;
}

ReuseClustering ClusterSubVectors(const BlockLshFamilies& families,
                                  const float* x, int64_t num_rows,
                                  int64_t rows_per_group) {
  ADR_CHECK_GT(num_rows, 0);
  ADR_CHECK_GT(rows_per_group, 0);
  ADR_CHECK_EQ(num_rows % rows_per_group, 0)
      << "rows_per_group must divide num_rows";
  const int64_t k = families.k();

  ReuseClustering result;
  result.num_rows = num_rows;
  result.num_cols = k;
  result.blocks.resize(static_cast<size_t>(families.num_blocks()));

  // One hash scratch buffer sized for the widest block serves every
  // (block, group) hash call; per-call heap churn here measurably slows
  // the projection GEMMs that follow.
  int64_t max_scratch = 0;
  for (int64_t b = 0; b < families.num_blocks(); ++b) {
    max_scratch = std::max(
        max_scratch, families.family(b).ScratchFloats(rows_per_group, k));
  }
  std::vector<float> hash_scratch(static_cast<size_t>(max_scratch));

  std::vector<LshSignature> sigs;
  for (int64_t b = 0; b < families.num_blocks(); ++b) {
    SubMatrixClustering& block = result.blocks[static_cast<size_t>(b)];
    block.col_offset = families.block_offset(b);
    block.length = families.block_length(b);
    const LshFamily& family = families.family(b);

    Clustering& merged = block.clustering;
    merged.assignment.resize(static_cast<size_t>(num_rows));
    for (int64_t group_start = 0; group_start < num_rows;
         group_start += rows_per_group) {
      sigs.resize(static_cast<size_t>(rows_per_group));
      family.HashRowsScratch(x + group_start * k + block.col_offset,
                             rows_per_group, k, hash_scratch.data(),
                             sigs.data());
      std::vector<LshSignature> group_cluster_sigs;
      const Clustering group =
          ClusterBySignature(sigs, &group_cluster_sigs);
      const int32_t id_offset =
          static_cast<int32_t>(merged.cluster_sizes.size());
      for (int64_t i = 0; i < rows_per_group; ++i) {
        merged.assignment[static_cast<size_t>(group_start + i)] =
            id_offset + group.assignment[static_cast<size_t>(i)];
      }
      merged.cluster_sizes.insert(merged.cluster_sizes.end(),
                                  group.cluster_sizes.begin(),
                                  group.cluster_sizes.end());
      block.signatures.insert(block.signatures.end(),
                              group_cluster_sigs.begin(),
                              group_cluster_sigs.end());
    }

    block.centroids = ComputeCentroids(x + block.col_offset, num_rows,
                                       block.length, k, merged);
    block.reused_from_cache.assign(
        static_cast<size_t>(merged.num_clusters()), false);
  }
  return result;
}

void StreamingSubVectorClusterer::Begin(const BlockLshFamilies* families,
                                        int64_t num_rows,
                                        int64_t rows_per_group) {
  ADR_CHECK(families != nullptr);
  ADR_CHECK_GT(num_rows, 0);
  ADR_CHECK_GT(rows_per_group, 0);
  ADR_CHECK_EQ(num_rows % rows_per_group, 0)
      << "rows_per_group must divide num_rows";
  families_ = families;
  num_rows_ = num_rows;
  rows_per_group_ = rows_per_group;
  next_row_ = 0;
  // Same sizing rule as ClusterBySignature's per-group table; the table is
  // (re)filled with -1 at every group boundary inside ConsumeTile, so
  // Begin only has to guarantee capacity.
  size_t capacity = 16;
  while (capacity < 2 * static_cast<size_t>(rows_per_group)) capacity <<= 1;
  table_mask_ = capacity - 1;
  blocks_.resize(static_cast<size_t>(families->num_blocks()));
  for (BlockState& bs : blocks_) {
    bs.slot_id.resize(capacity);
    bs.slot_sig.resize(capacity);
    bs.centroids.clear();
    bs.sizes.clear();
    bs.sigs.clear();
    bs.assignment.resize(static_cast<size_t>(num_rows));
  }
}

int64_t StreamingSubVectorClusterer::ScratchFloats(int64_t tile_rows) const {
  ADR_CHECK(families_ != nullptr);
  int64_t max_scratch = 0;
  for (int64_t b = 0; b < families_->num_blocks(); ++b) {
    const TileRowHasher hasher(&families_->family(b));
    max_scratch = std::max(
        max_scratch, hasher.ScratchFloats(tile_rows, families_->k()));
  }
  return max_scratch;
}

void StreamingSubVectorClusterer::ConsumeTile(const float* tile,
                                              int64_t row_begin,
                                              int64_t tile_rows,
                                              float* scratch) {
  ADR_CHECK_EQ(row_begin, next_row_) << "tiles must arrive in row order";
  ADR_CHECK_GT(tile_rows, 0);
  ADR_CHECK_LE(row_begin + tile_rows, num_rows_);
  const int64_t k = families_->k();
  const simd::Kernels& kernels = simd::Active();
  const LshSignatureHash sig_hasher;

  for (int64_t b = 0; b < families_->num_blocks(); ++b) {
    BlockState& bs = blocks_[static_cast<size_t>(b)];
    const int64_t offset = families_->block_offset(b);
    const int64_t length = families_->block_length(b);
    const TileRowHasher hasher(&families_->family(b));
    bs.tile_sigs.resize(static_cast<size_t>(tile_rows));
    hasher.HashTile(tile + offset, tile_rows, k, scratch,
                    bs.tile_sigs.data());

    // Serial per-row pass in ascending global row order: id assignment
    // replays ClusterBySignature's first-seen order (with the per-group
    // reset), and the centroid sums accumulate in ComputeCentroids' row
    // order, so both are bit-identical to the materialized path.
    for (int64_t i = 0; i < tile_rows; ++i) {
      const int64_t row = row_begin + i;
      if (row % rows_per_group_ == 0) {
        std::fill(bs.slot_id.begin(), bs.slot_id.end(), -1);
      }
      const LshSignature& sig = bs.tile_sigs[static_cast<size_t>(i)];
      size_t slot = sig_hasher(sig) & table_mask_;
      while (bs.slot_id[slot] >= 0 && !(bs.slot_sig[slot] == sig)) {
        slot = (slot + 1) & table_mask_;
      }
      int32_t id = bs.slot_id[slot];
      if (id < 0) {
        id = static_cast<int32_t>(bs.sizes.size());
        bs.slot_id[slot] = id;
        bs.slot_sig[slot] = sig;
        bs.sizes.push_back(0);
        bs.sigs.push_back(sig);
        bs.centroids.resize(bs.centroids.size() +
                                static_cast<size_t>(length),
                            0.0f);
      }
      bs.assignment[static_cast<size_t>(row)] = id;
      ++bs.sizes[static_cast<size_t>(id)];
      kernels.add(tile + i * k + offset, bs.centroids.data() + id * length,
                  length);
    }
  }
  next_row_ += tile_rows;
}

ReuseClustering StreamingSubVectorClusterer::Finish() {
  ADR_CHECK_EQ(next_row_, num_rows_) << "tiles did not cover all rows";
  const simd::Kernels& kernels = simd::Active();
  ReuseClustering result;
  result.num_rows = num_rows_;
  result.num_cols = families_->k();
  result.blocks.resize(blocks_.size());
  for (size_t b = 0; b < blocks_.size(); ++b) {
    BlockState& bs = blocks_[b];
    SubMatrixClustering& out = result.blocks[b];
    out.col_offset = families_->block_offset(static_cast<int64_t>(b));
    out.length = families_->block_length(static_cast<int64_t>(b));
    const int64_t num_clusters = static_cast<int64_t>(bs.sizes.size());
    float* c = bs.centroids.data();
    for (int64_t cl = 0; cl < num_clusters; ++cl) {
      const int64_t size = bs.sizes[static_cast<size_t>(cl)];
      ADR_CHECK_GT(size, 0) << "empty cluster " << cl;
      kernels.scale(1.0f / static_cast<float>(size), c + cl * out.length,
                    out.length);
    }
    out.centroids =
        Tensor(Shape({num_clusters, out.length}), std::move(bs.centroids));
    bs.centroids = std::vector<float>();
    out.clustering.cluster_sizes = std::move(bs.sizes);
    out.clustering.assignment = std::move(bs.assignment);
    out.signatures = std::move(bs.sigs);
    out.reused_from_cache = std::move(bs.reused_pool);
    out.reused_from_cache.assign(static_cast<size_t>(num_clusters), false);
  }
  return result;
}

void StreamingSubVectorClusterer::Recycle(ReuseClustering&& old) {
  if (blocks_.size() < old.blocks.size()) blocks_.resize(old.blocks.size());
  for (size_t b = 0; b < old.blocks.size(); ++b) {
    BlockState& bs = blocks_[b];
    SubMatrixClustering& ob = old.blocks[b];
    bs.centroids = std::move(ob.centroids).TakeData();
    bs.sizes = std::move(ob.clustering.cluster_sizes);
    bs.sigs = std::move(ob.signatures);
    bs.assignment = std::move(ob.clustering.assignment);
    bs.reused_pool = std::move(ob.reused_from_cache);
  }
}

}  // namespace adr
