#include "core/subvector_clustering.h"

#include <string>

#include "util/check.h"

namespace adr {

double ReuseClustering::AverageRemainingRatio() const {
  if (blocks.empty() || num_rows == 0) return 0.0;
  double total = 0.0;
  for (const auto& block : blocks) {
    total += block.clustering.remaining_ratio();
  }
  return total / static_cast<double>(blocks.size());
}

int64_t ReuseClustering::TotalClusters() const {
  int64_t total = 0;
  for (const auto& block : blocks) total += block.clustering.num_clusters();
  return total;
}

Result<BlockLshFamilies> BlockLshFamilies::Create(int64_t k,
                                                  int64_t sub_vector_length,
                                                  int num_hashes,
                                                  uint64_t seed) {
  if (k <= 0) return Status::InvalidArgument("K must be > 0");
  const int64_t length = sub_vector_length <= 0 || sub_vector_length > k
                             ? k
                             : sub_vector_length;
  BlockLshFamilies out;
  out.k_ = k;
  for (int64_t offset = 0; offset < k; offset += length) {
    const int64_t block_len = std::min(length, k - offset);
    LshFamily family;
    const uint64_t block_seed =
        seed + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(offset + 1);
    ADR_RETURN_NOT_OK(
        LshFamily::Create(block_len, num_hashes, block_seed, &family));
    out.families_.push_back(std::move(family));
    out.offsets_.push_back(offset);
    out.lengths_.push_back(block_len);
  }
  return out;
}

ReuseClustering ClusterSubVectors(const BlockLshFamilies& families,
                                  const float* x, int64_t num_rows,
                                  int64_t rows_per_group) {
  ADR_CHECK_GT(num_rows, 0);
  ADR_CHECK_GT(rows_per_group, 0);
  ADR_CHECK_EQ(num_rows % rows_per_group, 0)
      << "rows_per_group must divide num_rows";
  const int64_t k = families.k();

  ReuseClustering result;
  result.num_rows = num_rows;
  result.num_cols = k;
  result.blocks.resize(static_cast<size_t>(families.num_blocks()));

  std::vector<LshSignature> sigs;
  for (int64_t b = 0; b < families.num_blocks(); ++b) {
    SubMatrixClustering& block = result.blocks[static_cast<size_t>(b)];
    block.col_offset = families.block_offset(b);
    block.length = families.block_length(b);
    const LshFamily& family = families.family(b);

    Clustering& merged = block.clustering;
    merged.assignment.resize(static_cast<size_t>(num_rows));
    for (int64_t group_start = 0; group_start < num_rows;
         group_start += rows_per_group) {
      family.HashRows(x + group_start * k + block.col_offset, rows_per_group,
                      k, &sigs);
      std::vector<LshSignature> group_cluster_sigs;
      const Clustering group =
          ClusterBySignature(sigs, &group_cluster_sigs);
      const int32_t id_offset =
          static_cast<int32_t>(merged.cluster_sizes.size());
      for (int64_t i = 0; i < rows_per_group; ++i) {
        merged.assignment[static_cast<size_t>(group_start + i)] =
            id_offset + group.assignment[static_cast<size_t>(i)];
      }
      merged.cluster_sizes.insert(merged.cluster_sizes.end(),
                                  group.cluster_sizes.begin(),
                                  group.cluster_sizes.end());
      block.signatures.insert(block.signatures.end(),
                              group_cluster_sigs.begin(),
                              group_cluster_sigs.end());
    }

    block.centroids = ComputeCentroids(x + block.col_offset, num_rows,
                                       block.length, k, merged);
    block.reused_from_cache.assign(
        static_cast<size_t>(merged.num_clusters()), false);
  }
  return result;
}

}  // namespace adr
