// Aggregated reporting helpers over a model's reuse layers: used by the
// examples and bench harness to answer "what did reuse buy on this run?"

#ifndef ADR_CORE_REUSE_REPORT_H_
#define ADR_CORE_REUSE_REPORT_H_

#include <string>
#include <vector>

#include "core/reuse_config.h"
#include "core/reuse_conv2d.h"

namespace adr {

/// \brief Snapshot of one layer's reuse behaviour.
struct LayerReuseReport {
  std::string name;
  ReuseConfig config;
  int64_t k = 0;
  int64_t m = 0;
  double avg_remaining_ratio = 0.0;
  double macs_executed = 0.0;
  double macs_baseline = 0.0;
  double hash_seconds = 0.0;
  double gemm_seconds = 0.0;
  double backward_seconds = 0.0;

  double MacsSavedFraction() const {
    return macs_baseline == 0.0 ? 0.0 : 1.0 - macs_executed / macs_baseline;
  }
};

/// \brief Whole-model aggregate plus the per-layer breakdown.
struct ReuseReport {
  std::vector<LayerReuseReport> layers;
  double total_macs_executed = 0.0;
  double total_macs_baseline = 0.0;

  double MacsSavedFraction() const {
    return total_macs_baseline == 0.0
               ? 0.0
               : 1.0 - total_macs_executed / total_macs_baseline;
  }
};

/// \brief Collects stats from every layer (does not reset them).
ReuseReport CollectReuseReport(const std::vector<ReuseConv2d*>& layers);

/// \brief Renders a fixed-width table, one row per layer plus a total row.
std::string FormatReuseReport(const ReuseReport& report);

/// \brief Applies `config` to every layer; stops at the first error.
Status ApplyReuseConfig(const std::vector<ReuseConv2d*>& layers,
                        const ReuseConfig& config);

/// \brief Resets every layer's statistics.
void ResetReuseStats(const std::vector<ReuseConv2d*>& layers);

}  // namespace adr

#endif  // ADR_CORE_REUSE_REPORT_H_
