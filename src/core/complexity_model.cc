#include "core/complexity_model.h"

#include "util/check.h"

namespace adr {

double ForwardRelativeCost(const ComplexityParams& p) {
  ADR_CHECK_GT(p.m, 0);
  const double l = static_cast<double>(p.effective_l());
  return static_cast<double>(p.h) / static_cast<double>(p.m) + p.rc +
         1.0 / l;
}

double ForwardRelativeCostClusterReuse(const ComplexityParams& p) {
  ADR_CHECK_GT(p.m, 0);
  const double l = static_cast<double>(p.effective_l());
  return static_cast<double>(p.h) / static_cast<double>(p.m) +
         (1.0 - p.reuse_rate) * p.rc + 1.0 / l;
}

double WeightGradRelativeCost(const ComplexityParams& p) {
  const double l = static_cast<double>(p.effective_l());
  return (1.0 - p.rc) / l + p.rc;
}

double InputDeltaRelativeCost(const ComplexityParams& p) { return p.rc; }

double TrainingStepRelativeCost(const ComplexityParams& p) {
  const double forward = p.reuse_rate > 0.0
                             ? ForwardRelativeCostClusterReuse(p)
                             : ForwardRelativeCost(p);
  return (forward + WeightGradRelativeCost(p) + InputDeltaRelativeCost(p)) /
         3.0;
}

double DeltaTimeForL(int64_t l1, int64_t l2) {
  ADR_CHECK_GT(l1, 0);
  ADR_CHECK_GT(l2, 0);
  return 1.0 / static_cast<double>(l2) - 1.0 / static_cast<double>(l1);
}

double DeltaTimeForH(int h1, int h2, int64_t m) {
  ADR_CHECK_GT(m, 0);
  return static_cast<double>(h2 - h1) / static_cast<double>(m);
}

bool LshProfitable(int h, int64_t m, double rc) {
  return static_cast<double>(h) < static_cast<double>(m) * (1.0 - rc);
}

}  // namespace adr
