// End-to-end training drivers for the paper's three reuse strategies
// (Section V, evaluated in Table IV):
//   Strategy 1 — fixed {L, H}, no cluster reuse;
//   Strategy 2 — adaptive {L, H} via AdaptiveController;
//   Strategy 3 — cluster reuse on until the loss plateaus, then off;
// plus the dense baseline they are all measured against.

#ifndef ADR_CORE_STRATEGIES_H_
#define ADR_CORE_STRATEGIES_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/adaptive_controller.h"
#include "core/reuse_config.h"
#include "data/dataset.h"
#include "models/models.h"
#include "util/result.h"

namespace adr {

enum class StrategyKind : int {
  kBaseline = 0,      ///< dense Conv2d training
  kFixed = 1,         ///< Strategy 1
  kAdaptive = 2,      ///< Strategy 2
  kClusterReuse = 3,  ///< Strategy 3
};

std::string_view StrategyKindToString(StrategyKind kind);

enum class OptimizerKind : int { kMomentum = 0, kAdam = 1 };

/// \brief Options of one training run.
struct TrainingRunOptions {
  int64_t batch_size = 32;
  OptimizerKind optimizer = OptimizerKind::kAdam;
  float learning_rate = 0.002f;
  float momentum = 0.9f;  ///< used by OptimizerKind::kMomentum
  /// Run ends as soon as the evaluation accuracy reaches this value...
  double target_accuracy = 0.9;
  /// ...or after this many optimizer steps.
  int64_t max_steps = 1500;
  int64_t eval_every = 20;    ///< steps between accuracy evaluations
  int64_t eval_samples = 256; ///< samples used per evaluation
  /// Fixed {L, H, CR} for strategies 1 and 3.
  ReuseConfig fixed_reuse;
  /// Controller options for strategy 2 (and the plateau rule of 3).
  AdaptiveOptions adaptive;
  uint64_t seed = 99;
};

/// \brief Outcome of one training run.
struct TrainingRunResult {
  StrategyKind strategy = StrategyKind::kBaseline;
  int64_t steps_run = 0;
  double wall_seconds = 0.0;
  double final_accuracy = 0.0;
  bool reached_target = false;
  /// Conv-layer MACs actually executed / of the dense equivalent.
  double conv_macs_executed = 0.0;
  double conv_macs_baseline = 0.0;
  int stages_used = 1;            ///< stages visited (strategy 2)
  double final_reuse_rate = 0.0;  ///< last-batch R (strategy 3)
  std::vector<double> loss_history;
  /// (step, accuracy) evaluation trace.
  std::vector<std::pair<int64_t, double>> eval_history;

  /// Fraction of conv MACs avoided relative to dense.
  double MacsSavedFraction() const {
    return conv_macs_baseline == 0.0
               ? 0.0
               : 1.0 - conv_macs_executed / conv_macs_baseline;
  }
};

/// \brief Trains `model_name` built with `model_options` on `dataset`
/// under the given strategy and measures the run.
Result<TrainingRunResult> RunTrainingStrategy(
    StrategyKind kind, const std::string& model_name,
    const ModelOptions& model_options, const Dataset& dataset,
    const TrainingRunOptions& options);

}  // namespace adr

#endif  // ADR_CORE_STRATEGIES_H_
