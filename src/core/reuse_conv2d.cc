#include "core/reuse_conv2d.h"

#include <cmath>

#include "core/complexity_model.h"
#include "core/reuse_backward.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/metrics_registry.h"
#include "util/timer.h"
#include "util/trace.h"

namespace adr {

ReuseConv2d::ReuseConv2d(std::string name, const Conv2dConfig& config,
                         const ReuseConfig& reuse, Rng* rng)
    : name_(std::move(name)),
      metric_prefix_("reuse/" + name_ + "/"),
      config_(config),
      reuse_(reuse) {
  const int64_t k = unfolded_cols();
  const int64_t m = config_.out_channels;
  ADR_CHECK_GT(k, 0);
  ADR_CHECK_GT(m, 0);
  ADR_CHECK(reuse_.Validate(k).ok()) << reuse_.Validate(k).ToString();
  const float stddev = std::sqrt(2.0f / static_cast<float>(k));
  weight_ = Tensor::RandomGaussian(Shape({k, m}), rng, 0.0f, stddev);
  bias_ = Tensor(Shape({m}));
  grad_weight_ = Tensor(Shape({k, m}));
  grad_bias_ = Tensor(Shape({m}));
  RebuildFamilies();
}

void ReuseConv2d::RebuildFamilies() {
  const int64_t k = unfolded_cols();
  families_ = *BlockLshFamilies::Create(k, reuse_.EffectiveLength(k),
                                        reuse_.num_hashes, reuse_.seed);
  if (reuse_.ClusterReuseEnabled()) {
    cache_ = std::make_unique<ClusterReuseCache>();
  } else {
    cache_.reset();
  }
}

Status ReuseConv2d::SetReuseConfig(const ReuseConfig& reuse) {
  const int64_t k = unfolded_cols();
  ADR_RETURN_NOT_OK(reuse.Validate(k));
  const bool families_changed =
      reuse.EffectiveLength(k) != reuse_.EffectiveLength(k) ||
      reuse.num_hashes != reuse_.num_hashes || reuse.seed != reuse_.seed;
  const bool cr_changed =
      reuse.ClusterReuseEnabled() != reuse_.ClusterReuseEnabled();
  reuse_ = reuse;
  if (families_changed || cr_changed) {
    RebuildFamilies();
  }
  return Status::OK();
}

ConvGeometry ReuseConv2d::Geometry(int64_t batch) const {
  ConvGeometry geo;
  geo.batch = batch;
  geo.in_channels = config_.in_channels;
  geo.in_height = config_.in_height;
  geo.in_width = config_.in_width;
  geo.kernel_h = config_.kernel;
  geo.kernel_w = config_.kernel;
  geo.stride = config_.stride;
  geo.pad = config_.pad;
  return geo;
}

Tensor ReuseConv2d::Forward(const Tensor& input, bool /*training*/) {
  ADR_TRACE_SPAN("ReuseConv2d::Forward");
  const int64_t batch = input.shape()[0];
  const ConvGeometry geo = Geometry(batch);
  const int64_t n = geo.unfolded_rows();
  const int64_t k = geo.unfolded_cols();

  Tensor cols(Shape({n, k}));
  {
    ADR_TRACE_SPAN("im2col");
    Timer im2col_timer;
    Im2Col(geo, input, &cols);
    MetricsRegistry::Global()
        .histogram(metric_prefix_ + "im2col_seconds")
        ->Record(im2col_timer.ElapsedSeconds());
  }
  cached_batch_ = batch;

  if (!reuse_.enabled) {
    // Dense path: identical to Conv2d. The unfolded input is kept for the
    // exact backward.
    const int64_t m = config_.out_channels;
    Tensor y_rows(Shape({n, m}));
    Gemm(cols.data(), weight_.data(), y_rows.data(), n, k, m);
    AddRowBias(bias_, &y_rows);
    cached_cols_ = std::move(cols);
    ++stats_.forward_calls;
    stats_.macs_executed += static_cast<double>(n) * k * m;
    stats_.macs_baseline += static_cast<double>(n) * k * m;
    MetricsRegistry& metrics = MetricsRegistry::Global();
    metrics.counter(metric_prefix_ + "forward_calls")->Increment();
    metrics.gauge(metric_prefix_ + "enabled")->Set(0.0);
    return RowsToNchw(y_rows, batch, m, geo.out_height(), geo.out_width());
  }

  const int64_t rows_per_group = reuse_.scope == ClusterScope::kSingleInput
                                     ? geo.rows_per_image()
                                     : n;
  ForwardReuseResult forward =
      reuse_.method == ClusteringMethod::kKMeans
          ? KMeansMatmulForward(cols.data(), n, k,
                                reuse_.EffectiveLength(k), weight_, &bias_,
                                rows_per_group, reuse_.kmeans_clusters,
                                reuse_.kmeans_iterations, reuse_.seed)
          : ClusteredMatmulForward(families_, cols.data(), n, weight_,
                                   &bias_, rows_per_group, cache_.get());
  cached_clustering_ = std::move(forward.clustering);
  if (exact_backward_) {
    cached_cols_ = std::move(cols);
  }

  // Telemetry (running mean of r_c; cumulative times and MACs).
  const ForwardReuseStats& fs = forward.stats;
  const double prev_count = static_cast<double>(stats_.forward_calls);
  stats_.avg_remaining_ratio =
      (stats_.avg_remaining_ratio * prev_count + fs.avg_remaining_ratio) /
      (prev_count + 1.0);
  ++stats_.forward_calls;
  stats_.hash_seconds += fs.hash_seconds;
  stats_.gemm_seconds += fs.gemm_seconds;
  stats_.macs_executed += fs.macs_hash + fs.macs_gemm + fs.macs_scatter;
  stats_.macs_baseline += fs.macs_baseline;
  stats_.last_batch_reuse_rate = fs.batch_reuse_rate;
  PublishForwardMetrics(fs);

  return RowsToNchw(forward.y_rows, batch, config_.out_channels,
                    geo.out_height(), geo.out_width());
}

void ReuseConv2d::PublishForwardMetrics(const ForwardReuseStats& fs) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.counter(metric_prefix_ + "forward_calls")->Increment();
  metrics.gauge(metric_prefix_ + "enabled")->Set(1.0);
  metrics.gauge(metric_prefix_ + "r_c")->Set(fs.avg_remaining_ratio);
  metrics.gauge(metric_prefix_ + "reuse_rate")->Set(fs.batch_reuse_rate);
  metrics.gauge(metric_prefix_ + "clusters")
      ->Set(static_cast<double>(fs.clusters_total));
  metrics.counter(metric_prefix_ + "clusters_reused")
      ->Increment(fs.clusters_reused);
  metrics.histogram(metric_prefix_ + "hash_seconds")
      ->Record(fs.hash_seconds);
  metrics.histogram(metric_prefix_ + "gemm_seconds")
      ->Record(fs.gemm_seconds);

  // Predicted (Eq. 5, or Eq. 6 under cluster reuse) vs measured relative
  // forward cost, both against the dense N*K*M baseline of this batch.
  ComplexityParams params;
  params.k = unfolded_cols();
  params.m = config_.out_channels;
  params.l = reuse_.EffectiveLength(params.k);
  params.h = reuse_.num_hashes;
  params.rc = fs.avg_remaining_ratio;
  params.reuse_rate = fs.batch_reuse_rate;
  const double predicted = reuse_.ClusterReuseEnabled()
                               ? ForwardRelativeCostClusterReuse(params)
                               : ForwardRelativeCost(params);
  const double measured =
      fs.macs_baseline == 0.0
          ? 0.0
          : (fs.macs_hash + fs.macs_gemm + fs.macs_scatter) /
                fs.macs_baseline;
  metrics.gauge(metric_prefix_ + "forward_cost_predicted")->Set(predicted);
  metrics.gauge(metric_prefix_ + "forward_cost_measured")->Set(measured);
}

Tensor ReuseConv2d::Backward(const Tensor& grad_output) {
  ADR_TRACE_SPAN("ReuseConv2d::Backward");
  ADR_CHECK_GT(cached_batch_, 0) << "Backward before Forward";
  const ConvGeometry geo = Geometry(cached_batch_);
  const int64_t n = geo.unfolded_rows();
  const int64_t k = geo.unfolded_cols();
  const int64_t m = config_.out_channels;

  const Tensor dy = NchwToRows(grad_output);
  ADR_CHECK(dy.shape() == Shape({n, m}));

  Tensor dx_cols;
  if (exact_backward_ || !reuse_.enabled) {
    // Ablation path: exact gradients from the cached unfolded input.
    Timer timer;
    ADR_CHECK(cached_cols_.shape() == Shape({n, k}))
        << "exact_backward requires the unfolded input cached in Forward";
    GemmTransA(cached_cols_.data(), dy.data(), grad_weight_.data(), k, n, m);
    grad_bias_ = ColumnSums(dy);
    dx_cols = Tensor(Shape({n, k}));
    GemmTransB(dy.data(), weight_.data(), dx_cols.data(), n, m, k);
    const double seconds = timer.ElapsedSeconds();
    stats_.backward_seconds += seconds;
    stats_.macs_executed += 2.0 * static_cast<double>(n) * k * m;
    stats_.macs_baseline += 2.0 * static_cast<double>(n) * k * m;
    MetricsRegistry::Global()
        .histogram(metric_prefix_ + "backward_seconds")
        ->Record(seconds);
  } else {
    BackwardReuseResult backward =
        ReuseBackward(cached_clustering_, weight_, dy);
    grad_weight_ = std::move(backward.grad_weight);
    grad_bias_ = std::move(backward.grad_bias);
    dx_cols = std::move(backward.grad_x);
    stats_.backward_seconds += backward.stats.seconds;
    stats_.macs_executed += backward.stats.macs;
    stats_.macs_baseline += backward.stats.macs_baseline;
    MetricsRegistry::Global()
        .histogram(metric_prefix_ + "backward_seconds")
        ->Record(backward.stats.seconds);
  }

  Tensor grad_input(Shape({cached_batch_, config_.in_channels,
                           config_.in_height, config_.in_width}));
  Col2Im(geo, dx_cols, &grad_input);
  return grad_input;
}

double ReuseConv2d::ForwardMacs(int64_t batch) const {
  const ConvGeometry geo = Geometry(batch);
  return static_cast<double>(geo.unfolded_rows()) * geo.unfolded_cols() *
         config_.out_channels;
}

void ReuseConv2d::CopyWeightsFrom(const Conv2d& baseline) {
  ADR_CHECK(weight_.SameShape(baseline.weight()))
      << "weight shape mismatch copying into " << name_;
  weight_ = baseline.weight();
  bias_ = baseline.bias();
}

void ReuseConv2d::ClearCache() {
  if (cache_ != nullptr) cache_->Clear();
}

}  // namespace adr
