#include "core/reuse_conv2d.h"

#include <algorithm>
#include <cmath>

#include "core/complexity_model.h"
#include "core/reuse_backward.h"
#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/metrics_registry.h"
#include "util/timer.h"
#include "util/trace.h"

namespace adr {

ReuseConv2d::ReuseConv2d(std::string name, const Conv2dConfig& config,
                         const ReuseConfig& reuse, Rng* rng)
    : name_(std::move(name)),
      metric_prefix_("reuse/" + name_ + "/"),
      config_(config),
      reuse_(reuse) {
  const int64_t k = unfolded_cols();
  const int64_t m = config_.out_channels;
  ADR_CHECK_GT(k, 0);
  ADR_CHECK_GT(m, 0);
  ADR_CHECK(reuse_.Validate(k).ok()) << reuse_.Validate(k).ToString();
  const float stddev = std::sqrt(2.0f / static_cast<float>(k));
  weight_ = Tensor::RandomGaussian(Shape({k, m}), rng, 0.0f, stddev);
  bias_ = Tensor(Shape({m}));
  grad_weight_ = Tensor(Shape({k, m}));
  grad_bias_ = Tensor(Shape({m}));
  RebuildFamilies();
}

void ReuseConv2d::RebuildFamilies() {
  const int64_t k = unfolded_cols();
  families_ = *BlockLshFamilies::Create(k, reuse_.EffectiveLength(k),
                                        reuse_.num_hashes, reuse_.seed);
  if (reuse_.ClusterReuseEnabled()) {
    cache_ = std::make_unique<ClusterReuseCache>();
    cache_->set_max_entries(cache_max_entries_);
    cache_->set_max_bytes(cache_max_bytes_);
  } else {
    cache_.reset();
  }
  // A fresh cache starts all counters at zero, so delta publishing must
  // restart from zero too.
  published_cache_ = ClusterReuseCache::Stats{};
}

void ReuseConv2d::SetCacheBudgets(int64_t max_entries, int64_t max_bytes) {
  cache_max_entries_ = max_entries;
  cache_max_bytes_ = max_bytes;
  if (cache_ != nullptr) {
    cache_->set_max_entries(max_entries);
    cache_->set_max_bytes(max_bytes);
  }
}

Status ReuseConv2d::SetReuseConfig(const ReuseConfig& reuse) {
  const int64_t k = unfolded_cols();
  ADR_RETURN_NOT_OK(reuse.Validate(k));
  const bool families_changed =
      reuse.EffectiveLength(k) != reuse_.EffectiveLength(k) ||
      reuse.num_hashes != reuse_.num_hashes || reuse.seed != reuse_.seed;
  const bool cr_changed =
      reuse.ClusterReuseEnabled() != reuse_.ClusterReuseEnabled();
  reuse_ = reuse;
  if (families_changed || cr_changed) {
    RebuildFamilies();
  }
  return Status::OK();
}

ConvGeometry ReuseConv2d::Geometry(int64_t batch) const {
  ConvGeometry geo;
  geo.batch = batch;
  geo.in_channels = config_.in_channels;
  geo.in_height = config_.in_height;
  geo.in_width = config_.in_width;
  geo.kernel_h = config_.kernel;
  geo.kernel_w = config_.kernel;
  geo.stride = config_.stride;
  geo.pad = config_.pad;
  return geo;
}

Tensor ReuseConv2d::Forward(const Tensor& input, bool training) {
  ADR_TRACE_SPAN("ReuseConv2d::Forward");
  const int64_t batch = input.shape()[0];
  const ConvGeometry geo = Geometry(batch);
  const int64_t n = geo.unfolded_rows();
  const int64_t k = geo.unfolded_cols();
  const int64_t m = config_.out_channels;

  // One arena epoch spans Forward and the matching Backward; everything
  // handed out since the previous Reset() is invalidated here.
  arena_.Reset();
  cached_cols_data_ = nullptr;
  // Donate last step's clustering buffers before this step builds new
  // ones — at fixed shapes the capacity round-trips and no allocation
  // happens.
  clusterer_.Recycle(std::move(cached_clustering_));
  cached_clustering_ = ReuseClustering{};
  // Eval mode caches nothing: Backward requires a training Forward.
  cached_batch_ = training ? batch : 0;

  if (!reuse_.enabled) {
    // Dense path: identical to Conv2d. The unfolded input is kept for the
    // exact backward only while training.
    float* cols = arena_.AllocFloats(n * k);
    {
      ADR_TRACE_SPAN("im2col");
      Timer im2col_timer;
      Im2Col(geo, input.data(), cols);
      MetricsRegistry::Global()
          .histogram(metric_prefix_ + "im2col_seconds")
          ->Record(im2col_timer.ElapsedSeconds());
    }
    float* y = arena_.AllocFloats(n * m);
    Gemm(cols, weight_.data(), y, n, k, m);
    AddRowBias(bias_.data(), y, n, m);
    if (training) cached_cols_data_ = cols;
    ++stats_.forward_calls;
    stats_.macs_executed += static_cast<double>(n) * k * m;
    stats_.macs_baseline += static_cast<double>(n) * k * m;
    MetricsRegistry& metrics = MetricsRegistry::Global();
    metrics.counter(metric_prefix_ + "forward_calls")->Increment();
    metrics.gauge(metric_prefix_ + "enabled")->Set(0.0);
    PublishWorkspaceMetrics();
    Tensor out(Shape({batch, m, geo.out_height(), geo.out_width()}));
    RowsToNchw(y, batch, m, geo.out_height(), geo.out_width(), out.data());
    return out;
  }

  const int64_t rows_per_group = reuse_.scope == ClusterScope::kSingleInput
                                     ? geo.rows_per_image()
                                     : n;
  ReuseClustering clustering;
  ForwardReuseStats fs;
  float* y = arena_.AllocFloats(n * m);

  if (reuse_.method == ClusteringMethod::kKMeans ||
      (exact_backward_ && training)) {
    // Materialized paths: k-means needs iterative passes over the rows,
    // and the exact-backward ablation needs the unfolded input alive for
    // Backward — both keep the N x K matrix (arena-owned).
    float* cols = arena_.AllocFloats(n * k);
    {
      ADR_TRACE_SPAN("im2col");
      Timer im2col_timer;
      Im2Col(geo, input.data(), cols);
      MetricsRegistry::Global()
          .histogram(metric_prefix_ + "im2col_seconds")
          ->Record(im2col_timer.ElapsedSeconds());
    }
    if (reuse_.method == ClusteringMethod::kKMeans) {
      ForwardReuseResult forward = KMeansMatmulForward(
          cols, n, k, reuse_.EffectiveLength(k), weight_, &bias_,
          rows_per_group, reuse_.kmeans_clusters, reuse_.kmeans_iterations,
          reuse_.seed);
      clustering = std::move(forward.clustering);
      fs = forward.stats;
      std::copy_n(forward.y_rows.data(), n * m, y);
    } else {
      ClusteredMatmulForwardInto(families_, cols, n, weight_, &bias_,
                                 rows_per_group, cache_.get(), &arena_, y,
                                 &clustering, &fs);
    }
    if (training && exact_backward_) cached_cols_data_ = cols;
  } else {
    // Fused tiled path: im2col rows stream straight from the NCHW input
    // into the hash pipeline; the N x K matrix never exists.
    FusedClusteredForward(families_, geo, input.data(), weight_, &bias_,
                          rows_per_group, cache_.get(), &arena_,
                          &clusterer_, y, &clustering, &fs);
  }

  if (training) {
    cached_clustering_ = std::move(clustering);
  } else {
    clusterer_.Recycle(std::move(clustering));
  }

  // Telemetry (running mean of r_c; cumulative times and MACs).
  const double prev_count = static_cast<double>(stats_.forward_calls);
  stats_.avg_remaining_ratio =
      (stats_.avg_remaining_ratio * prev_count + fs.avg_remaining_ratio) /
      (prev_count + 1.0);
  ++stats_.forward_calls;
  stats_.hash_seconds += fs.hash_seconds;
  stats_.gemm_seconds += fs.gemm_seconds;
  stats_.macs_executed += fs.macs_hash + fs.macs_gemm + fs.macs_scatter;
  stats_.macs_baseline += fs.macs_baseline;
  stats_.last_batch_reuse_rate = fs.batch_reuse_rate;
  PublishForwardMetrics(fs);
  PublishCacheMetrics();
  PublishWorkspaceMetrics();

  Tensor out(Shape({batch, m, geo.out_height(), geo.out_width()}));
  RowsToNchw(y, batch, m, geo.out_height(), geo.out_width(), out.data());
  return out;
}

void ReuseConv2d::PublishForwardMetrics(const ForwardReuseStats& fs) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.counter(metric_prefix_ + "forward_calls")->Increment();
  metrics.gauge(metric_prefix_ + "enabled")->Set(1.0);
  metrics.gauge(metric_prefix_ + "r_c")->Set(fs.avg_remaining_ratio);
  metrics.gauge(metric_prefix_ + "reuse_rate")->Set(fs.batch_reuse_rate);
  metrics.gauge(metric_prefix_ + "clusters")
      ->Set(static_cast<double>(fs.clusters_total));
  metrics.counter(metric_prefix_ + "clusters_reused")
      ->Increment(fs.clusters_reused);
  metrics.histogram(metric_prefix_ + "hash_seconds")
      ->Record(fs.hash_seconds);
  metrics.histogram(metric_prefix_ + "gemm_seconds")
      ->Record(fs.gemm_seconds);

  // Predicted (Eq. 5, or Eq. 6 under cluster reuse) vs measured relative
  // forward cost, both against the dense N*K*M baseline of this batch.
  ComplexityParams params;
  params.k = unfolded_cols();
  params.m = config_.out_channels;
  params.l = reuse_.EffectiveLength(params.k);
  params.h = reuse_.num_hashes;
  params.rc = fs.avg_remaining_ratio;
  params.reuse_rate = fs.batch_reuse_rate;
  const double predicted = reuse_.ClusterReuseEnabled()
                               ? ForwardRelativeCostClusterReuse(params)
                               : ForwardRelativeCost(params);
  const double measured =
      fs.macs_baseline == 0.0
          ? 0.0
          : (fs.macs_hash + fs.macs_gemm + fs.macs_scatter) /
                fs.macs_baseline;
  metrics.gauge(metric_prefix_ + "forward_cost_predicted")->Set(predicted);
  metrics.gauge(metric_prefix_ + "forward_cost_measured")->Set(measured);
}

void ReuseConv2d::PublishWorkspaceMetrics() {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.gauge(metric_prefix_ + "workspace_bytes")
      ->Set(static_cast<double>(arena_.reserved_bytes()));
  // Hot-path slab allocations since the last publish; 0 at every publish
  // once the arena plan is warm — the counter's total therefore converges
  // after the first step at fixed shapes.
  metrics.counter(metric_prefix_ + "allocations_per_step")
      ->Increment(arena_.alloc_slabs() - published_alloc_slabs_);
  published_alloc_slabs_ = arena_.alloc_slabs();
}

void ReuseConv2d::PublishCacheMetrics() {
  if (cache_ == nullptr) return;
  const ClusterReuseCache::Stats stats = cache_->GetStats();
  MetricsRegistry& metrics = MetricsRegistry::Global();

  metrics.gauge(metric_prefix_ + "cache_entries")
      ->Set(static_cast<double>(stats.entries));
  metrics.gauge(metric_prefix_ + "cache_resident_bytes")
      ->Set(static_cast<double>(stats.resident_bytes));
  metrics.gauge(metric_prefix_ + "cache_occupancy")
      ->Set(stats.slots == 0 ? 0.0
                             : static_cast<double>(stats.entries) /
                                   static_cast<double>(stats.slots));

  // The cache's counters are cumulative; the registry counters advance by
  // the delta since the last publish (same pattern as alloc_slabs).
  metrics.counter(metric_prefix_ + "cache_hits")
      ->Increment(stats.hits - published_cache_.hits);
  metrics.counter(metric_prefix_ + "cache_misses")
      ->Increment((stats.lookups - stats.hits) -
                  (published_cache_.lookups - published_cache_.hits));
  metrics.counter(metric_prefix_ + "cache_evictions")
      ->Increment(stats.evictions - published_cache_.evictions);
  Histogram* probes = metrics.histogram(metric_prefix_ + "cache_probe_length");
  for (int b = 0; b < ClusterReuseCache::kProbeBuckets; ++b) {
    probes->RecordN(static_cast<double>(b + 1),
                    stats.probe_counts[static_cast<size_t>(b)] -
                        published_cache_.probe_counts[static_cast<size_t>(b)]);
  }
  published_cache_ = stats;

  stats_.cache_lookups = stats.lookups;
  stats_.cache_hits = stats.hits;
  stats_.cache_evictions = stats.evictions;
  stats_.cache_entries = stats.entries;
  stats_.cache_resident_bytes = stats.resident_bytes;
}

Tensor ReuseConv2d::Backward(const Tensor& grad_output) {
  ADR_TRACE_SPAN("ReuseConv2d::Backward");
  ADR_CHECK_GT(cached_batch_, 0)
      << "Backward requires a preceding training-mode Forward";
  const ConvGeometry geo = Geometry(cached_batch_);
  const int64_t n = geo.unfolded_rows();
  const int64_t k = geo.unfolded_cols();
  const int64_t m = config_.out_channels;

  ADR_CHECK(grad_output.shape() == Shape({cached_batch_, m,
                                          geo.out_height(),
                                          geo.out_width()}));
  float* dy = arena_.AllocFloats(n * m);
  NchwToRows(grad_output, dy);
  float* dx_cols = arena_.AllocFloats(n * k);

  if (exact_backward_ || !reuse_.enabled) {
    // Ablation path: exact gradients from the cached unfolded input.
    Timer timer;
    ADR_CHECK(cached_cols_data_ != nullptr)
        << "exact_backward requires the unfolded input cached in Forward";
    GemmTransA(cached_cols_data_, dy, grad_weight_.data(), k, n, m);
    ColumnSumsInto(dy, n, m, grad_bias_.data());
    GemmTransB(dy, weight_.data(), dx_cols, n, m, k);
    const double seconds = timer.ElapsedSeconds();
    stats_.backward_seconds += seconds;
    stats_.macs_executed += 2.0 * static_cast<double>(n) * k * m;
    stats_.macs_baseline += 2.0 * static_cast<double>(n) * k * m;
    MetricsRegistry::Global()
        .histogram(metric_prefix_ + "backward_seconds")
        ->Record(seconds);
  } else {
    BackwardReuseStats bstats;
    ReuseBackwardInto(cached_clustering_, weight_, dy, &arena_,
                      grad_weight_.data(), grad_bias_.data(), dx_cols,
                      &bstats);
    stats_.backward_seconds += bstats.seconds;
    stats_.macs_executed += bstats.macs;
    stats_.macs_baseline += bstats.macs_baseline;
    MetricsRegistry::Global()
        .histogram(metric_prefix_ + "backward_seconds")
        ->Record(bstats.seconds);
  }

  Tensor grad_input(Shape({cached_batch_, config_.in_channels,
                           config_.in_height, config_.in_width}));
  Col2Im(geo, dx_cols, grad_input.data());
  PublishWorkspaceMetrics();
  return grad_input;
}

double ReuseConv2d::ForwardMacs(int64_t batch) const {
  const ConvGeometry geo = Geometry(batch);
  return static_cast<double>(geo.unfolded_rows()) * geo.unfolded_cols() *
         config_.out_channels;
}

void ReuseConv2d::CopyWeightsFrom(const Conv2d& baseline) {
  ADR_CHECK(weight_.SameShape(baseline.weight()))
      << "weight shape mismatch copying into " << name_;
  weight_ = baseline.weight();
  bias_ = baseline.bias();
}

void ReuseConv2d::ClearCache() {
  if (cache_ != nullptr) cache_->Clear();
}

}  // namespace adr
