// The original map-based cluster-reuse cache, preserved verbatim (modulo
// the rename) as the behavioral reference for the slab-backed
// ClusterReuseCache in core/cluster_cache.h:
//
//   - tests/cluster_cache_test.cc runs both caches over the same batch
//     stream and requires identical hit/miss decisions, counters, R, and
//     forward outputs at unbounded capacity;
//   - bench/micro_reuse.cc's BM_ReferenceCacheLookup is the baseline the
//     ≥3x lookup-speedup acceptance bar is measured against.
//
// Not used on any production path — the naive containers (one
// unordered_map node plus two heap vectors per entry, full-walk
// TotalEntries/ApproximateMemoryBytes) are exactly what the slab design
// replaces. Header-only so only test/bench targets pay for it.

#ifndef ADR_CORE_CLUSTER_CACHE_REFERENCE_H_
#define ADR_CORE_CLUSTER_CACHE_REFERENCE_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <utility>
#include <vector>

#include "clustering/lsh.h"
#include "util/check.h"

namespace adr {

class ReferenceClusterCache {
 public:
  struct Entry {
    std::vector<float> representative;  ///< length L_I
    std::vector<float> output;          ///< length M
  };

  /// \brief Looks up a signature in block `block`; nullptr on miss.
  const Entry* Find(int64_t block, const LshSignature& signature) const {
    ++lookups_;
    const BlockMap& map = BlockFor(block);
    const auto it = map.find(signature);
    if (it == map.end()) return nullptr;
    ++hits_;
    return &it->second;
  }

  /// \brief Inserts (overwrites) an entry.
  void Insert(int64_t block, const LshSignature& signature, Entry entry) {
    BlockMap& map = BlockFor(block);
    const bool is_new = map.find(signature) == map.end();
    map[signature] = std::move(entry);
    if (is_new) {
      insertion_order_.emplace_back(block, signature);
      EvictIfNeeded();
    }
  }

  void Clear() {
    blocks_.clear();
    insertion_order_.clear();
    lookups_ = 0;
    hits_ = 0;
    evictions_ = 0;
  }

  int64_t TotalEntries() const {
    int64_t total = 0;
    for (const auto& map : blocks_) {
      total += static_cast<int64_t>(map.size());
    }
    return total;
  }

  /// \brief FIFO bound on the entry count; 0 = unbounded.
  void set_max_entries(int64_t max_entries) { max_entries_ = max_entries; }
  int64_t max_entries() const { return max_entries_; }
  int64_t evictions() const { return evictions_; }

  int64_t ApproximateMemoryBytes() const {
    int64_t bytes = 0;
    for (const BlockMap& map : blocks_) {
      for (const auto& [signature, entry] : map) {
        bytes += static_cast<int64_t>(sizeof(signature)) +
                 static_cast<int64_t>((entry.representative.size() +
                                       entry.output.size()) *
                                      sizeof(float));
      }
    }
    return bytes;
  }

  int64_t lookups() const { return lookups_; }
  int64_t hits() const { return hits_; }
  double ReuseRate() const {
    return lookups_ == 0 ? 0.0
                         : static_cast<double>(hits_) /
                               static_cast<double>(lookups_);
  }

 private:
  using BlockMap =
      std::unordered_map<LshSignature, Entry, LshSignatureHash>;

  BlockMap& BlockFor(int64_t block) const {
    ADR_CHECK_GE(block, 0);
    if (static_cast<size_t>(block) >= blocks_.size()) {
      blocks_.resize(static_cast<size_t>(block) + 1);
    }
    return blocks_[static_cast<size_t>(block)];
  }

  void EvictIfNeeded() {
    if (max_entries_ <= 0) return;
    while (TotalEntries() > max_entries_ && !insertion_order_.empty()) {
      const auto [block, signature] = insertion_order_.front();
      insertion_order_.pop_front();
      if (BlockFor(block).erase(signature) > 0) ++evictions_;
    }
  }

  mutable std::vector<BlockMap> blocks_;
  mutable int64_t lookups_ = 0;
  mutable int64_t hits_ = 0;
  int64_t max_entries_ = 0;
  int64_t evictions_ = 0;
  /// Insertion order across all blocks, for FIFO eviction.
  std::deque<std::pair<int64_t, LshSignature>> insertion_order_;
};

}  // namespace adr

#endif  // ADR_CORE_CLUSTER_CACHE_REFERENCE_H_
