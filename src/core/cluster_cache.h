// Cross-batch cluster-reuse cache of Algorithm 1, engineered for the CR
// hot path.
//
// Per column block the cache maps an LSH signature (the cluster ID) to the
// cluster's representative sub-vector and its precomputed output row.
// Internally each block is an open-addressing table (power-of-two
// capacity, linear probing on SignatureKey) whose fixed-size 32-byte
// slots — signature and slab entry id together, so a probe step touches
// exactly one cache line — index into contiguous slab storage for
// representatives and outputs: no per-entry heap allocations, one
// predictable probe stream per lookup, exact O(1) memory accounting. Lookups are batched (FindBatch resolves
// every cluster of a block in one ParallelFor pass) and the hit payloads
// are gathered with the SIMD copy kernel. Capacity is bounded by an entry
// budget and/or a byte budget with generation-stamped second-chance
// (clock) eviction, O(1) amortized per insert.
//
// Concurrency contract (single-writer / multi-reader):
//   - Find/FindBatch/GatherHits and all accessors are const, perform no
//     structural mutation, and are safe to call concurrently with each
//     other from any number of threads. The hit/lookup/probe counters and
//     the per-entry recency stamps they advance are relaxed atomics.
//   - Insert/InsertBatch/Clear/set_* mutate and must be externally
//     serialized against everything else (in ReuseConv2d the cache is
//     owned by one layer and driven from its calling thread; pool workers
//     only ever run the const batch paths).
//
// During training the cached outputs grow stale as W changes — that is
// the approximation the CR flag trades for speed (paper Section V-B);
// Clear() is the knob strategies use to bound it.

#ifndef ADR_CORE_CLUSTER_CACHE_H_
#define ADR_CORE_CLUSTER_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "clustering/lsh.h"

namespace adr {

class ClusterReuseCache {
 public:
  /// Probe-length buckets: exact lengths 1..15, last bucket = >= 16.
  static constexpr int kProbeBuckets = 16;

  /// \brief Read-only view into slab storage. Valid until the next
  /// mutating call (Insert*/Clear) on the cache.
  struct View {
    const float* representative = nullptr;  ///< length floats
    const float* output = nullptr;          ///< m floats
    int64_t length = 0;
    int64_t m = 0;
  };

  /// \brief Point-in-time copy of every internal counter, for telemetry
  /// (ReuseConv2d publishes deltas of these into MetricsRegistry).
  struct Stats {
    int64_t entries = 0;
    int64_t slots = 0;  ///< open-addressing capacity across blocks
    int64_t resident_bytes = 0;
    int64_t lookups = 0;
    int64_t hits = 0;
    int64_t inserts = 0;
    int64_t evictions = 0;
    int64_t alloc_events = 0;
    /// Lookups by probe length: probe_counts[i] counts probes of length
    /// i + 1; the last bucket collects everything >= kProbeBuckets.
    std::array<int64_t, kProbeBuckets> probe_counts = {};
  };

  ClusterReuseCache() = default;
  ClusterReuseCache(const ClusterReuseCache&) = delete;
  ClusterReuseCache& operator=(const ClusterReuseCache&) = delete;

  /// \brief Looks up one signature in block `block`; counts one lookup.
  /// On a hit fills `view` (when non-null) and returns true.
  bool Find(int64_t block, const LshSignature& signature,
            View* view = nullptr) const;

  /// \brief Resolves `count` signatures of one block in a single
  /// ParallelFor pass: entries[i] receives the slab entry id on a hit and
  /// -1 on a miss. Counts `count` lookups; returns the number of hits.
  /// Decisions are deterministic and independent of the thread count.
  int64_t FindBatch(int64_t block, const LshSignature* signatures,
                    int64_t count, int32_t* entries) const;

  /// \brief Copies the payloads of FindBatch hits into row-strided
  /// destinations with the SIMD copy kernel: for every i with
  /// entries[i] >= 0, outputs[i * out_stride ..] receives the cached
  /// output row and (when `reps` is non-null) reps[i * rep_stride ..] the
  /// representative. Parallel over i; rows are disjoint per i.
  void GatherHits(int64_t block, const int32_t* entries, int64_t count,
                  float* outputs, int64_t out_stride, float* reps,
                  int64_t rep_stride) const;

  /// \brief Inserts (or overwrites) one entry. Every entry of a block
  /// must carry the block's (length, m), fixed at the block's first
  /// insert.
  void Insert(int64_t block, const LshSignature& signature,
              const float* representative, int64_t length,
              const float* output, int64_t m);

  /// \brief Inserts `count` clusters in ascending order: cluster_ids[i]
  /// selects signatures[cluster_ids[i]], row cluster_ids[i] of `reps`
  /// (stride `length`) and of `outputs` (stride `m`) — the layout
  /// FinishForwardFromClustering already holds (block signatures and
  /// centroids, and the per-cluster output buffer).
  void InsertBatch(int64_t block, const LshSignature* signatures,
                   const int32_t* cluster_ids, int64_t count,
                   const float* reps, int64_t length, const float* outputs,
                   int64_t m);

  /// \brief Drops all entries and counters (e.g. when L, H, or the
  /// W-staleness policy says the cache is no longer valid). Keeps the
  /// configured budgets.
  void Clear();

  int64_t TotalEntries() const { return total_entries_; }

  /// \brief Bounds the total entry count across blocks; 0 = unbounded
  /// (the paper's Algorithm 1 never evicts). Takes effect on the next
  /// insert.
  void set_max_entries(int64_t max_entries) { max_entries_ = max_entries; }
  int64_t max_entries() const { return max_entries_; }

  /// \brief Bounds ResidentBytes(); 0 = unbounded. Takes effect on the
  /// next insert.
  void set_max_bytes(int64_t max_bytes) { max_bytes_ = max_bytes; }
  int64_t max_bytes() const { return max_bytes_; }

  int64_t evictions() const { return evictions_; }

  /// \brief Exact bytes of cached payload (representatives + outputs +
  /// signatures), maintained incrementally — O(1), no walk.
  int64_t ResidentBytes() const { return resident_bytes_; }

  /// Cumulative cluster lookups and hits since construction/Clear().
  int64_t lookups() const {
    return lookups_.load(std::memory_order_relaxed);
  }
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  /// Cumulative reuse rate R = hits / lookups.
  double ReuseRate() const {
    const int64_t l = lookups();
    return l == 0 ? 0.0 : static_cast<double>(hits()) / static_cast<double>(l);
  }

  /// \brief Cumulative heap allocations performed by the cache (slab and
  /// table growth). Frozen at steady state: a warm cache serves hits —
  /// and recycles evicted capacity for new inserts — with zero
  /// allocations per step (see tests/cluster_cache_test.cc).
  int64_t alloc_events() const { return alloc_events_; }

  Stats GetStats() const;

 private:
  /// One open-addressing slot. The alignment pads the 20 live bytes to 32
  /// so two slots share a cache line and no slot ever straddles one: a
  /// probe step costs exactly one line whether it compares the signature,
  /// reads the entry id, or both.
  struct alignas(32) Slot {
    LshSignature sig;
    int32_t entry = -1;  ///< slab entry id, -1 = empty
  };

  /// One column block: an open-addressing table over slab storage.
  struct Block {
    // Payload geometry, fixed at the block's first insert.
    int64_t rep_len = -1;
    int64_t out_len = -1;
    int64_t stride = 0;  ///< rep_len + out_len floats per entry

    // The table: capacity (a power of two) packed slots.
    std::vector<Slot> slots;
    uint64_t mask = 0;  ///< capacity - 1; 0 with no table yet

    // Entry-indexed slab storage: entry e's representative lives at
    // slab[e * stride], its output at slab[e * stride + rep_len].
    std::vector<float> slab;
    std::vector<LshSignature> entry_sig;
    std::vector<int32_t> entry_slot;  ///< back-pointer for O(1) removal
    std::vector<uint8_t> live;
    // Second-chance recency: stamp is the generation of the last touch
    // (stored with atomic_ref from the const lookup paths), visited the
    // stamp recorded at the clock's previous visit. stamp != visited =>
    // touched since => one more pass.
    std::vector<uint64_t> stamp;
    std::vector<uint64_t> visited;
    std::vector<int32_t> free_entries;
    int64_t num_entries = 0;
    int64_t clock_hand = 0;  ///< next entry id the clock inspects

    int64_t capacity() const { return static_cast<int64_t>(slots.size()); }
  };

  // Probe for `sig` in `block`; returns the slot whose entry matches, or
  // the first empty slot. *probe_len receives the number of slots
  // inspected (>= 1).
  static int64_t ProbeSlot(const Block& block, const LshSignature& sig,
                           int64_t* probe_len);

  Block& EnsureBlock(int64_t block);
  void EnsureTableCapacity(Block& block);
  int32_t AllocEntry(Block& block);
  void RemoveEntry(int64_t block_index, int32_t entry);
  void EvictIfNeeded();
  bool OverBudget() const {
    return (max_entries_ > 0 && total_entries_ > max_entries_) ||
           (max_bytes_ > 0 && resident_bytes_ > max_bytes_);
  }
  int64_t EntryBytes(const Block& block) const {
    return block.stride * static_cast<int64_t>(sizeof(float)) +
           static_cast<int64_t>(sizeof(LshSignature));
  }
  void InsertOne(Block& block, const LshSignature& sig,
                 const float* representative, const float* output);

  std::vector<Block> blocks_;
  int64_t total_entries_ = 0;
  int64_t resident_bytes_ = 0;
  int64_t max_entries_ = 0;
  int64_t max_bytes_ = 0;
  int64_t evictions_ = 0;
  int64_t inserts_ = 0;
  int64_t alloc_events_ = 0;
  /// Advanced once per mutating insert call; lookups stamp entries with
  /// the current value (see Block::stamp).
  uint64_t generation_ = 1;
  /// Round-robin clock position across blocks.
  int64_t clock_block_ = 0;

  mutable std::atomic<int64_t> lookups_{0};
  mutable std::atomic<int64_t> hits_{0};
  mutable std::array<std::atomic<int64_t>, kProbeBuckets> probe_counts_ = {};
};

}  // namespace adr

#endif  // ADR_CORE_CLUSTER_CACHE_H_
