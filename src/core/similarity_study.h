// Library form of the paper's similarity studies (Section VI-A/B1): given
// a trained dense model, quantify the r_c-accuracy trade-off of one conv
// layer under LSH or k-means clustering. The fig7/fig8 benches are thin
// drivers over these functions; applications can run the same studies on
// their own models to pick {L, H} settings.

#ifndef ADR_CORE_SIMILARITY_STUDY_H_
#define ADR_CORE_SIMILARITY_STUDY_H_

#include <cstdint>
#include <vector>

#include "core/reuse_config.h"
#include "data/dataset.h"
#include "models/models.h"
#include "util/result.h"

namespace adr {

/// \brief One measured point of a similarity study.
struct SimilarityPoint {
  ReuseConfig config;           ///< the configuration measured
  double remaining_ratio = 0.0; ///< observed average r_c
  double accuracy = 0.0;        ///< inference accuracy with this config
  double macs_saved = 0.0;      ///< fraction of the layer's MACs avoided
};

/// \brief Common options of both studies.
struct SimilarityStudyOptions {
  size_t layer_index = 0;    ///< which conv layer to study
  int64_t batch_size = 8;
  int64_t eval_samples = 96; ///< samples per accuracy measurement
};

/// \brief Measures every (L, H) combination on one layer, holding all
/// other layers exact. `dense` must be a baseline-mode model trained on
/// (or at least compatible with) `dataset`; `model_options` are the
/// options it was built with.
///
/// Returns InvalidArgument when layer_index is out of range or a config
/// does not validate against the layer's K.
Result<std::vector<SimilarityPoint>> LshSimilarityStudy(
    const Model& dense, const ModelOptions& model_options,
    const Dataset& dataset, const SimilarityStudyOptions& options,
    const std::vector<int64_t>& l_values, const std::vector<int>& h_values);

/// \brief Measures k-means clustering (the Fig. 7 upper-bound study) at
/// the given cluster counts under the given scope.
Result<std::vector<SimilarityPoint>> KMeansSimilarityStudy(
    const Model& dense, const ModelOptions& model_options,
    const Dataset& dataset, const SimilarityStudyOptions& options,
    ClusterScope scope, const std::vector<int64_t>& cluster_counts);

}  // namespace adr

#endif  // ADR_CORE_SIMILARITY_STUDY_H_
