#include "core/cluster_cache.h"

#include <algorithm>
#include <type_traits>

#include "tensor/simd.h"
#include "util/check.h"
#include "util/parallel.h"

namespace adr {

namespace {

// Initial open-addressing capacity of a block (power of two). Small
// layers stay tiny; big layers double a handful of times and then stop.
constexpr int64_t kInitialSlots = 64;

// Grow the table once num_entries exceeds 7/8 of this fraction... kept
// simple: rebuild when occupancy would exceed ~70% so probes stay short.
bool NeedsGrow(int64_t entries, int64_t capacity) {
  return capacity == 0 || 10 * (entries + 1) > 7 * capacity;
}

int64_t ProbeBucket(int64_t probe_len) {
  return std::min<int64_t>(probe_len, ClusterReuseCache::kProbeBuckets) - 1;
}

}  // namespace

int64_t ClusterReuseCache::ProbeSlot(const Block& block,
                                     const LshSignature& sig,
                                     int64_t* probe_len) {
  // Load factor is capped well below 1, so an empty slot always ends the
  // scan. The signature comparison is an xor/or reduction to a single
  // well-predicted branch instead of two short-circuit word compares —
  // that plus the one-line Slot layout is what makes a probe step a
  // handful of cycles.
  const uint64_t w0 = sig.words[0];
  const uint64_t w1 = sig.words[1];
  uint64_t idx = SignatureKey(sig) & block.mask;
  int64_t len = 1;
  for (;;) {
    const Slot& slot = block.slots[static_cast<size_t>(idx)];
    if (slot.entry < 0) break;
    if (((slot.sig.words[0] ^ w0) | (slot.sig.words[1] ^ w1)) == 0) break;
    idx = (idx + 1) & block.mask;
    ++len;
  }
  *probe_len = len;
  return static_cast<int64_t>(idx);
}

bool ClusterReuseCache::Find(int64_t block_index, const LshSignature& signature,
                             View* view) const {
  ADR_CHECK_GE(block_index, 0);
  lookups_.fetch_add(1, std::memory_order_relaxed);
  if (static_cast<size_t>(block_index) >= blocks_.size()) {
    probe_counts_[0].fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const Block& block = blocks_[static_cast<size_t>(block_index)];
  if (block.capacity() == 0) {
    probe_counts_[0].fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  int64_t probe_len = 0;
  const int64_t slot = ProbeSlot(block, signature, &probe_len);
  probe_counts_[static_cast<size_t>(ProbeBucket(probe_len))].fetch_add(
      1, std::memory_order_relaxed);
  const int32_t entry = block.slots[static_cast<size_t>(slot)].entry;
  if (entry < 0) return false;
  hits_.fetch_add(1, std::memory_order_relaxed);
  // Recency touch for second-chance eviction — only maintained while a
  // budget is set (an unbounded cache never evicts, so the random-access
  // stamp write would be dead weight on the hot path). Concurrent readers
  // may race on the same entry; they all store the same generation
  // snapshot.
  if (max_entries_ > 0 || max_bytes_ > 0) {
    std::atomic_ref<uint64_t>(
        const_cast<uint64_t&>(block.stamp[static_cast<size_t>(entry)]))
        .store(generation_, std::memory_order_relaxed);
  }
  if (view != nullptr) {
    const float* base =
        block.slab.data() + static_cast<int64_t>(entry) * block.stride;
    view->representative = base;
    view->output = base + block.rep_len;
    view->length = block.rep_len;
    view->m = block.out_len;
  }
  return true;
}

int64_t ClusterReuseCache::FindBatch(int64_t block_index,
                                     const LshSignature* signatures,
                                     int64_t count, int32_t* entries) const {
  ADR_CHECK_GE(block_index, 0);
  if (count <= 0) return 0;
  lookups_.fetch_add(count, std::memory_order_relaxed);
  if (static_cast<size_t>(block_index) >= blocks_.size() ||
      blocks_[static_cast<size_t>(block_index)].capacity() == 0) {
    std::fill_n(entries, static_cast<size_t>(count), int32_t{-1});
    probe_counts_[0].fetch_add(count, std::memory_order_relaxed);
    return 0;
  }
  const Block& block = blocks_[static_cast<size_t>(block_index)];
  const uint64_t generation = generation_;
  const bool track_recency = max_entries_ > 0 || max_bytes_ > 0;
  std::atomic<int64_t> total_hits{0};
  // Chunk boundaries depend only on (count, grain), and entries[i] is the
  // only per-index output, so decisions are thread-count independent.
  // Counters aggregate per chunk: one fetch_add per counter per chunk.
  ParallelFor(count, GrainForCost(64), [&](int64_t begin, int64_t end) {
    // The probe loop is written out here against local raw pointers
    // instead of calling ProbeSlot: hoisting the table pointer, mask, and
    // output pointers out of the closure keeps the per-lookup path free
    // of both a function call and repeated member-chain loads, which
    // together are worth ~2ns of the ~4ns budget per lookup.
    const Slot* slots = block.slots.data();
    const uint64_t mask = block.mask;
    uint64_t* stamps = const_cast<uint64_t*>(block.stamp.data());
    int64_t chunk_hits = 0;
    std::array<int64_t, kProbeBuckets> chunk_probes = {};
    // The loop is instantiated twice so the common unbudgeted case pays
    // neither the recency-stamp store nor its per-hit branch.
    const auto scan = [&](auto track) {
      for (int64_t i = begin; i < end; ++i) {
        const LshSignature sig = signatures[i];
        const uint64_t w0 = sig.words[0];
        const uint64_t w1 = sig.words[1];
        uint64_t idx = SignatureKey(sig) & mask;
        int64_t probe_len = 1;
        for (;;) {
          const Slot& slot = slots[idx];
          if (slot.entry < 0) break;
          if (((slot.sig.words[0] ^ w0) | (slot.sig.words[1] ^ w1)) == 0) {
            break;
          }
          idx = (idx + 1) & mask;
          ++probe_len;
        }
        ++chunk_probes[static_cast<size_t>(ProbeBucket(probe_len))];
        const int32_t entry = slots[idx].entry;
        entries[i] = entry;
        if (entry >= 0) {
          ++chunk_hits;
          if constexpr (decltype(track)::value) {
            std::atomic_ref<uint64_t>(stamps[static_cast<size_t>(entry)])
                .store(generation, std::memory_order_relaxed);
          }
        }
      }
    };
    if (track_recency) {
      scan(std::true_type{});
    } else {
      scan(std::false_type{});
    }
    if (chunk_hits > 0) {
      hits_.fetch_add(chunk_hits, std::memory_order_relaxed);
      total_hits.fetch_add(chunk_hits, std::memory_order_relaxed);
    }
    for (int b = 0; b < kProbeBuckets; ++b) {
      if (chunk_probes[static_cast<size_t>(b)] > 0) {
        probe_counts_[static_cast<size_t>(b)].fetch_add(
            chunk_probes[static_cast<size_t>(b)], std::memory_order_relaxed);
      }
    }
  });
  return total_hits.load(std::memory_order_relaxed);
}

void ClusterReuseCache::GatherHits(int64_t block_index, const int32_t* entries,
                                   int64_t count, float* outputs,
                                   int64_t out_stride, float* reps,
                                   int64_t rep_stride) const {
  if (count <= 0) return;
  ADR_CHECK_GE(block_index, 0);
  ADR_CHECK_LT(static_cast<size_t>(block_index), blocks_.size());
  const Block& block = blocks_[static_cast<size_t>(block_index)];
  const simd::Kernels& kernels = simd::Active();
  const int64_t row_cost = block.rep_len + block.out_len;
  ParallelFor(count, GrainForCost(row_cost), [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const int32_t entry = entries[i];
      if (entry < 0) continue;
      const float* base =
          block.slab.data() + static_cast<int64_t>(entry) * block.stride;
      kernels.copy(base + block.rep_len, outputs + i * out_stride,
                   block.out_len);
      if (reps != nullptr) {
        kernels.copy(base, reps + i * rep_stride, block.rep_len);
      }
    }
  });
}

ClusterReuseCache::Block& ClusterReuseCache::EnsureBlock(int64_t block) {
  ADR_CHECK_GE(block, 0);
  if (static_cast<size_t>(block) >= blocks_.size()) {
    blocks_.resize(static_cast<size_t>(block) + 1);
    ++alloc_events_;
    if (static_cast<size_t>(clock_block_) >= blocks_.size()) clock_block_ = 0;
  }
  return blocks_[static_cast<size_t>(block)];
}

void ClusterReuseCache::EnsureTableCapacity(Block& block) {
  if (!NeedsGrow(block.num_entries, block.capacity())) return;
  int64_t capacity = std::max<int64_t>(block.capacity() * 2, kInitialSlots);
  while (NeedsGrow(block.num_entries, capacity)) capacity *= 2;
  block.slots.assign(static_cast<size_t>(capacity), Slot{});
  block.mask = static_cast<uint64_t>(capacity - 1);
  ++alloc_events_;
  // Rehash every live entry into the fresh table.
  const int64_t entry_capacity = static_cast<int64_t>(block.entry_sig.size());
  for (int64_t e = 0; e < entry_capacity; ++e) {
    if (!block.live[static_cast<size_t>(e)]) continue;
    int64_t probe_len = 0;
    const int64_t slot =
        ProbeSlot(block, block.entry_sig[static_cast<size_t>(e)], &probe_len);
    ADR_DCHECK(block.slots[static_cast<size_t>(slot)].entry < 0);
    block.slots[static_cast<size_t>(slot)].entry = static_cast<int32_t>(e);
    block.slots[static_cast<size_t>(slot)].sig =
        block.entry_sig[static_cast<size_t>(e)];
  }
}

int32_t ClusterReuseCache::AllocEntry(Block& block) {
  if (!block.free_entries.empty()) {
    const int32_t entry = block.free_entries.back();
    block.free_entries.pop_back();
    return entry;
  }
  const size_t entry = block.entry_sig.size();
  const size_t slab_capacity_before = block.slab.capacity();
  const size_t meta_capacity_before = block.entry_sig.capacity();
  block.slab.resize((entry + 1) * static_cast<size_t>(block.stride));
  block.entry_sig.emplace_back();
  block.entry_slot.push_back(-1);
  block.live.push_back(0);
  block.stamp.push_back(0);
  block.visited.push_back(0);
  // The free list must be able to absorb every entry without allocating
  // (RemoveEntry pushes onto it from the eviction path).
  block.free_entries.reserve(block.entry_sig.capacity());
  if (block.slab.capacity() != slab_capacity_before ||
      block.entry_sig.capacity() != meta_capacity_before) {
    ++alloc_events_;
  }
  return static_cast<int32_t>(entry);
}

void ClusterReuseCache::RemoveEntry(int64_t block_index, int32_t entry) {
  Block& block = blocks_[static_cast<size_t>(block_index)];
  ADR_DCHECK(block.live[static_cast<size_t>(entry)]);
  // Backward-shift deletion: close the probe chain over the vacated slot
  // so lookups never need tombstones.
  uint64_t hole = static_cast<uint64_t>(block.entry_slot[static_cast<size_t>(entry)]);
  uint64_t probe = hole;
  while (true) {
    probe = (probe + 1) & block.mask;
    const Slot& candidate = block.slots[static_cast<size_t>(probe)];
    if (candidate.entry < 0) break;
    const uint64_t ideal = SignatureKey(candidate.sig) & block.mask;
    // Shift back only entries whose probe chain passes through the hole.
    if (((probe - ideal) & block.mask) >= ((probe - hole) & block.mask)) {
      block.slots[static_cast<size_t>(hole)] = candidate;
      block.entry_slot[static_cast<size_t>(candidate.entry)] =
          static_cast<int32_t>(hole);
      hole = probe;
    }
  }
  block.slots[static_cast<size_t>(hole)].entry = -1;

  block.live[static_cast<size_t>(entry)] = 0;
  block.entry_slot[static_cast<size_t>(entry)] = -1;
  block.free_entries.push_back(entry);
  --block.num_entries;
  --total_entries_;
  resident_bytes_ -= EntryBytes(block);
}

void ClusterReuseCache::EvictIfNeeded() {
  // Second-chance clock over (block, entry id). An entry touched since
  // the clock's last visit (stamp != visited) gets one pass; untouched
  // entries are evicted. Passes are granted at most once per touch, so
  // the scan is O(1) amortized per insert, and within one call stamps are
  // frozen (the writer is serialized against lookups' stamping only in
  // the sense that any stamp seen grants at most one pass), so the loop
  // terminates.
  while (OverBudget() && total_entries_ > 0) {
    Block& block = blocks_[static_cast<size_t>(clock_block_)];
    const int64_t entry_capacity = static_cast<int64_t>(block.entry_sig.size());
    if (block.num_entries == 0 || block.clock_hand >= entry_capacity) {
      block.clock_hand = 0;
      clock_block_ = (clock_block_ + 1) % static_cast<int64_t>(blocks_.size());
      continue;
    }
    const int64_t e = block.clock_hand++;
    if (!block.live[static_cast<size_t>(e)]) continue;
    if (block.stamp[static_cast<size_t>(e)] !=
        block.visited[static_cast<size_t>(e)]) {
      block.visited[static_cast<size_t>(e)] =
          block.stamp[static_cast<size_t>(e)];
      continue;
    }
    RemoveEntry(clock_block_, static_cast<int32_t>(e));
    ++evictions_;
  }
}

void ClusterReuseCache::InsertOne(Block& block, const LshSignature& sig,
                                  const float* representative,
                                  const float* output) {
  EnsureTableCapacity(block);
  int64_t probe_len = 0;
  const int64_t slot = ProbeSlot(block, sig, &probe_len);
  int32_t entry = block.slots[static_cast<size_t>(slot)].entry;
  const bool is_new = entry < 0;
  if (is_new) {
    entry = AllocEntry(block);
    block.entry_sig[static_cast<size_t>(entry)] = sig;
    block.entry_slot[static_cast<size_t>(entry)] =
        static_cast<int32_t>(slot);
    block.live[static_cast<size_t>(entry)] = 1;
    // One free pass for the fresh entry (visited lags stamp by one
    // generation), matching the pass a lookup hit would grant.
    block.visited[static_cast<size_t>(entry)] = generation_ - 1;
    block.slots[static_cast<size_t>(slot)].entry = entry;
    block.slots[static_cast<size_t>(slot)].sig = sig;
    ++block.num_entries;
    ++total_entries_;
    resident_bytes_ += EntryBytes(block);
  }
  block.stamp[static_cast<size_t>(entry)] = generation_;
  float* base = block.slab.data() + static_cast<int64_t>(entry) * block.stride;
  std::copy_n(representative, static_cast<size_t>(block.rep_len), base);
  std::copy_n(output, static_cast<size_t>(block.out_len),
              base + block.rep_len);
  ++inserts_;
}

void ClusterReuseCache::Insert(int64_t block_index,
                               const LshSignature& signature,
                               const float* representative, int64_t length,
                               const float* output, int64_t m) {
  ADR_CHECK_GT(length, 0);
  ADR_CHECK_GT(m, 0);
  Block& block = EnsureBlock(block_index);
  if (block.rep_len < 0) {
    block.rep_len = length;
    block.out_len = m;
    block.stride = length + m;
  } else {
    ADR_CHECK_EQ(block.rep_len, length);
    ADR_CHECK_EQ(block.out_len, m);
  }
  ++generation_;
  InsertOne(block, signature, representative, output);
  EvictIfNeeded();
}

void ClusterReuseCache::InsertBatch(int64_t block_index,
                                    const LshSignature* signatures,
                                    const int32_t* cluster_ids, int64_t count,
                                    const float* reps, int64_t length,
                                    const float* outputs, int64_t m) {
  if (count <= 0) return;
  ADR_CHECK_GT(length, 0);
  ADR_CHECK_GT(m, 0);
  Block& block = EnsureBlock(block_index);
  if (block.rep_len < 0) {
    block.rep_len = length;
    block.out_len = m;
    block.stride = length + m;
  } else {
    ADR_CHECK_EQ(block.rep_len, length);
    ADR_CHECK_EQ(block.out_len, m);
  }
  ++generation_;
  for (int64_t i = 0; i < count; ++i) {
    const int64_t c = cluster_ids[i];
    InsertOne(block, signatures[c], reps + c * length, outputs + c * m);
  }
  EvictIfNeeded();
}

void ClusterReuseCache::Clear() {
  blocks_.clear();
  total_entries_ = 0;
  resident_bytes_ = 0;
  evictions_ = 0;
  inserts_ = 0;
  generation_ = 1;
  clock_block_ = 0;
  lookups_.store(0, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
  for (auto& bucket : probe_counts_) {
    bucket.store(0, std::memory_order_relaxed);
  }
}

ClusterReuseCache::Stats ClusterReuseCache::GetStats() const {
  Stats stats;
  stats.entries = total_entries_;
  for (const Block& block : blocks_) stats.slots += block.capacity();
  stats.resident_bytes = resident_bytes_;
  stats.lookups = lookups();
  stats.hits = hits();
  stats.inserts = inserts_;
  stats.evictions = evictions_;
  stats.alloc_events = alloc_events_;
  for (int b = 0; b < kProbeBuckets; ++b) {
    stats.probe_counts[static_cast<size_t>(b)] =
        probe_counts_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
  }
  return stats;
}

}  // namespace adr
