#include "core/reuse_backward.h"

#include "tensor/gemm.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/timer.h"

namespace adr {

BackwardReuseResult ReuseBackward(const ReuseClustering& clustering,
                                  const Tensor& weight, const Tensor& dy) {
  const int64_t n = clustering.num_rows;
  const int64_t k = clustering.num_cols;
  ADR_CHECK_EQ(weight.shape().rank(), 2);
  ADR_CHECK_EQ(weight.shape()[0], k);
  const int64_t m = weight.shape()[1];
  ADR_CHECK(dy.shape() == Shape({n, m}));

  Timer timer;
  BackwardReuseResult result;
  result.grad_weight = Tensor(Shape({k, m}));
  result.grad_x = Tensor(Shape({n, k}));
  result.grad_bias = ColumnSums(dy);

  const float* dy_data = dy.data();
  for (const SubMatrixClustering& block : clustering.blocks) {
    const int64_t num_clusters = block.clustering.num_clusters();
    const int64_t length = block.length;
    const float* w_block = weight.data() + block.col_offset * m;

    // dy_{c,s}: sum the dy rows of each cluster (Eq. 8).
    Tensor dy_sum(Shape({num_clusters, m}));
    float* sums = dy_sum.data();
    for (int64_t i = 0; i < n; ++i) {
      const float* src = dy_data + i * m;
      float* dst =
          sums + block.clustering.assignment[static_cast<size_t>(i)] * m;
      for (int64_t j = 0; j < m; ++j) dst[j] += src[j];
    }
    result.stats.macs += static_cast<double>(n - num_clusters) * m;

    // dW_I = x_c^T * dy_{c,s} (Eq. 10), written into rows
    // [col_offset, col_offset + L) of dW.
    GemmTransA(block.centroids.data(), sums,
               result.grad_weight.data() + block.col_offset * m, length,
               num_clusters, m);
    result.stats.macs += static_cast<double>(num_clusters) * length * m;

    // dy_{c,sa}: average instead of sum (divide each row by N_l).
    for (int64_t c = 0; c < num_clusters; ++c) {
      const float inv = 1.0f / static_cast<float>(
                                   block.clustering.cluster_sizes
                                       [static_cast<size_t>(c)]);
      float* row = sums + c * m;
      for (int64_t j = 0; j < m; ++j) row[j] *= inv;
    }

    // dx_c = dy_{c,sa} * W_I^T (Eq. 18).
    Tensor dx_c(Shape({num_clusters, length}));
    GemmTransB(sums, w_block, dx_c.data(), num_clusters, m, length);
    result.stats.macs += static_cast<double>(num_clusters) * length * m;

    // Scatter the centroid delta to every member row (Eq. 13).
    ScatterRows(dx_c, block.clustering,
                result.grad_x.data() + block.col_offset, k);
  }

  result.stats.seconds = timer.ElapsedSeconds();
  result.stats.macs_baseline = 2.0 * static_cast<double>(n) * k * m;
  return result;
}

}  // namespace adr
