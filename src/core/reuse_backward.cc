#include "core/reuse_backward.h"

#include <algorithm>
#include <vector>

#include "tensor/gemm.h"
#include "tensor/simd.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace adr {

namespace {

// The per-cluster dy reduction is chunked into a fixed number of row
// ranges whose partial sums are combined in chunk order. The layout
// depends only on N — never on the thread count — so the reduction is
// bit-deterministic for 1, 2, or any number of threads.
constexpr int64_t kReduceChunks = 8;

// dy_sum[cl] = sum of dy rows assigned to cluster cl (Eq. 8). `sums` and
// `partials` (chunks * |C| * m floats) may be uninitialized; both are
// zero-filled here before accumulation.
void ClusterRowSums(const float* dy, const Clustering& clustering, int64_t n,
                    int64_t m, float* partials, float* sums) {
  const simd::Kernels& kernels = simd::Active();
  const int64_t num_clusters = clustering.num_clusters();
  const int64_t chunks = std::min<int64_t>(kReduceChunks, n);
  std::fill_n(partials, static_cast<size_t>(chunks * num_clusters * m),
              0.0f);
  std::fill_n(sums, static_cast<size_t>(num_clusters * m), 0.0f);
  ThreadPool::Global()->Run(chunks, [&](int64_t c) {
    const int64_t begin = c * n / chunks;
    const int64_t end = (c + 1) * n / chunks;
    float* part = partials + c * num_clusters * m;
    for (int64_t i = begin; i < end; ++i) {
      kernels.add(dy + i * m,
                  part + clustering.assignment[static_cast<size_t>(i)] * m,
                  m);
    }
  });
  // Combine in ascending chunk order; cluster rows are disjoint, so the
  // combine itself parallelizes over clusters.
  ParallelFor(num_clusters, GrainForCost(chunks * m),
              [&](int64_t cl_begin, int64_t cl_end) {
                for (int64_t cl = cl_begin; cl < cl_end; ++cl) {
                  float* dst = sums + cl * m;
                  for (int64_t c = 0; c < chunks; ++c) {
                    kernels.add(partials + (c * num_clusters + cl) * m, dst,
                                m);
                  }
                }
              });
}

}  // namespace

void ReuseBackwardInto(const ReuseClustering& clustering,
                       const Tensor& weight, const float* dy,
                       WorkspaceArena* arena, float* grad_weight,
                       float* grad_bias, float* grad_x,
                       BackwardReuseStats* stats) {
  const int64_t n = clustering.num_rows;
  const int64_t k = clustering.num_cols;
  ADR_CHECK_EQ(weight.shape().rank(), 2);
  ADR_CHECK_EQ(weight.shape()[0], k);
  const int64_t m = weight.shape()[1];

  Timer timer;
  ScratchAllocator scratch(arena);
  ColumnSumsInto(dy, n, m, grad_bias);

  for (const SubMatrixClustering& block : clustering.blocks) {
    const int64_t num_clusters = block.clustering.num_clusters();
    const int64_t length = block.length;
    const float* w_block = weight.data() + block.col_offset * m;
    const int64_t chunks = std::min<int64_t>(kReduceChunks, n);

    // dy_{c,s}: sum the dy rows of each cluster (Eq. 8).
    float* sums = scratch.Floats(num_clusters * m);
    float* partials = scratch.Floats(chunks * num_clusters * m);
    ClusterRowSums(dy, block.clustering, n, m, partials, sums);
    stats->macs += static_cast<double>(n - num_clusters) * m;

    // dW_I = x_c^T * dy_{c,s} (Eq. 10), written into rows
    // [col_offset, col_offset + L) of dW. The blocks tile [0, K), so dW
    // is fully overwritten.
    GemmTransA(block.centroids.data(), sums,
               grad_weight + block.col_offset * m, length, num_clusters, m);
    stats->macs += static_cast<double>(num_clusters) * length * m;

    // dy_{c,sa}: average instead of sum (divide each row by N_l).
    const simd::Kernels& kernels = simd::Active();
    ParallelFor(num_clusters, GrainForCost(m),
                [&](int64_t begin, int64_t end) {
                  for (int64_t c = begin; c < end; ++c) {
                    kernels.scale(
                        1.0f / static_cast<float>(
                                   block.clustering.cluster_sizes
                                       [static_cast<size_t>(c)]),
                        sums + c * m, m);
                  }
                });

    // dx_c = dy_{c,sa} * W_I^T (Eq. 18).
    float* dx_c = scratch.Floats(num_clusters * length);
    GemmTransB(sums, w_block, dx_c, num_clusters, m, length);
    stats->macs += static_cast<double>(num_clusters) * length * m;

    // Scatter the centroid delta to every member row (Eq. 13); column
    // ranges tile [0, K), so dx is fully overwritten.
    ScatterRows(dx_c, length, block.clustering, grad_x + block.col_offset,
                k);
  }

  stats->seconds = timer.ElapsedSeconds();
  stats->macs_baseline = 2.0 * static_cast<double>(n) * k * m;
}

BackwardReuseResult ReuseBackward(const ReuseClustering& clustering,
                                  const Tensor& weight, const Tensor& dy) {
  const int64_t n = clustering.num_rows;
  const int64_t k = clustering.num_cols;
  ADR_CHECK_EQ(weight.shape().rank(), 2);
  const int64_t m = weight.shape()[1];
  ADR_CHECK(dy.shape() == Shape({n, m}));

  BackwardReuseResult result;
  result.grad_weight = Tensor(Shape({k, m}));
  result.grad_bias = Tensor(Shape({m}));
  result.grad_x = Tensor(Shape({n, k}));
  ReuseBackwardInto(clustering, weight, dy.data(), /*arena=*/nullptr,
                    result.grad_weight.data(), result.grad_bias.data(),
                    result.grad_x.data(), &result.stats);
  return result;
}

}  // namespace adr
