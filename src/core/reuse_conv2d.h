// ReuseConv2d: drop-in replacement for Conv2d that runs adaptive deep
// reuse — LSH-clustered forward (Section III) and clustering-reusing
// backward (Section IV). The ReuseConfig can be changed between batches,
// which is how the adaptive strategies of Section V drive the layer.

#ifndef ADR_CORE_REUSE_CONV2D_H_
#define ADR_CORE_REUSE_CONV2D_H_

#include <memory>
#include <string>
#include <vector>

#include "core/clustered_matmul.h"
#include "core/reuse_config.h"
#include "core/subvector_clustering.h"
#include "nn/conv2d.h"
#include "nn/layer.h"
#include "nn/reuse_stats.h"  // ReuseLayerStats lives with the Layer API
#include "tensor/im2col.h"
#include "tensor/workspace_arena.h"
#include "util/rng.h"
#include "util/status.h"

namespace adr {

/// \brief Convolution layer accelerated by adaptive deep reuse.
class ReuseConv2d : public Layer {
 public:
  /// \brief Fresh layer with He-initialized weights (same init as Conv2d
  /// given the same `rng` state).
  ReuseConv2d(std::string name, const Conv2dConfig& config,
              const ReuseConfig& reuse, Rng* rng);

  std::string name() const override { return name_; }
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Tensor*> Parameters() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> Gradients() override {
    return {&grad_weight_, &grad_bias_};
  }
  double ForwardMacs(int64_t batch) const override;

  /// \brief Applies a new clustering configuration; regenerates the LSH
  /// families and clears the cluster-reuse cache if (L, H, seed) changed.
  /// Returns InvalidArgument for out-of-range parameters.
  Status SetReuseConfig(const ReuseConfig& reuse);
  const ReuseConfig& reuse_config() const { return reuse_; }

  /// \brief When true, the backward pass is exact (uses the cached
  /// unfolded input instead of the forward clustering) — an ablation knob;
  /// the paper's method keeps this false.
  void set_exact_backward(bool exact) { exact_backward_ = exact; }
  bool exact_backward() const { return exact_backward_; }

  const Conv2dConfig& config() const { return config_; }
  ConvGeometry Geometry(int64_t batch) const;
  int64_t unfolded_cols() const {
    return config_.in_channels * config_.kernel * config_.kernel;
  }

  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }
  const Tensor& weight() const { return weight_; }

  /// \brief Copies weights from a baseline Conv2d with identical geometry.
  void CopyWeightsFrom(const Conv2d& baseline);

  const ReuseLayerStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ReuseLayerStats{}; }

  // Layer reuse-telemetry hooks (Network::CollectReuseStats).
  const ReuseLayerStats* GetReuseStats() const override { return &stats_; }
  void ResetReuseStats() override { ResetStats(); }

  /// \brief Cluster-reuse cache (present whenever CR is enabled).
  const ClusterReuseCache* cache() const { return cache_.get(); }
  void ClearCache();

  /// \brief Budgets for the cluster-reuse cache (0 = unbounded): at most
  /// `max_entries` resident clusters and `max_bytes` resident payload
  /// bytes, enforced by second-chance eviction. Sticky across
  /// SetReuseConfig rebuilds of the cache.
  void SetCacheBudgets(int64_t max_entries, int64_t max_bytes);

  /// \brief The layer's step-scoped scratch arena. After the first
  /// training step at fixed (batch, config), reserved_bytes() and
  /// alloc_slabs() stay constant — the zero-allocation steady state the
  /// workspace_bytes / allocations_per_step metrics expose.
  const WorkspaceArena& workspace() const { return arena_; }

 private:
  std::string name_;
  std::string metric_prefix_;  ///< "reuse/<name>/", see PublishMetrics
  Conv2dConfig config_;
  ReuseConfig reuse_;
  Tensor weight_;       ///< [K, M]
  Tensor bias_;         ///< [M]
  Tensor grad_weight_;
  Tensor grad_bias_;

  BlockLshFamilies families_;
  std::unique_ptr<ClusterReuseCache> cache_;
  bool exact_backward_ = false;

  /// Step-scoped scratch; Reset() at the top of every Forward.
  WorkspaceArena arena_;
  /// Persistent streaming clusterer of the fused path (its tables and the
  /// clustering buffers recycled through it survive across steps).
  StreamingSubVectorClusterer clusterer_;
  /// alloc_slabs() value already published, for per-step deltas.
  int64_t published_alloc_slabs_ = 0;

  /// Cache budgets, reapplied whenever RebuildFamilies recreates cache_.
  int64_t cache_max_entries_ = 0;
  int64_t cache_max_bytes_ = 0;
  /// Cache counters already published, for per-step deltas.
  ClusterReuseCache::Stats published_cache_;

  // State cached between Forward and Backward (training mode only).
  ReuseClustering cached_clustering_;
  /// Arena-owned [N, K] unfolded input, valid until the next Reset();
  /// non-null only when the exact backward needs it.
  float* cached_cols_data_ = nullptr;
  int64_t cached_batch_ = 0;

  ReuseLayerStats stats_;

  void RebuildFamilies();

  /// Publishes the layer's per-batch telemetry (r_c, reuse rate R,
  /// cluster count, phase wall-times, predicted-vs-measured Eq. 5/6
  /// forward cost) into MetricsRegistry::Global() under metric_prefix_.
  void PublishForwardMetrics(const ForwardReuseStats& stats);

  /// Publishes workspace_bytes (arena capacity gauge) and
  /// allocations_per_step (counter of hot-path slab allocations since the
  /// last publish — zero every step once the arena plan is warm).
  void PublishWorkspaceMetrics();

  /// Publishes the cluster-reuse cache's occupancy, resident bytes,
  /// hit/miss/eviction counter deltas, and probe-length histogram under
  /// metric_prefix_ + "cache_". No-op while CR is disabled.
  void PublishCacheMetrics();
};

}  // namespace adr

#endif  // ADR_CORE_REUSE_CONV2D_H_
