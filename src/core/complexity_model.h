// Analytic cost model of deep reuse (paper Eqs. 5, 6, 12, 20-23).
//
// All costs are *relative*: 1.0 equals the dense baseline GEMM cost
// N*K*M of the pass in question. The adaptive strategy uses the
// forward-cost deltas (Eqs. 22-23) to order its candidate list.

#ifndef ADR_CORE_COMPLEXITY_MODEL_H_
#define ADR_CORE_COMPLEXITY_MODEL_H_

#include <cstdint>

namespace adr {

/// \brief Inputs to the cost model for one convolutional layer.
struct ComplexityParams {
  int64_t n = 0;   ///< rows of the unfolded matrix (batch)
  int64_t k = 0;   ///< weight-kernel size Ic*kh*kw
  int64_t m = 0;   ///< number of weight filters
  int64_t l = 0;   ///< sub-vector length L (0 = whole row)
  int h = 0;       ///< number of hash functions H
  double rc = 0.0; ///< average remaining ratio |C|/N
  double reuse_rate = 0.0;  ///< cluster reuse rate R (CR only)

  int64_t effective_l() const { return l <= 0 || l > k ? k : l; }
};

/// \brief Forward cost relative to N*K*M (Eq. 5):
/// H/M + r_c + 1/L.
double ForwardRelativeCost(const ComplexityParams& p);

/// \brief Forward cost with cluster reuse (Eq. 6):
/// H/M + (1-R)*r_c + 1/L.
double ForwardRelativeCostClusterReuse(const ComplexityParams& p);

/// \brief Weight-gradient cost relative to N*K*M (Eq. 12):
/// (1-r_c)/L + r_c.
double WeightGradRelativeCost(const ComplexityParams& p);

/// \brief Input-delta cost relative to N*K*M (Eq. 20): r_c.
double InputDeltaRelativeCost(const ComplexityParams& p);

/// \brief Whole-training-step cost relative to 3*N*K*M (one forward GEMM +
/// two backward GEMMs).
double TrainingStepRelativeCost(const ComplexityParams& p);

/// \brief Expected-forward-time change when only L moves L1 -> L2
/// (Eq. 22): 1/L2 - 1/L1.
double DeltaTimeForL(int64_t l1, int64_t l2);

/// \brief Expected-forward-time change when only H moves H1 -> H2
/// (Eq. 23): (H2 - H1)/M.
double DeltaTimeForH(int h1, int h2, int64_t m);

/// \brief LSH profitability condition of Section III-B:
/// true iff H < M * (1 - r_c).
bool LshProfitable(int h, int64_t m, double rc);

}  // namespace adr

#endif  // ADR_CORE_COMPLEXITY_MODEL_H_
