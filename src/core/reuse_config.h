// ReuseConfig: the three clustering knobs of adaptive deep reuse
// (paper Section V): sub-vector length L, number of hash functions H, and
// the cluster-reuse flag CR, plus the clustering scope of Section III-B.

#ifndef ADR_CORE_REUSE_CONFIG_H_
#define ADR_CORE_REUSE_CONFIG_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace adr {

/// \brief Pool over which neuron vectors are clustered (Section III-B,
/// "Cluster Scope").
enum class ClusterScope : int {
  kSingleInput = 0,  ///< cluster the rows of each input image separately
  kSingleBatch = 1,  ///< cluster all rows of a batch together (default)
  kAcrossBatch = 2,  ///< single-batch clustering + cross-batch cluster reuse
};

std::string_view ClusterScopeToString(ClusterScope scope);

/// \brief How neuron vectors are grouped.
///
/// The paper's system uses LSH; k-means is the slow, high-quality method
/// used only for the similarity-verification study (Section VI-A, Fig. 7).
enum class ClusteringMethod : int {
  kLsh = 0,
  kKMeans = 1,
};

std::string_view ClusteringMethodToString(ClusteringMethod method);

/// \brief Clustering parameters of one reuse-enabled convolutional layer.
struct ReuseConfig {
  /// When false the layer computes the exact dense convolution (forward
  /// and backward) — used to hold other layers exact while one layer is
  /// studied, and as a per-layer off switch in deployments.
  bool enabled = true;
  /// Sub-vector length L. 0 means "use the whole row" (L = K).
  int64_t sub_vector_length = 0;
  /// Number of LSH hash functions H (1..kMaxLshHashes).
  int num_hashes = 12;
  /// Cluster reuse flag CR (Algorithm 1). Implied true when scope is
  /// kAcrossBatch.
  bool cluster_reuse = false;
  ClusterScope scope = ClusterScope::kSingleBatch;
  /// Seed for the LSH hyperplane family. The family is regenerated only
  /// when (L, H, seed) changes, so signatures stay comparable across
  /// batches, as cluster reuse requires.
  uint64_t seed = 7;
  /// Clustering method (see ClusteringMethod). Cluster reuse requires
  /// kLsh (signatures are the cross-batch cluster IDs).
  ClusteringMethod method = ClusteringMethod::kLsh;
  /// Number of clusters per scope group when method == kKMeans (clamped
  /// to the group's row count at run time).
  int64_t kmeans_clusters = 64;
  /// Lloyd iterations when method == kKMeans.
  int kmeans_iterations = 10;

  /// \brief Effective L for an unfolded matrix with K columns.
  int64_t EffectiveLength(int64_t k) const {
    return sub_vector_length <= 0 || sub_vector_length > k ? k
                                                           : sub_vector_length;
  }

  bool ClusterReuseEnabled() const {
    return cluster_reuse || scope == ClusterScope::kAcrossBatch;
  }

  /// \brief Validates against the layer's unfolded width K.
  Status Validate(int64_t k) const;

  std::string ToString() const;

  bool operator==(const ReuseConfig& other) const = default;
};

}  // namespace adr

#endif  // ADR_CORE_REUSE_CONFIG_H_
