// ReuseConfig: the three clustering knobs of adaptive deep reuse
// (paper Section V): sub-vector length L, number of hash functions H, and
// the cluster-reuse flag CR, plus the clustering scope of Section III-B.

#ifndef ADR_CORE_REUSE_CONFIG_H_
#define ADR_CORE_REUSE_CONFIG_H_

#include <cstdint>
#include <string>

#include "util/result.h"
#include "util/status.h"

namespace adr {

/// \brief Pool over which neuron vectors are clustered (Section III-B,
/// "Cluster Scope").
enum class ClusterScope : int {
  kSingleInput = 0,  ///< cluster the rows of each input image separately
  kSingleBatch = 1,  ///< cluster all rows of a batch together (default)
  kAcrossBatch = 2,  ///< single-batch clustering + cross-batch cluster reuse
};

std::string_view ClusterScopeToString(ClusterScope scope);

/// \brief How neuron vectors are grouped.
///
/// The paper's system uses LSH; k-means is the slow, high-quality method
/// used only for the similarity-verification study (Section VI-A, Fig. 7).
enum class ClusteringMethod : int {
  kLsh = 0,
  kKMeans = 1,
};

std::string_view ClusteringMethodToString(ClusteringMethod method);

/// \brief Clustering parameters of one reuse-enabled convolutional layer.
struct ReuseConfig {
  /// When false the layer computes the exact dense convolution (forward
  /// and backward) — used to hold other layers exact while one layer is
  /// studied, and as a per-layer off switch in deployments.
  bool enabled = true;
  /// Sub-vector length L. 0 means "use the whole row" (L = K).
  int64_t sub_vector_length = 0;
  /// Number of LSH hash functions H (1..kMaxLshHashes).
  int num_hashes = 12;
  /// Cluster reuse flag CR (Algorithm 1). Implied true when scope is
  /// kAcrossBatch.
  bool cluster_reuse = false;
  ClusterScope scope = ClusterScope::kSingleBatch;
  /// Seed for the LSH hyperplane family. The family is regenerated only
  /// when (L, H, seed) changes, so signatures stay comparable across
  /// batches, as cluster reuse requires.
  uint64_t seed = 7;
  /// Clustering method (see ClusteringMethod). Cluster reuse requires
  /// kLsh (signatures are the cross-batch cluster IDs).
  ClusteringMethod method = ClusteringMethod::kLsh;
  /// Number of clusters per scope group when method == kKMeans (clamped
  /// to the group's row count at run time).
  int64_t kmeans_clusters = 64;
  /// Lloyd iterations when method == kKMeans.
  int kmeans_iterations = 10;

  /// \brief Effective L for an unfolded matrix with K columns.
  int64_t EffectiveLength(int64_t k) const {
    return sub_vector_length <= 0 || sub_vector_length > k ? k
                                                           : sub_vector_length;
  }

  bool ClusterReuseEnabled() const {
    return cluster_reuse || scope == ClusterScope::kAcrossBatch;
  }

  /// \brief Validates every constraint that does not depend on layer
  /// geometry (hash count range, k-means parameters, method/CR
  /// compatibility). The single validation path: Validate(k) and every
  /// construction site build on this.
  Status Validate() const;

  /// \brief Validates against the layer's unfolded width K (everything in
  /// Validate() plus the L <= K geometry constraints).
  Status Validate(int64_t k) const;

  std::string ToString() const;

  bool operator==(const ReuseConfig& other) const = default;
};

/// \brief Fluent construction of ReuseConfig with validation at the end:
///
///   ADR_ASSIGN_OR_RETURN(ReuseConfig config,
///                        ReuseConfigBuilder()
///                            .SubVectorLength(25)
///                            .NumHashes(12)
///                            .ClusterReuse(false)
///                            .Build());
///
/// Build() runs the geometry-independent checks; Build(k) additionally
/// checks against a layer's unfolded width. Start from an existing config
/// with ReuseConfigBuilder(base) to tweak one knob (how the adaptive
/// strategies flip CR between batches).
class ReuseConfigBuilder {
 public:
  ReuseConfigBuilder() = default;
  explicit ReuseConfigBuilder(const ReuseConfig& base) : config_(base) {}

  ReuseConfigBuilder& Enabled(bool enabled) {
    config_.enabled = enabled;
    return *this;
  }
  ReuseConfigBuilder& SubVectorLength(int64_t l) {
    config_.sub_vector_length = l;
    return *this;
  }
  ReuseConfigBuilder& NumHashes(int h) {
    config_.num_hashes = h;
    return *this;
  }
  ReuseConfigBuilder& ClusterReuse(bool cr) {
    config_.cluster_reuse = cr;
    return *this;
  }
  ReuseConfigBuilder& Scope(ClusterScope scope) {
    config_.scope = scope;
    return *this;
  }
  ReuseConfigBuilder& Seed(uint64_t seed) {
    config_.seed = seed;
    return *this;
  }
  ReuseConfigBuilder& Method(ClusteringMethod method) {
    config_.method = method;
    return *this;
  }
  ReuseConfigBuilder& KMeans(int64_t clusters, int iterations) {
    config_.method = ClusteringMethod::kKMeans;
    config_.kmeans_clusters = clusters;
    config_.kmeans_iterations = iterations;
    return *this;
  }

  /// \brief Validated build (geometry-independent checks only).
  Result<ReuseConfig> Build() const;

  /// \brief Validated build against a layer's unfolded width K.
  Result<ReuseConfig> Build(int64_t k) const;

  /// \brief The raw config without validation — for call sites that
  /// validate later anyway (layer construction, SetReuseConfig).
  const ReuseConfig& BuildUnchecked() const { return config_; }

 private:
  ReuseConfig config_;
};

}  // namespace adr

#endif  // ADR_CORE_REUSE_CONFIG_H_
