// Sub-vector clustering: splits the unfolded input matrix x (N x K)
// column-wise into sub-matrices of width L and LSH-clusters the rows of
// each independently (paper Fig. 3). The result is the shared artifact of
// forward and backward reuse.

#ifndef ADR_CORE_SUBVECTOR_CLUSTERING_H_
#define ADR_CORE_SUBVECTOR_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "clustering/clustering.h"
#include "clustering/lsh.h"
#include "core/reuse_config.h"
#include "tensor/tensor.h"
#include "util/result.h"

namespace adr {

/// \brief Clustering of one column block x^(I) of the unfolded matrix.
struct SubMatrixClustering {
  int64_t col_offset = 0;  ///< first column of this block in x
  int64_t length = 0;      ///< L_I (last block may be shorter)
  Clustering clustering;
  /// LSH signature per cluster (the cross-batch cluster ID).
  std::vector<LshSignature> signatures;
  /// Centroid matrix x_c^(I), |C_I| x L_I. For clusters reused from the
  /// cross-batch cache this row holds the cached representative.
  Tensor centroids;
  /// reused_from_cache[c] is true when cluster c's output came from the
  /// cluster-reuse cache (Algorithm 1) rather than a fresh GEMM.
  std::vector<bool> reused_from_cache;
};

/// \brief Clustering of all column blocks of one unfolded matrix.
struct ReuseClustering {
  std::vector<SubMatrixClustering> blocks;
  int64_t num_rows = 0;  ///< N
  int64_t num_cols = 0;  ///< K

  /// Average remaining ratio r_c across blocks (paper Section III-B).
  double AverageRemainingRatio() const;
  /// Total clusters across blocks.
  int64_t TotalClusters() const;
};

/// \brief Immutable family of LSH hyperplanes for every column block of a
/// layer, regenerated only when (K, L, H, seed) changes.
class BlockLshFamilies {
 public:
  BlockLshFamilies() = default;

  /// \brief Builds one LshFamily per block for width-K rows split at
  /// length L. Each block gets an independent family (seed offset by the
  /// block index).
  static Result<BlockLshFamilies> Create(int64_t k, int64_t sub_vector_length,
                                         int num_hashes, uint64_t seed);

  int64_t num_blocks() const { return static_cast<int64_t>(families_.size()); }
  const LshFamily& family(int64_t block) const {
    return families_[static_cast<size_t>(block)];
  }
  int64_t block_offset(int64_t block) const {
    return offsets_[static_cast<size_t>(block)];
  }
  int64_t block_length(int64_t block) const {
    return lengths_[static_cast<size_t>(block)];
  }
  int64_t k() const { return k_; }

 private:
  int64_t k_ = 0;
  std::vector<LshFamily> families_;
  std::vector<int64_t> offsets_;
  std::vector<int64_t> lengths_;
};

/// \brief Clusters the rows of `x` (num_rows x k, row-major) per block.
///
/// `rows_per_group` controls the clustering scope: rows are clustered in
/// consecutive groups of that size with cluster IDs never shared across
/// groups (pass num_rows for single-batch scope, N_img for single-input
/// scope). Centroids are computed from the raw (unnormalized) sub-vectors;
/// signatures are sign-invariant to scaling so no explicit normalization is
/// needed for the angular metric.
ReuseClustering ClusterSubVectors(const BlockLshFamilies& families,
                                  const float* x, int64_t num_rows,
                                  int64_t rows_per_group);

/// \brief Incremental ClusterSubVectors over consecutive row tiles.
///
/// The fused forward feeds the unfolded matrix as L2-sized tiles
/// (Im2ColRows output) and this clusterer reproduces ClusterSubVectors
/// bit-for-bit without the N x K matrix ever existing:
///   - signatures go through the same batched projection GEMM, whose
///     per-row results are independent of how rows are tiled;
///   - cluster ids are assigned in the same first-seen order with the
///     same reset at every rows_per_group boundary (tiles need not align
///     with group boundaries);
///   - centroid sums accumulate in the same ascending row order with the
///     same SIMD kernels, and are scaled once in ascending cluster order
///     at Finish — exactly ComputeCentroids' operation order.
///
/// All buffers persist across Begin/Finish cycles; pair Finish with a
/// later Recycle() of the returned ReuseClustering so steady-state
/// training at fixed shapes performs zero heap allocations here.
class StreamingSubVectorClusterer {
 public:
  /// \brief Starts a clustering of `num_rows` width-k rows; scope as in
  /// ClusterSubVectors. `families` must outlive the cycle.
  void Begin(const BlockLshFamilies* families, int64_t num_rows,
             int64_t rows_per_group);

  /// \brief Scratch floats ConsumeTile needs for a tile of `tile_rows`
  /// rows (max over blocks). Valid after Begin.
  int64_t ScratchFloats(int64_t tile_rows) const;

  /// \brief Consumes rows [row_begin, row_begin + tile_rows); tiles must
  /// arrive in order and cover [0, num_rows) exactly. `tile` is
  /// tile_rows x k row-major; `scratch` holds ScratchFloats(tile_rows).
  void ConsumeTile(const float* tile, int64_t row_begin, int64_t tile_rows,
                   float* scratch);

  /// \brief Finalizes centroids and returns the clustering; the clusterer
  /// keeps its table capacity for the next Begin.
  ReuseClustering Finish();

  /// \brief Donates a no-longer-needed clustering (typically last step's)
  /// so its buffer capacity is reused by the next cycle.
  void Recycle(ReuseClustering&& old);

 private:
  struct BlockState {
    // Open-addressing signature table, persistent across tiles within a
    // group; slot ids are global (running) cluster ids.
    std::vector<int32_t> slot_id;
    std::vector<LshSignature> slot_sig;
    // Growing per-cluster state, moved into the result at Finish.
    std::vector<float> centroids;  // |C| x length running sums
    std::vector<int64_t> sizes;
    std::vector<LshSignature> sigs;
    std::vector<int32_t> assignment;
    // Recycled reused_from_cache capacity (see Recycle).
    std::vector<bool> reused_pool;
    // Per-tile signature buffer.
    std::vector<LshSignature> tile_sigs;
  };

  const BlockLshFamilies* families_ = nullptr;
  int64_t num_rows_ = 0;
  int64_t rows_per_group_ = 0;
  int64_t next_row_ = 0;
  size_t table_mask_ = 0;
  std::vector<BlockState> blocks_;
};

}  // namespace adr

#endif  // ADR_CORE_SUBVECTOR_CLUSTERING_H_
