// Forward-pass computation reuse: y = x * W computed on cluster centroids
// only (paper Section III), optionally consulting the cross-batch cluster
// reuse cache (Algorithm 1).

#ifndef ADR_CORE_CLUSTERED_MATMUL_H_
#define ADR_CORE_CLUSTERED_MATMUL_H_

#include <cstdint>
#include <vector>

#include "core/cluster_cache.h"
#include "core/subvector_clustering.h"
#include "tensor/im2col.h"
#include "tensor/tensor.h"
#include "tensor/workspace_arena.h"

namespace adr {

/// \brief Instrumentation of one reuse forward pass.
struct ForwardReuseStats {
  int64_t clusters_total = 0;
  int64_t clusters_reused = 0;  ///< served from the CR cache
  double avg_remaining_ratio = 0.0;
  double hash_seconds = 0.0;  ///< hashing + grouping + centroids
  double gemm_seconds = 0.0;  ///< centroid GEMM + scatter + bias
  /// Multiply-accumulates actually executed, split per phase.
  double macs_hash = 0.0;
  double macs_gemm = 0.0;
  double macs_scatter = 0.0;  ///< adds from reconstructing y (counted as MACs)
  /// MACs a dense x*W GEMM would have executed.
  double macs_baseline = 0.0;
  /// Per-batch cluster reuse rate R (0 when no cache is used).
  double batch_reuse_rate = 0.0;
};

/// \brief Result of the reuse forward pass.
struct ForwardReuseResult {
  Tensor y_rows;               ///< [N, M]
  ReuseClustering clustering;  ///< retained for the backward pass
  ForwardReuseStats stats;
};

/// \brief Computes y = x * W (+ bias) through centroid reuse.
///
/// `x` is N x K row-major; `weight` is [K, M]; `bias` is [M] or nullptr;
/// `rows_per_group` sets the clustering scope (see ClusterSubVectors);
/// `cache` enables Algorithm 1 when non-null.
ForwardReuseResult ClusteredMatmulForward(const BlockLshFamilies& families,
                                          const float* x, int64_t num_rows,
                                          const Tensor& weight,
                                          const Tensor* bias,
                                          int64_t rows_per_group,
                                          ClusterReuseCache* cache);

/// \brief ClusteredMatmulForward writing into caller-owned buffers: `y`
/// (num_rows x M, overwritten) and scratch bumped from `arena` (heap
/// fallback when null). Bit-identical to ClusteredMatmulForward.
void ClusteredMatmulForwardInto(const BlockLshFamilies& families,
                                const float* x, int64_t num_rows,
                                const Tensor& weight, const Tensor* bias,
                                int64_t rows_per_group,
                                ClusterReuseCache* cache,
                                WorkspaceArena* arena, float* y,
                                ReuseClustering* clustering,
                                ForwardReuseStats* stats);

/// \brief The fused, tiled forward: im2col rows are generated straight
/// from the NCHW `input` in L2TileRows-sized tiles, hashed and clustered
/// by the streaming `clusterer`, and only the |C| centroid rows ever meet
/// the GEMM — the N x K unfolded matrix is never materialized, shifting
/// the forward footprint from O(N*K) toward O(tile*K + |C|*K).
///
/// Signatures, clusterings, and `y` are bit-identical to
/// ClusteredMatmulForward on the materialized Im2Col output (see
/// StreamingSubVectorClusterer). `y` is num_rows x M, overwritten;
/// `clusterer` must be caller-owned so its buffers (and the clustering
/// returned here, via Recycle) persist across steps; scratch comes from
/// `arena` (heap fallback when null).
void FusedClusteredForward(const BlockLshFamilies& families,
                           const ConvGeometry& geo, const float* input_nchw,
                           const Tensor& weight, const Tensor* bias,
                           int64_t rows_per_group, ClusterReuseCache* cache,
                           WorkspaceArena* arena,
                           StreamingSubVectorClusterer* clusterer, float* y,
                           ReuseClustering* clustering,
                           ForwardReuseStats* stats);

/// \brief Same computation with k-means clustering instead of LSH — the
/// high-quality/slow method of the paper's similarity-verification study
/// (Fig. 7). `clusters_per_group` is clamped to each group's row count.
/// No cross-batch cache (k-means has no stable cluster IDs).
ForwardReuseResult KMeansMatmulForward(
    const float* x, int64_t num_rows, int64_t k, int64_t sub_vector_length,
    const Tensor& weight, const Tensor* bias, int64_t rows_per_group,
    int64_t clusters_per_group, int iterations, uint64_t seed);

}  // namespace adr

#endif  // ADR_CORE_CLUSTERED_MATMUL_H_
