#include "core/reuse_config.h"

#include "clustering/lsh.h"

namespace adr {

std::string_view ClusterScopeToString(ClusterScope scope) {
  switch (scope) {
    case ClusterScope::kSingleInput:
      return "single-input";
    case ClusterScope::kSingleBatch:
      return "single-batch";
    case ClusterScope::kAcrossBatch:
      return "across-batch";
  }
  return "?";
}

std::string_view ClusteringMethodToString(ClusteringMethod method) {
  switch (method) {
    case ClusteringMethod::kLsh:
      return "lsh";
    case ClusteringMethod::kKMeans:
      return "kmeans";
  }
  return "?";
}

Status ReuseConfig::Validate() const {
  if (sub_vector_length < 0) {
    return Status::InvalidArgument("sub_vector_length must be >= 0");
  }
  if (num_hashes < 1 || num_hashes > kMaxLshHashes) {
    return Status::InvalidArgument(
        "num_hashes must be in [1, " + std::to_string(kMaxLshHashes) +
        "], got " + std::to_string(num_hashes));
  }
  if (method == ClusteringMethod::kKMeans) {
    if (kmeans_clusters < 1) {
      return Status::InvalidArgument("kmeans_clusters must be >= 1");
    }
    if (kmeans_iterations < 1) {
      return Status::InvalidArgument("kmeans_iterations must be >= 1");
    }
    if (ClusterReuseEnabled()) {
      return Status::InvalidArgument(
          "cluster reuse requires the LSH method (signatures are the "
          "cross-batch cluster IDs)");
    }
  }
  return Status::OK();
}

Status ReuseConfig::Validate(int64_t k) const {
  if (k <= 0) {
    return Status::InvalidArgument("K must be > 0");
  }
  ADR_RETURN_NOT_OK(Validate());
  if (sub_vector_length > k) {
    return Status::InvalidArgument(
        "sub_vector_length " + std::to_string(sub_vector_length) +
        " exceeds K = " + std::to_string(k));
  }
  return Status::OK();
}

Result<ReuseConfig> ReuseConfigBuilder::Build() const {
  ADR_RETURN_NOT_OK(config_.Validate());
  return config_;
}

Result<ReuseConfig> ReuseConfigBuilder::Build(int64_t k) const {
  ADR_RETURN_NOT_OK(config_.Validate(k));
  return config_;
}

std::string ReuseConfig::ToString() const {
  std::string out = "{L=";
  out += sub_vector_length <= 0 ? "K" : std::to_string(sub_vector_length);
  if (method == ClusteringMethod::kKMeans) {
    out += ", kmeans(|C|=" + std::to_string(kmeans_clusters) + ")";
  } else {
    out += ", H=" + std::to_string(num_hashes);
  }
  out += ", CR=" + std::to_string(ClusterReuseEnabled() ? 1 : 0);
  out += ", scope=";
  out += ClusterScopeToString(scope);
  out += "}";
  return out;
}

}  // namespace adr
