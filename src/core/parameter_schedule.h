// Per-layer {L, H} candidate schedule (paper Section V-A):
//   Policy 1 + Amendment 1 choose the L range from the layer geometry;
//   Policy 2 chooses the H range from N;
//   Policy 3 orders the candidates by expected-time increments.

#ifndef ADR_CORE_PARAMETER_SCHEDULE_H_
#define ADR_CORE_PARAMETER_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace adr {

/// \brief One {L, H} candidate of the adaptive schedule.
struct LhCandidate {
  int64_t l = 0;
  int h = 0;

  bool operator==(const LhCandidate& other) const = default;
  std::string ToString() const;
};

/// \brief Geometry of one conv layer as seen by the schedule policies.
struct LayerScheduleParams {
  int64_t kernel_w = 0;      ///< k_w
  int64_t in_channels = 0;   ///< I_c
  int64_t k = 0;             ///< unfolded width K = I_c * k_h * k_w
  int64_t m = 0;             ///< number of filters M
  int64_t n = 0;             ///< unfolded rows per batch N
  bool is_first_layer = false;
};

/// \brief L range by Policy 1 / Amendment 1: [L_min, L_max] with
/// L_min = k_w (or k_w^2 for non-first layers with k_w^2 < 10) and
/// L_max = ceil(sqrt(I_c)) * k_w, both clamped to [1, K].
void ComputeLRange(const LayerScheduleParams& params, int64_t* l_min,
                   int64_t* l_max);

/// \brief H range by Policy 2: the smallest H with 2^H > 0.01*N and the
/// largest H with 2^H < N, clamped to [1, kMaxLshHashes] and ordered.
void ComputeHRange(const LayerScheduleParams& params, int* h_min,
                   int* h_max);

/// \brief Candidate L values: divisors of K within [l_min, l_max],
/// descending (largest = most aggressive first). Falls back to {l_max
/// clamped to K} if no divisor lands in the range.
std::vector<int64_t> CandidateLValues(int64_t k, int64_t l_min,
                                      int64_t l_max);

/// \brief Full ordered candidate list by Policy 3: starts at
/// {L_max, H_min}, repeatedly appends whichever single-knob move (next
/// smaller L, or next larger H) has the smaller expected-time increase
/// (Eqs. 22-23), and ends at {L_min, H_max}.
Result<std::vector<LhCandidate>> BuildCandidateList(
    const LayerScheduleParams& params);

}  // namespace adr

#endif  // ADR_CORE_PARAMETER_SCHEDULE_H_
