#include "core/reuse_report.h"

#include <cstdio>

namespace adr {

ReuseReport CollectReuseReport(const std::vector<ReuseConv2d*>& layers) {
  ReuseReport report;
  for (ReuseConv2d* layer : layers) {
    LayerReuseReport entry;
    entry.name = layer->name();
    entry.config = layer->reuse_config();
    entry.k = layer->unfolded_cols();
    entry.m = layer->config().out_channels;
    const ReuseLayerStats& stats = layer->stats();
    entry.avg_remaining_ratio = stats.avg_remaining_ratio;
    entry.macs_executed = stats.macs_executed;
    entry.macs_baseline = stats.macs_baseline;
    entry.hash_seconds = stats.hash_seconds;
    entry.gemm_seconds = stats.gemm_seconds;
    entry.backward_seconds = stats.backward_seconds;
    report.total_macs_executed += entry.macs_executed;
    report.total_macs_baseline += entry.macs_baseline;
    report.layers.push_back(std::move(entry));
  }
  return report;
}

std::string FormatReuseReport(const ReuseReport& report) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-10s %-28s %6s %6s %8s %10s\n",
                "layer", "config", "K", "M", "r_c", "MACs saved");
  out += line;
  for (const LayerReuseReport& layer : report.layers) {
    std::snprintf(line, sizeof(line), "%-10s %-28s %6lld %6lld %8.3f %9.1f%%\n",
                  layer.name.c_str(), layer.config.ToString().c_str(),
                  static_cast<long long>(layer.k),
                  static_cast<long long>(layer.m),
                  layer.avg_remaining_ratio,
                  layer.MacsSavedFraction() * 100.0);
    out += line;
  }
  std::snprintf(line, sizeof(line), "%-10s %-28s %6s %6s %8s %9.1f%%\n",
                "TOTAL", "", "", "", "",
                report.MacsSavedFraction() * 100.0);
  out += line;
  return out;
}

Status ApplyReuseConfig(const std::vector<ReuseConv2d*>& layers,
                        const ReuseConfig& config) {
  for (ReuseConv2d* layer : layers) {
    ReuseConfig clamped = config;
    if (clamped.sub_vector_length > layer->unfolded_cols()) {
      clamped.sub_vector_length = layer->unfolded_cols();
    }
    ADR_RETURN_NOT_OK(layer->SetReuseConfig(clamped));
  }
  return Status::OK();
}

void ResetReuseStats(const std::vector<ReuseConv2d*>& layers) {
  for (ReuseConv2d* layer : layers) layer->ResetStats();
}

}  // namespace adr
