#include "core/similarity_study.h"

#include <string>

#include "core/reuse_conv2d.h"
#include "nn/trainer.h"

namespace adr {

namespace {

/// Builds the reuse twin with all layers exact and returns it.
Result<Model> BuildExactTwin(const Model& dense,
                             const ModelOptions& model_options) {
  ModelOptions options = model_options;
  options.use_reuse = true;
  options.reuse = ReuseConfig{};
  options.reuse.enabled = false;
  ADR_ASSIGN_OR_RETURN(Model twin, BuildModel(dense.name, options));
  ADR_RETURN_NOT_OK(CopyWeights(dense, &twin));
  return twin;
}

Result<SimilarityPoint> MeasureConfig(Model* twin, const Dataset& dataset,
                                      const SimilarityStudyOptions& options,
                                      const ReuseConfig& config) {
  if (options.layer_index >= twin->reuse_layers.size()) {
    return Status::InvalidArgument(
        "layer_index " + std::to_string(options.layer_index) +
        " out of range (model has " +
        std::to_string(twin->reuse_layers.size()) + " conv layers)");
  }
  ReuseConv2d* layer = twin->reuse_layers[options.layer_index];
  ADR_RETURN_NOT_OK(layer->SetReuseConfig(config));
  layer->ResetStats();
  SimilarityPoint point;
  point.config = config;
  point.accuracy = EvaluateAccuracy(&twin->network, dataset,
                                    options.batch_size,
                                    options.eval_samples);
  point.remaining_ratio = layer->stats().avg_remaining_ratio;
  point.macs_saved = layer->stats().MacsSavedFraction();
  return point;
}

}  // namespace

Result<std::vector<SimilarityPoint>> LshSimilarityStudy(
    const Model& dense, const ModelOptions& model_options,
    const Dataset& dataset, const SimilarityStudyOptions& options,
    const std::vector<int64_t>& l_values,
    const std::vector<int>& h_values) {
  if (l_values.empty() || h_values.empty()) {
    return Status::InvalidArgument("need at least one L and one H value");
  }
  ADR_ASSIGN_OR_RETURN(Model twin, BuildExactTwin(dense, model_options));
  std::vector<SimilarityPoint> points;
  points.reserve(l_values.size() * h_values.size());
  for (int64_t l : l_values) {
    for (int h : h_values) {
      ReuseConfig config;
      config.sub_vector_length = l;
      config.num_hashes = h;
      ADR_ASSIGN_OR_RETURN(SimilarityPoint point,
                           MeasureConfig(&twin, dataset, options, config));
      points.push_back(point);
    }
  }
  return points;
}

Result<std::vector<SimilarityPoint>> KMeansSimilarityStudy(
    const Model& dense, const ModelOptions& model_options,
    const Dataset& dataset, const SimilarityStudyOptions& options,
    ClusterScope scope, const std::vector<int64_t>& cluster_counts) {
  if (cluster_counts.empty()) {
    return Status::InvalidArgument("need at least one cluster count");
  }
  std::vector<SimilarityPoint> points;
  points.reserve(cluster_counts.size());
  for (int64_t clusters : cluster_counts) {
    // Fresh twin per point: k-means has no incremental state to reuse and
    // a fresh twin keeps measurements independent.
    ADR_ASSIGN_OR_RETURN(Model twin, BuildExactTwin(dense, model_options));
    ReuseConfig config;
    config.method = ClusteringMethod::kKMeans;
    config.kmeans_clusters = clusters;
    config.kmeans_iterations = 5;
    config.scope = scope;
    ADR_ASSIGN_OR_RETURN(SimilarityPoint point,
                         MeasureConfig(&twin, dataset, options, config));
    points.push_back(point);
  }
  return points;
}

}  // namespace adr
