#include "core/strategies.h"

#include <memory>

#include "data/dataloader.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/metrics_registry.h"
#include "util/timer.h"
#include "util/trace.h"

namespace adr {

std::string_view StrategyKindToString(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kBaseline:
      return "baseline";
    case StrategyKind::kFixed:
      return "strategy1-fixed";
    case StrategyKind::kAdaptive:
      return "strategy2-adaptive";
    case StrategyKind::kClusterReuse:
      return "strategy3-cluster-reuse";
  }
  return "?";
}

Result<TrainingRunResult> RunTrainingStrategy(
    StrategyKind kind, const std::string& model_name,
    const ModelOptions& model_options, const Dataset& dataset,
    const TrainingRunOptions& options) {
  if (options.batch_size <= 0 || options.max_steps <= 0 ||
      options.eval_every <= 0) {
    return Status::InvalidArgument("training run options must be positive");
  }
  ADR_TRACE_SPAN("RunTrainingStrategy");

  ModelOptions build_options = model_options;
  build_options.use_reuse = kind != StrategyKind::kBaseline;
  if (kind == StrategyKind::kFixed || kind == StrategyKind::kClusterReuse) {
    ADR_ASSIGN_OR_RETURN(
        build_options.reuse,
        ReuseConfigBuilder(options.fixed_reuse)
            .ClusterReuse(kind == StrategyKind::kClusterReuse)
            .Build());
  }
  ADR_ASSIGN_OR_RETURN(Model model, BuildModel(model_name, build_options));

  std::unique_ptr<Optimizer> optimizer;
  if (options.optimizer == OptimizerKind::kAdam) {
    optimizer = std::make_unique<Adam>(options.learning_rate);
  } else {
    optimizer =
        std::make_unique<MomentumSgd>(options.learning_rate, options.momentum);
  }
  DataLoader loader(&dataset, options.batch_size, /*shuffle=*/true,
                    options.seed);

  // Strategy 2: controller over the reuse layers; its probe evaluates a
  // fixed batch (the paper probes one batch of inputs).
  std::unique_ptr<AdaptiveController> controller;
  Batch probe_batch;
  if (kind == StrategyKind::kAdaptive) {
    controller = std::make_unique<AdaptiveController>(
        model.reuse_layers, options.batch_size, options.adaptive);
    ADR_RETURN_NOT_OK(controller->Init());
    probe_batch = MakeBatch(
        dataset, 0, std::min<int64_t>(options.batch_size, dataset.size()));
  }

  // Strategy 3: plateau detector controlling the CR flag.
  PlateauDetector cr_plateau(options.adaptive.plateau_window,
                             options.adaptive.plateau_min_rel_improvement);
  bool cluster_reuse_active = kind == StrategyKind::kClusterReuse;

  TrainingRunResult result;
  result.strategy = kind;
  Timer timer;
  Batch batch;
  int64_t num_eval_batches = 0;  // forward-only passes, for MAC accounting

  for (int64_t step = 0; step < options.max_steps; ++step) {
    loader.Next(&batch);
    const StepResult train = TrainStep(&model.network, optimizer.get(), batch);
    result.loss_history.push_back(train.loss);
    ++result.steps_run;

    if (kind == StrategyKind::kAdaptive && !controller->Exhausted()) {
      const bool advanced = controller->Step(
          train.loss, train.accuracy, [&]() {
            return EvaluateBatch(&model.network, probe_batch).accuracy;
          });
      if (advanced) {
        result.stages_used = controller->stage() + 1;
      }
    } else if (kind == StrategyKind::kClusterReuse &&
               cluster_reuse_active) {
      if (cr_plateau.Observe(train.loss)) {
        ADR_LOG(Info) << "strategy 3: disabling cluster reuse at step "
                      << step;
        for (ReuseConv2d* layer : model.reuse_layers) {
          const Status status =
              layer->SetReuseConfig(ReuseConfigBuilder(layer->reuse_config())
                                        .ClusterReuse(false)
                                        .BuildUnchecked());
          ADR_CHECK(status.ok()) << status.ToString();
        }
        cluster_reuse_active = false;
      }
    }

    if ((step + 1) % options.eval_every == 0) {
      num_eval_batches += options.eval_samples / options.batch_size;
      const double accuracy =
          EvaluateAccuracy(&model.network, dataset, options.batch_size,
                           options.eval_samples);
      result.eval_history.emplace_back(step + 1, accuracy);
      result.final_accuracy = accuracy;
      if (accuracy >= options.target_accuracy) {
        result.reached_target = true;
        break;
      }
    }
  }
  result.wall_seconds = timer.ElapsedSeconds();

  // Conv-layer MAC accounting.
  if (kind == StrategyKind::kBaseline) {
    double per_forward = 0.0;
    for (Conv2d* conv : model.conv_layers) {
      per_forward += conv->ForwardMacs(options.batch_size);
    }
    result.conv_macs_executed =
        per_forward * (3.0 * static_cast<double>(result.steps_run) +
                       static_cast<double>(num_eval_batches));
    result.conv_macs_baseline = result.conv_macs_executed;
  } else {
    for (ReuseConv2d* layer : model.reuse_layers) {
      result.conv_macs_executed += layer->stats().macs_executed;
      result.conv_macs_baseline += layer->stats().macs_baseline;
      result.final_reuse_rate = layer->stats().last_batch_reuse_rate;
    }
  }

  const std::string prefix =
      "run/" + std::string(StrategyKindToString(kind)) + "/";
  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.counter(prefix + "runs")->Increment();
  metrics.gauge(prefix + "final_accuracy")->Set(result.final_accuracy);
  metrics.gauge(prefix + "wall_seconds")->Set(result.wall_seconds);
  metrics.gauge(prefix + "macs_saved_fraction")
      ->Set(result.MacsSavedFraction());
  return result;
}

}  // namespace adr
