#include "core/clustered_matmul.h"

#include <algorithm>
#include <cstring>

#include "clustering/kmeans.h"
#include "tensor/gemm.h"
#include "tensor/simd.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/metrics_registry.h"
#include "util/parallel.h"
#include "util/timer.h"
#include "util/trace.h"

namespace adr {

namespace {

// y[i] += yc[assignment[i]] for every row: the member scatter that fans
// the per-cluster GEMM results back out. Each row owns y[i], so row
// chunks are race-free and thread-count independent.
void ScatterClusterOutputs(const float* yc, const Clustering& clustering,
                           int64_t num_rows, int64_t m, float* y) {
  const simd::Kernels& kernels = simd::Active();
  ParallelFor(num_rows, GrainForCost(m), [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      kernels.add(yc + clustering.assignment[static_cast<size_t>(i)] * m,
                  y + i * m, m);
    }
  });
}

}  // namespace

namespace {

// The shared back half of every LSH forward: given a finished clustering,
// consult the cross-batch cache, run one GEMM over the missed centroids
// per block (gathered compactly when some clusters hit), scatter the
// cluster outputs to the member rows, and add the bias. Both the
// materialized and the fused pipelines call this, so their outputs agree
// bit-for-bit whenever their clusterings do. `y` (num_rows x m) is
// overwritten; transient buffers bump from `scratch`.
void FinishForwardFromClustering(ReuseClustering* clustering,
                                 const Tensor& weight, const Tensor* bias,
                                 ClusterReuseCache* cache, int num_hashes,
                                 ScratchAllocator* scratch, float* y,
                                 ForwardReuseStats* stats) {
  const int64_t num_rows = clustering->num_rows;
  const int64_t k = clustering->num_cols;
  const int64_t m = weight.shape()[1];
  std::fill_n(y, static_cast<size_t>(num_rows * m), 0.0f);

  int64_t batch_clusters = 0;
  int64_t batch_reused = 0;

  ADR_TRACE_SPAN("centroid_gemm_scatter");
  for (size_t bi = 0; bi < clustering->blocks.size(); ++bi) {
    SubMatrixClustering& block = clustering->blocks[bi];
    const int64_t num_clusters = block.clustering.num_clusters();
    const int64_t length = block.length;
    const float* w_block = weight.data() + block.col_offset * m;
    batch_clusters += num_clusters;

    // 1. Decide, per cluster, whether its output comes from the cache:
    // one batched parallel lookup over the block's signatures, then one
    // parallel gather of the hit payloads (cached output rows into yc,
    // cached representatives over the fresh centroids — the backward pass
    // must see the representative the cached output was computed from).
    // Every yc row is written below (hit gather or GEMM), so the
    // uninitialized scratch buffer is safe.
    float* yc = scratch->Floats(num_clusters * m);
    int32_t* miss_clusters = scratch->Int32(num_clusters);
    int64_t num_miss = 0;
    if (cache != nullptr) {
      int32_t* hit_entries = scratch->Int32(num_clusters);
      int64_t num_hits = 0;
      {
        ADR_TRACE_SPAN("cache_find_batch");
        num_hits = cache->FindBatch(static_cast<int64_t>(bi),
                                    block.signatures.data(), num_clusters,
                                    hit_entries);
      }
      if (num_hits > 0) {
        cache->GatherHits(static_cast<int64_t>(bi), hit_entries,
                          num_clusters, yc, m, block.centroids.data(),
                          length);
      }
      for (int64_t c = 0; c < num_clusters; ++c) {
        if (hit_entries[c] >= 0) {
          block.reused_from_cache[static_cast<size_t>(c)] = true;
        } else {
          miss_clusters[num_miss++] = static_cast<int32_t>(c);
        }
      }
      batch_reused += num_hits;
    } else {
      for (int64_t c = 0; c < num_clusters; ++c) {
        miss_clusters[num_miss++] = static_cast<int32_t>(c);
      }
    }

    // 2. One GEMM over the centroids that missed: y_c = x_c * W_I.
    if (num_miss > 0) {
      const bool all_miss = num_miss == num_clusters;
      if (all_miss) {
        Gemm(block.centroids.data(), w_block, yc, num_clusters, length, m);
      } else {
        // Centroid gather: pack the missed centroids contiguously for one
        // GEMM, then scatter its rows back. Both sides write disjoint
        // rows per index, so row chunks parallelize deterministically.
        float* compact = scratch->Floats(num_miss * length);
        float* compact_y = scratch->Floats(num_miss * m);
        ParallelFor(num_miss, GrainForCost(length),
                    [&](int64_t begin, int64_t end) {
                      for (int64_t i = begin; i < end; ++i) {
                        std::memcpy(
                            compact + i * length,
                            block.centroids.data() +
                                miss_clusters[i] * length,
                            sizeof(float) * static_cast<size_t>(length));
                      }
                    });
        Gemm(compact, w_block, compact_y, num_miss, length, m);
        ParallelFor(num_miss, GrainForCost(m),
                    [&](int64_t begin, int64_t end) {
                      for (int64_t i = begin; i < end; ++i) {
                        std::memcpy(yc + miss_clusters[i] * m,
                                    compact_y + i * m,
                                    sizeof(float) * static_cast<size_t>(m));
                      }
                    });
      }
      stats->macs_gemm += static_cast<double>(num_miss) * length * m;
      if (cache != nullptr) {
        cache->InsertBatch(static_cast<int64_t>(bi), block.signatures.data(),
                           miss_clusters, num_miss, block.centroids.data(),
                           length, yc, m);
      }
    }

    // 3. Reconstruct: y[i] += y_c[cluster(i)].
    ScatterClusterOutputs(yc, block.clustering, num_rows, m, y);
    stats->macs_scatter += static_cast<double>(num_rows) * m;
  }

  if (bias != nullptr) {
    AddRowBias(bias->data(), y, num_rows, m);
  }

  // Hash MACs: N * L_I * H per block = N * K * H in total.
  double hash_macs = 0.0;
  for (const auto& block : clustering->blocks) {
    hash_macs += static_cast<double>(num_rows) * block.length * num_hashes;
  }
  stats->macs_hash = hash_macs;
  stats->macs_baseline = static_cast<double>(num_rows) * k * m;
  stats->clusters_total = batch_clusters;
  stats->clusters_reused = batch_reused;
  stats->avg_remaining_ratio = clustering->AverageRemainingRatio();
  stats->batch_reuse_rate =
      batch_clusters == 0 ? 0.0
                          : static_cast<double>(batch_reused) /
                                static_cast<double>(batch_clusters);
}

void PublishCoreForwardMetrics(const ForwardReuseStats& stats) {
  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.counter("core/clustered_forwards")->Increment();
  metrics.counter("core/clusters_total")->Increment(stats.clusters_total);
  metrics.counter("core/clusters_reused")
      ->Increment(stats.clusters_reused);
  metrics.histogram("core/hash_seconds")->Record(stats.hash_seconds);
  metrics.histogram("core/gemm_seconds")->Record(stats.gemm_seconds);
}

}  // namespace

void ClusteredMatmulForwardInto(const BlockLshFamilies& families,
                                const float* x, int64_t num_rows,
                                const Tensor& weight, const Tensor* bias,
                                int64_t rows_per_group,
                                ClusterReuseCache* cache,
                                WorkspaceArena* arena, float* y,
                                ReuseClustering* clustering,
                                ForwardReuseStats* stats) {
  ADR_CHECK_EQ(weight.shape().rank(), 2);
  ADR_CHECK_EQ(weight.shape()[0], families.k());

  ADR_TRACE_SPAN("ClusteredMatmulForward");
  Timer timer;

  // 1. Cluster all column blocks (hashing + grouping + centroids).
  {
    ADR_TRACE_SPAN("lsh_cluster");
    *clustering = ClusterSubVectors(families, x, num_rows, rows_per_group);
  }
  stats->hash_seconds = timer.ElapsedSeconds();

  timer.Reset();
  ScratchAllocator scratch(arena);
  FinishForwardFromClustering(clustering, weight, bias, cache,
                              families.family(0).num_hashes(), &scratch, y,
                              stats);
  stats->gemm_seconds = timer.ElapsedSeconds();
  PublishCoreForwardMetrics(*stats);
}

ForwardReuseResult ClusteredMatmulForward(const BlockLshFamilies& families,
                                          const float* x, int64_t num_rows,
                                          const Tensor& weight,
                                          const Tensor* bias,
                                          int64_t rows_per_group,
                                          ClusterReuseCache* cache) {
  ForwardReuseResult result;
  result.y_rows = Tensor(Shape({num_rows, weight.shape()[1]}));
  ClusteredMatmulForwardInto(families, x, num_rows, weight, bias,
                             rows_per_group, cache, /*arena=*/nullptr,
                             result.y_rows.data(), &result.clustering,
                             &result.stats);
  return result;
}

void FusedClusteredForward(const BlockLshFamilies& families,
                           const ConvGeometry& geo, const float* input_nchw,
                           const Tensor& weight, const Tensor* bias,
                           int64_t rows_per_group, ClusterReuseCache* cache,
                           WorkspaceArena* arena,
                           StreamingSubVectorClusterer* clusterer, float* y,
                           ReuseClustering* clustering,
                           ForwardReuseStats* stats) {
  const int64_t n = geo.unfolded_rows();
  const int64_t k = geo.unfolded_cols();
  ADR_CHECK_EQ(k, families.k());
  ADR_CHECK_EQ(weight.shape().rank(), 2);
  ADR_CHECK_EQ(weight.shape()[0], k);
  ADR_CHECK(clusterer != nullptr);

  ADR_TRACE_SPAN("FusedClusteredForward");
  Timer timer;
  ScratchAllocator scratch(arena);

  // 1. Stream L2-sized row tiles through im2col + hash + cluster; the
  // unfolded matrix never exists. (Tile generation parallelizes over row
  // sub-ranges; the hash GEMM inside ConsumeTile parallelizes itself.)
  {
    ADR_TRACE_SPAN("fused_tile_cluster");
    clusterer->Begin(&families, n, rows_per_group);
    const int64_t tile_rows = L2TileRows(k);
    float* tile = scratch.Floats(tile_rows * k);
    float* hash_scratch = scratch.Floats(clusterer->ScratchFloats(tile_rows));
    for (int64_t row = 0; row < n; row += tile_rows) {
      const int64_t rows = std::min(tile_rows, n - row);
      ParallelFor(rows, 32, [&](int64_t begin, int64_t end) {
        Im2ColRows(geo, input_nchw, row + begin, row + end, tile + begin * k);
      });
      clusterer->ConsumeTile(tile, row, rows, hash_scratch);
    }
    *clustering = clusterer->Finish();
  }
  stats->hash_seconds = timer.ElapsedSeconds();

  // 2. Gather-GEMM over the centroids only, then scatter.
  timer.Reset();
  FinishForwardFromClustering(clustering, weight, bias, cache,
                              families.family(0).num_hashes(), &scratch, y,
                              stats);
  stats->gemm_seconds = timer.ElapsedSeconds();
  PublishCoreForwardMetrics(*stats);
  MetricsRegistry::Global().counter("core/fused_forwards")->Increment();
}

ForwardReuseResult KMeansMatmulForward(
    const float* x, int64_t num_rows, int64_t k, int64_t sub_vector_length,
    const Tensor& weight, const Tensor* bias, int64_t rows_per_group,
    int64_t clusters_per_group, int iterations, uint64_t seed) {
  ADR_CHECK_EQ(weight.shape().rank(), 2);
  ADR_CHECK_EQ(weight.shape()[0], k);
  ADR_CHECK_GT(num_rows, 0);
  ADR_CHECK_EQ(num_rows % rows_per_group, 0);
  const int64_t m = weight.shape()[1];
  const int64_t length =
      sub_vector_length <= 0 || sub_vector_length > k ? k : sub_vector_length;

  ADR_TRACE_SPAN("KMeansMatmulForward");
  ForwardReuseResult result;
  Timer timer;
  result.clustering.num_rows = num_rows;
  result.clustering.num_cols = k;

  for (int64_t offset = 0; offset < k; offset += length) {
    SubMatrixClustering block;
    block.col_offset = offset;
    block.length = std::min(length, k - offset);

    Clustering& merged = block.clustering;
    merged.assignment.resize(static_cast<size_t>(num_rows));
    for (int64_t group_start = 0; group_start < num_rows;
         group_start += rows_per_group) {
      KMeansOptions options;
      options.num_clusters = std::min(clusters_per_group, rows_per_group);
      options.max_iterations = iterations;
      options.seed = seed + static_cast<uint64_t>(offset * 1315423911 +
                                                  group_start);
      const Result<KMeansResult> kmeans =
          KMeans(x + group_start * k + offset, rows_per_group, block.length,
                 k, options);
      ADR_CHECK(kmeans.ok()) << kmeans.status().ToString();
      const int32_t id_offset =
          static_cast<int32_t>(merged.cluster_sizes.size());
      for (int64_t i = 0; i < rows_per_group; ++i) {
        merged.assignment[static_cast<size_t>(group_start + i)] =
            id_offset + kmeans->clustering.assignment[static_cast<size_t>(i)];
      }
      merged.cluster_sizes.insert(merged.cluster_sizes.end(),
                                  kmeans->clustering.cluster_sizes.begin(),
                                  kmeans->clustering.cluster_sizes.end());
    }
    // Recompute centroids over the merged assignment from the raw data
    // (k-means already converged, but this keeps one code path).
    block.centroids = ComputeCentroids(x + offset, num_rows, block.length,
                                       k, merged);
    block.reused_from_cache.assign(
        static_cast<size_t>(merged.num_clusters()), false);
    result.clustering.blocks.push_back(std::move(block));
  }
  result.stats.hash_seconds = timer.ElapsedSeconds();

  timer.Reset();
  result.y_rows = Tensor(Shape({num_rows, m}));
  float* y = result.y_rows.data();
  for (const SubMatrixClustering& block : result.clustering.blocks) {
    const int64_t num_clusters = block.clustering.num_clusters();
    Tensor yc(Shape({num_clusters, m}));
    Gemm(block.centroids.data(), weight.data() + block.col_offset * m,
         yc.data(), num_clusters, block.length, m);
    result.stats.macs_gemm +=
        static_cast<double>(num_clusters) * block.length * m;
    ScatterClusterOutputs(yc.data(), block.clustering, num_rows, m, y);
    result.stats.macs_scatter += static_cast<double>(num_rows) * m;
    result.stats.clusters_total += num_clusters;
  }
  if (bias != nullptr) AddRowBias(*bias, &result.y_rows);
  result.stats.gemm_seconds = timer.ElapsedSeconds();
  result.stats.macs_baseline = static_cast<double>(num_rows) * k * m;
  result.stats.avg_remaining_ratio =
      result.clustering.AverageRemainingRatio();
  return result;
}

}  // namespace adr
