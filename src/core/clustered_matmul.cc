#include "core/clustered_matmul.h"

#include <algorithm>
#include <cstring>

#include "clustering/kmeans.h"
#include "tensor/gemm.h"
#include "tensor/simd.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"
#include "util/metrics_registry.h"
#include "util/parallel.h"
#include "util/timer.h"
#include "util/trace.h"

namespace adr {

namespace {

// y[i] += yc[assignment[i]] for every row: the member scatter that fans
// the per-cluster GEMM results back out. Each row owns y[i], so row
// chunks are race-free and thread-count independent.
void ScatterClusterOutputs(const float* yc, const Clustering& clustering,
                           int64_t num_rows, int64_t m, float* y) {
  const simd::Kernels& kernels = simd::Active();
  ParallelFor(num_rows, GrainForCost(m), [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      kernels.add(yc + clustering.assignment[static_cast<size_t>(i)] * m,
                  y + i * m, m);
    }
  });
}

}  // namespace

ClusterReuseCache::BlockMap& ClusterReuseCache::BlockFor(int64_t block) const {
  ADR_CHECK_GE(block, 0);
  if (static_cast<size_t>(block) >= blocks_.size()) {
    blocks_.resize(static_cast<size_t>(block) + 1);
  }
  return blocks_[static_cast<size_t>(block)];
}

const ClusterReuseCache::Entry* ClusterReuseCache::Find(
    int64_t block, const LshSignature& signature) const {
  ++lookups_;
  const BlockMap& map = BlockFor(block);
  const auto it = map.find(signature);
  if (it == map.end()) return nullptr;
  ++hits_;
  return &it->second;
}

void ClusterReuseCache::Insert(int64_t block, const LshSignature& signature,
                               Entry entry) {
  BlockMap& map = BlockFor(block);
  const bool is_new = map.find(signature) == map.end();
  map[signature] = std::move(entry);
  if (is_new) {
    insertion_order_.emplace_back(block, signature);
    EvictIfNeeded();
  }
}

void ClusterReuseCache::EvictIfNeeded() {
  if (max_entries_ <= 0) return;
  while (TotalEntries() > max_entries_ && !insertion_order_.empty()) {
    const auto [block, signature] = insertion_order_.front();
    insertion_order_.pop_front();
    if (BlockFor(block).erase(signature) > 0) ++evictions_;
  }
}

void ClusterReuseCache::Clear() {
  blocks_.clear();
  insertion_order_.clear();
  lookups_ = 0;
  hits_ = 0;
  evictions_ = 0;
}

int64_t ClusterReuseCache::ApproximateMemoryBytes() const {
  int64_t bytes = 0;
  for (const BlockMap& map : blocks_) {
    for (const auto& [signature, entry] : map) {
      bytes += static_cast<int64_t>(sizeof(signature)) +
               static_cast<int64_t>((entry.representative.size() +
                                     entry.output.size()) *
                                    sizeof(float));
    }
  }
  return bytes;
}

int64_t ClusterReuseCache::TotalEntries() const {
  int64_t total = 0;
  for (const auto& map : blocks_) {
    total += static_cast<int64_t>(map.size());
  }
  return total;
}

ForwardReuseResult ClusteredMatmulForward(const BlockLshFamilies& families,
                                          const float* x, int64_t num_rows,
                                          const Tensor& weight,
                                          const Tensor* bias,
                                          int64_t rows_per_group,
                                          ClusterReuseCache* cache) {
  const int64_t k = families.k();
  ADR_CHECK_EQ(weight.shape().rank(), 2);
  ADR_CHECK_EQ(weight.shape()[0], k);
  const int64_t m = weight.shape()[1];

  ADR_TRACE_SPAN("ClusteredMatmulForward");
  ForwardReuseResult result;
  Timer timer;

  // 1. Cluster all column blocks (hashing + grouping + centroids).
  {
    ADR_TRACE_SPAN("lsh_cluster");
    result.clustering =
        ClusterSubVectors(families, x, num_rows, rows_per_group);
  }
  result.stats.hash_seconds = timer.ElapsedSeconds();

  result.y_rows = Tensor(Shape({num_rows, m}));
  float* y = result.y_rows.data();

  int64_t batch_clusters = 0;
  int64_t batch_reused = 0;

  timer.Reset();
  ADR_TRACE_SPAN("centroid_gemm_scatter");
  for (size_t bi = 0; bi < result.clustering.blocks.size(); ++bi) {
    SubMatrixClustering& block = result.clustering.blocks[bi];
    const int64_t num_clusters = block.clustering.num_clusters();
    const int64_t length = block.length;
    const float* w_block = weight.data() + block.col_offset * m;
    batch_clusters += num_clusters;

    // 2. Decide, per cluster, whether its output comes from the cache.
    Tensor yc(Shape({num_clusters, m}));
    std::vector<int64_t> miss_clusters;
    miss_clusters.reserve(static_cast<size_t>(num_clusters));
    if (cache != nullptr) {
      for (int64_t c = 0; c < num_clusters; ++c) {
        const ClusterReuseCache::Entry* entry =
            cache->Find(static_cast<int64_t>(bi), block.signatures[c]);
        if (entry != nullptr) {
          ADR_DCHECK(static_cast<int64_t>(entry->output.size()) == m);
          std::memcpy(yc.data() + c * m, entry->output.data(),
                      sizeof(float) * static_cast<size_t>(m));
          std::memcpy(block.centroids.data() + c * length,
                      entry->representative.data(),
                      sizeof(float) * static_cast<size_t>(length));
          block.reused_from_cache[static_cast<size_t>(c)] = true;
          ++batch_reused;
        } else {
          miss_clusters.push_back(c);
        }
      }
    } else {
      for (int64_t c = 0; c < num_clusters; ++c) miss_clusters.push_back(c);
    }

    // 3. One GEMM over the centroids that missed: y_c = x_c * W_I.
    const int64_t num_miss = static_cast<int64_t>(miss_clusters.size());
    if (num_miss > 0) {
      const bool all_miss = num_miss == num_clusters;
      if (all_miss) {
        Gemm(block.centroids.data(), w_block, yc.data(), num_clusters,
             length, m);
      } else {
        // Centroid gather: pack the missed centroids contiguously for one
        // GEMM, then scatter its rows back. Both sides write disjoint
        // rows per index, so row chunks parallelize deterministically.
        Tensor compact(Shape({num_miss, length}));
        ParallelFor(num_miss, GrainForCost(length),
                    [&](int64_t begin, int64_t end) {
                      for (int64_t i = begin; i < end; ++i) {
                        std::memcpy(
                            compact.data() + i * length,
                            block.centroids.data() +
                                miss_clusters[static_cast<size_t>(i)] * length,
                            sizeof(float) * static_cast<size_t>(length));
                      }
                    });
        Tensor compact_y(Shape({num_miss, m}));
        Gemm(compact.data(), w_block, compact_y.data(), num_miss, length, m);
        ParallelFor(num_miss, GrainForCost(m),
                    [&](int64_t begin, int64_t end) {
                      for (int64_t i = begin; i < end; ++i) {
                        std::memcpy(
                            yc.data() +
                                miss_clusters[static_cast<size_t>(i)] * m,
                            compact_y.data() + i * m,
                            sizeof(float) * static_cast<size_t>(m));
                      }
                    });
      }
      result.stats.macs_gemm +=
          static_cast<double>(num_miss) * length * m;
      if (cache != nullptr) {
        for (int64_t i = 0; i < num_miss; ++i) {
          const int64_t c = miss_clusters[i];
          ClusterReuseCache::Entry entry;
          entry.representative.assign(
              block.centroids.data() + c * length,
              block.centroids.data() + (c + 1) * length);
          entry.output.assign(yc.data() + c * m, yc.data() + (c + 1) * m);
          cache->Insert(static_cast<int64_t>(bi), block.signatures[c],
                        std::move(entry));
        }
      }
    }

    // 4. Reconstruct: y[i] += y_c[cluster(i)].
    ScatterClusterOutputs(yc.data(), block.clustering, num_rows, m, y);
    result.stats.macs_scatter += static_cast<double>(num_rows) * m;
  }

  if (bias != nullptr) {
    AddRowBias(*bias, &result.y_rows);
  }
  result.stats.gemm_seconds = timer.ElapsedSeconds();

  // Hash MACs: N * L_I * H per block = N * K * H in total.
  double hash_macs = 0.0;
  for (const auto& block : result.clustering.blocks) {
    hash_macs += static_cast<double>(num_rows) * block.length *
                 families.family(0).num_hashes();
  }
  result.stats.macs_hash = hash_macs;
  result.stats.macs_baseline = static_cast<double>(num_rows) * k * m;
  result.stats.clusters_total = batch_clusters;
  result.stats.clusters_reused = batch_reused;
  result.stats.avg_remaining_ratio =
      result.clustering.AverageRemainingRatio();
  result.stats.batch_reuse_rate =
      batch_clusters == 0 ? 0.0
                          : static_cast<double>(batch_reused) /
                                static_cast<double>(batch_clusters);

  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.counter("core/clustered_forwards")->Increment();
  metrics.counter("core/clusters_total")->Increment(batch_clusters);
  metrics.counter("core/clusters_reused")->Increment(batch_reused);
  metrics.histogram("core/hash_seconds")->Record(result.stats.hash_seconds);
  metrics.histogram("core/gemm_seconds")->Record(result.stats.gemm_seconds);
  return result;
}

ForwardReuseResult KMeansMatmulForward(
    const float* x, int64_t num_rows, int64_t k, int64_t sub_vector_length,
    const Tensor& weight, const Tensor* bias, int64_t rows_per_group,
    int64_t clusters_per_group, int iterations, uint64_t seed) {
  ADR_CHECK_EQ(weight.shape().rank(), 2);
  ADR_CHECK_EQ(weight.shape()[0], k);
  ADR_CHECK_GT(num_rows, 0);
  ADR_CHECK_EQ(num_rows % rows_per_group, 0);
  const int64_t m = weight.shape()[1];
  const int64_t length =
      sub_vector_length <= 0 || sub_vector_length > k ? k : sub_vector_length;

  ADR_TRACE_SPAN("KMeansMatmulForward");
  ForwardReuseResult result;
  Timer timer;
  result.clustering.num_rows = num_rows;
  result.clustering.num_cols = k;

  for (int64_t offset = 0; offset < k; offset += length) {
    SubMatrixClustering block;
    block.col_offset = offset;
    block.length = std::min(length, k - offset);

    Clustering& merged = block.clustering;
    merged.assignment.resize(static_cast<size_t>(num_rows));
    for (int64_t group_start = 0; group_start < num_rows;
         group_start += rows_per_group) {
      KMeansOptions options;
      options.num_clusters = std::min(clusters_per_group, rows_per_group);
      options.max_iterations = iterations;
      options.seed = seed + static_cast<uint64_t>(offset * 1315423911 +
                                                  group_start);
      const Result<KMeansResult> kmeans =
          KMeans(x + group_start * k + offset, rows_per_group, block.length,
                 k, options);
      ADR_CHECK(kmeans.ok()) << kmeans.status().ToString();
      const int32_t id_offset =
          static_cast<int32_t>(merged.cluster_sizes.size());
      for (int64_t i = 0; i < rows_per_group; ++i) {
        merged.assignment[static_cast<size_t>(group_start + i)] =
            id_offset + kmeans->clustering.assignment[static_cast<size_t>(i)];
      }
      merged.cluster_sizes.insert(merged.cluster_sizes.end(),
                                  kmeans->clustering.cluster_sizes.begin(),
                                  kmeans->clustering.cluster_sizes.end());
    }
    // Recompute centroids over the merged assignment from the raw data
    // (k-means already converged, but this keeps one code path).
    block.centroids = ComputeCentroids(x + offset, num_rows, block.length,
                                       k, merged);
    block.reused_from_cache.assign(
        static_cast<size_t>(merged.num_clusters()), false);
    result.clustering.blocks.push_back(std::move(block));
  }
  result.stats.hash_seconds = timer.ElapsedSeconds();

  timer.Reset();
  result.y_rows = Tensor(Shape({num_rows, m}));
  float* y = result.y_rows.data();
  for (const SubMatrixClustering& block : result.clustering.blocks) {
    const int64_t num_clusters = block.clustering.num_clusters();
    Tensor yc(Shape({num_clusters, m}));
    Gemm(block.centroids.data(), weight.data() + block.col_offset * m,
         yc.data(), num_clusters, block.length, m);
    result.stats.macs_gemm +=
        static_cast<double>(num_clusters) * block.length * m;
    ScatterClusterOutputs(yc.data(), block.clustering, num_rows, m, y);
    result.stats.macs_scatter += static_cast<double>(num_rows) * m;
    result.stats.clusters_total += num_clusters;
  }
  if (bias != nullptr) AddRowBias(*bias, &result.y_rows);
  result.stats.gemm_seconds = timer.ElapsedSeconds();
  result.stats.macs_baseline = static_cast<double>(num_rows) * k * m;
  result.stats.avg_remaining_ratio =
      result.clustering.AverageRemainingRatio();
  return result;
}

}  // namespace adr
