// Backward-pass reuse (paper Section IV): the forward clustering is reused
// to compute both the weight gradient (Eqs. 7-12) and the input delta
// (Eqs. 13-20) without re-clustering.

#ifndef ADR_CORE_REUSE_BACKWARD_H_
#define ADR_CORE_REUSE_BACKWARD_H_

#include <cstdint>

#include "core/subvector_clustering.h"
#include "tensor/tensor.h"
#include "tensor/workspace_arena.h"

namespace adr {

/// \brief Instrumentation of one reuse backward pass.
struct BackwardReuseStats {
  double seconds = 0.0;
  double macs = 0.0;           ///< MACs actually executed
  double macs_baseline = 0.0;  ///< 2 * N * K * M of the exact backward
};

/// \brief Result of the reuse backward pass.
struct BackwardReuseResult {
  Tensor grad_weight;  ///< [K, M]
  Tensor grad_bias;    ///< [M]
  Tensor grad_x;       ///< [N, K] gradient w.r.t. the unfolded input
  BackwardReuseStats stats;
};

/// \brief Computes the paper's approximate backward pass.
///
/// Per column block I:
///   dy_{c,s}  [|C_I| x M]: row-sums of dy grouped by cluster (Eq. 8);
///   dW_I      = x_{c,I}^T * dy_{c,I,s}                        (Eq. 10);
///   dy_{c,sa} = dy_{c,s} with each row divided by its cluster size;
///   dx_{c,I}  = dy_{c,I,sa} * W_I^T                           (Eq. 18),
/// and the centroid delta is scattered to every member row (Eq. 13).
/// grad_bias is exact (column sums of dy), matching the baseline layer.
BackwardReuseResult ReuseBackward(const ReuseClustering& clustering,
                                  const Tensor& weight, const Tensor& dy);

/// \brief ReuseBackward into caller-owned buffers — the allocation-free
/// form the conv layers drive from persistent gradients and a workspace
/// arena. `dy` is N x M; `grad_weight` ([K, M]), `grad_bias` ([M]) and
/// `grad_x` ([N, K]) are fully overwritten; per-block scratch bumps from
/// `arena` (heap fallback when null). Bit-identical to ReuseBackward.
void ReuseBackwardInto(const ReuseClustering& clustering,
                       const Tensor& weight, const float* dy,
                       WorkspaceArena* arena, float* grad_weight,
                       float* grad_bias, float* grad_x,
                       BackwardReuseStats* stats);

}  // namespace adr

#endif  // ADR_CORE_REUSE_BACKWARD_H_
