// AdaptiveController: the runtime half of Strategy 2 (paper Section V-A).
//
// It watches the training loss; when the loss plateaus it probes the next
// {L, H} candidates with one-batch inference runs and advances each reuse
// layer along its own candidate list according to Amendments 3.1-3.3.

#ifndef ADR_CORE_ADAPTIVE_CONTROLLER_H_
#define ADR_CORE_ADAPTIVE_CONTROLLER_H_

#include <deque>
#include <functional>
#include <vector>

#include "core/parameter_schedule.h"
#include "core/reuse_conv2d.h"
#include "util/status.h"

namespace adr {

/// \brief Detects "the loss value stops decreasing": compares the mean loss
/// of the most recent `window` observations with the mean of the window
/// before it; a plateau is declared when the relative improvement falls
/// below `min_rel_improvement`. The paper leaves the criterion informal;
/// this is the formalization we use (ablated in bench/ablation_parameters).
class PlateauDetector {
 public:
  PlateauDetector(int window, double min_rel_improvement)
      : window_(window), min_rel_improvement_(min_rel_improvement) {}

  /// \brief Records a loss; returns true when a plateau is detected
  /// (requires at least 2*window observations since the last Reset).
  bool Observe(double loss);

  void Reset() { history_.clear(); }

 private:
  int window_;
  double min_rel_improvement_;
  std::deque<double> history_;
};

struct AdaptiveOptions {
  int plateau_window = 10;
  double plateau_min_rel_improvement = 0.01;
  /// Minimum steps in a stage before a switch is considered (gives each
  /// setting time to act).
  int min_steps_per_stage = 2 * 10;
  /// Accuracy-probe batch is supplied by the caller through the probe
  /// callback; these thresholds implement Amendments 3.1-3.3.
  double low_accuracy_threshold = 0.5;
  double ratio_accept = 1.5;    ///< Amendment 3.1
  double diff_accept = 0.1;     ///< Amendment 3.2
  double fallback_ratio = 1.1;  ///< Amendment 3.3
  /// Appends one final stage that disables reuse entirely (dense, exact).
  /// The paper's schedule ends at {L_min, H_max}, which at full scale is
  /// near-exact; at the small N of our scaled substrate Policy 2 caps H
  /// too low for final-accuracy parity, so the schedule lands on an exact
  /// stage instead (see DESIGN.md, fidelity notes).
  bool final_exact_stage = true;
};

/// \brief Drives the {L, H} schedule of a set of reuse layers.
class AdaptiveController {
 public:
  /// \brief `probe` runs inference on a fixed batch with whatever configs
  /// are currently applied to the layers and returns the accuracy.
  using ProbeFn = std::function<double()>;

  AdaptiveController(std::vector<ReuseConv2d*> layers,
                     int64_t batch_size,
                     const AdaptiveOptions& options);

  /// \brief Builds each layer's candidate list (Policies 1-3) and applies
  /// the most aggressive candidate. Fails if any layer has no valid
  /// schedule.
  Status Init();

  /// \brief Feeds one training step's loss/accuracy. When a plateau is
  /// detected (and the stage is old enough), probes candidates via `probe`
  /// and advances the stage. Returns true when the stage changed.
  bool Step(double train_loss, double train_accuracy, const ProbeFn& probe);

  /// \brief True when every layer is at the end of its list.
  bool Exhausted() const;

  int stage() const { return stage_; }
  int num_stages() const;

  /// \brief Candidate currently applied to layer `i` (after Init).
  const LhCandidate& CurrentCandidate(size_t i) const;

 private:
  struct LayerState {
    ReuseConv2d* layer = nullptr;
    std::vector<LhCandidate> candidates;
  };

  /// Applies stage index `stage` (clamped per layer) to all layers.
  void ApplyStage(int stage);

  std::vector<LayerState> layers_;
  int64_t batch_size_;
  AdaptiveOptions options_;
  PlateauDetector plateau_;
  int stage_ = 0;
  int steps_in_stage_ = 0;
  double last_train_accuracy_ = 0.0;
};

}  // namespace adr

#endif  // ADR_CORE_ADAPTIVE_CONTROLLER_H_
