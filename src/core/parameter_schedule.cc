#include "core/parameter_schedule.h"

#include <algorithm>
#include <cmath>

#include "clustering/lsh.h"
#include "core/complexity_model.h"
#include "util/check.h"

namespace adr {

std::string LhCandidate::ToString() const {
  return "{L=" + std::to_string(l) + ", H=" + std::to_string(h) + "}";
}

void ComputeLRange(const LayerScheduleParams& params, int64_t* l_min,
                   int64_t* l_max) {
  ADR_CHECK_GT(params.kernel_w, 0);
  ADR_CHECK_GT(params.in_channels, 0);
  ADR_CHECK_GT(params.k, 0);
  // Policy 1.
  int64_t lo = params.kernel_w;
  const int64_t sqrt_ic = static_cast<int64_t>(
      std::ceil(std::sqrt(static_cast<double>(params.in_channels))));
  int64_t hi = sqrt_ic * params.kernel_w;
  // Amendment 1: small kernels in hidden layers use k_w^2.
  if (!params.is_first_layer &&
      params.kernel_w * params.kernel_w < 10) {
    lo = params.kernel_w * params.kernel_w;
  }
  lo = std::clamp<int64_t>(lo, 1, params.k);
  hi = std::clamp<int64_t>(hi, lo, params.k);
  *l_min = lo;
  *l_max = hi;
}

void ComputeHRange(const LayerScheduleParams& params, int* h_min,
                   int* h_max) {
  ADR_CHECK_GT(params.n, 0);
  // Policy 2: 2^h_min > 0.01 * N  and  2^h_max < N.
  const double n = static_cast<double>(params.n);
  int lo = 1;
  while (std::pow(2.0, lo) <= 0.01 * n && lo < kMaxLshHashes) ++lo;
  int hi = 1;
  while (std::pow(2.0, hi + 1) < n && hi + 1 <= kMaxLshHashes) ++hi;
  if (hi < lo) hi = lo;
  *h_min = lo;
  *h_max = hi;
}

std::vector<int64_t> CandidateLValues(int64_t k, int64_t l_min,
                                      int64_t l_max) {
  ADR_CHECK_GT(k, 0);
  ADR_CHECK(l_min >= 1 && l_min <= l_max && l_max <= k);
  std::vector<int64_t> values;
  for (int64_t d = l_max; d >= l_min; --d) {
    if (k % d == 0) values.push_back(d);
  }
  if (values.empty()) {
    values.push_back(std::min(l_max, k));
  }
  return values;
}

Result<std::vector<LhCandidate>> BuildCandidateList(
    const LayerScheduleParams& params) {
  if (params.k <= 0 || params.m <= 0 || params.n <= 0 ||
      params.kernel_w <= 0 || params.in_channels <= 0) {
    return Status::InvalidArgument(
        "layer schedule params must all be positive");
  }
  int64_t l_min = 0, l_max = 0;
  ComputeLRange(params, &l_min, &l_max);
  int h_min = 0, h_max = 0;
  ComputeHRange(params, &h_min, &h_max);

  const std::vector<int64_t> ls = CandidateLValues(params.k, l_min, l_max);
  std::vector<int> hs;
  for (int h = h_min; h <= h_max; ++h) hs.push_back(h);

  // Policy 3: merge the two sorted knob walks, always taking the move with
  // the smaller expected-time increase.
  std::vector<LhCandidate> list;
  size_t li = 0, hi = 0;
  list.push_back({ls[li], hs[hi]});
  while (li + 1 < ls.size() || hi + 1 < hs.size()) {
    const bool can_l = li + 1 < ls.size();
    const bool can_h = hi + 1 < hs.size();
    bool take_l;
    if (can_l && can_h) {
      const double dl = DeltaTimeForL(ls[li], ls[li + 1]);
      const double dh = DeltaTimeForH(hs[hi], hs[hi + 1], params.m);
      take_l = dl <= dh;
    } else {
      take_l = can_l;
    }
    if (take_l) {
      ++li;
    } else {
      ++hi;
    }
    list.push_back({ls[li], hs[hi]});
  }
  return list;
}

}  // namespace adr
