#include "core/adaptive_controller.h"

#include <algorithm>

#include "util/check.h"
#include "util/logging.h"
#include "util/metrics_registry.h"
#include "util/trace.h"

namespace adr {

bool PlateauDetector::Observe(double loss) {
  history_.push_back(loss);
  const size_t needed = 2 * static_cast<size_t>(window_);
  if (history_.size() > needed) history_.pop_front();
  if (history_.size() < needed) return false;
  double older = 0.0, recent = 0.0;
  for (int i = 0; i < window_; ++i) {
    older += history_[static_cast<size_t>(i)];
    recent += history_[static_cast<size_t>(window_ + i)];
  }
  older /= window_;
  recent /= window_;
  if (older <= 0.0) return true;
  const double rel_improvement = (older - recent) / older;
  return rel_improvement < min_rel_improvement_;
}

AdaptiveController::AdaptiveController(std::vector<ReuseConv2d*> layers,
                                       int64_t batch_size,
                                       const AdaptiveOptions& options)
    : batch_size_(batch_size),
      options_(options),
      plateau_(options.plateau_window, options.plateau_min_rel_improvement) {
  for (ReuseConv2d* layer : layers) {
    LayerState state;
    state.layer = layer;
    layers_.push_back(std::move(state));
  }
}

Status AdaptiveController::Init() {
  if (layers_.empty()) {
    return Status::InvalidArgument("no reuse layers to control");
  }
  for (size_t i = 0; i < layers_.size(); ++i) {
    ReuseConv2d* layer = layers_[i].layer;
    LayerScheduleParams params;
    params.kernel_w = layer->config().kernel;
    params.in_channels = layer->config().in_channels;
    params.k = layer->unfolded_cols();
    params.m = layer->config().out_channels;
    params.n = layer->Geometry(batch_size_).unfolded_rows();
    params.is_first_layer = i == 0;
    ADR_ASSIGN_OR_RETURN(layers_[i].candidates, BuildCandidateList(params));
    ADR_CHECK(!layers_[i].candidates.empty());
  }
  stage_ = 0;
  steps_in_stage_ = 0;
  ApplyStage(0);
  MetricsRegistry::Global().gauge("adaptive/stage")->Set(0.0);
  MetricsRegistry::Global()
      .gauge("adaptive/num_stages")
      ->Set(static_cast<double>(num_stages()));
  return Status::OK();
}

void AdaptiveController::ApplyStage(int stage) {
  const bool exact = options_.final_exact_stage && stage >= num_stages() - 1;
  for (LayerState& state : layers_) {
    const int idx = std::min(
        stage, static_cast<int>(state.candidates.size()) - 1);
    const LhCandidate& c = state.candidates[static_cast<size_t>(idx)];
    ReuseConfig config = state.layer->reuse_config();
    config.enabled = !exact;
    config.sub_vector_length = c.l;
    config.num_hashes = c.h;
    const Status status = state.layer->SetReuseConfig(config);
    ADR_CHECK(status.ok()) << status.ToString();
  }
}

int AdaptiveController::num_stages() const {
  int stages = 0;
  for (const LayerState& state : layers_) {
    stages = std::max(stages, static_cast<int>(state.candidates.size()));
  }
  if (options_.final_exact_stage) ++stages;
  return stages;
}

bool AdaptiveController::Exhausted() const {
  return stage_ >= num_stages() - 1;
}

const LhCandidate& AdaptiveController::CurrentCandidate(size_t i) const {
  const LayerState& state = layers_[i];
  const int idx = std::min(
      stage_, static_cast<int>(state.candidates.size()) - 1);
  return state.candidates[static_cast<size_t>(idx)];
}

bool AdaptiveController::Step(double train_loss, double train_accuracy,
                              const ProbeFn& probe) {
  ++steps_in_stage_;
  last_train_accuracy_ = train_accuracy;
  const bool plateaued = plateau_.Observe(train_loss);
  if (!plateaued || steps_in_stage_ < options_.min_steps_per_stage ||
      Exhausted()) {
    return false;
  }
  ADR_TRACE_SPAN("AdaptiveController::AdvanceStage");
  MetricsRegistry& metrics = MetricsRegistry::Global();
  metrics.counter("adaptive/plateaus")->Increment();

  // Probe the current setting once (A_cur).
  const double a_cur = probe();
  const int max_stage = num_stages() - 1;
  const bool low_accuracy =
      train_accuracy < options_.low_accuracy_threshold;

  // Amendments 3.1 / 3.2: scan forward for the first acceptable candidate.
  int accepted = -1;
  double a_accepted = 0.0;
  for (int j = stage_ + 1; j <= max_stage; ++j) {
    ApplyStage(j);
    const double a_j = probe();
    const bool ok = low_accuracy
                        ? (a_cur > 0.0 && a_j / a_cur >= options_.ratio_accept)
                        : (a_j - a_cur >= options_.diff_accept);
    if (ok) {
      accepted = j;
      a_accepted = a_j;
      break;
    }
  }

  // Amendment 3.3: fall back to the weaker ratio test.
  if (accepted < 0) {
    for (int j = stage_ + 1; j <= max_stage; ++j) {
      ApplyStage(j);
      const double a_j = probe();
      if (a_cur <= 0.0 || a_j / a_cur >= options_.fallback_ratio) {
        accepted = j;
        a_accepted = a_j;
        break;
      }
    }
  }

  // Guarantee progress: when nothing passes even the fallback, take the
  // immediate successor (the schedule must eventually reach its most
  // precise setting for training to converge).
  if (accepted < 0) {
    accepted = stage_ + 1;
    ApplyStage(accepted);
    a_accepted = probe();
  }

  ADR_LOG(Info) << "adaptive stage " << stage_ << " -> " << accepted
                << " (probe accuracy " << a_cur << " -> " << a_accepted
                << ")";
  stage_ = accepted;
  ApplyStage(stage_);
  steps_in_stage_ = 0;
  plateau_.Reset();
  metrics.counter("adaptive/stage_advances")->Increment();
  metrics.gauge("adaptive/stage")->Set(static_cast<double>(stage_));
  metrics.gauge("adaptive/probe_accuracy")->Set(a_accepted);
  return true;
}

}  // namespace adr
