// Umbrella header: the public API of the adaptive-deep-reuse library.
//
// For a guided tour:
//   - core/reuse_conv2d.h     the drop-in conv layer (start here)
//   - core/reuse_config.h     the {L, H, CR, scope} knobs
//   - core/adaptive_controller.h  Strategy 2's runtime controller
//   - core/strategies.h       end-to-end training drivers
//   - core/similarity_study.h the Fig. 7/8 studies as library calls
//   - models/models.h         CifarNet / AlexNet / VGG-19 builders
//
// Applications that only need the substrate can include the individual
// nn/, tensor/, clustering/ and data/ headers instead.

#ifndef ADR_ADR_H_
#define ADR_ADR_H_

#include "clustering/cluster_stats.h"
#include "clustering/exact_dedup.h"
#include "clustering/kmeans.h"
#include "clustering/lsh.h"
#include "core/adaptive_controller.h"
#include "core/clustered_matmul.h"
#include "core/complexity_model.h"
#include "core/parameter_schedule.h"
#include "core/reuse_backward.h"
#include "core/reuse_config.h"
#include "core/reuse_conv2d.h"
#include "core/reuse_report.h"
#include "core/similarity_study.h"
#include "core/strategies.h"
#include "core/subvector_clustering.h"
#include "data/augment.h"
#include "data/dataloader.h"
#include "data/synthetic_images.h"
#include "models/models.h"
#include "nn/checkpoint.h"
#include "nn/gradient_clip.h"
#include "nn/lr_schedule.h"
#include "nn/metrics.h"
#include "nn/network.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"
#include "util/flags.h"
#include "util/metrics_registry.h"
#include "util/result.h"
#include "util/status.h"
#include "util/trace.h"

#endif  // ADR_ADR_H_
