// Elementwise and reduction operations on tensors.

#ifndef ADR_TENSOR_TENSOR_OPS_H_
#define ADR_TENSOR_TENSOR_OPS_H_

#include <cstdint>

#include "tensor/tensor.h"

namespace adr {

/// \brief out[i] += in[i]; shapes must match.
void AddInPlace(const Tensor& in, Tensor* out);

/// \brief out[i] = a[i] + b[i].
Tensor Add(const Tensor& a, const Tensor& b);

/// \brief out[i] = a[i] - b[i].
Tensor Sub(const Tensor& a, const Tensor& b);

/// \brief out[i] *= scale.
void ScaleInPlace(float scale, Tensor* out);

/// \brief out[i] += scale * in[i] (axpy).
void Axpy(float scale, const Tensor& in, Tensor* out);

/// \brief Adds `bias` (length n) to every row of the MxN matrix `out`.
void AddRowBias(const Tensor& bias, Tensor* out);

/// \brief Raw-pointer AddRowBias for arena-backed buffers; same serial
/// loop, so results are bit-identical.
void AddRowBias(const float* bias, float* out, int64_t m_rows,
                int64_t n_cols);

/// \brief Sum over all elements.
double Sum(const Tensor& t);

/// \brief Column-wise sum of an MxN matrix into a length-N tensor.
Tensor ColumnSums(const Tensor& matrix);

/// \brief Raw-pointer ColumnSums into a caller-owned (e.g. arena) buffer;
/// `dst` (length n) is overwritten. Same serial accumulation order as
/// ColumnSums, so results are bit-identical.
void ColumnSumsInto(const float* src, int64_t m, int64_t n, float* dst);

/// \brief Mean of all elements.
double Mean(const Tensor& t);

/// \brief Max absolute element.
float MaxAbs(const Tensor& t);

/// \brief Squared L2 norm of all elements.
double SquaredNorm(const Tensor& t);

/// \brief Max |a[i] - b[i]|; shapes must match.
float MaxAbsDiff(const Tensor& a, const Tensor& b);

/// \brief True when all |a[i] - b[i]| <= atol + rtol * |b[i]|.
bool AllClose(const Tensor& a, const Tensor& b, float rtol = 1e-5f,
              float atol = 1e-6f);

/// \brief Index of the maximum entry in row `row` of an MxN matrix.
int64_t ArgMaxRow(const Tensor& matrix, int64_t row);

}  // namespace adr

#endif  // ADR_TENSOR_TENSOR_OPS_H_
