// im2col / col2im: the unfolding that turns convolution into GEMM.
//
// The unfolded matrix x (N x K) is exactly the object whose rows ("neuron
// vectors") adaptive deep reuse clusters, so its layout is the contract
// between the nn substrate and the core reuse library:
//   N = Nb * Oh * Ow   rows, ordered batch-major then output-row-major;
//   K = Ic * kh * kw   columns, ordered channel-major then kernel-row-major.

#ifndef ADR_TENSOR_IM2COL_H_
#define ADR_TENSOR_IM2COL_H_

#include <cstdint>

#include "tensor/tensor.h"
#include "util/status.h"

namespace adr {

/// \brief Static geometry of one convolution, shared by im2col, Conv2d and
/// the reuse layer.
struct ConvGeometry {
  int64_t batch = 0;        ///< Nb
  int64_t in_channels = 0;  ///< Ic
  int64_t in_height = 0;    ///< Ih
  int64_t in_width = 0;     ///< Iw
  int64_t kernel_h = 0;     ///< kh
  int64_t kernel_w = 0;     ///< kw
  int64_t stride = 1;       ///< s
  int64_t pad = 0;          ///< symmetric zero padding

  int64_t out_height() const {
    return (in_height + 2 * pad - kernel_h) / stride + 1;
  }
  int64_t out_width() const {
    return (in_width + 2 * pad - kernel_w) / stride + 1;
  }
  /// Rows of the unfolded matrix for the whole batch (N in the paper).
  int64_t unfolded_rows() const {
    return batch * out_height() * out_width();
  }
  /// Columns of the unfolded matrix (K in the paper).
  int64_t unfolded_cols() const { return in_channels * kernel_h * kernel_w; }
  /// Rows corresponding to one input (N_img in the paper).
  int64_t rows_per_image() const { return out_height() * out_width(); }

  /// \brief Validates positivity and divisibility constraints.
  Status Validate() const;
};

/// \brief Unfolds `input` (shape [Nb, Ic, Ih, Iw]) into `out` (shape
/// [N, K]); `out` must be pre-shaped.
void Im2Col(const ConvGeometry& geo, const Tensor& input, Tensor* out);

/// \brief Generates rows [row_begin, row_end) of the unfolded matrix
/// directly from the raw NCHW `input`, writing them contiguously into
/// `out` ((row_end - row_begin) x K, row-major). Each row is a pure
/// function of the input, so any tiling of [0, N) reproduces Im2Col's
/// output bit-for-bit. This is the fused pipeline's tile producer: tiles
/// sized to L2 never materialize the full N x K matrix.
void Im2ColRows(const ConvGeometry& geo, const float* input,
                int64_t row_begin, int64_t row_end, float* out);

/// \brief Folds gradient `grad_cols` ([N, K]) back into `grad_input`
/// ([Nb, Ic, Ih, Iw]), accumulating overlapping patches.
void Col2Im(const ConvGeometry& geo, const Tensor& grad_cols,
            Tensor* grad_input);

/// \brief Raw-pointer Im2Col for arena-backed buffers; same per-image
/// parallel fill as the Tensor overload.
void Im2Col(const ConvGeometry& geo, const float* input, float* out);

/// \brief Raw-pointer Col2Im for arena-backed buffers; `grad_input`
/// (Nb*Ic*Ih*Iw floats) is zeroed first, then accumulated into.
void Col2Im(const ConvGeometry& geo, const float* grad_cols,
            float* grad_input);

/// \brief Rows per tile for the L2-resident tiled pipelines: a tile of
/// `row_width` floats per row should occupy roughly 192 KiB (leaving the
/// rest of a typical 256 KiB+ L2 for hash scratch and the weight panel),
/// clamped to [64, 4096] rows.
int64_t L2TileRows(int64_t row_width);

}  // namespace adr

#endif  // ADR_TENSOR_IM2COL_H_
