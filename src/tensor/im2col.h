// im2col / col2im: the unfolding that turns convolution into GEMM.
//
// The unfolded matrix x (N x K) is exactly the object whose rows ("neuron
// vectors") adaptive deep reuse clusters, so its layout is the contract
// between the nn substrate and the core reuse library:
//   N = Nb * Oh * Ow   rows, ordered batch-major then output-row-major;
//   K = Ic * kh * kw   columns, ordered channel-major then kernel-row-major.

#ifndef ADR_TENSOR_IM2COL_H_
#define ADR_TENSOR_IM2COL_H_

#include <cstdint>

#include "tensor/tensor.h"
#include "util/status.h"

namespace adr {

/// \brief Static geometry of one convolution, shared by im2col, Conv2d and
/// the reuse layer.
struct ConvGeometry {
  int64_t batch = 0;        ///< Nb
  int64_t in_channels = 0;  ///< Ic
  int64_t in_height = 0;    ///< Ih
  int64_t in_width = 0;     ///< Iw
  int64_t kernel_h = 0;     ///< kh
  int64_t kernel_w = 0;     ///< kw
  int64_t stride = 1;       ///< s
  int64_t pad = 0;          ///< symmetric zero padding

  int64_t out_height() const {
    return (in_height + 2 * pad - kernel_h) / stride + 1;
  }
  int64_t out_width() const {
    return (in_width + 2 * pad - kernel_w) / stride + 1;
  }
  /// Rows of the unfolded matrix for the whole batch (N in the paper).
  int64_t unfolded_rows() const {
    return batch * out_height() * out_width();
  }
  /// Columns of the unfolded matrix (K in the paper).
  int64_t unfolded_cols() const { return in_channels * kernel_h * kernel_w; }
  /// Rows corresponding to one input (N_img in the paper).
  int64_t rows_per_image() const { return out_height() * out_width(); }

  /// \brief Validates positivity and divisibility constraints.
  Status Validate() const;
};

/// \brief Unfolds `input` (shape [Nb, Ic, Ih, Iw]) into `out` (shape
/// [N, K]); `out` must be pre-shaped.
void Im2Col(const ConvGeometry& geo, const Tensor& input, Tensor* out);

/// \brief Folds gradient `grad_cols` ([N, K]) back into `grad_input`
/// ([Nb, Ic, Ih, Iw]), accumulating overlapping patches.
void Col2Im(const ConvGeometry& geo, const Tensor& grad_cols,
            Tensor* grad_input);

}  // namespace adr

#endif  // ADR_TENSOR_IM2COL_H_
