// Tensor: dense row-major float32 storage, the numeric substrate for the
// whole library. Kept deliberately simple: contiguous, owning, no views
// other than raw-pointer access; higher layers (im2col, GEMM) work on spans.

#ifndef ADR_TENSOR_TENSOR_H_
#define ADR_TENSOR_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/shape.h"
#include "util/check.h"
#include "util/rng.h"

namespace adr {

/// \brief Dense row-major float tensor with value semantics.
class Tensor {
 public:
  /// Constructs an empty (rank-0, single-element) tensor.
  Tensor() : shape_({}), data_(1, 0.0f) {}

  /// Constructs a zero-filled tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        data_(static_cast<size_t>(shape_.num_elements()), 0.0f) {}

  Tensor(Shape shape, std::vector<float> data);

  /// \brief Tensor filled with a constant.
  static Tensor Full(Shape shape, float value);
  static Tensor Zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor Ones(Shape shape) { return Full(std::move(shape), 1.0f); }

  /// \brief I.i.d. N(mean, stddev^2) entries drawn from `rng`.
  static Tensor RandomGaussian(Shape shape, Rng* rng, float mean = 0.0f,
                               float stddev = 1.0f);

  /// \brief I.i.d. U[lo, hi) entries drawn from `rng`.
  static Tensor RandomUniform(Shape shape, Rng* rng, float lo, float hi);

  const Shape& shape() const { return shape_; }
  int64_t num_elements() const { return static_cast<int64_t>(data_.size()); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(int64_t flat_index) {
    ADR_DCHECK(flat_index >= 0 && flat_index < num_elements());
    return data_[static_cast<size_t>(flat_index)];
  }
  float at(int64_t flat_index) const {
    ADR_DCHECK(flat_index >= 0 && flat_index < num_elements());
    return data_[static_cast<size_t>(flat_index)];
  }

  /// \brief 2-D accessor; requires rank 2.
  float& at(int64_t row, int64_t col) {
    ADR_DCHECK(shape_.rank() == 2);
    return data_[static_cast<size_t>(row * shape_[1] + col)];
  }
  float at(int64_t row, int64_t col) const {
    ADR_DCHECK(shape_.rank() == 2);
    return data_[static_cast<size_t>(row * shape_[1] + col)];
  }

  /// \brief 4-D accessor (NCHW); requires rank 4.
  float& at4(int64_t n, int64_t c, int64_t h, int64_t w);
  float at4(int64_t n, int64_t c, int64_t h, int64_t w) const;

  /// \brief Reinterprets the buffer under a new shape with the same element
  /// count (no copy of semantics beyond the shape change).
  Tensor Reshaped(Shape new_shape) const;

  /// \brief Sets every element to `value`.
  void Fill(float value);

  /// \brief Sets every element to zero.
  void SetZero() { Fill(0.0f); }

  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  /// \brief Steals the backing storage (rvalue only); the tensor is left
  /// empty. Pairs with the (Shape, vector) constructor so hot paths can
  /// recycle capacity across steps instead of reallocating.
  std::vector<float> TakeData() && {
    std::vector<float> out = std::move(data_);
    shape_ = Shape({});
    data_.assign(1, 0.0f);
    return out;
  }

  std::string DebugString(int64_t max_elements = 16) const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace adr

#endif  // ADR_TENSOR_TENSOR_H_
