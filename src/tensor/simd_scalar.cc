// The always-built scalar backend: the reference the golden-kernel
// harness holds every vector backend to. Must stay in a translation unit
// without ISA-specific flags.

#include "tensor/simd_kernels_inl.h"

namespace adr::simd {

const Kernels& ScalarKernelsImpl() {
  static const Kernels kernels =
      detail::MakeKernels<detail::ScalarOps>(Isa::kScalar, "scalar");
  return kernels;
}

}  // namespace adr::simd
