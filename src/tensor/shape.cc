#include "tensor/shape.h"

#include "util/check.h"

namespace adr {

int64_t Shape::dim(int i) const {
  ADR_CHECK_GE(i, 0);
  ADR_CHECK_LT(i, rank());
  return dims_[i];
}

int64_t Shape::num_elements() const {
  int64_t n = 1;
  for (int64_t d : dims_) {
    ADR_CHECK_GT(d, 0) << "shape has non-positive dimension";
    n *= d;
  }
  return n;
}

std::vector<int64_t> Shape::strides() const {
  std::vector<int64_t> s(dims_.size(), 1);
  for (int i = rank() - 2; i >= 0; --i) {
    s[i] = s[i + 1] * dims_[i + 1];
  }
  return s;
}

std::string Shape::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(dims_[i]);
  }
  out += "]";
  return out;
}

}  // namespace adr
