#include "tensor/tensor.h"

#include <algorithm>
#include <sstream>

namespace adr {

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  ADR_CHECK_EQ(static_cast<int64_t>(data_.size()), shape_.num_elements())
      << "data size does not match shape " << shape_.ToString();
}

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::RandomGaussian(Shape shape, Rng* rng, float mean,
                              float stddev) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.num_elements(); ++i) {
    t.at(i) = rng->NextGaussian(mean, stddev);
  }
  return t;
}

Tensor Tensor::RandomUniform(Shape shape, Rng* rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.num_elements(); ++i) {
    t.at(i) = rng->NextUniform(lo, hi);
  }
  return t;
}

float& Tensor::at4(int64_t n, int64_t c, int64_t h, int64_t w) {
  ADR_DCHECK(shape_.rank() == 4);
  const int64_t C = shape_[1], H = shape_[2], W = shape_[3];
  return data_[static_cast<size_t>(((n * C + c) * H + h) * W + w)];
}

float Tensor::at4(int64_t n, int64_t c, int64_t h, int64_t w) const {
  ADR_DCHECK(shape_.rank() == 4);
  const int64_t C = shape_[1], H = shape_[2], W = shape_[3];
  return data_[static_cast<size_t>(((n * C + c) * H + h) * W + w)];
}

Tensor Tensor::Reshaped(Shape new_shape) const {
  ADR_CHECK_EQ(new_shape.num_elements(), num_elements())
      << "reshape to " << new_shape.ToString() << " from "
      << shape_.ToString();
  return Tensor(std::move(new_shape), data_);
}

void Tensor::Fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

std::string Tensor::DebugString(int64_t max_elements) const {
  std::ostringstream os;
  os << "Tensor" << shape_.ToString() << " {";
  const int64_t n = std::min(max_elements, num_elements());
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) os << ", ";
    os << data_[static_cast<size_t>(i)];
  }
  if (n < num_elements()) os << ", ...";
  os << "}";
  return os.str();
}

}  // namespace adr
