#include "tensor/gemm.h"

#include <algorithm>
#include <cstring>

#include "tensor/simd.h"
#include "util/parallel.h"

namespace adr {

namespace {

// Block sizes tuned for a typical 32 KiB L1 / 256 KiB L2: the (i,k) panel of
// A and the (k,j) panel of B both fit in L2 across the inner loops.
constexpr int64_t kBlockM = 64;
constexpr int64_t kBlockK = 128;
constexpr int64_t kBlockN = 256;

// Computes C rows [row_begin, row_end): the serial blocked kernel over a
// row slice, with each cache block handed to the backend's register-tiled
// microkernel. Each row's k-blocks accumulate in ascending order and the
// microkernel's per-element order depends only on the shape, so any row
// partitioning yields bit-identical results for a fixed backend.
void GemmRowSlice(const simd::Kernels& kernels, const float* a,
                  const float* b, float* c, int64_t row_begin,
                  int64_t row_end, int64_t k, int64_t n, bool accumulate) {
  if (!accumulate) {
    std::memset(c + row_begin * n, 0,
                sizeof(float) * static_cast<size_t>((row_end - row_begin) * n));
  }
  for (int64_t i0 = row_begin; i0 < row_end; i0 += kBlockM) {
    const int64_t i1 = std::min(i0 + kBlockM, row_end);
    for (int64_t k0 = 0; k0 < k; k0 += kBlockK) {
      const int64_t k1 = std::min(k0 + kBlockK, k);
      for (int64_t j0 = 0; j0 < n; j0 += kBlockN) {
        const int64_t j1 = std::min(j0 + kBlockN, n);
        kernels.gemm_block(a + i0 * k + k0, k, b + k0 * n + j0, n,
                           c + i0 * n + j0, n, i1 - i0, k1 - k0, j1 - j0);
      }
    }
  }
}

}  // namespace

void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n, bool accumulate) {
  // Row-blocked parallelism: each chunk owns a disjoint slice of C rows.
  // Chunks are multiples of kBlockM so the cache blocking inside a slice
  // is unchanged from the serial kernel. The backend is resolved once on
  // the calling thread so an override active here covers the whole call.
  const simd::Kernels& kernels = simd::Active();
  const int64_t grain =
      std::max(kBlockM, (GrainForCost(k * n) + kBlockM - 1) / kBlockM * kBlockM);
  ParallelFor(m, grain, [&](int64_t row_begin, int64_t row_end) {
    GemmRowSlice(kernels, a, b, c, row_begin, row_end, k, n, accumulate);
  });
}

void GemmTransA(const float* a, const float* b, float* c, int64_t m,
                int64_t k, int64_t n, bool accumulate) {
  // A is stored KxM; iterate over rows of A (the k index) so both A and B
  // are streamed sequentially. Parallelized over slices of C rows (the i
  // index): every chunk reads all of A and B but writes a disjoint slice,
  // and each row's k-accumulation order is chunk-independent.
  const simd::Kernels& kernels = simd::Active();
  const int64_t grain =
      std::max(kBlockM, (GrainForCost(k * n) + kBlockM - 1) / kBlockM * kBlockM);
  ParallelFor(m, grain, [&](int64_t row_begin, int64_t row_end) {
    if (!accumulate) {
      std::memset(c + row_begin * n, 0,
                  sizeof(float) *
                      static_cast<size_t>((row_end - row_begin) * n));
    }
    for (int64_t k0 = 0; k0 < k; k0 += kBlockK) {
      const int64_t k1 = std::min(k0 + kBlockK, k);
      for (int64_t i0 = row_begin; i0 < row_end; i0 += kBlockM) {
        const int64_t i1 = std::min(i0 + kBlockM, row_end);
        for (int64_t kk = k0; kk < k1; ++kk) {
          const float* a_row = a + kk * m;
          const float* b_row = b + kk * n;
          for (int64_t i = i0; i < i1; ++i) {
            const float a_ki = a_row[i];
            if (a_ki == 0.0f) continue;
            kernels.axpy(a_ki, b_row, c + i * n, n);
          }
        }
      }
    }
  });
}

void GemmTransB(const float* a, const float* b, float* c, int64_t m,
                int64_t k, int64_t n, bool accumulate) {
  // B is stored NxK; each C[i][j] is a dot product of contiguous rows.
  // Rows of C are independent, so row slices parallelize trivially.
  const simd::Kernels& kernels = simd::Active();
  ParallelFor(m, GrainForCost(k * n), [&](int64_t row_begin, int64_t row_end) {
    for (int64_t i = row_begin; i < row_end; ++i) {
      const float* a_row = a + i * k;
      float* c_row = c + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float sum = kernels.dot(a_row, b + j * k, k);
        c_row[j] = accumulate ? c_row[j] + sum : sum;
      }
    }
  });
}

void GemmReference(const float* a, const float* b, float* c, int64_t m,
                   int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float sum = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        sum += a[i * k + kk] * b[kk * n + j];
      }
      c[i * n + j] = sum;
    }
  }
}

}  // namespace adr
