#include "tensor/im2col.h"

#include <algorithm>
#include <string>

#include "util/parallel.h"

namespace adr {

Status ConvGeometry::Validate() const {
  if (batch <= 0 || in_channels <= 0 || in_height <= 0 || in_width <= 0) {
    return Status::InvalidArgument("conv geometry: input dims must be > 0");
  }
  if (kernel_h <= 0 || kernel_w <= 0) {
    return Status::InvalidArgument("conv geometry: kernel dims must be > 0");
  }
  if (stride <= 0) {
    return Status::InvalidArgument("conv geometry: stride must be > 0");
  }
  if (pad < 0) {
    return Status::InvalidArgument("conv geometry: pad must be >= 0");
  }
  if (in_height + 2 * pad < kernel_h || in_width + 2 * pad < kernel_w) {
    return Status::InvalidArgument(
        "conv geometry: kernel larger than padded input");
  }
  if ((in_height + 2 * pad - kernel_h) % stride != 0 ||
      (in_width + 2 * pad - kernel_w) % stride != 0) {
    return Status::InvalidArgument(
        "conv geometry: stride does not evenly tile the input");
  }
  return Status::OK();
}

void Im2ColRows(const ConvGeometry& geo, const float* input,
                int64_t row_begin, int64_t row_end, float* out) {
  const int64_t oh = geo.out_height();
  const int64_t ow = geo.out_width();
  const int64_t rows_per_image = oh * ow;
  const int64_t ih = geo.in_height, iw = geo.in_width;
  const int64_t chan_stride = ih * iw;
  const int64_t img_stride = geo.in_channels * chan_stride;

  // Decode (n, oy, ox) of the first row once, then step incrementally.
  int64_t n = row_begin / rows_per_image;
  const int64_t rem = row_begin % rows_per_image;
  int64_t oy = rem / ow;
  int64_t ox = rem % ow;
  float* dst = out;
  for (int64_t row = row_begin; row < row_end; ++row) {
    const float* img = input + n * img_stride;
    // One output row: all (c, ky, kx) taps of this receptive field.
    for (int64_t c = 0; c < geo.in_channels; ++c) {
      const float* chan = img + c * chan_stride;
      for (int64_t ky = 0; ky < geo.kernel_h; ++ky) {
        const int64_t y = oy * geo.stride + ky - geo.pad;
        for (int64_t kx = 0; kx < geo.kernel_w; ++kx) {
          const int64_t x = ox * geo.stride + kx - geo.pad;
          const bool inside = y >= 0 && y < ih && x >= 0 && x < iw;
          *dst++ = inside ? chan[y * iw + x] : 0.0f;
        }
      }
    }
    if (++ox == ow) {
      ox = 0;
      if (++oy == oh) {
        oy = 0;
        ++n;
      }
    }
  }
}

void Im2Col(const ConvGeometry& geo, const Tensor& input, Tensor* out) {
  ADR_CHECK(input.shape() ==
            Shape({geo.batch, geo.in_channels, geo.in_height, geo.in_width}))
      << "Im2Col input shape " << input.shape().ToString();
  ADR_CHECK(out->shape() == Shape({geo.unfolded_rows(), geo.unfolded_cols()}))
      << "Im2Col output shape " << out->shape().ToString();
  Im2Col(geo, input.data(), out->data());
}

void Im2Col(const ConvGeometry& geo, const float* input, float* out) {
  const int64_t k_cols = geo.unfolded_cols();
  const int64_t rows_per_image = geo.rows_per_image();
  // Per-image parallelism: image n fills exactly the row block
  // [n * rows_per_image, (n+1) * rows_per_image) of the unfolded matrix,
  // so chunks write disjoint ranges. Each row is a pure function of the
  // input, so this matches any row tiling of Im2ColRows bit-for-bit.
  ParallelFor(geo.batch, 1, [&](int64_t n_begin, int64_t n_end) {
    Im2ColRows(geo, input, n_begin * rows_per_image, n_end * rows_per_image,
               out + n_begin * rows_per_image * k_cols);
  });
}

int64_t L2TileRows(int64_t row_width) {
  const int64_t budget_floats = (192 * 1024) / static_cast<int64_t>(sizeof(float));
  const int64_t rows = budget_floats / (row_width < 1 ? 1 : row_width);
  return std::min<int64_t>(4096, std::max<int64_t>(64, rows));
}

void Col2Im(const ConvGeometry& geo, const Tensor& grad_cols,
            Tensor* grad_input) {
  ADR_CHECK(grad_cols.shape() ==
            Shape({geo.unfolded_rows(), geo.unfolded_cols()}));
  ADR_CHECK(grad_input->shape() ==
            Shape({geo.batch, geo.in_channels, geo.in_height, geo.in_width}));
  Col2Im(geo, grad_cols.data(), grad_input->data());
}

void Col2Im(const ConvGeometry& geo, const float* grad_cols,
            float* grad_input) {
  const int64_t oh = geo.out_height();
  const int64_t ow = geo.out_width();
  const int64_t total =
      geo.batch * geo.in_channels * geo.in_height * geo.in_width;
  for (int64_t i = 0; i < total; ++i) grad_input[i] = 0.0f;
  const float* src_data = grad_cols;
  float* out = grad_input;
  const int64_t ih = geo.in_height, iw = geo.in_width;
  const int64_t chan_stride = ih * iw;
  const int64_t cols_per_image = geo.rows_per_image() * geo.unfolded_cols();

  // Per-image parallelism: patches only overlap within one image, so each
  // chunk accumulates into a disjoint [Ic, Ih, Iw] slab.
  ParallelFor(geo.batch, 1, [&](int64_t n_begin, int64_t n_end) {
    for (int64_t n = n_begin; n < n_end; ++n) {
      float* img = out + n * geo.in_channels * chan_stride;
      const float* src = src_data + n * cols_per_image;
      for (int64_t oy = 0; oy < oh; ++oy) {
        for (int64_t ox = 0; ox < ow; ++ox) {
          for (int64_t c = 0; c < geo.in_channels; ++c) {
            float* chan = img + c * chan_stride;
            for (int64_t ky = 0; ky < geo.kernel_h; ++ky) {
              const int64_t y = oy * geo.stride + ky - geo.pad;
              for (int64_t kx = 0; kx < geo.kernel_w; ++kx) {
                const int64_t x = ox * geo.stride + kx - geo.pad;
                const bool inside = y >= 0 && y < ih && x >= 0 && x < iw;
                if (inside) chan[y * iw + x] += *src;
                ++src;
              }
            }
          }
        }
      }
    }
  });
}

}  // namespace adr
