// WorkspaceArena: per-layer scratch memory planned once and reused every
// training step.
//
// The conv hot paths (tiled im2col, LSH projection scratch, the centroid
// gather GEMM, the backward reductions) need several transient buffers per
// batch. Allocating them from the heap every step dominates the allocator
// and pollutes the cache; production training stacks preallocate per-layer
// workspaces instead. The arena gives each layer exactly that: a bump
// allocator whose epoch is one training step.
//
// Protocol:
//   arena.Reset();                  // start of Forward: frees nothing,
//                                   // consolidates capacity (see below)
//   float* a = arena.AllocFloats(n);  // valid until the next Reset()
//   ...more Alloc* calls in Forward and the matching Backward...
//
// Capacity management. Requests beyond the primary slab are served from
// fresh overflow slabs (a hot-path heap allocation, counted by
// alloc_slabs()). The next Reset() consolidates: the primary slab grows to
// the epoch high-water mark and the overflow slabs are freed, so every
// subsequent epoch with the same (batch, config) runs entirely inside the
// primary slab — zero heap allocations in steady state. Consolidations are
// planning actions, tracked separately by consolidations().
//
// Not thread-safe: an arena belongs to one layer and is used from the
// layer's calling thread only. Pointers handed out may be *read/written*
// by pool workers inside a step, but Alloc/Reset must stay on the owner.

#ifndef ADR_TENSOR_WORKSPACE_ARENA_H_
#define ADR_TENSOR_WORKSPACE_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace adr {

class WorkspaceArena {
 public:
  WorkspaceArena() = default;
  ~WorkspaceArena();

  WorkspaceArena(const WorkspaceArena&) = delete;
  WorkspaceArena& operator=(const WorkspaceArena&) = delete;

  /// \brief 64-byte-aligned uninitialized buffer of `bytes` bytes, valid
  /// until the next Reset(). bytes == 0 returns a valid unique pointer.
  void* AllocBytes(int64_t bytes);

  /// \brief 64-byte-aligned uninitialized float buffer.
  float* AllocFloats(int64_t count) {
    return static_cast<float*>(
        AllocBytes(count * static_cast<int64_t>(sizeof(float))));
  }

  /// \brief 64-byte-aligned uninitialized int32 buffer.
  int32_t* AllocInt32(int64_t count) {
    return static_cast<int32_t*>(
        AllocBytes(count * static_cast<int64_t>(sizeof(int32_t))));
  }

  /// \brief Starts a new epoch: all outstanding buffers become invalid.
  /// If the previous epoch spilled into overflow slabs, the primary slab
  /// is regrown to the high-water mark and the overflow slabs are freed
  /// (one consolidation), so the new epoch runs allocation-free at the
  /// same shapes.
  void Reset();

  /// \brief Frees everything; capacity drops to zero.
  void Release();

  /// Bytes of backing memory currently reserved (primary + overflow).
  int64_t reserved_bytes() const;
  /// Bytes handed out in the current epoch (aligned sizes).
  int64_t used_bytes() const { return epoch_used_; }
  /// Largest used_bytes() ever observed at this capacity plan.
  int64_t high_water_bytes() const { return high_water_; }
  /// Cumulative hot-path slab allocations (Alloc* calls that had to touch
  /// the heap). Constant across steps == the zero-allocation steady state.
  int64_t alloc_slabs() const { return alloc_slabs_; }
  /// Cumulative Reset()-time capacity consolidations.
  int64_t consolidations() const { return consolidations_; }

 private:
  struct Slab {
    char* data = nullptr;
    int64_t size = 0;
  };

  static Slab NewSlab(int64_t bytes);
  static void FreeSlab(Slab* slab);

  Slab primary_;
  std::vector<Slab> overflow_;
  int64_t primary_offset_ = 0;
  int64_t epoch_used_ = 0;
  int64_t high_water_ = 0;
  int64_t alloc_slabs_ = 0;
  int64_t consolidations_ = 0;
};

/// \brief Allocation front-end that bumps from an arena when one is
/// provided and falls back to owned heap buffers otherwise. Lets one code
/// path serve both the arena-backed layer hot paths and standalone callers
/// (benches, tests) that have no arena.
class ScratchAllocator {
 public:
  explicit ScratchAllocator(WorkspaceArena* arena) : arena_(arena) {}

  float* Floats(int64_t count) {
    return static_cast<float*>(
        Bytes(count * static_cast<int64_t>(sizeof(float))));
  }
  int32_t* Int32(int64_t count) {
    return static_cast<int32_t*>(
        Bytes(count * static_cast<int64_t>(sizeof(int32_t))));
  }

 private:
  void* Bytes(int64_t bytes) {
    if (arena_ != nullptr) return arena_->AllocBytes(bytes);
    // Default-initialized (uninitialized contents), matching the arena's
    // contract — callers overwrite or zero-fill what they use.
    owned_.push_back(std::unique_ptr<char[]>(
        new char[static_cast<size_t>(bytes < 1 ? 1 : bytes)]));
    return owned_.back().get();
  }

  WorkspaceArena* arena_;
  // Buffers never move once created, so handed-out pointers stay valid
  // while the allocator lives.
  std::vector<std::unique_ptr<char[]>> owned_;
};

}  // namespace adr

#endif  // ADR_TENSOR_WORKSPACE_ARENA_H_
