// AVX2 + FMA backend. This file is the only one compiled with
// -mavx2 -mfma (see src/tensor/CMakeLists.txt); the dispatcher guards it
// behind a runtime __builtin_cpu_supports check so binaries stay runnable
// on pre-AVX2 x86-64.

#include "tensor/simd_kernels_inl.h"

#if !defined(__AVX2__) || !defined(__FMA__)
#error "simd_avx2.cc must be compiled with -mavx2 -mfma"
#endif

namespace adr::simd {

const Kernels& Avx2KernelsImpl() {
  static const Kernels kernels =
      detail::MakeKernels<detail::Avx2Ops>(Isa::kAvx2, "avx2");
  return kernels;
}

}  // namespace adr::simd
