// NEON backend. NEON is architectural baseline on aarch64, so this unit
// needs no special flags and no runtime feature check.

#include "tensor/simd_kernels_inl.h"

#if !defined(__ARM_NEON) && !defined(__ARM_NEON__)
#error "simd_neon.cc requires a NEON-capable target"
#endif

namespace adr::simd {

const Kernels& NeonKernelsImpl() {
  static const Kernels kernels =
      detail::MakeKernels<detail::NeonOps>(Isa::kNeon, "neon");
  return kernels;
}

}  // namespace adr::simd
