#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

namespace adr {

void AddInPlace(const Tensor& in, Tensor* out) {
  ADR_CHECK(in.SameShape(*out));
  const float* src = in.data();
  float* dst = out->data();
  const int64_t n = in.num_elements();
  for (int64_t i = 0; i < n; ++i) dst[i] += src[i];
}

Tensor Add(const Tensor& a, const Tensor& b) {
  Tensor out = a;
  AddInPlace(b, &out);
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  ADR_CHECK(a.SameShape(b));
  Tensor out = a;
  const float* src = b.data();
  float* dst = out.data();
  for (int64_t i = 0; i < out.num_elements(); ++i) dst[i] -= src[i];
  return out;
}

void ScaleInPlace(float scale, Tensor* out) {
  float* dst = out->data();
  const int64_t n = out->num_elements();
  for (int64_t i = 0; i < n; ++i) dst[i] *= scale;
}

void Axpy(float scale, const Tensor& in, Tensor* out) {
  ADR_CHECK(in.SameShape(*out));
  const float* src = in.data();
  float* dst = out->data();
  const int64_t n = in.num_elements();
  for (int64_t i = 0; i < n; ++i) dst[i] += scale * src[i];
}

void AddRowBias(const Tensor& bias, Tensor* out) {
  ADR_CHECK_EQ(out->shape().rank(), 2);
  ADR_CHECK_EQ(bias.num_elements(), out->shape()[1]);
  AddRowBias(bias.data(), out->data(), out->shape()[0], out->shape()[1]);
}

void AddRowBias(const float* bias, float* out, int64_t m_rows,
                int64_t n_cols) {
  for (int64_t i = 0; i < m_rows; ++i) {
    for (int64_t j = 0; j < n_cols; ++j) out[i * n_cols + j] += bias[j];
  }
}

double Sum(const Tensor& t) {
  double s = 0.0;
  const float* p = t.data();
  for (int64_t i = 0; i < t.num_elements(); ++i) s += p[i];
  return s;
}

Tensor ColumnSums(const Tensor& matrix) {
  ADR_CHECK_EQ(matrix.shape().rank(), 2);
  const int64_t m = matrix.shape()[0], n = matrix.shape()[1];
  Tensor out(Shape({n}));
  ColumnSumsInto(matrix.data(), m, n, out.data());
  return out;
}

void ColumnSumsInto(const float* src, int64_t m, int64_t n, float* dst) {
  for (int64_t j = 0; j < n; ++j) dst[j] = 0.0f;
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) dst[j] += src[i * n + j];
  }
}

double Mean(const Tensor& t) {
  return Sum(t) / static_cast<double>(t.num_elements());
}

float MaxAbs(const Tensor& t) {
  float m = 0.0f;
  const float* p = t.data();
  for (int64_t i = 0; i < t.num_elements(); ++i) {
    m = std::max(m, std::fabs(p[i]));
  }
  return m;
}

double SquaredNorm(const Tensor& t) {
  double s = 0.0;
  const float* p = t.data();
  for (int64_t i = 0; i < t.num_elements(); ++i) {
    s += static_cast<double>(p[i]) * p[i];
  }
  return s;
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  ADR_CHECK(a.SameShape(b));
  float m = 0.0f;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.num_elements(); ++i) {
    m = std::max(m, std::fabs(pa[i] - pb[i]));
  }
  return m;
}

bool AllClose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  if (!a.SameShape(b)) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.num_elements(); ++i) {
    if (std::fabs(pa[i] - pb[i]) > atol + rtol * std::fabs(pb[i])) {
      return false;
    }
  }
  return true;
}

int64_t ArgMaxRow(const Tensor& matrix, int64_t row) {
  ADR_CHECK_EQ(matrix.shape().rank(), 2);
  const int64_t n = matrix.shape()[1];
  const float* p = matrix.data() + row * n;
  int64_t best = 0;
  for (int64_t j = 1; j < n; ++j) {
    if (p[j] > p[best]) best = j;
  }
  return best;
}

}  // namespace adr
