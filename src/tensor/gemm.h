// Cache-blocked GEMM kernels, parallelized over disjoint row slices of C
// through the shared thread pool (util/parallel.h). These are the
// computational core that deep reuse removes work from, so their absolute
// efficiency sets the denominator of every reported saving. Results are
// bit-identical for any thread count: chunk boundaries depend only on the
// problem shape and each output row's accumulation order is fixed.

#ifndef ADR_TENSOR_GEMM_H_
#define ADR_TENSOR_GEMM_H_

#include <cstdint>

namespace adr {

/// \brief C = A * B (+ C if accumulate). A is MxK, B is KxN, C is MxN,
/// all row-major and contiguous.
void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n, bool accumulate = false);

/// \brief C = A^T * B (+ C if accumulate). A is KxM (so A^T is MxK),
/// B is KxN, C is MxN.
void GemmTransA(const float* a, const float* b, float* c, int64_t m,
                int64_t k, int64_t n, bool accumulate = false);

/// \brief C = A * B^T (+ C if accumulate). A is MxK, B is NxK (so B^T is
/// KxN), C is MxN.
void GemmTransB(const float* a, const float* b, float* c, int64_t m,
                int64_t k, int64_t n, bool accumulate = false);

/// \brief Naive triple-loop reference used to validate the blocked kernels.
void GemmReference(const float* a, const float* b, float* c, int64_t m,
                   int64_t k, int64_t n);

}  // namespace adr

#endif  // ADR_TENSOR_GEMM_H_
