#include "tensor/workspace_arena.h"

#include <new>

#include "util/check.h"

namespace adr {

namespace {

constexpr int64_t kAlignment = 64;

int64_t AlignUp(int64_t bytes) {
  return (bytes + kAlignment - 1) / kAlignment * kAlignment;
}

}  // namespace

WorkspaceArena::Slab WorkspaceArena::NewSlab(int64_t bytes) {
  Slab slab;
  slab.size = bytes;
  slab.data = static_cast<char*>(::operator new(
      static_cast<size_t>(bytes), std::align_val_t(kAlignment)));
  return slab;
}

void WorkspaceArena::FreeSlab(Slab* slab) {
  if (slab->data != nullptr) {
    ::operator delete(slab->data, std::align_val_t(kAlignment));
  }
  slab->data = nullptr;
  slab->size = 0;
}

WorkspaceArena::~WorkspaceArena() { Release(); }

void* WorkspaceArena::AllocBytes(int64_t bytes) {
  ADR_CHECK_GE(bytes, 0);
  const int64_t aligned = AlignUp(bytes == 0 ? 1 : bytes);
  epoch_used_ += aligned;
  if (epoch_used_ > high_water_) high_water_ = epoch_used_;
  if (primary_offset_ + aligned <= primary_.size) {
    void* out = primary_.data + primary_offset_;
    primary_offset_ += aligned;
    return out;
  }
  // Spill: a dedicated slab keeps every previously handed-out pointer
  // valid; the next Reset() consolidates the capacity plan.
  ++alloc_slabs_;
  overflow_.push_back(NewSlab(aligned));
  return overflow_.back().data;
}

void WorkspaceArena::Reset() {
  if (!overflow_.empty() || high_water_ > primary_.size) {
    for (Slab& slab : overflow_) FreeSlab(&slab);
    overflow_.clear();
    FreeSlab(&primary_);
    primary_ = NewSlab(AlignUp(high_water_));
    ++consolidations_;
  }
  primary_offset_ = 0;
  epoch_used_ = 0;
}

void WorkspaceArena::Release() {
  for (Slab& slab : overflow_) FreeSlab(&slab);
  overflow_.clear();
  FreeSlab(&primary_);
  primary_offset_ = 0;
  epoch_used_ = 0;
  high_water_ = 0;
}

int64_t WorkspaceArena::reserved_bytes() const {
  int64_t total = primary_.size;
  for (const Slab& slab : overflow_) total += slab.size;
  return total;
}

}  // namespace adr
