// Portable SIMD kernel layer for the reuse hot paths.
//
// Every dense inner loop the library spends its time in (the GEMM
// microkernels, LSH projection dot products, row normalization, the
// cluster gather/scatter adds and the backward sum/average reductions)
// funnels through the small table of primitives below. The table has one
// implementation per instruction set:
//
//   scalar — always built, always tested; the golden reference the
//            differential harness (tests/golden_kernels_test.cc) compares
//            every vector backend against.
//   avx2   — x86-64 AVX2 + FMA, compiled in its own translation unit with
//            -mavx2 -mfma so no AVX instruction can leak into generic
//            code paths; selected only when the running CPU reports both
//            features.
//   neon   — aarch64 NEON (baseline on that architecture).
//
// Backend resolution, highest priority first:
//   1. ScopedKernelsOverride (tests pinning a specific backend);
//   2. the ADR_SIMD environment variable: "0"/"off"/"scalar" forces the
//      scalar backend at runtime (read once, like ADR_THREADS);
//   3. the best backend that was compiled in (-DADR_SIMD=OFF builds none)
//      AND is supported by the running CPU.
//
// Numerical contract: backends may differ from each other in the final
// few ULPs (vector lanes regroup the accumulation order), but every
// backend is deterministic — same input, same shape, same backend gives
// bit-identical output on any thread count. Per-kernel tolerances are
// stated in DESIGN.md section 6.3 and enforced by the golden harness.

#ifndef ADR_TENSOR_SIMD_H_
#define ADR_TENSOR_SIMD_H_

#include <cstdint>
#include <vector>

namespace adr::simd {

enum class Isa { kScalar, kAvx2, kNeon };

/// \brief One backend's implementations of the hot-path primitives.
struct Kernels {
  Isa isa = Isa::kScalar;
  const char* name = "scalar";  ///< "scalar", "avx2" or "neon"
  int width = 1;                ///< float lanes per vector register

  /// sum_i a[i] * b[i]
  float (*dot)(const float* a, const float* b, int64_t n);
  /// sum_i a[i]^2
  float (*squared_norm)(const float* a, int64_t n);
  /// y[i] += s * x[i]
  void (*axpy)(float s, const float* x, float* y, int64_t n);
  /// y[i] += x[i]
  void (*add)(const float* x, float* y, int64_t n);
  /// y[i] = x[i]; bitwise-exact on every backend (the cluster-cache
  /// gather and other row moves route through this instead of memcpy so
  /// the wide loads/stores stay in the dispatched ISA).
  void (*copy)(const float* x, float* y, int64_t n);
  /// y[i] *= s
  void (*scale)(float s, float* y, int64_t n);
  /// C[m x n] += A[m x k] * B[k x n]; row-major with leading dimensions
  /// lda/ldb/ldc >= the respective row lengths. The register-blocked FMA
  /// microkernel behind Gemm/GemmTransA/GemmTransB's cache blocks. Each
  /// output element accumulates its k-products in ascending-k order, so
  /// for a fixed backend the result depends only on the operands.
  void (*gemm_block)(const float* a, int64_t lda, const float* b,
                     int64_t ldb, float* c, int64_t ldc, int64_t m,
                     int64_t k, int64_t n);
};

/// \brief The scalar backend. Always available.
const Kernels& Scalar();

/// \brief The backend hot kernels should use, resolved per the rules in
/// the header comment. Safe to call from pool threads.
const Kernels& Active();

/// \brief Every backend usable on this build + CPU, scalar first. The
/// differential harness iterates this list.
const std::vector<const Kernels*>& AllAvailable();

/// \brief RAII override of Active() for differential tests. Install from
/// the main thread between pieces of work, never concurrently with
/// running kernels.
class ScopedKernelsOverride {
 public:
  explicit ScopedKernelsOverride(const Kernels& kernels);
  ~ScopedKernelsOverride();
  ScopedKernelsOverride(const ScopedKernelsOverride&) = delete;
  ScopedKernelsOverride& operator=(const ScopedKernelsOverride&) = delete;

 private:
  const Kernels* previous_;
};

}  // namespace adr::simd

#endif  // ADR_TENSOR_SIMD_H_
