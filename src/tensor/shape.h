// Shape: dimensions of a dense row-major tensor.

#ifndef ADR_TENSOR_SHAPE_H_
#define ADR_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace adr {

/// \brief The extent of each tensor dimension, outermost first.
///
/// Rank 0 denotes a scalar. All dimensions must be positive.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {}

  int rank() const { return static_cast<int>(dims_.size()); }
  int64_t dim(int i) const;
  int64_t operator[](int i) const { return dim(i); }
  const std::vector<int64_t>& dims() const { return dims_; }

  /// \brief Total number of elements (1 for a scalar).
  int64_t num_elements() const;

  /// \brief Row-major strides, innermost stride == 1.
  std::vector<int64_t> strides() const;

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// \brief Renders e.g. "[32, 3, 32, 32]".
  std::string ToString() const;

 private:
  std::vector<int64_t> dims_;
};

}  // namespace adr

#endif  // ADR_TENSOR_SHAPE_H_
