// Backend selection for the SIMD kernel layer. Which vector backends
// exist is decided at build time (ADR_SIMD_HAVE_AVX2 / ADR_SIMD_HAVE_NEON
// are set per-file by CMake when the matching TU is built); which one runs
// is decided once at first use from the CPU's reported features and the
// ADR_SIMD environment variable.

#include "tensor/simd.h"

#include <atomic>
#include <cstdlib>
#include <string>

namespace adr::simd {

const Kernels& ScalarKernelsImpl();
#if defined(ADR_SIMD_HAVE_AVX2)
const Kernels& Avx2KernelsImpl();
#endif
#if defined(ADR_SIMD_HAVE_NEON)
const Kernels& NeonKernelsImpl();
#endif

namespace {

std::atomic<const Kernels*> g_override{nullptr};

bool EnvDisablesSimd() {
  const char* env = std::getenv("ADR_SIMD");
  if (env == nullptr) return false;
  const std::string value(env);
  return value == "0" || value == "off" || value == "OFF" ||
         value == "scalar";
}

#if defined(ADR_SIMD_HAVE_AVX2)
bool CpuHasAvx2Fma() {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}
#endif

const Kernels& Choose() {
  if (EnvDisablesSimd()) return ScalarKernelsImpl();
#if defined(ADR_SIMD_HAVE_AVX2)
  if (CpuHasAvx2Fma()) return Avx2KernelsImpl();
#endif
#if defined(ADR_SIMD_HAVE_NEON)
  return NeonKernelsImpl();
#else
  return ScalarKernelsImpl();
#endif
}

}  // namespace

const Kernels& Scalar() { return ScalarKernelsImpl(); }

const Kernels& Active() {
  const Kernels* override_kernels =
      g_override.load(std::memory_order_acquire);
  if (override_kernels != nullptr) return *override_kernels;
  static const Kernels& chosen = Choose();
  return chosen;
}

const std::vector<const Kernels*>& AllAvailable() {
  static const std::vector<const Kernels*> all = [] {
    std::vector<const Kernels*> backends{&ScalarKernelsImpl()};
#if defined(ADR_SIMD_HAVE_AVX2)
    if (CpuHasAvx2Fma()) backends.push_back(&Avx2KernelsImpl());
#endif
#if defined(ADR_SIMD_HAVE_NEON)
    backends.push_back(&NeonKernelsImpl());
#endif
    return backends;
  }();
  return all;
}

ScopedKernelsOverride::ScopedKernelsOverride(const Kernels& kernels)
    : previous_(g_override.exchange(&kernels, std::memory_order_acq_rel)) {}

ScopedKernelsOverride::~ScopedKernelsOverride() {
  g_override.store(previous_, std::memory_order_release);
}

}  // namespace adr::simd
