// Generic implementations of the simd::Kernels primitives, templated on a
// per-ISA vector-ops struct. Each backend translation unit (simd_scalar.cc,
// simd_avx2.cc, simd_neon.cc) includes this header and instantiates
// MakeKernels with its Ops type; the AVX2 unit alone is compiled with
// -mavx2 -mfma, so the intrinsics below only ever exist there.
//
// An Ops type provides:
//   using Reg            — the vector register type (float for scalar);
//   static constexpr int kWidth — float lanes per register;
//   Zero(), Load(p), Store(p, v), Broadcast(s), Add(a, b), Mul(a, b),
//   Fma(a, b, acc) = a * b + acc, ReduceAdd(v).
//
// Remainder lanes (n not a multiple of kWidth) run in scalar tail loops;
// the golden harness sweeps such shapes explicitly.

#ifndef ADR_TENSOR_SIMD_KERNELS_INL_H_
#define ADR_TENSOR_SIMD_KERNELS_INL_H_

#include <cstdint>

#include "tensor/simd.h"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif
#if defined(__ARM_NEON) || defined(__ARM_NEON__)
#include <arm_neon.h>
#endif

namespace adr::simd::detail {

struct ScalarOps {
  using Reg = float;
  static constexpr int kWidth = 1;
  static Reg Zero() { return 0.0f; }
  static Reg Load(const float* p) { return *p; }
  static void Store(float* p, Reg v) { *p = v; }
  static Reg Broadcast(float s) { return s; }
  static Reg Add(Reg a, Reg b) { return a + b; }
  static Reg Mul(Reg a, Reg b) { return a * b; }
  static Reg Fma(Reg a, Reg b, Reg acc) { return a * b + acc; }
  static float ReduceAdd(Reg v) { return v; }
};

#if defined(__AVX2__) && defined(__FMA__)
struct Avx2Ops {
  using Reg = __m256;
  static constexpr int kWidth = 8;
  static Reg Zero() { return _mm256_setzero_ps(); }
  static Reg Load(const float* p) { return _mm256_loadu_ps(p); }
  static void Store(float* p, Reg v) { _mm256_storeu_ps(p, v); }
  static Reg Broadcast(float s) { return _mm256_set1_ps(s); }
  static Reg Add(Reg a, Reg b) { return _mm256_add_ps(a, b); }
  static Reg Mul(Reg a, Reg b) { return _mm256_mul_ps(a, b); }
  static Reg Fma(Reg a, Reg b, Reg acc) { return _mm256_fmadd_ps(a, b, acc); }
  static float ReduceAdd(Reg v) {
    // (lo + hi) then pairwise: a fixed, shape-independent reduction tree.
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 sum = _mm_add_ps(lo, hi);
    sum = _mm_add_ps(sum, _mm_movehl_ps(sum, sum));
    sum = _mm_add_ss(sum, _mm_shuffle_ps(sum, sum, 0x1));
    return _mm_cvtss_f32(sum);
  }
};
#endif  // __AVX2__ && __FMA__

#if defined(__ARM_NEON) || defined(__ARM_NEON__)
struct NeonOps {
  using Reg = float32x4_t;
  static constexpr int kWidth = 4;
  static Reg Zero() { return vdupq_n_f32(0.0f); }
  static Reg Load(const float* p) { return vld1q_f32(p); }
  static void Store(float* p, Reg v) { vst1q_f32(p, v); }
  static Reg Broadcast(float s) { return vdupq_n_f32(s); }
  static Reg Add(Reg a, Reg b) { return vaddq_f32(a, b); }
  static Reg Mul(Reg a, Reg b) { return vmulq_f32(a, b); }
  static Reg Fma(Reg a, Reg b, Reg acc) { return vfmaq_f32(acc, a, b); }
  static float ReduceAdd(Reg v) { return vaddvq_f32(v); }
};
#endif  // __ARM_NEON

template <typename Ops>
float DotImpl(const float* a, const float* b, int64_t n) {
  using Reg = typename Ops::Reg;
  constexpr int64_t kW = Ops::kWidth;
  // Two accumulator chains hide FMA latency; combined once at the end so
  // the reduction order is fixed by n alone.
  Reg acc0 = Ops::Zero();
  Reg acc1 = Ops::Zero();
  int64_t i = 0;
  for (; i + 2 * kW <= n; i += 2 * kW) {
    acc0 = Ops::Fma(Ops::Load(a + i), Ops::Load(b + i), acc0);
    acc1 = Ops::Fma(Ops::Load(a + i + kW), Ops::Load(b + i + kW), acc1);
  }
  if (i + kW <= n) {
    acc0 = Ops::Fma(Ops::Load(a + i), Ops::Load(b + i), acc0);
    i += kW;
  }
  float sum = Ops::ReduceAdd(Ops::Add(acc0, acc1));
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

template <typename Ops>
float SquaredNormImpl(const float* a, int64_t n) {
  using Reg = typename Ops::Reg;
  constexpr int64_t kW = Ops::kWidth;
  Reg acc0 = Ops::Zero();
  Reg acc1 = Ops::Zero();
  int64_t i = 0;
  for (; i + 2 * kW <= n; i += 2 * kW) {
    const Reg v0 = Ops::Load(a + i);
    const Reg v1 = Ops::Load(a + i + kW);
    acc0 = Ops::Fma(v0, v0, acc0);
    acc1 = Ops::Fma(v1, v1, acc1);
  }
  if (i + kW <= n) {
    const Reg v = Ops::Load(a + i);
    acc0 = Ops::Fma(v, v, acc0);
    i += kW;
  }
  float sum = Ops::ReduceAdd(Ops::Add(acc0, acc1));
  for (; i < n; ++i) sum += a[i] * a[i];
  return sum;
}

template <typename Ops>
void AxpyImpl(float s, const float* x, float* y, int64_t n) {
  using Reg = typename Ops::Reg;
  constexpr int64_t kW = Ops::kWidth;
  const Reg sv = Ops::Broadcast(s);
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    Ops::Store(y + i, Ops::Fma(sv, Ops::Load(x + i), Ops::Load(y + i)));
  }
  for (; i < n; ++i) y[i] += s * x[i];
}

template <typename Ops>
void AddImpl(const float* x, float* y, int64_t n) {
  using Reg = typename Ops::Reg;
  constexpr int64_t kW = Ops::kWidth;
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    Ops::Store(y + i, Ops::Add(Ops::Load(y + i), Ops::Load(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

template <typename Ops>
void CopyImpl(const float* x, float* y, int64_t n) {
  constexpr int64_t kW = Ops::kWidth;
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    Ops::Store(y + i, Ops::Load(x + i));
  }
  for (; i < n; ++i) y[i] = x[i];
}

template <typename Ops>
void ScaleImpl(float s, float* y, int64_t n) {
  using Reg = typename Ops::Reg;
  constexpr int64_t kW = Ops::kWidth;
  const Reg sv = Ops::Broadcast(s);
  int64_t i = 0;
  for (; i + kW <= n; i += kW) {
    Ops::Store(y + i, Ops::Mul(Ops::Load(y + i), sv));
  }
  for (; i < n; ++i) y[i] *= s;
}

// One tile of R rows of C: C[R x n] += A[R x k] * B[k x n]. Columns run
// in tiles of two registers (the hot loop: one broadcast of A per row, two
// FMAs reusing the loaded B registers across all R rows), then one
// register, then a scalar tail. Accumulators live in registers across the
// whole k loop and are added to C once, so each element's accumulation
// order depends only on k.
template <typename Ops, int R>
void GemmRowTile(const float* a, int64_t lda, const float* b, int64_t ldb,
                 float* c, int64_t ldc, int64_t k, int64_t n) {
  using Reg = typename Ops::Reg;
  constexpr int64_t kW = Ops::kWidth;
  int64_t j = 0;
  for (; j + 2 * kW <= n; j += 2 * kW) {
    Reg acc0[R];
    Reg acc1[R];
    for (int r = 0; r < R; ++r) {
      acc0[r] = Ops::Zero();
      acc1[r] = Ops::Zero();
    }
    const float* b_col = b + j;
    for (int64_t kk = 0; kk < k; ++kk) {
      const Reg b0 = Ops::Load(b_col + kk * ldb);
      const Reg b1 = Ops::Load(b_col + kk * ldb + kW);
      for (int r = 0; r < R; ++r) {
        const Reg av = Ops::Broadcast(a[r * lda + kk]);
        acc0[r] = Ops::Fma(av, b0, acc0[r]);
        acc1[r] = Ops::Fma(av, b1, acc1[r]);
      }
    }
    for (int r = 0; r < R; ++r) {
      float* c_row = c + r * ldc + j;
      Ops::Store(c_row, Ops::Add(Ops::Load(c_row), acc0[r]));
      Ops::Store(c_row + kW, Ops::Add(Ops::Load(c_row + kW), acc1[r]));
    }
  }
  for (; j + kW <= n; j += kW) {
    Reg acc[R];
    for (int r = 0; r < R; ++r) acc[r] = Ops::Zero();
    const float* b_col = b + j;
    for (int64_t kk = 0; kk < k; ++kk) {
      const Reg bv = Ops::Load(b_col + kk * ldb);
      for (int r = 0; r < R; ++r) {
        acc[r] = Ops::Fma(Ops::Broadcast(a[r * lda + kk]), bv, acc[r]);
      }
    }
    for (int r = 0; r < R; ++r) {
      float* c_row = c + r * ldc + j;
      Ops::Store(c_row, Ops::Add(Ops::Load(c_row), acc[r]));
    }
  }
  for (; j < n; ++j) {
    for (int r = 0; r < R; ++r) {
      float acc = 0.0f;
      const float* a_row = a + r * lda;
      for (int64_t kk = 0; kk < k; ++kk) acc += a_row[kk] * b[kk * ldb + j];
      c[r * ldc + j] += acc;
    }
  }
}

template <typename Ops>
void GemmBlockImpl(const float* a, int64_t lda, const float* b, int64_t ldb,
                   float* c, int64_t ldc, int64_t m, int64_t k, int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= m; i += 4) {
    GemmRowTile<Ops, 4>(a + i * lda, lda, b, ldb, c + i * ldc, ldc, k, n);
  }
  switch (m - i) {
    case 3:
      GemmRowTile<Ops, 3>(a + i * lda, lda, b, ldb, c + i * ldc, ldc, k, n);
      break;
    case 2:
      GemmRowTile<Ops, 2>(a + i * lda, lda, b, ldb, c + i * ldc, ldc, k, n);
      break;
    case 1:
      GemmRowTile<Ops, 1>(a + i * lda, lda, b, ldb, c + i * ldc, ldc, k, n);
      break;
    default:
      break;
  }
}

template <typename Ops>
Kernels MakeKernels(Isa isa, const char* name) {
  Kernels kernels;
  kernels.isa = isa;
  kernels.name = name;
  kernels.width = Ops::kWidth;
  kernels.dot = &DotImpl<Ops>;
  kernels.squared_norm = &SquaredNormImpl<Ops>;
  kernels.axpy = &AxpyImpl<Ops>;
  kernels.add = &AddImpl<Ops>;
  kernels.copy = &CopyImpl<Ops>;
  kernels.scale = &ScaleImpl<Ops>;
  kernels.gemm_block = &GemmBlockImpl<Ops>;
  return kernels;
}

}  // namespace adr::simd::detail

#endif  // ADR_TENSOR_SIMD_KERNELS_INL_H_
