#include "models/models.h"

#include <cmath>
#include <memory>
#include <utility>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/normalization.h"
#include "nn/pooling.h"
#include "util/check.h"

namespace adr {

namespace {

/// Tracks the (C, H, W) flowing through the network under construction and
/// appends layers with derived geometry.
class Builder {
 public:
  Builder(const ModelOptions& options, Model* model)
      : options_(options),
        model_(model),
        rng_(options.seed),
        channels_(options.input_channels),
        height_(options.input_size),
        width_(options.input_size) {}

  int64_t Scaled(int64_t base_channels) const {
    return std::max<int64_t>(
        4, std::llround(options_.width * static_cast<double>(base_channels)));
  }

  int64_t ScaledFc(int64_t base) const {
    return std::max<int64_t>(
        8, std::llround(options_.fc_width * static_cast<double>(base)));
  }

  Status Conv(const std::string& name, int64_t base_out, int64_t kernel,
              int64_t stride, int64_t pad) {
    const int64_t out_channels = Scaled(base_out);
    if (height_ + 2 * pad < kernel ||
        (height_ + 2 * pad - kernel) % stride != 0 ||
        (width_ + 2 * pad - kernel) % stride != 0) {
      return Status::InvalidArgument(
          name + ": input " + std::to_string(height_) + "x" +
          std::to_string(width_) + " incompatible with kernel " +
          std::to_string(kernel) + " stride " + std::to_string(stride) +
          " pad " + std::to_string(pad));
    }
    Conv2dConfig config;
    config.in_channels = channels_;
    config.out_channels = out_channels;
    config.kernel = kernel;
    config.stride = stride;
    config.pad = pad;
    config.in_height = height_;
    config.in_width = width_;
    if (options_.use_reuse) {
      ReuseConfig reuse = options_.reuse;
      const int64_t k = channels_ * kernel * kernel;
      if (reuse.sub_vector_length > k) reuse.sub_vector_length = k;
      auto* layer = model_->network.Add(std::make_unique<ReuseConv2d>(
          name, config, reuse, &rng_));
      model_->reuse_layers.push_back(layer);
    } else {
      auto* layer =
          model_->network.Add(std::make_unique<Conv2d>(name, config, &rng_));
      model_->conv_layers.push_back(layer);
    }
    channels_ = out_channels;
    height_ = (height_ + 2 * pad - kernel) / stride + 1;
    width_ = (width_ + 2 * pad - kernel) / stride + 1;
    if (options_.batch_norm) {
      model_->network.Add(
          std::make_unique<BatchNorm2d>(name + "_bn", out_channels));
    }
    Relu(name + "_relu");
    return Status::OK();
  }

  void Relu(const std::string& name) {
    model_->network.Add(std::make_unique<adr::Relu>(name));
  }

  Status MaxPool(const std::string& name, int64_t kernel, int64_t stride) {
    if (height_ < kernel || width_ < kernel) {
      return Status::InvalidArgument(name + ": input too small to pool");
    }
    PoolConfig config;
    config.kernel = kernel;
    config.stride = stride;
    model_->network.Add(std::make_unique<MaxPool2d>(name, config));
    height_ = (height_ - kernel) / stride + 1;
    width_ = (width_ - kernel) / stride + 1;
    return Status::OK();
  }

  void Head(const std::vector<int64_t>& fc_sizes) {
    model_->network.Add(std::make_unique<adr::Flatten>("flatten"));
    int64_t features = channels_ * height_ * width_;
    int index = 1;
    for (int64_t base : fc_sizes) {
      const int64_t out = ScaledFc(base);
      const std::string name = "fc" + std::to_string(index++);
      model_->network.Add(
          std::make_unique<Dense>(name, features, out, &rng_));
      Relu(name + "_relu");
      features = out;
    }
    model_->network.Add(std::make_unique<Dense>(
        "logits", features, options_.num_classes, &rng_));
  }

 private:
  const ModelOptions& options_;
  Model* model_;
  Rng rng_;
  int64_t channels_;
  int64_t height_;
  int64_t width_;
};

Status ValidateCommon(const ModelOptions& options) {
  if (options.num_classes < 2) {
    return Status::InvalidArgument("num_classes must be >= 2");
  }
  if (options.input_channels <= 0 || options.input_size <= 0) {
    return Status::InvalidArgument("input dims must be > 0");
  }
  if (options.width <= 0.0 || options.fc_width <= 0.0) {
    return Status::InvalidArgument("width multipliers must be > 0");
  }
  return Status::OK();
}

}  // namespace

Result<Model> BuildCifarNet(const ModelOptions& options) {
  ADR_RETURN_NOT_OK(ValidateCommon(options));
  if (options.input_size < 8 || options.input_size % 4 != 0) {
    return Status::InvalidArgument(
        "CifarNet needs input_size >= 8 and divisible by 4");
  }
  Model model;
  model.name = "cifarnet";
  Builder b(options, &model);
  ADR_RETURN_NOT_OK(b.Conv("conv1", 64, /*kernel=*/5, /*stride=*/1,
                           /*pad=*/2));
  ADR_RETURN_NOT_OK(b.MaxPool("pool1", 2, 2));
  ADR_RETURN_NOT_OK(b.Conv("conv2", 64, 5, 1, 2));
  ADR_RETURN_NOT_OK(b.MaxPool("pool2", 2, 2));
  b.Head({384, 192});
  return model;
}

Result<Model> BuildAlexNet(const ModelOptions& options) {
  ADR_RETURN_NOT_OK(ValidateCommon(options));
  if (options.input_size < 47 || (options.input_size - 11) % 4 != 0) {
    return Status::InvalidArgument(
        "AlexNet needs input_size >= 47 with (input_size - 11) % 4 == 0 "
        "(e.g. 67 scaled, 227 full)");
  }
  Model model;
  model.name = "alexnet";
  Builder b(options, &model);
  ADR_RETURN_NOT_OK(b.Conv("conv1", 64, 11, 4, 0));
  ADR_RETURN_NOT_OK(b.MaxPool("pool1", 3, 2));
  if (options.use_lrn) {
    model.network.Add(std::make_unique<LocalResponseNorm>("lrn1"));
  }
  ADR_RETURN_NOT_OK(b.Conv("conv2", 192, 5, 1, 2));
  ADR_RETURN_NOT_OK(b.MaxPool("pool2", 3, 2));
  if (options.use_lrn) {
    model.network.Add(std::make_unique<LocalResponseNorm>("lrn2"));
  }
  ADR_RETURN_NOT_OK(b.Conv("conv3", 384, 3, 1, 1));
  ADR_RETURN_NOT_OK(b.Conv("conv4", 384, 3, 1, 1));
  ADR_RETURN_NOT_OK(b.Conv("conv5", 256, 3, 1, 1));
  ADR_RETURN_NOT_OK(b.MaxPool("pool5", 3, 2));
  b.Head({4096, 4096});
  return model;
}

Result<Model> BuildVgg19(const ModelOptions& options) {
  ADR_RETURN_NOT_OK(ValidateCommon(options));
  if (options.input_size < 32 || options.input_size % 32 != 0) {
    return Status::InvalidArgument(
        "VGG-19 needs input_size divisible by 32 (e.g. 32 scaled, 224 "
        "full)");
  }
  Model model;
  model.name = "vgg19";
  Builder b(options, &model);
  const int64_t block_channels[5] = {64, 128, 256, 512, 512};
  const int block_convs[5] = {2, 2, 4, 4, 4};
  int conv_index = 1;
  for (int block = 0; block < 5; ++block) {
    for (int i = 0; i < block_convs[block]; ++i) {
      const std::string name = "conv" + std::to_string(conv_index++);
      ADR_RETURN_NOT_OK(b.Conv(name, block_channels[block], 3, 1, 1));
    }
    ADR_RETURN_NOT_OK(
        b.MaxPool("pool" + std::to_string(block + 1), 2, 2));
  }
  b.Head({4096, 4096});
  return model;
}

Result<Model> BuildModel(const std::string& name,
                         const ModelOptions& options) {
  if (name == "cifarnet") return BuildCifarNet(options);
  if (name == "alexnet") return BuildAlexNet(options);
  if (name == "vgg19") return BuildVgg19(options);
  return Status::NotFound("unknown model: " + name);
}

namespace {

Status CopyTensorList(const std::vector<Tensor*>& src,
                      const std::vector<Tensor*>& dst,
                      const std::string& what) {
  if (src.size() != dst.size()) {
    return Status::InvalidArgument(
        what + " count mismatch: " + std::to_string(src.size()) + " vs " +
        std::to_string(dst.size()));
  }
  for (size_t i = 0; i < src.size(); ++i) {
    if (!src[i]->SameShape(*dst[i])) {
      return Status::InvalidArgument(what + " " + std::to_string(i) +
                                     " shape mismatch");
    }
    *dst[i] = *src[i];
  }
  return Status::OK();
}

}  // namespace

Status CopyWeights(const Model& baseline, Model* reuse) {
  ADR_RETURN_NOT_OK(CopyTensorList(baseline.network.Parameters(),
                                   reuse->network.Parameters(),
                                   "parameter"));
  // Non-learnable state (BatchNorm running statistics) must travel with
  // the weights or inference-mode twins see garbage normalizer stats.
  return CopyTensorList(baseline.network.StateTensors(),
                        reuse->network.StateTensors(), "state tensor");
}

}  // namespace adr
