// Benchmark network builders (paper Table II): CifarNet (2 conv layers),
// AlexNet (5 conv layers) and VGG-19 (16 conv layers).
//
// Every network can be built in baseline mode (plain Conv2d) or reuse mode
// (ReuseConv2d). Full-size definitions match the paper's geometry
// (K = 75..1600 for CifarNet, 363..3456 for AlexNet, 27..4608 for VGG-19);
// a `width` multiplier and a reduced `input_size` produce scaled variants
// that keep the same layer structure but are trainable on one CPU core
// (see DESIGN.md, substitutions).

#ifndef ADR_MODELS_MODELS_H_
#define ADR_MODELS_MODELS_H_

#include <string>
#include <vector>

#include "core/reuse_config.h"
#include "core/reuse_conv2d.h"
#include "nn/conv2d.h"
#include "nn/network.h"
#include "util/result.h"
#include "util/rng.h"

namespace adr {

/// \brief Options shared by all model builders.
struct ModelOptions {
  int num_classes = 10;
  int64_t input_channels = 3;
  /// Input height == width. Must satisfy the network's geometry (see each
  /// builder's documentation); builders validate and return
  /// InvalidArgument otherwise.
  int64_t input_size = 32;
  /// Channel multiplier in (0, 1]: out_channels = max(4, round(width * c)).
  double width = 1.0;
  /// Multiplier for the fully connected head sizes.
  double fc_width = 1.0;
  /// Inserts BatchNorm2d between each conv and its ReLU. Off by default
  /// (the paper's networks predate widespread BN); needed in practice to
  /// train the scaled VGG-19 variant on one CPU core.
  bool batch_norm = false;
  /// Inserts AlexNet's LocalResponseNorm after pool1/pool2 (AlexNet only;
  /// ignored by the other builders). Off by default: LRN is slow on CPU
  /// and does not change the reuse behaviour under study.
  bool use_lrn = false;
  /// Build ReuseConv2d layers instead of Conv2d.
  bool use_reuse = false;
  /// Initial reuse configuration for every reuse layer.
  ReuseConfig reuse;
  uint64_t seed = 1;
};

/// \brief A built network plus typed pointers to its conv layers.
struct Model {
  std::string name;
  Network network;
  std::vector<Conv2d*> conv_layers;        ///< baseline mode
  std::vector<ReuseConv2d*> reuse_layers;  ///< reuse mode
};

/// \brief CifarNet: conv5x5(64)-pool-conv5x5(64)-pool-fc384-fc192-fc.
/// Requires input_size divisible by 4 and >= 8. Natural size: 32.
Result<Model> BuildCifarNet(const ModelOptions& options);

/// \brief AlexNet (slim v2 geometry): conv11x11/4(64)-pool3/2-
/// conv5x5(192)-pool3/2-conv3x3(384)-conv3x3(384)-conv3x3(256)-pool3/2-fc.
/// Requires (input_size - 11) % 4 == 0 and enough spatial extent for the
/// three pools; natural sizes: 227 (full) and 67 (scaled).
Result<Model> BuildAlexNet(const ModelOptions& options);

/// \brief VGG-19: 16 conv3x3 layers in blocks (2,2,4,4,4) with channels
/// (64,128,256,512,512), each block followed by pool2/2, then the fc head.
/// Requires input_size divisible by 32; natural sizes: 224 (full) and 32
/// (scaled).
Result<Model> BuildVgg19(const ModelOptions& options);

/// \brief Builds the named network ("cifarnet" | "alexnet" | "vgg19").
Result<Model> BuildModel(const std::string& name,
                         const ModelOptions& options);

/// \brief Copies weights from a baseline-mode model into a reuse-mode model
/// of identical options (conv and dense weights both). Fails on any shape
/// mismatch.
Status CopyWeights(const Model& baseline, Model* reuse);

}  // namespace adr

#endif  // ADR_MODELS_MODELS_H_
