// DataLoader: shuffled mini-batch iteration over a Dataset.

#ifndef ADR_DATA_DATALOADER_H_
#define ADR_DATA_DATALOADER_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace adr {

/// \brief Cycles through a dataset in shuffled mini-batches.
///
/// The paper's setup shuffles inputs before feeding them to the network
/// (Section VI); reshuffling happens at every epoch boundary. The final
/// partial batch of an epoch is dropped so every batch has the same size
/// (keeping N constant for the reuse layers).
class DataLoader {
 public:
  /// `dataset` must outlive the loader. batch_size must be in
  /// [1, dataset->size()].
  DataLoader(const Dataset* dataset, int64_t batch_size, bool shuffle,
             uint64_t seed);

  /// \brief Fills `batch` with the next mini-batch, reshuffling at epoch
  /// boundaries.
  void Next(Batch* batch);

  int64_t batch_size() const { return batch_size_; }
  int64_t batches_per_epoch() const { return order_.size() / batch_size_; }
  int64_t epoch() const { return epoch_; }

  /// \brief Restarts from the beginning of a fresh epoch.
  void Reset();

 private:
  const Dataset* dataset_;
  int64_t batch_size_;
  bool shuffle_;
  Rng rng_;
  std::vector<int> order_;
  int64_t cursor_ = 0;
  int64_t epoch_ = 0;
};

/// \brief Materializes `count` samples starting at `start` as one batch
/// (no shuffling) — used by evaluation loops.
Batch MakeBatch(const Dataset& dataset, int64_t start, int64_t count);

}  // namespace adr

#endif  // ADR_DATA_DATALOADER_H_
