#include "data/synthetic_images.h"

#include <cmath>
#include <string>

#include "util/check.h"
#include "util/rng.h"

namespace adr {

namespace {

// Adds `count` Gaussian blobs to a C x H x W image. Blob centers, radii and
// per-channel amplitudes come from `rng`. `amplitude` scales all blobs.
void AddBlobs(Rng* rng, int count, float radius_fraction, float amplitude,
              int64_t channels, int64_t height, int64_t width, float* image) {
  const float base_radius =
      radius_fraction * static_cast<float>(std::min(height, width));
  for (int b = 0; b < count; ++b) {
    const float cy = rng->NextUniform(0.0f, static_cast<float>(height));
    const float cx = rng->NextUniform(0.0f, static_cast<float>(width));
    const float radius = base_radius * rng->NextUniform(0.5f, 1.5f);
    const float inv_2r2 = 1.0f / (2.0f * radius * radius);
    // Per-channel amplitudes share a sign so blobs look like colored
    // features, not random static.
    const float sign = rng->NextDouble() < 0.5 ? -1.0f : 1.0f;
    for (int64_t c = 0; c < channels; ++c) {
      const float amp = sign * amplitude * rng->NextUniform(0.3f, 1.0f);
      float* plane = image + c * height * width;
      for (int64_t y = 0; y < height; ++y) {
        const float dy = static_cast<float>(y) - cy;
        for (int64_t x = 0; x < width; ++x) {
          const float dx = static_cast<float>(x) - cx;
          plane[y * width + x] +=
              amp * std::exp(-(dx * dx + dy * dy) * inv_2r2);
        }
      }
    }
  }
}

}  // namespace

SyntheticImageConfig SyntheticImageConfig::CifarLike(int64_t num_samples,
                                                     uint64_t seed) {
  SyntheticImageConfig config;
  config.num_classes = 10;
  config.num_samples = num_samples;
  config.channels = 3;
  config.height = 32;
  config.width = 32;
  config.seed = seed;
  return config;
}

SyntheticImageConfig SyntheticImageConfig::ImageNetLike(int64_t num_samples,
                                                        int num_classes,
                                                        uint64_t seed) {
  SyntheticImageConfig config;
  config.num_classes = num_classes;
  config.num_samples = num_samples;
  config.channels = 3;
  config.height = 224;
  config.width = 224;
  config.blobs_per_template = 12;
  config.blob_radius_fraction = 0.15f;
  config.max_translation = 16;
  config.seed = seed;
  return config;
}

Result<SyntheticImageDataset> SyntheticImageDataset::Create(
    const SyntheticImageConfig& config) {
  if (config.num_classes < 2) {
    return Status::InvalidArgument("need at least 2 classes, got " +
                                   std::to_string(config.num_classes));
  }
  if (config.num_samples <= 0) {
    return Status::InvalidArgument("num_samples must be > 0");
  }
  if (config.channels <= 0 || config.height <= 0 || config.width <= 0) {
    return Status::InvalidArgument("image dims must be > 0");
  }
  if (config.max_translation < 0 ||
      config.max_translation >= std::min(config.height, config.width)) {
    return Status::InvalidArgument("max_translation out of range");
  }
  if (config.blob_radius_fraction <= 0.0f) {
    return Status::InvalidArgument("blob_radius_fraction must be > 0");
  }

  SyntheticImageDataset dataset;
  dataset.config_ = config;
  const size_t image_elems = static_cast<size_t>(config.channels) *
                             config.height * config.width;
  Rng rng(config.seed);
  dataset.templates_.resize(static_cast<size_t>(config.num_classes));
  for (auto& tmpl : dataset.templates_) {
    tmpl.assign(image_elems, 0.0f);
    AddBlobs(&rng, config.blobs_per_template, config.blob_radius_fraction,
             /*amplitude=*/1.0f, config.channels, config.height, config.width,
             tmpl.data());
  }
  return dataset;
}

void SyntheticImageDataset::Get(int64_t index, float* out_image,
                                int* out_label) const {
  ADR_CHECK(index >= 0 && index < config_.num_samples)
      << "index " << index << " out of range";
  // Per-sample generator: deterministic in (seed, index).
  Rng rng(config_.seed ^ (0x5851f42d4c957f2dULL * static_cast<uint64_t>(index + 1)));
  const int label = static_cast<int>(index % config_.num_classes);
  *out_label = label;

  const int64_t c_count = config_.channels;
  const int64_t h = config_.height;
  const int64_t w = config_.width;
  const std::vector<float>& tmpl = templates_[static_cast<size_t>(label)];

  // Translated copy of the class template (wrap-around borders keep the
  // statistics stationary).
  const int t = config_.max_translation;
  const int64_t dy = t > 0 ? static_cast<int64_t>(rng.NextBounded(2 * t + 1)) - t : 0;
  const int64_t dx = t > 0 ? static_cast<int64_t>(rng.NextBounded(2 * t + 1)) - t : 0;
  for (int64_t c = 0; c < c_count; ++c) {
    const float* src = tmpl.data() + c * h * w;
    float* dst = out_image + c * h * w;
    for (int64_t y = 0; y < h; ++y) {
      const int64_t sy = (y + dy % h + h) % h;
      for (int64_t x = 0; x < w; ++x) {
        const int64_t sx = (x + dx % w + w) % w;
        dst[y * w + x] = src[sy * w + sx];
      }
    }
  }

  // Smooth structured noise: a few low-amplitude blobs.
  if (config_.structured_noise > 0.0f) {
    AddBlobs(&rng, /*count=*/3, config_.blob_radius_fraction,
             config_.structured_noise, c_count, h, w, out_image);
  }

  // White noise.
  if (config_.white_noise > 0.0f) {
    const int64_t total = c_count * h * w;
    for (int64_t i = 0; i < total; ++i) {
      out_image[i] += rng.NextGaussian(0.0f, config_.white_noise);
    }
  }
}

}  // namespace adr
