#include "data/augment.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace adr {

void FlipHorizontal(float* image, int64_t channels, int64_t height,
                    int64_t width) {
  for (int64_t c = 0; c < channels; ++c) {
    float* plane = image + c * height * width;
    for (int64_t y = 0; y < height; ++y) {
      float* row = plane + y * width;
      std::reverse(row, row + width);
    }
  }
}

void ShiftImage(float* image, int64_t channels, int64_t height,
                int64_t width, int64_t dy, int64_t dx) {
  if (dy == 0 && dx == 0) return;
  std::vector<float> copy(image,
                          image + channels * height * width);
  for (int64_t c = 0; c < channels; ++c) {
    const float* src_plane = copy.data() + c * height * width;
    float* dst_plane = image + c * height * width;
    for (int64_t y = 0; y < height; ++y) {
      const int64_t sy = y - dy;
      for (int64_t x = 0; x < width; ++x) {
        const int64_t sx = x - dx;
        const bool inside =
            sy >= 0 && sy < height && sx >= 0 && sx < width;
        dst_plane[y * width + x] =
            inside ? src_plane[sy * width + sx] : 0.0f;
      }
    }
  }
}

void AugmentBatch(const AugmentConfig& config, Rng* rng, Batch* batch) {
  ADR_CHECK(rng != nullptr);
  ADR_CHECK(batch != nullptr);
  ADR_CHECK_EQ(batch->images.shape().rank(), 4);
  const int64_t n = batch->images.shape()[0];
  const int64_t channels = batch->images.shape()[1];
  const int64_t height = batch->images.shape()[2];
  const int64_t width = batch->images.shape()[3];
  const int64_t image_elems = channels * height * width;

  for (int64_t i = 0; i < n; ++i) {
    float* image = batch->images.data() + i * image_elems;
    if (config.flip_probability > 0.0f &&
        rng->NextDouble() < config.flip_probability) {
      FlipHorizontal(image, channels, height, width);
    }
    if (config.crop_padding > 0) {
      const int64_t range = 2 * config.crop_padding + 1;
      const int64_t dy =
          static_cast<int64_t>(rng->NextBounded(range)) - config.crop_padding;
      const int64_t dx =
          static_cast<int64_t>(rng->NextBounded(range)) - config.crop_padding;
      ShiftImage(image, channels, height, width, dy, dx);
    }
    if (config.brightness_jitter > 0.0f) {
      const float shift = rng->NextUniform(-config.brightness_jitter,
                                           config.brightness_jitter);
      for (int64_t j = 0; j < image_elems; ++j) image[j] += shift;
    }
  }
}

}  // namespace adr
