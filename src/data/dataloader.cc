#include "data/dataloader.h"

#include <numeric>

#include "util/check.h"

namespace adr {

DataLoader::DataLoader(const Dataset* dataset, int64_t batch_size,
                       bool shuffle, uint64_t seed)
    : dataset_(dataset),
      batch_size_(batch_size),
      shuffle_(shuffle),
      rng_(seed) {
  ADR_CHECK(dataset != nullptr);
  ADR_CHECK(batch_size >= 1 && batch_size <= dataset->size())
      << "batch_size " << batch_size << " vs dataset size "
      << dataset->size();
  order_.resize(static_cast<size_t>(dataset->size()));
  std::iota(order_.begin(), order_.end(), 0);
  if (shuffle_) rng_.Shuffle(&order_);
}

void DataLoader::Next(Batch* batch) {
  if (cursor_ + batch_size_ > static_cast<int64_t>(order_.size())) {
    cursor_ = 0;
    ++epoch_;
    if (shuffle_) rng_.Shuffle(&order_);
  }
  const Shape img = dataset_->image_shape();
  const int64_t image_elems = img.num_elements();
  batch->images = Tensor(Shape({batch_size_, img[0], img[1], img[2]}));
  batch->labels.resize(static_cast<size_t>(batch_size_));
  float* dst = batch->images.data();
  for (int64_t i = 0; i < batch_size_; ++i) {
    dataset_->Get(order_[static_cast<size_t>(cursor_ + i)],
                  dst + i * image_elems,
                  &batch->labels[static_cast<size_t>(i)]);
  }
  cursor_ += batch_size_;
}

void DataLoader::Reset() {
  cursor_ = 0;
  epoch_ = 0;
}

Batch MakeBatch(const Dataset& dataset, int64_t start, int64_t count) {
  ADR_CHECK(start >= 0 && count > 0 && start + count <= dataset.size());
  const Shape img = dataset.image_shape();
  const int64_t image_elems = img.num_elements();
  Batch batch;
  batch.images = Tensor(Shape({count, img[0], img[1], img[2]}));
  batch.labels.resize(static_cast<size_t>(count));
  float* dst = batch.images.data();
  for (int64_t i = 0; i < count; ++i) {
    dataset.Get(start + i, dst + i * image_elems,
                &batch.labels[static_cast<size_t>(i)]);
  }
  return batch;
}

}  // namespace adr
