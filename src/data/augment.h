// Image augmentations applied to batches in place: the standard CIFAR
// recipe (random horizontal flip + random crop with zero padding) plus
// per-image brightness jitter. All deterministic given the Rng.

#ifndef ADR_DATA_AUGMENT_H_
#define ADR_DATA_AUGMENT_H_

#include <cstdint>

#include "data/dataset.h"
#include "util/rng.h"

namespace adr {

struct AugmentConfig {
  /// Probability of mirroring each image horizontally.
  float flip_probability = 0.5f;
  /// Random-crop padding in pixels (0 disables cropping).
  int crop_padding = 0;
  /// Max absolute additive brightness shift (0 disables).
  float brightness_jitter = 0.0f;
};

/// \brief Mirrors one CHW image horizontally in place.
void FlipHorizontal(float* image, int64_t channels, int64_t height,
                    int64_t width);

/// \brief Shifts one CHW image by (dy, dx), filling vacated pixels with
/// zero — equivalent to zero-padding then cropping at an offset.
void ShiftImage(float* image, int64_t channels, int64_t height,
                int64_t width, int64_t dy, int64_t dx);

/// \brief Applies the configured augmentations to every image of `batch`.
void AugmentBatch(const AugmentConfig& config, Rng* rng, Batch* batch);

}  // namespace adr

#endif  // ADR_DATA_AUGMENT_H_
