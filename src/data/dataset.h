// Dataset interface and batch container.

#ifndef ADR_DATA_DATASET_H_
#define ADR_DATA_DATASET_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace adr {

/// \brief One mini-batch: images in NCHW and integer labels.
struct Batch {
  Tensor images;            ///< [Nb, C, H, W]
  std::vector<int> labels;  ///< length Nb

  int64_t size() const { return static_cast<int64_t>(labels.size()); }
};

/// \brief Abstract image-classification dataset with random access.
class Dataset {
 public:
  virtual ~Dataset() = default;

  virtual int64_t size() const = 0;
  virtual int num_classes() const = 0;
  /// Shape of one image, [C, H, W].
  virtual Shape image_shape() const = 0;

  /// \brief Writes image `index` (C*H*W floats, NCHW) and its label.
  virtual void Get(int64_t index, float* out_image, int* out_label) const = 0;
};

}  // namespace adr

#endif  // ADR_DATA_DATASET_H_
