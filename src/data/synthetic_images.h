// Synthetic structured image dataset.
//
// Stands in for CIFAR-10 / ImageNet (see DESIGN.md, substitutions): the
// properties that adaptive deep reuse exploits — spatial smoothness within
// an image and redundancy across images — are reproduced with controllable
// knobs. Each class has a fixed template built from smooth Gaussian blobs;
// each sample is the template under a random translation plus
// low-frequency structured noise plus a little white noise. Samples are
// generated deterministically and lazily from (seed, index), so
// ImageNet-sized configurations need no storage.

#ifndef ADR_DATA_SYNTHETIC_IMAGES_H_
#define ADR_DATA_SYNTHETIC_IMAGES_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "util/result.h"

namespace adr {

struct SyntheticImageConfig {
  int num_classes = 10;
  int64_t num_samples = 2048;
  int64_t channels = 3;
  int64_t height = 32;
  int64_t width = 32;
  /// Blobs per class template; more blobs = richer class structure.
  int blobs_per_template = 6;
  /// Blob radius as a fraction of image size; larger = smoother images =
  /// more neuron-vector similarity.
  float blob_radius_fraction = 0.25f;
  /// Max translation of the template, in pixels, per sample.
  int max_translation = 3;
  /// Amplitude of the smooth structured noise added per sample.
  float structured_noise = 0.25f;
  /// Stddev of the i.i.d. white noise added per sample.
  float white_noise = 0.02f;
  uint64_t seed = 1234;

  /// \brief CIFAR-like preset: 10 classes of 32x32x3.
  static SyntheticImageConfig CifarLike(int64_t num_samples = 2048,
                                        uint64_t seed = 1234);
  /// \brief ImageNet-like preset: many classes of 224x224x3 (lazy; no
  /// storage cost).
  static SyntheticImageConfig ImageNetLike(int64_t num_samples = 4096,
                                           int num_classes = 100,
                                           uint64_t seed = 1234);
};

/// \brief Deterministic lazily generated dataset (see file comment).
class SyntheticImageDataset : public Dataset {
 public:
  /// \brief Validates the config and precomputes the class templates.
  static Result<SyntheticImageDataset> Create(
      const SyntheticImageConfig& config);

  int64_t size() const override { return config_.num_samples; }
  int num_classes() const override { return config_.num_classes; }
  Shape image_shape() const override {
    return Shape({config_.channels, config_.height, config_.width});
  }
  void Get(int64_t index, float* out_image, int* out_label) const override;

  const SyntheticImageConfig& config() const { return config_; }

 private:
  SyntheticImageDataset() = default;

  SyntheticImageConfig config_;
  /// Class templates, each C*H*W floats, padded mentally by wrap-around
  /// translation at sample time.
  std::vector<std::vector<float>> templates_;
};

}  // namespace adr

#endif  // ADR_DATA_SYNTHETIC_IMAGES_H_
