// Exact duplicate-row detection: the trivial reuse baseline.
//
// Groups rows that are bitwise identical (or identical after quantization
// to a tolerance grid). Comparing its remaining ratio with LSH's shows how
// much of deep reuse's win comes from *approximate* similarity rather than
// outright duplicates — an ablation the paper implies but never isolates.

#ifndef ADR_CLUSTERING_EXACT_DEDUP_H_
#define ADR_CLUSTERING_EXACT_DEDUP_H_

#include <cstdint>

#include "clustering/clustering.h"

namespace adr {

/// \brief Clusters bitwise-identical rows.
///
/// `tolerance` > 0 first quantizes each value to multiples of `tolerance`
/// (so rows within half a grid cell coincide); 0 compares exact bits.
Clustering ExactDedupRows(const float* data, int64_t num_rows,
                          int64_t row_dim, int64_t row_stride,
                          float tolerance = 0.0f);

}  // namespace adr

#endif  // ADR_CLUSTERING_EXACT_DEDUP_H_
