#include "clustering/clustering.h"

#include "tensor/simd.h"
#include "util/check.h"
#include "util/parallel.h"

namespace adr {

Tensor ComputeCentroids(const float* data, int64_t num_rows, int64_t row_dim,
                        int64_t row_stride, const Clustering& clustering) {
  ADR_CHECK_EQ(num_rows, clustering.num_rows());
  const simd::Kernels& kernels = simd::Active();
  const int64_t num_clusters = clustering.num_clusters();
  Tensor centroids(Shape({num_clusters, row_dim}));
  float* c = centroids.data();
  for (int64_t i = 0; i < num_rows; ++i) {
    const int32_t cl = clustering.assignment[i];
    ADR_DCHECK(cl >= 0 && cl < num_clusters);
    kernels.add(data + i * row_stride, c + cl * row_dim, row_dim);
  }
  for (int64_t cl = 0; cl < num_clusters; ++cl) {
    const int64_t size = clustering.cluster_sizes[cl];
    ADR_CHECK_GT(size, 0) << "empty cluster " << cl;
    kernels.scale(1.0f / static_cast<float>(size), c + cl * row_dim,
                  row_dim);
  }
  return centroids;
}

void ScatterRows(const Tensor& cluster_rows, const Clustering& clustering,
                 float* out, int64_t row_stride) {
  ADR_CHECK_EQ(cluster_rows.shape().rank(), 2);
  ADR_CHECK_EQ(cluster_rows.shape()[0], clustering.num_clusters());
  ScatterRows(cluster_rows.data(), cluster_rows.shape()[1], clustering, out,
              row_stride);
}

void ScatterRows(const float* cluster_rows, int64_t row_dim,
                 const Clustering& clustering, float* out,
                 int64_t row_stride) {
  const float* src = cluster_rows;
  const int64_t n = clustering.num_rows();
  // Each output row is written by exactly one index: row chunks are
  // race-free and the result is thread-count independent.
  ParallelFor(n, GrainForCost(row_dim), [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const float* from = src + clustering.assignment[i] * row_dim;
      float* to = out + i * row_stride;
      for (int64_t j = 0; j < row_dim; ++j) to[j] = from[j];
    }
  });
}

}  // namespace adr
