#include "clustering/tile_hash.h"

#include <algorithm>

#include "clustering/normalize.h"
#include "util/check.h"
#include "util/parallel.h"

namespace adr {

void TileRowHasher::HashTile(const float* data, int64_t num_rows,
                             int64_t row_stride, float* scratch,
                             LshSignature* sigs) const {
  ADR_CHECK(family_ != nullptr);
  if (!normalize_) {
    family_->HashRowsScratch(data, num_rows, row_stride, scratch, sigs);
    return;
  }
  // Compact into scratch (beyond the projections region), normalize the
  // copy, then hash the contiguous normalized rows.
  const int64_t dim = family_->dim();
  float* compact = scratch + num_rows * family_->num_hashes();
  ParallelFor(num_rows, GrainForCost(dim), [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      std::copy_n(data + i * row_stride, dim, compact + i * dim);
    }
  });
  NormalizeRowsInPlace(compact, num_rows, dim, dim);
  family_->HashRowsScratch(compact, num_rows, dim, scratch, sigs);
}

}  // namespace adr
