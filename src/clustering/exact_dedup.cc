#include "clustering/exact_dedup.h"

#include <cmath>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "util/check.h"

namespace adr {

namespace {

// FNV-1a over a row's bytes.
uint64_t HashRowBytes(const float* row, int64_t dim) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  const unsigned char* bytes = reinterpret_cast<const unsigned char*>(row);
  const size_t count = static_cast<size_t>(dim) * sizeof(float);
  for (size_t i = 0; i < count; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

Clustering ExactDedupRows(const float* data, int64_t num_rows,
                          int64_t row_dim, int64_t row_stride,
                          float tolerance) {
  ADR_CHECK_GT(num_rows, 0);
  ADR_CHECK_GT(row_dim, 0);

  // Optionally quantize into a scratch buffer.
  std::vector<float> quantized;
  const float* rows = data;
  int64_t stride = row_stride;
  if (tolerance > 0.0f) {
    quantized.resize(static_cast<size_t>(num_rows) * row_dim);
    for (int64_t i = 0; i < num_rows; ++i) {
      const float* src = data + i * row_stride;
      float* dst = quantized.data() + i * row_dim;
      for (int64_t j = 0; j < row_dim; ++j) {
        dst[j] = std::round(src[j] / tolerance) * tolerance;
      }
    }
    rows = quantized.data();
    stride = row_dim;
  }

  Clustering clustering;
  clustering.assignment.resize(static_cast<size_t>(num_rows));
  // hash -> list of (representative row index, cluster id); collisions are
  // resolved by memcmp against the representative.
  std::unordered_map<uint64_t, std::vector<std::pair<int64_t, int32_t>>>
      buckets;
  buckets.reserve(static_cast<size_t>(num_rows));

  for (int64_t i = 0; i < num_rows; ++i) {
    const float* row = rows + i * stride;
    const uint64_t hash = HashRowBytes(row, row_dim);
    auto& bucket = buckets[hash];
    int32_t id = -1;
    for (const auto& [rep_index, cluster_id] : bucket) {
      const float* rep = rows + rep_index * stride;
      if (std::memcmp(rep, row,
                      static_cast<size_t>(row_dim) * sizeof(float)) == 0) {
        id = cluster_id;
        break;
      }
    }
    if (id < 0) {
      id = static_cast<int32_t>(clustering.cluster_sizes.size());
      clustering.cluster_sizes.push_back(0);
      bucket.emplace_back(i, id);
    }
    clustering.assignment[static_cast<size_t>(i)] = id;
    ++clustering.cluster_sizes[static_cast<size_t>(id)];
  }
  return clustering;
}

}  // namespace adr
