#include "clustering/lsh.h"

#include <algorithm>
#include <string>
#include <vector>

#include "tensor/gemm.h"
#include "util/check.h"
#include "util/parallel.h"

namespace adr {

Status LshFamily::Create(int64_t dim, int num_hashes, uint64_t seed,
                         LshFamily* out) {
  if (dim <= 0) {
    return Status::InvalidArgument("LSH dimension must be > 0, got " +
                                   std::to_string(dim));
  }
  if (num_hashes < 1 || num_hashes > kMaxLshHashes) {
    return Status::InvalidArgument(
        "LSH num_hashes must be in [1, " + std::to_string(kMaxLshHashes) +
        "], got " + std::to_string(num_hashes));
  }
  out->dim_ = dim;
  out->num_hashes_ = num_hashes;
  // Sample hyperplane-major (fixed RNG order, so signatures are stable
  // across releases), then transpose into the GEMM-friendly layout.
  std::vector<float> planes(static_cast<size_t>(num_hashes) * dim);
  Rng rng(seed);
  for (auto& v : planes) v = rng.NextGaussian();
  out->hyperplanes_t_.resize(planes.size());
  for (int h = 0; h < num_hashes; ++h) {
    for (int64_t j = 0; j < dim; ++j) {
      out->hyperplanes_t_[static_cast<size_t>(j) * num_hashes + h] =
          planes[static_cast<size_t>(h) * dim + j];
    }
  }
  return Status::OK();
}

LshSignature LshFamily::Hash(const float* row) const {
  // Single-row instance of the HashRows projection GEMM. Going through the
  // identical kernel (not a per-plane dot product) keeps the projections —
  // and therefore the sign bits — bit-identical between the per-row and
  // batched paths under every SIMD backend.
  float projections[kMaxLshHashes];
  Gemm(row, hyperplanes_t_.data(), projections, 1, dim_, num_hashes_);
  LshSignature sig;
  for (int h = 0; h < num_hashes_; ++h) {
    if (projections[h] > 0.0f) sig.SetBit(h);
  }
  return sig;
}

void LshFamily::HashRows(const float* data, int64_t num_rows,
                         int64_t row_stride,
                         std::vector<LshSignature>* out) const {
  out->resize(static_cast<size_t>(num_rows));
  std::vector<float> scratch(
      static_cast<size_t>(ScratchFloats(num_rows, row_stride)));
  HashRowsScratch(data, num_rows, row_stride, scratch.data(), out->data());
}

void LshFamily::HashRowsScratch(const float* data, int64_t num_rows,
                                int64_t row_stride, float* scratch,
                                LshSignature* out) const {
  // Batched formulation: the projections are one GEMM
  // P = X * V (X is num_rows x dim, V dimension-major dim x H), followed
  // by sign-packing — far faster than per-row dot products, especially
  // for the short sub-vectors (small dim) adaptive deep reuse favours.
  float* projections = scratch;
  const float* gemm_in = data;
  if (row_stride != dim_) {
    // Compact the strided rows first so the GEMM streams contiguously;
    // the copy is O(N*L), negligible next to the O(N*L*H) projections.
    float* compact = scratch + num_rows * num_hashes_;
    ParallelFor(num_rows, GrainForCost(dim_),
                [&](int64_t begin, int64_t end) {
                  for (int64_t i = begin; i < end; ++i) {
                    std::copy_n(data + i * row_stride, dim_,
                                compact + i * dim_);
                  }
                });
    gemm_in = compact;
  }
  Gemm(gemm_in, hyperplanes_t_.data(), projections, num_rows, dim_,
       num_hashes_);
  // Sign-packing per row chunk: each row owns its signature slot.
  ParallelFor(num_rows, GrainForCost(num_hashes_),
              [&](int64_t begin, int64_t end) {
                for (int64_t i = begin; i < end; ++i) {
                  const float* row = projections + i * num_hashes_;
                  LshSignature sig;
                  for (int h = 0; h < num_hashes_; ++h) {
                    if (row[h] > 0.0f) sig.SetBit(h);
                  }
                  out[i] = sig;
                }
              });
}

Clustering ClusterBySignature(const std::vector<LshSignature>& row_signatures,
                              std::vector<LshSignature>* signatures_out) {
  Clustering clustering;
  clustering.assignment.resize(row_signatures.size());
  if (signatures_out != nullptr) signatures_out->clear();

  // Open-addressing (linear probing) table: clustering runs once per
  // column block per batch, so the constant factor matters. Slots hold
  // the cluster id; -1 is empty.
  size_t capacity = 16;
  while (capacity < 2 * row_signatures.size()) capacity <<= 1;
  const size_t mask = capacity - 1;
  std::vector<int32_t> slot_id(capacity, -1);
  std::vector<LshSignature> slot_sig(capacity);
  const LshSignatureHash hasher;

  for (size_t i = 0; i < row_signatures.size(); ++i) {
    const LshSignature& sig = row_signatures[i];
    size_t slot = hasher(sig) & mask;
    while (slot_id[slot] >= 0 && !(slot_sig[slot] == sig)) {
      slot = (slot + 1) & mask;
    }
    int32_t id = slot_id[slot];
    if (id < 0) {
      id = static_cast<int32_t>(clustering.cluster_sizes.size());
      slot_id[slot] = id;
      slot_sig[slot] = sig;
      clustering.cluster_sizes.push_back(0);
      if (signatures_out != nullptr) signatures_out->push_back(sig);
    }
    clustering.assignment[i] = id;
    ++clustering.cluster_sizes[static_cast<size_t>(id)];
  }
  return clustering;
}

Clustering LshCluster(const LshFamily& family, const float* data,
                      int64_t num_rows, int64_t row_stride,
                      std::vector<LshSignature>* signatures_out) {
  std::vector<LshSignature> sigs;
  family.HashRows(data, num_rows, row_stride, &sigs);
  return ClusterBySignature(sigs, signatures_out);
}

}  // namespace adr
