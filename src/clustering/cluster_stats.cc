#include "clustering/cluster_stats.h"

#include <algorithm>

#include "clustering/normalize.h"
#include "util/check.h"

namespace adr {

ClusterStats ComputeClusterStats(const float* data, int64_t num_rows,
                                 int64_t row_dim, int64_t row_stride,
                                 const Clustering& clustering) {
  ADR_CHECK_EQ(num_rows, clustering.num_rows());
  ClusterStats stats;
  stats.num_rows = num_rows;
  stats.num_clusters = clustering.num_clusters();
  stats.remaining_ratio = clustering.remaining_ratio();
  for (int64_t size : clustering.cluster_sizes) {
    stats.largest_cluster = std::max(stats.largest_cluster, size);
    if (size == 1) ++stats.singleton_clusters;
  }
  if (num_rows == 0) return stats;

  const Tensor centroids =
      ComputeCentroids(data, num_rows, row_dim, row_stride, clustering);
  double total = 0.0;
  for (int64_t i = 0; i < num_rows; ++i) {
    total += AngularDistance(
        data + i * row_stride,
        centroids.data() + clustering.assignment[i] * row_dim, row_dim);
  }
  stats.mean_intra_distance = total / static_cast<double>(num_rows);
  return stats;
}

}  // namespace adr
