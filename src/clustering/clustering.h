// Common types for neuron-vector clustering.

#ifndef ADR_CLUSTERING_CLUSTERING_H_
#define ADR_CLUSTERING_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace adr {

/// \brief A partition of N row vectors into |C| clusters.
struct Clustering {
  /// assignment[i] is the cluster index (0 .. num_clusters-1) of row i.
  std::vector<int32_t> assignment;
  /// Number of member rows per cluster.
  std::vector<int64_t> cluster_sizes;

  int64_t num_rows() const { return static_cast<int64_t>(assignment.size()); }
  int64_t num_clusters() const {
    return static_cast<int64_t>(cluster_sizes.size());
  }
  /// The paper's remaining ratio r_c = |C| / N.
  double remaining_ratio() const {
    return num_rows() == 0 ? 0.0
                           : static_cast<double>(num_clusters()) /
                                 static_cast<double>(num_rows());
  }
};

/// \brief Mean of the member rows of each cluster.
///
/// `data` is N x L row-major (raw pointer form so callers can pass
/// sub-matrix columns without copying); result is |C| x L.
Tensor ComputeCentroids(const float* data, int64_t num_rows, int64_t row_dim,
                        int64_t row_stride, const Clustering& clustering);

/// \brief Scatters per-cluster rows back to per-member rows:
/// out[i] = in[assignment[i]]. `in` is |C| x L, `out` is N x L.
void ScatterRows(const Tensor& cluster_rows, const Clustering& clustering,
                 float* out, int64_t row_stride);

/// \brief Raw-pointer ScatterRows for arena-backed buffers; `cluster_rows`
/// is |C| x `row_dim` row-major.
void ScatterRows(const float* cluster_rows, int64_t row_dim,
                 const Clustering& clustering, float* out,
                 int64_t row_stride);

}  // namespace adr

#endif  // ADR_CLUSTERING_CLUSTERING_H_
