// Diagnostics over a Clustering: used by tests, the adaptive controller's
// telemetry, and the similarity-verification experiment.

#ifndef ADR_CLUSTERING_CLUSTER_STATS_H_
#define ADR_CLUSTERING_CLUSTER_STATS_H_

#include <cstdint>

#include "clustering/clustering.h"

namespace adr {

struct ClusterStats {
  int64_t num_rows = 0;
  int64_t num_clusters = 0;
  double remaining_ratio = 0.0;       ///< r_c = |C| / N
  int64_t largest_cluster = 0;
  int64_t singleton_clusters = 0;
  /// Mean angular distance from member rows to their cluster centroid.
  double mean_intra_distance = 0.0;
};

/// \brief Computes the stats; `data` (num_rows x row_dim, given stride) must
/// be the matrix the clustering was built from.
ClusterStats ComputeClusterStats(const float* data, int64_t num_rows,
                                 int64_t row_dim, int64_t row_stride,
                                 const Clustering& clustering);

}  // namespace adr

#endif  // ADR_CLUSTERING_CLUSTER_STATS_H_
