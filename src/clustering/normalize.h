// Row normalization for the angular cosine metric (paper Section III-B).

#ifndef ADR_CLUSTERING_NORMALIZE_H_
#define ADR_CLUSTERING_NORMALIZE_H_

#include <cstdint>

namespace adr {

/// \brief L2-normalizes each of `num_rows` rows of length `row_dim` in
/// place; rows with norm below `epsilon` are left unchanged (the zero
/// vector has no direction).
void NormalizeRowsInPlace(float* data, int64_t num_rows, int64_t row_dim,
                          int64_t row_stride, float epsilon = 1e-12f);

/// \brief Angular cosine distance ||a/|a| - b/|b||| between two vectors;
/// returns 2 when either vector is (near) zero and the other is not, 0 when
/// both are (the paper's metric, extended to the degenerate cases).
double AngularDistance(const float* a, const float* b, int64_t dim,
                       float epsilon = 1e-12f);

}  // namespace adr

#endif  // ADR_CLUSTERING_NORMALIZE_H_
