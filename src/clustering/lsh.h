// Sign-random-projection LSH for angular distance (paper Section III-B).
//
// H Gaussian hyperplanes map each (L2-normalized) row vector to an H-bit
// signature (Eq. 4); rows sharing a signature form a cluster. The signature
// doubles as the cross-batch cluster ID used by cluster reuse (Algorithm 1).

#ifndef ADR_CLUSTERING_LSH_H_
#define ADR_CLUSTERING_LSH_H_

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "clustering/clustering.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/status.h"

namespace adr {

/// \brief Maximum number of hash functions supported (two 64-bit words).
inline constexpr int kMaxLshHashes = 128;

/// \brief An H-bit LSH signature; hashable, usable as a cross-batch
/// cluster ID.
struct LshSignature {
  std::array<uint64_t, 2> words = {0, 0};

  bool operator==(const LshSignature& other) const {
    return words == other.words;
  }
  void SetBit(int i) { words[i >> 6] |= uint64_t{1} << (i & 63); }
};

/// \brief Well-mixed 64-bit key of a packed signature — the shared hash
/// of the unordered-map functor below and the cluster-reuse cache's
/// open-addressing tables (whose slot index is the key masked to a
/// power-of-two capacity, so every bit must carry entropy).
inline uint64_t SignatureKey(const LshSignature& s) {
  // splitmix-style mix of the two words.
  uint64_t h = s.words[0] * 0x9e3779b97f4a7c15ULL;
  h ^= h >> 29;
  h += s.words[1] * 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 32;
  return h;
}

struct LshSignatureHash {
  size_t operator()(const LshSignature& s) const {
    return static_cast<size_t>(SignatureKey(s));
  }
};

/// \brief A fixed family of H Gaussian hyperplanes over dimension L.
///
/// The family is sampled once from a seed and then immutable, so the same
/// signatures are comparable across batches (required by cluster reuse).
class LshFamily {
 public:
  /// \brief Samples `num_hashes` hyperplanes of dimension `dim`.
  ///
  /// Returns InvalidArgument if num_hashes is outside [1, kMaxLshHashes]
  /// or dim <= 0.
  static Status Create(int64_t dim, int num_hashes, uint64_t seed,
                       LshFamily* out);

  int64_t dim() const { return dim_; }
  int num_hashes() const { return num_hashes_; }

  /// \brief Signature of one row vector (`row` has `dim()` elements).
  ///
  /// The row is interpreted under the angular metric: only the signs of the
  /// projections matter, so no explicit normalization is needed here.
  /// Computed through the same GEMM microkernel as HashRows, so per-row and
  /// batched signatures are bit-identical for any fixed SIMD backend.
  LshSignature Hash(const float* row) const;

  /// \brief Signatures for `num_rows` rows with the given stride.
  void HashRows(const float* data, int64_t num_rows, int64_t row_stride,
                std::vector<LshSignature>* out) const;

  /// \brief HashRows into caller-owned buffers — the allocation-free form
  /// the fused tile pipeline feeds from a workspace arena. `scratch` must
  /// hold ScratchFloats(num_rows, row_stride) floats; `out` receives
  /// `num_rows` signatures. Same projection GEMM and sign-packing as
  /// HashRows, so the signatures are bit-identical.
  void HashRowsScratch(const float* data, int64_t num_rows,
                       int64_t row_stride, float* scratch,
                       LshSignature* out) const;

  /// \brief Scratch floats HashRowsScratch needs: projections, plus a
  /// compacted copy of the rows when they are strided.
  int64_t ScratchFloats(int64_t num_rows, int64_t row_stride) const {
    return num_rows * num_hashes_ +
           (row_stride == dim_ ? 0 : num_rows * dim_);
  }

  /// \brief Dimension-major hyperplanes, hyperplanes_t()[j * num_hashes() +
  /// h]: the projection operand of the HashRows GEMM. Exposed so the
  /// golden-kernel harness can recompute projections at higher precision.
  const std::vector<float>& hyperplanes_t() const { return hyperplanes_t_; }

 private:
  int64_t dim_ = 0;
  int num_hashes_ = 0;
  // Hyperplanes stored dimension-major: hyperplanes_t_[j * num_hashes_ + h]
  // (the batched HashRows GEMM streams over h in the inner loop).
  std::vector<float> hyperplanes_t_;
};

/// \brief Groups rows by LSH signature into a Clustering.
///
/// `signatures_out` (optional) receives the signature of each *cluster*
/// (indexed by cluster id), which cluster reuse uses as the cache key.
Clustering ClusterBySignature(const std::vector<LshSignature>& row_signatures,
                              std::vector<LshSignature>* signatures_out);

/// \brief Convenience: hash + group rows of an N x L matrix (stride = L).
Clustering LshCluster(const LshFamily& family, const float* data,
                      int64_t num_rows, int64_t row_stride,
                      std::vector<LshSignature>* signatures_out = nullptr);

}  // namespace adr

#endif  // ADR_CLUSTERING_LSH_H_
