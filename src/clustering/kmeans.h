// Lloyd's k-means with k-means++ seeding.
//
// Used for the similarity-verification experiment (paper Fig. 7): k-means is
// slower than LSH but produces higher-quality clusters, so it upper-bounds
// the reuse potential among neuron vectors.

#ifndef ADR_CLUSTERING_KMEANS_H_
#define ADR_CLUSTERING_KMEANS_H_

#include <cstdint>

#include "clustering/clustering.h"
#include "tensor/tensor.h"
#include "util/result.h"
#include "util/rng.h"

namespace adr {

struct KMeansOptions {
  int64_t num_clusters = 8;
  int max_iterations = 25;
  /// Stop early when fewer than this fraction of rows change assignment.
  double min_reassigned_fraction = 0.001;
  uint64_t seed = 42;
};

struct KMeansResult {
  Clustering clustering;
  Tensor centroids;  ///< |C| x L
  int iterations_run = 0;
  /// Mean squared distance of rows to their centroid (inertia / N).
  double mean_squared_distance = 0.0;
};

/// \brief Clusters the rows of `data` (num_rows x row_dim, given stride)
/// into `options.num_clusters` groups under squared Euclidean distance.
///
/// Returns InvalidArgument when num_clusters is not in [1, num_rows].
/// Empty clusters arising during Lloyd iterations are re-seeded with the
/// row farthest from its centroid, so the final clustering has no empty
/// clusters.
Result<KMeansResult> KMeans(const float* data, int64_t num_rows,
                            int64_t row_dim, int64_t row_stride,
                            const KMeansOptions& options);

}  // namespace adr

#endif  // ADR_CLUSTERING_KMEANS_H_
