// Streaming normalize+hash over row tiles — the clustering half of the
// fused im2col→hash pipeline.
//
// The fused forward never materializes the N x K unfolded matrix; it
// produces L2-sized row tiles and hashes each tile's sub-vector columns
// straight out of the tile buffer. TileRowHasher wraps one block's
// LshFamily with arena-friendly (caller-owned scratch) hashing and an
// optional in-scratch L2 normalization.
//
// Normalization is OFF in the production path: sign-random-projection
// signatures are invariant to positive row scaling (verified by
// lsh_property_test), so hashing the raw rows gives the same clusters —
// and, unlike normalize-then-hash, stays bit-identical to the
// materialized ClusterSubVectors path, which also hashes raw rows.

#ifndef ADR_CLUSTERING_TILE_HASH_H_
#define ADR_CLUSTERING_TILE_HASH_H_

#include <cstdint>

#include "clustering/lsh.h"

namespace adr {

/// \brief Hashes row tiles of one sub-vector block without allocating.
class TileRowHasher {
 public:
  TileRowHasher() = default;
  explicit TileRowHasher(const LshFamily* family, bool normalize = false)
      : family_(family), normalize_(normalize) {}

  const LshFamily* family() const { return family_; }
  bool normalize() const { return normalize_; }

  /// \brief Scratch floats HashTile needs for `num_rows` rows at
  /// `row_stride`. With normalization the rows are always compacted (the
  /// normalize must not write back into the caller's tile).
  int64_t ScratchFloats(int64_t num_rows, int64_t row_stride) const {
    if (normalize_) {
      return num_rows * (family_->num_hashes() + family_->dim());
    }
    return family_->ScratchFloats(num_rows, row_stride);
  }

  /// \brief Signatures of `num_rows` rows (stride `row_stride`) into
  /// `sigs`; `scratch` must hold ScratchFloats(num_rows, row_stride)
  /// floats. Without normalization this is exactly
  /// LshFamily::HashRowsScratch.
  void HashTile(const float* data, int64_t num_rows, int64_t row_stride,
                float* scratch, LshSignature* sigs) const;

 private:
  const LshFamily* family_ = nullptr;
  bool normalize_ = false;
};

}  // namespace adr

#endif  // ADR_CLUSTERING_TILE_HASH_H_
