#include "clustering/normalize.h"

#include <cmath>

#include "tensor/simd.h"

namespace adr {

void NormalizeRowsInPlace(float* data, int64_t num_rows, int64_t row_dim,
                          int64_t row_stride, float epsilon) {
  const simd::Kernels& kernels = simd::Active();
  for (int64_t i = 0; i < num_rows; ++i) {
    float* row = data + i * row_stride;
    const float norm = std::sqrt(kernels.squared_norm(row, row_dim));
    if (norm <= epsilon) continue;
    kernels.scale(1.0f / norm, row, row_dim);
  }
}

double AngularDistance(const float* a, const float* b, int64_t dim,
                       float epsilon) {
  // Deliberately scalar with double accumulation: this is an analysis
  // metric (similarity studies, k-means quality), not a hot path, and the
  // extra precision keeps the clamp below honest for near-parallel vectors.
  double na = 0.0, nb = 0.0, dot = 0.0;
  for (int64_t j = 0; j < dim; ++j) {
    na += static_cast<double>(a[j]) * a[j];
    nb += static_cast<double>(b[j]) * b[j];
    dot += static_cast<double>(a[j]) * b[j];
  }
  na = std::sqrt(na);
  nb = std::sqrt(nb);
  const bool a_zero = na <= epsilon;
  const bool b_zero = nb <= epsilon;
  if (a_zero && b_zero) return 0.0;
  if (a_zero || b_zero) return 2.0;
  // ||â - b̂||^2 = 2 - 2 cos(a, b)
  double cos = dot / (na * nb);
  if (cos > 1.0) cos = 1.0;
  if (cos < -1.0) cos = -1.0;
  return std::sqrt(2.0 - 2.0 * cos);
}

}  // namespace adr
