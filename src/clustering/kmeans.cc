#include "clustering/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "util/check.h"

namespace adr {

namespace {

double SquaredDistance(const float* a, const float* b, int64_t dim) {
  double d = 0.0;
  for (int64_t j = 0; j < dim; ++j) {
    const double diff = static_cast<double>(a[j]) - b[j];
    d += diff * diff;
  }
  return d;
}

// k-means++ seeding: first center uniform, then D^2-weighted.
void SeedCentroids(const float* data, int64_t num_rows, int64_t row_dim,
                   int64_t row_stride, int64_t k, Rng* rng,
                   Tensor* centroids) {
  std::vector<double> min_dist(static_cast<size_t>(num_rows),
                               std::numeric_limits<double>::max());
  float* c = centroids->data();
  const int64_t first = static_cast<int64_t>(rng->NextBounded(num_rows));
  std::copy_n(data + first * row_stride, row_dim, c);
  for (int64_t ci = 1; ci < k; ++ci) {
    const float* prev = c + (ci - 1) * row_dim;
    double total = 0.0;
    for (int64_t i = 0; i < num_rows; ++i) {
      const double d = SquaredDistance(data + i * row_stride, prev, row_dim);
      min_dist[i] = std::min(min_dist[i], d);
      total += min_dist[i];
    }
    int64_t chosen = num_rows - 1;
    if (total > 0.0) {
      double target = rng->NextDouble() * total;
      for (int64_t i = 0; i < num_rows; ++i) {
        target -= min_dist[i];
        if (target <= 0.0) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = static_cast<int64_t>(rng->NextBounded(num_rows));
    }
    std::copy_n(data + chosen * row_stride, row_dim, c + ci * row_dim);
  }
}

}  // namespace

Result<KMeansResult> KMeans(const float* data, int64_t num_rows,
                            int64_t row_dim, int64_t row_stride,
                            const KMeansOptions& options) {
  const int64_t k = options.num_clusters;
  if (num_rows <= 0 || row_dim <= 0) {
    return Status::InvalidArgument("KMeans: empty input");
  }
  if (k < 1 || k > num_rows) {
    return Status::InvalidArgument(
        "KMeans: num_clusters must be in [1, num_rows], got " +
        std::to_string(k) + " for " + std::to_string(num_rows) + " rows");
  }

  KMeansResult result;
  result.centroids = Tensor(Shape({k, row_dim}));
  Rng rng(options.seed);
  SeedCentroids(data, num_rows, row_dim, row_stride, k, &rng,
                &result.centroids);

  auto& assignment = result.clustering.assignment;
  assignment.assign(static_cast<size_t>(num_rows), -1);
  std::vector<int64_t> sizes(static_cast<size_t>(k), 0);
  std::vector<double> row_dist(static_cast<size_t>(num_rows), 0.0);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations_run = iter + 1;
    // Assignment step.
    int64_t reassigned = 0;
    std::fill(sizes.begin(), sizes.end(), 0);
    const float* c = result.centroids.data();
    for (int64_t i = 0; i < num_rows; ++i) {
      const float* row = data + i * row_stride;
      double best_d = std::numeric_limits<double>::max();
      int32_t best = 0;
      for (int64_t ci = 0; ci < k; ++ci) {
        const double d = SquaredDistance(row, c + ci * row_dim, row_dim);
        if (d < best_d) {
          best_d = d;
          best = static_cast<int32_t>(ci);
        }
      }
      if (assignment[i] != best) {
        assignment[i] = best;
        ++reassigned;
      }
      row_dist[i] = best_d;
      ++sizes[best];
    }

    // Re-seed empty clusters with the farthest row whose own cluster has
    // at least two members (so the donor cluster cannot become empty).
    for (int64_t ci = 0; ci < k; ++ci) {
      if (sizes[ci] != 0) continue;
      int64_t farthest = -1;
      for (int64_t i = 0; i < num_rows; ++i) {
        if (sizes[assignment[i]] < 2) continue;
        if (farthest < 0 || row_dist[i] > row_dist[farthest]) farthest = i;
      }
      // k <= num_rows guarantees a donor exists while any cluster is empty.
      ADR_CHECK_GE(farthest, 0);
      --sizes[assignment[farthest]];
      assignment[farthest] = static_cast<int32_t>(ci);
      ++sizes[ci];
      row_dist[farthest] = 0.0;
      ++reassigned;
    }

    // Update step.
    result.centroids.SetZero();
    float* cm = result.centroids.data();
    for (int64_t i = 0; i < num_rows; ++i) {
      const float* row = data + i * row_stride;
      float* dst = cm + assignment[i] * row_dim;
      for (int64_t j = 0; j < row_dim; ++j) dst[j] += row[j];
    }
    for (int64_t ci = 0; ci < k; ++ci) {
      const float inv = 1.0f / static_cast<float>(sizes[ci]);
      float* dst = cm + ci * row_dim;
      for (int64_t j = 0; j < row_dim; ++j) dst[j] *= inv;
    }

    if (static_cast<double>(reassigned) <
        options.min_reassigned_fraction * static_cast<double>(num_rows)) {
      break;
    }
  }

  result.clustering.cluster_sizes.assign(sizes.begin(), sizes.end());
  double inertia = 0.0;
  const float* c = result.centroids.data();
  for (int64_t i = 0; i < num_rows; ++i) {
    inertia += SquaredDistance(data + i * row_stride,
                               c + assignment[i] * row_dim, row_dim);
  }
  result.mean_squared_distance = inertia / static_cast<double>(num_rows);
  return result;
}

}  // namespace adr
